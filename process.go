package adwise

import (
	"github.com/adwise-go/adwise/internal/bench"
	"github.com/adwise-go/adwise/internal/engine"
)

// Processing engine re-exports: a vertex-cut master/mirror engine that
// really executes the paper's four workloads over a partitioned graph and
// accounts a deterministic simulated cluster latency alongside.
type (
	// Engine executes workloads over a partitioning.
	Engine = engine.Engine
	// CostModel maps work to simulated cluster time.
	CostModel = engine.CostModel
	// Report summarises one workload execution (supersteps, messages,
	// simulated latency).
	Report = engine.Report
	// CycleSearchConfig configures the subgraph-isomorphism workload.
	CycleSearchConfig = engine.CycleSearchConfig
	// CycleSearchResult reports found circles.
	CycleSearchResult = engine.CycleSearchResult
	// CliqueSearchConfig configures the random-walker clique workload.
	CliqueSearchConfig = engine.CliqueSearchConfig
	// CliqueSearchResult reports found cliques.
	CliqueSearchResult = engine.CliqueSearchResult
)

// NewEngine builds an engine from a partitioning. numV fixes the vertex
// universe (use the source graph's NumV); workers bounds parallelism
// (0 = GOMAXPROCS).
func NewEngine(a *Assignment, numV int, cost CostModel, workers int) (*Engine, error) {
	return engine.New(a, numV, cost, workers)
}

// DefaultCostModel returns the engine's 1GbE-cluster-like calibration.
func DefaultCostModel() CostModel { return engine.DefaultCostModel() }

// BenchCostModel returns the calibration the benchmark harness uses for
// the Figure 7 experiments.
func BenchCostModel() CostModel { return bench.DefaultBenchCostModel() }

// PageRankReference computes PageRank sequentially — the validation oracle
// for the engine's distributed execution.
var PageRankReference = engine.PageRankReference

// ValidColoring reports whether colors is a proper coloring of g.
var ValidColoring = engine.ValidColoring

// ComponentsReference computes connected-component labels sequentially —
// the oracle for the engine's label propagation.
var ComponentsReference = engine.ComponentsReference

// SSSPReference computes unit-weight shortest paths sequentially (BFS) —
// the oracle for the engine's Bellman–Ford execution.
var SSSPReference = engine.SSSPReference
