module github.com/adwise-go/adwise

go 1.24
