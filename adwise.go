// Package adwise is a from-scratch Go implementation of ADWISE — the
// adaptive window-based streaming edge partitioner of Mayer et al.
// (ICDCS 2018) — together with the single-edge streaming baselines it is
// evaluated against (Hash, 1D/2D, Grid, Greedy, DBH, HDRF), the spotlight
// optimization for parallel loading, synthetic generators for the paper's
// evaluation graphs, a vertex-cut graph-processing engine with a simulated
// cluster cost model, and a benchmark harness that regenerates every table
// and figure of the paper's evaluation.
//
// # Quick start
//
//	g, _ := adwise.Generate(adwise.GraphBrain, 0.1, 42)
//	p, _ := adwise.NewADWISE(32, adwise.WithLatencyPreference(time.Second))
//	assignment, _ := p.Run(adwise.StreamGraph(g))
//	fmt.Println(adwise.Summarize(assignment))
//
// The partitioner assigns every edge of the stream to one of k partitions
// (a vertex-cut): vertices incident to edges on multiple partitions are
// replicated, and the replication degree (mean replicas per vertex) is the
// quality objective. ADWISE buffers a window of edges and repeatedly
// assigns the best-scoring one, adapting the window size at run time so
// the pass completes within a configurable latency preference L.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured reproduction record.
package adwise

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/serve"
	"github.com/adwise-go/adwise/internal/stream"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Core graph types, re-exported from the internal graph substrate.
type (
	// Edge is a single graph edge.
	Edge = graph.Edge
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Graph is an edge-list graph.
	Graph = graph.Graph
	// Assignment maps every streamed edge to its partition.
	Assignment = metrics.Assignment
	// Summary reports partitioning quality (replication degree, balance).
	Summary = metrics.Summary
	// Stream is a single-pass edge stream.
	Stream = stream.Stream
	// FileStream is a file-backed edge stream: batched streaming plus the
	// stream error contract plus Close. Returned by StreamFile for text
	// and binary graph files alike.
	FileStream = stream.FileStream
)

// ADWISE configuration options, re-exported from the core implementation.
type (
	// Option configures an ADWISE partitioner.
	Option = core.Option
	// RunStats reports what one ADWISE pass did (window trajectory, score
	// computations, latency).
	RunStats = core.RunStats
	// Partitioner is the ADWISE streaming partitioner. Instances are
	// single-use: one Run per instance.
	Partitioner = core.Adwise
)

// Re-exported ADWISE options. See the core package for semantics.
var (
	// WithLatencyPreference sets the partitioning latency preference L.
	WithLatencyPreference = core.WithLatencyPreference
	// WithClusteringScore toggles the clustering score (Eq. 6).
	WithClusteringScore = core.WithClusteringScore
	// WithAllowedPartitions restricts assignments to a partition subset
	// (the spotlight spread).
	WithAllowedPartitions = core.WithAllowedPartitions
	// WithInitialWindow sets the starting window size.
	WithInitialWindow = core.WithInitialWindow
	// WithMaxWindow caps the adaptive window.
	WithMaxWindow = core.WithMaxWindow
	// WithFixedWindow disables window adaptation.
	WithFixedWindow = core.WithFixedWindow
	// WithFixedLambda pins the balancing weight (ablation).
	WithFixedLambda = core.WithFixedLambda
	// WithEagerTraversal disables lazy traversal (ablation).
	WithEagerTraversal = core.WithEagerTraversal
	// WithClock substitutes the latency time source (tests).
	WithClock = core.WithClock
	// WithTotalEdgesHint supplies the stream length when unknown.
	WithTotalEdgesHint = core.WithTotalEdgesHint
	// WithEpsilon sets the candidate threshold offset ε.
	WithEpsilon = core.WithEpsilon
	// WithMaxCandidates bounds the lazy-traversal candidate set.
	WithMaxCandidates = core.WithMaxCandidates
	// WithScoreWorkers splits window scoring into n logical shards,
	// executed on the process-wide work-stealing pool (0 = auto:
	// GOMAXPROCS). Any shard count produces edge-for-edge identical
	// assignments.
	WithScoreWorkers = core.WithScoreWorkers
	// WithPerEdgeRefill restores the serial one-edge-at-a-time window
	// refill (ablation; identical assignments either way).
	WithPerEdgeRefill = core.WithPerEdgeRefill
	// WithRefillBatch caps how many edges one batched refill pass stages.
	WithRefillBatch = core.WithRefillBatch
	// WithVertexBudget caps the byte footprint of the vertex state; when
	// the table would outgrow the budget, low-partial-degree vertices are
	// evicted HEP-style instead (0 = unbounded, the default).
	WithVertexBudget = core.WithVertexBudget
)

// ParseByteSize parses a human-readable byte size ("64MiB", "1.5g",
// "4096") into bytes: the format of the CLI vertex-budget flags. Suffixes
// are case-insensitive and binary (K = 1024); the empty string parses as
// 0 (no budget).
func ParseByteSize(s string) (int64, error) { return vcache.ParseBytes(s) }

// FormatByteSize renders a byte count human-readably with binary units
// ("16.0MiB"), matching what ParseByteSize accepts.
func FormatByteSize(n int64) string { return vcache.FormatBytes(n) }

// NewADWISE returns an ADWISE partitioner for k partitions.
func NewADWISE(k int, opts ...Option) (*Partitioner, error) {
	return core.New(k, opts...)
}

// BaselineConfig configures a single-edge baseline partitioner.
type BaselineConfig = partition.Config

// Baseline identifies one of the single-edge streaming strategies from the
// paper's evaluation landscape.
type Baseline string

// The implemented single-edge baselines.
const (
	BaselineHash   Baseline = "hash"
	BaselineOneDim Baseline = "1d"
	BaselineTwoDim Baseline = "2d"
	BaselineGrid   Baseline = "grid"
	BaselineGreedy Baseline = "greedy"
	BaselineDBH    Baseline = "dbh"
	BaselineHDRF   Baseline = "hdrf"
)

// Baselines lists the single-edge strategies in Figure 1 order.
func Baselines() []Baseline {
	return []Baseline{BaselineHash, BaselineOneDim, BaselineTwoDim, BaselineGrid,
		BaselineGreedy, BaselineDBH, BaselineHDRF}
}

// NewBaseline constructs a named single-edge streaming partitioner through
// the strategy registry. HDRF uses the authors' recommended λ=1.1.
func NewBaseline(name Baseline, cfg BaselineConfig) (StreamingPartitioner, error) {
	return runtime.NewPartitioner(string(name), cfg)
}

// NewHDRF constructs an HDRF partitioner with an explicit balancing
// weight.
func NewHDRF(cfg BaselineConfig, lambda float64) (StreamingPartitioner, error) {
	return partition.NewHDRF(cfg, lambda)
}

// StreamingPartitioner is a single-edge streaming partitioner: one
// partition decision per arriving edge.
type StreamingPartitioner = partition.Partitioner

// RunBaseline drains s through a single-edge partitioner. A stream that
// fails mid-pass (see StreamErr) returns the error, never a silently-short
// assignment.
func RunBaseline(s Stream, p StreamingPartitioner) (*Assignment, error) {
	return partition.Run(s, p)
}

// PartitionNE runs the all-edge neighbourhood-expansion heuristic (the
// super-linear, high-quality reference point of Figure 1).
func PartitionNE(g *Graph, k int, seed uint64) (*Assignment, error) {
	return partition.NE{}.Partition(g, k, seed)
}

// Summarize computes the quality summary of an assignment: replication
// degree (Eq. 1 of the paper), balance (Eq. 2), cut vertices, sizes.
func Summarize(a *Assignment) Summary {
	return metrics.Summarize(a)
}

// SaveAssignment writes a partitioning as "src dst partition" TSV rows —
// the interchange format between the partitioning and processing tools.
func SaveAssignment(path string, a *Assignment) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("adwise: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := a.WriteTSV(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("adwise: closing %s: %w", path, err)
	}
	return nil
}

// LoadAssignment reads a partitioning written by SaveAssignment.
func LoadAssignment(path string) (*Assignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adwise: opening %s: %w", path, err)
	}
	defer f.Close()
	return metrics.ReadTSV(f)
}

// ReplicaHistogram returns, for h in 0..k, how many vertices have h
// replicas.
func ReplicaHistogram(a *Assignment) []int {
	return metrics.ReplicaHistogram(a)
}

// StreamGraph streams a graph's edges in their stored order.
func StreamGraph(g *Graph) Stream { return stream.FromGraph(g) }

// StreamEdges streams an edge slice in order.
func StreamEdges(edges []Edge) Stream { return stream.FromEdges(edges) }

// StreamFile streams a graph file without materialising it, sniffing the
// format: ADWB binary files stream fixed records, everything else streams
// as a text edge list. The returned stream must be closed by the caller.
func StreamFile(path string) (FileStream, error) { return stream.Open(path) }

// StreamErr returns the pending error of a stream that can fail mid-pass
// (file and segment streams), or nil for streams that cannot fail or have
// not failed. Stream exhaustion with a pending error is a failure, never a
// short success; every run path in this package checks it, so callers only
// need StreamErr when driving a stream by hand.
func StreamErr(s Stream) error { return stream.Err(s) }

// IsBinaryGraphFile reports whether path is a binary (ADWB) edge-list
// file. Purely informational since the ingest layer became
// format-agnostic: loading (LoadGraph), streaming (StreamFile), and
// segment partitioning (PartitionFileSpotlight) all sniff the format and
// handle both encodings.
func IsBinaryGraphFile(path string) (bool, error) { return graph.IsBinary(path) }

// Shuffle returns a seeded pseudo-random permutation of edges.
func Shuffle(edges []Edge, seed uint64) []Edge { return stream.Shuffled(edges, seed) }

// Interleave dilutes stream locality by round-robin interleaving
// contiguous blocks.
func Interleave(edges []Edge, blocks int) []Edge { return stream.Interleave(edges, blocks) }

// Unified strategy runtime, re-exported from internal/runtime: every
// partitioner — baselines and ADWISE alike — is constructible by name
// through one registry and runs behind one interface.
type (
	// Strategy is a named, stats-reporting partitioner instance: one Run
	// over an edge stream produces an assignment.
	Strategy = runtime.Strategy
	// StrategySpec carries the construction knobs shared by all
	// strategies (K, allowed spread, seed, ADWISE latency/window, ...).
	StrategySpec = runtime.Spec
	// StrategyStats is the strategy-independent account of one pass.
	StrategyStats = runtime.Stats
)

// NewStrategy constructs the named strategy ("hash", "1d", "2d", "grid",
// "greedy", "dbh", "hdrf", "adwise", "ne") from the registry.
func NewStrategy(name string, spec StrategySpec) (Strategy, error) {
	return runtime.New(name, spec)
}

// StrategyNames lists every registered strategy, sorted.
func StrategyNames() []string { return runtime.Names() }

// Spotlight configuration and runner, re-exported from the strategy
// runtime.
type (
	// SpotlightConfig configures parallel loading with restricted spread.
	SpotlightConfig = runtime.SpotlightConfig
	// Runner is one partitioner instance under spotlight.
	Runner = runtime.Runner
)

// RunSpotlight partitions edges with Z parallel instances of restricted
// spread (§III-D of the paper). build receives the instance index and its
// allowed partitions.
func RunSpotlight(edges []Edge, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*Assignment, error) {
	return runtime.RunSpotlight(edges, cfg, build)
}

// RunStrategySpotlight partitions edges with Z registry-built instances of
// the named strategy, each restricted to its spotlight spread.
func RunStrategySpotlight(name string, edges []Edge, cfg SpotlightConfig, spec StrategySpec) (*Assignment, error) {
	return runtime.RunStrategySpotlight(name, edges, cfg, spec)
}

// RunStrategySpotlightStats is RunStrategySpotlight plus each instance's
// StrategyStats. With window strategies scoring on the process-wide
// work-stealing pool, per-instance counters stay correctly attributed
// (an instance's score ops land in its own shard scratches no matter
// which pool worker ran them); AggregateStrategyStats folds them into a
// run-level view.
func RunStrategySpotlightStats(name string, edges []Edge, cfg SpotlightConfig, spec StrategySpec) (*Assignment, []StrategyStats, error) {
	return runtime.RunStrategySpotlightStats(name, edges, cfg, spec)
}

// AggregateStrategyStats folds per-instance spotlight stats into one
// run-level view: counters summed, latency and window peaks maxed.
func AggregateStrategyStats(stats []StrategyStats) StrategyStats {
	return runtime.AggregateStats(stats)
}

// PublishStrategyStats pushes one pass's StrategyStats onto a telemetry
// registry under the runtime.* metric names. A nil registry is a no-op.
func PublishStrategyStats(reg *MetricRegistry, st StrategyStats) {
	runtime.PublishStats(reg, st)
}

// RunSpotlightStreams partitions Z edge streams with Z parallel instances
// built by build — the general executor behind both loading models: in-
// memory chunks (RunSpotlight) and disjoint file byte ranges
// (PartitionFileSpotlight).
func RunSpotlightStreams(streams []Stream, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*Assignment, error) {
	return runtime.RunSpotlightStreams(streams, cfg, build)
}

// PartitionFileSpotlight partitions a graph file — text edge list or ADWB
// binary, sniffed automatically — with Z registry-built instances of the
// named strategy, each streaming a disjoint byte range of the file (the
// paper's Figure 3 deployment). Binary files are planned by record
// arithmetic on the header with no pass over the data. With streaming
// strategies the edge list is never materialised, so the file may be far
// larger than memory; the all-edge "ne" strategy still collects each
// instance's segment.
func PartitionFileSpotlight(name, path string, cfg SpotlightConfig, spec StrategySpec) (*Assignment, error) {
	return runtime.RunStrategySpotlightFile(name, path, cfg, spec)
}

// AsRunner adapts a single-edge partitioner to a spotlight Runner.
func AsRunner(p StreamingPartitioner) Runner { return runtime.StreamingRunner(p) }

// Partition-lookup serving layer, re-exported from internal/serve: the
// consumption side of the partitioner. A LookupIndex is an immutable,
// sharded edge→partition / vertex→replica-set index built from an
// Assignment; a LookupStore hot-swaps indices under unbounded concurrent
// readers; ServeHandler/Serve expose the HTTP JSON API that distributed
// graph-processing workers (paper §II, Figure 3) query at runtime.
type (
	// LookupIndex answers Partition(src,dst), PartitionBatch, and
	// Replicas(v) with zero allocations; safe for concurrent readers.
	LookupIndex = serve.Index
	// LookupStore holds the live index behind an atomic pointer; Swap
	// installs a fresh index without blocking in-flight lookups.
	LookupStore = serve.Store
	// LookupStats reports what a LookupIndex holds.
	LookupStats = serve.Stats
)

// BuildIndex constructs an immutable lookup index from an assignment.
func BuildIndex(a *Assignment) (*LookupIndex, error) { return serve.Build(a) }

// NewLookupStore returns a hot-swappable store serving idx (nil for an
// empty store that answers 503 until the first Swap).
func NewLookupStore(idx *LookupIndex) *LookupStore { return serve.NewStore(idx) }

// ServeHandler returns the lookup service's HTTP API over a store:
// /v1/edge, /v1/vertex, /v1/edges (batch), /v1/stats, /healthz.
func ServeHandler(s *LookupStore) http.Handler { return serve.NewHandler(s) }

// NewLookupServer wraps a handler (typically ServeHandler, possibly
// composed with extra routes) in an http.Server configured with the
// slow-client timeouts a public-facing lookup service needs.
func NewLookupServer(h http.Handler) *http.Server { return serve.NewServer(h) }

// Serve blocks serving the lookup API for s on addr, with the
// slow-client timeouts a public-facing lookup service needs.
func Serve(addr string, s *LookupStore) error {
	srv := serve.NewServer(ServeHandler(s))
	srv.Addr = addr
	return srv.ListenAndServe()
}

// Telemetry. A MetricRegistry collects lock-free counters, gauges, and
// latency histograms from the partitioning and serving layers; a
// MetricsFlusher samples it on a cadence and pushes cumulative snapshots
// to a sink (JSON lines, statsd line protocol, or any custom Sink). The
// hot-path instruments are zero-alloc and a slow or failing sink can never
// block them — overflow is dropped and self-reported on the registry.
type (
	// MetricRegistry is the registry instruments live on.
	MetricRegistry = metric.Registry
	// MetricSnapshot is one cumulative point-in-time view of a registry.
	MetricSnapshot = metric.Snapshot
	// MetricsFlusher samples a registry on a cadence into a sink.
	MetricsFlusher = metric.Flusher
	// MetricSink consumes flushed snapshots.
	MetricSink = metric.Sink
	// ServeInstruments bundles the lookup service's telemetry handles.
	ServeInstruments = serve.Instruments
)

// NewMetricRegistry returns a telemetry registry on the real clock.
func NewMetricRegistry() *MetricRegistry { return metric.New() }

// NewMetricsFlusher returns an unstarted flusher sampling reg into sink
// every interval. Start launches it; Stop performs one final flush.
func NewMetricsFlusher(reg *MetricRegistry, sink MetricSink, interval time.Duration) *MetricsFlusher {
	return metric.NewFlusher(reg, sink, interval)
}

// NewJSONLinesSink writes one JSON snapshot object per flush line to w.
func NewJSONLinesSink(w io.Writer) MetricSink { return metric.NewJSONLines(w) }

// NewStatsdSink emits statsd line protocol to w, prefixing every metric
// name (empty prefix allowed). Counters become deltas, timers become
// quantile |ms lines.
func NewStatsdSink(w io.Writer, prefix string) MetricSink { return metric.NewStatsd(w, prefix) }

// NewServeInstruments registers the lookup service's request counters,
// latency histograms, and store gauge on reg.
func NewServeInstruments(reg *MetricRegistry) *ServeInstruments { return serve.NewInstruments(reg) }

// ServeHandlerInstrumented is ServeHandler plus telemetry: per-endpoint
// counters and latency histograms on ins, a GET /v1/metrics snapshot
// endpoint, and a metrics section in /v1/stats.
func ServeHandlerInstrumented(s *LookupStore, ins *ServeInstruments) http.Handler {
	return serve.NewInstrumentedHandler(s, ins)
}
