package adwise_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func TestPublicQuickstartPath(t *testing.T) {
	g, err := adwise.Generate(adwise.GraphBrain, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := adwise.NewADWISE(8, adwise.WithInitialWindow(32), adwise.WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(adwise.StreamGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("assigned %d of %d edges", a.Len(), g.E())
	}
	s := adwise.Summarize(a)
	if s.ReplicationDegree < 1 {
		t.Errorf("RF = %v < 1", s.ReplicationDegree)
	}
	if got := p.Stats(); got.Assignments != int64(g.E()) {
		t.Errorf("stats assignments = %d", got.Assignments)
	}
}

func TestPublicBaselines(t *testing.T) {
	g, err := adwise.Generate(adwise.GraphOrkut, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range adwise.Baselines() {
		p, err := adwise.NewBaseline(name, adwise.BaselineConfig{K: 8, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := adwise.RunBaseline(adwise.StreamGraph(g), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Len() != g.E() {
			t.Errorf("%s: assigned %d of %d", name, a.Len(), g.E())
		}
	}
	if _, err := adwise.NewBaseline("bogus", adwise.BaselineConfig{K: 8}); err == nil {
		t.Error("unknown baseline accepted")
	}
	if _, err := adwise.NewHDRF(adwise.BaselineConfig{K: 8}, 2.0); err != nil {
		t.Errorf("NewHDRF: %v", err)
	}
}

func TestPublicSpotlight(t *testing.T) {
	g, err := adwise.Generate(adwise.GraphBrain, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := adwise.SpotlightConfig{K: 8, Z: 4, Spread: 2}
	a, err := adwise.RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (adwise.Runner, error) {
		p, err := adwise.NewBaseline(adwise.BaselineGreedy, adwise.BaselineConfig{K: 8, Allowed: allowed})
		if err != nil {
			return nil, err
		}
		return adwise.AsRunner(p), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("spotlight assigned %d of %d", a.Len(), g.E())
	}
}

func TestPublicNE(t *testing.T) {
	g, err := adwise.Community(10, 8, 0.9, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adwise.PartitionNE(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("NE assigned %d of %d", a.Len(), g.E())
	}
	hist := adwise.ReplicaHistogram(a)
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != adwise.Summarize(a).Vertices {
		t.Error("histogram does not cover all vertices")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g, err := adwise.ErdosRenyi(50, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := adwise.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.E() != g.E() || back.V() != g.V() {
		t.Errorf("round trip: V=%d E=%d, want V=%d E=%d", back.V(), back.E(), g.V(), g.E())
	}
	st := adwise.Stats(g, 1)
	if st.V != 50 || st.E != 100 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPublicStreamFile(t *testing.T) {
	g, err := adwise.Path(20)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	fs, err := adwise.StreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p, err := adwise.NewADWISE(4, adwise.WithLatencyPreference(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("file stream: assigned %d of %d", a.Len(), g.E())
	}
}

func TestPublicEngineWorkloads(t *testing.T) {
	g, err := adwise.Generate(adwise.GraphWeb, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := adwise.NewBaseline(adwise.BaselineHDRF, adwise.BaselineConfig{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := adwise.RunBaseline(adwise.StreamGraph(g), p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adwise.NewEngine(a, g.NumV, adwise.DefaultCostModel(), 2)
	if err != nil {
		t.Fatal(err)
	}

	ranks, rep, err := eng.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supersteps != 10 {
		t.Errorf("supersteps = %d", rep.Supersteps)
	}
	ref := adwise.PageRankReference(g, 10, 0.85)
	for v := range ranks {
		if d := ranks[v] - ref[v]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("rank[%d] deviates: %v vs %v", v, ranks[v], ref[v])
		}
	}

	colors, _, err := eng.Coloring(100)
	if err != nil {
		t.Fatal(err)
	}
	if !adwise.ValidColoring(g, colors) {
		t.Error("improper coloring")
	}
}

func TestPublicShuffleInterleave(t *testing.T) {
	g, err := adwise.Cycle(100)
	if err != nil {
		t.Fatal(err)
	}
	sh := adwise.Shuffle(g.Edges, 3)
	il := adwise.Interleave(g.Edges, 10)
	if len(sh) != g.E() || len(il) != g.E() {
		t.Fatal("order transforms changed edge count")
	}
	seen := make(map[adwise.Edge]int)
	for _, e := range il {
		seen[e]++
	}
	for _, e := range g.Edges {
		if seen[e] != 1 {
			t.Fatalf("interleave lost edge %v", e)
		}
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	exps := adwise.Experiments()
	if len(exps) < 17 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	want := []string{"table2", "fig1", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e",
		"fig7f", "fig7g", "fig7h", "fig7i", "fig8"}
	for _, id := range want {
		if _, err := adwise.LookupExperiment(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if _, err := adwise.LookupExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicExperimentTable2(t *testing.T) {
	cfg := adwise.DefaultExperimentConfig()
	cfg.Scale = 0.02
	e, err := adwise.LookupExperiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table II has %d rows, want 3", len(tab.Rows))
	}
	if tab.String() == "" {
		t.Error("empty rendering")
	}
}

func TestPublicServingPath(t *testing.T) {
	g, err := adwise.Generate(adwise.GraphBrain, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := adwise.NewStrategy("hdrf", adwise.StrategySpec{K: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(adwise.StreamGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := adwise.BuildIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	store := adwise.NewLookupStore(idx)
	srv := httptest.NewServer(adwise.ServeHandler(store))
	defer srv.Close()

	e := a.Edges[0]
	resp, err := srv.Client().Get(fmt.Sprintf("%s/v1/edge?src=%d&dst=%d", srv.URL, e.Src, e.Dst))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edge lookup status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Partition int32 `json:"partition"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if p, ok := idx.Partition(e.Src, e.Dst); !ok || p != body.Partition {
		t.Errorf("served partition %d, index says (%d,%v)", body.Partition, p, ok)
	}
	if rc := idx.ReplicaCount(e.Src); rc < 1 {
		t.Errorf("ReplicaCount(%d) = %d, want >= 1", e.Src, rc)
	}

	// Hot-swap through the facade types keeps the handler serving.
	idx2, err := adwise.BuildIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	if old := store.Swap(idx2); old != idx {
		t.Error("Swap did not return the previous index")
	}
	if store.Generation() != 2 {
		t.Errorf("generation = %d, want 2", store.Generation())
	}
}
