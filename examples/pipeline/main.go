// Pipeline: the full production path — write a graph to disk, stream it
// back without materialising it, partition, then run three workloads on
// the vertex-cut engine and validate the results.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "adwise-pipeline")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.txt")

	// 1. Generate a Web-like graph (dense site clusters) and persist it.
	g, err := adwise.Generate(adwise.GraphWeb, 0.05, 7)
	if err != nil {
		return err
	}
	if err := adwise.SaveGraph(path, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", path, g.V(), g.E())

	// 2. Stream the file through ADWISE — single pass, no full load.
	fs, err := adwise.StreamFile(path)
	if err != nil {
		return err
	}
	defer fs.Close()
	p, err := adwise.NewADWISE(16, adwise.WithLatencyPreference(time.Second))
	if err != nil {
		return err
	}
	// Run fails loudly if the file stream errors mid-pass (malformed line,
	// I/O failure): stream exhaustion with a pending error is never a
	// short success, so no separate fs.Err() check is needed.
	a, err := p.Run(fs)
	if err != nil {
		return err
	}
	s := adwise.Summarize(a)
	fmt.Printf("partitioned: RF=%.3f imbalance=%.3f (window peaked at %d)\n",
		s.ReplicationDegree, s.Imbalance, p.Stats().PeakWindow)

	// 3. Process: PageRank, validated against the sequential reference.
	eng, err := adwise.NewEngine(a, g.NumV, adwise.DefaultCostModel(), 0)
	if err != nil {
		return err
	}
	ranks, rep, err := eng.PageRank(50, 0.85)
	if err != nil {
		return err
	}
	ref := adwise.PageRankReference(g, 50, 0.85)
	maxDiff := 0.0
	for v := range ranks {
		if d := ranks[v] - ref[v]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("pagerank: 50 iterations, %d messages, max deviation from sequential reference: %.2e\n",
		rep.Messages, maxDiff)

	// 4. Coloring, checked for propriety.
	colors, crep, err := eng.Coloring(200)
	if err != nil {
		return err
	}
	maxColor := int32(0)
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	fmt.Printf("coloring: %d colors in %d supersteps, proper=%v\n",
		maxColor+1, crep.Supersteps, adwise.ValidColoring(g, colors))

	// 5. Clique search with the paper's probabilistic flooding.
	res, qrep, err := eng.CliqueSearch(adwise.CliqueSearchConfig{
		Size:               4,
		Seeds:              []adwise.VertexID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		ForwardProbability: 0.5,
		Seed:               7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cliques: found %d size-4 cliques via %d messages (simulated latency %v)\n",
		res.Found, qrep.Messages, qrep.SimulatedLatency.Round(time.Millisecond))
	return nil
}
