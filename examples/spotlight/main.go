// Spotlight: parallel graph loading with restricted spread (§III-D of the
// paper). Eight partitioner instances each load one chunk of the stream;
// sweeping the spread from k (classic shared loading) down to k/z
// (disjoint spotlight groups) shows the replication-degree reduction.
//
//	go run ./examples/spotlight
package main

import (
	"fmt"
	"log"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	g, err := adwise.Generate(adwise.GraphBrain, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	const (
		k = 32
		z = 8
	)
	fmt.Printf("graph: %d vertices, %d edges; k=%d partitions, z=%d parallel loaders\n", g.V(), g.E(), k, z)
	fmt.Printf("%-8s %-10s %s\n", "spread", "strategy", "replication degree")

	for _, spread := range []int{32, 16, 8, 4} {
		for _, strategy := range []string{"hdrf", "adwise"} {
			cfg := adwise.SpotlightConfig{K: k, Z: z, Spread: spread}
			// One registry call covers both strategies: HDRF ignores the
			// window knob, ADWISE runs a fixed 64-edge window.
			a, err := adwise.RunStrategySpotlight(strategy, g.Edges, cfg,
				adwise.StrategySpec{K: k, Window: 64})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-10s %.3f\n", spread, strategy, adwise.Summarize(a).ReplicationDegree)
		}
	}
	fmt.Println("\nsmaller spread preserves stream locality: each loader fills its own partition group")
}
