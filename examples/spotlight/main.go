// Spotlight: parallel graph loading with restricted spread (§III-D of the
// paper). Eight partitioner instances each load one chunk of the stream;
// sweeping the spread from k (classic shared loading) down to k/z
// (disjoint spotlight groups) shows the replication-degree reduction.
//
//	go run ./examples/spotlight
package main

import (
	"fmt"
	"log"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	g, err := adwise.Generate(adwise.GraphBrain, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	const (
		k = 32
		z = 8
	)
	fmt.Printf("graph: %d vertices, %d edges; k=%d partitions, z=%d parallel loaders\n", g.V(), g.E(), k, z)
	fmt.Printf("%-8s %-10s %s\n", "spread", "strategy", "replication degree")

	for _, spread := range []int{32, 16, 8, 4} {
		for _, strategy := range []string{"hdrf", "adwise"} {
			cfg := adwise.SpotlightConfig{K: k, Z: z, Spread: spread}
			a, err := adwise.RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (adwise.Runner, error) {
				if strategy == "hdrf" {
					p, err := adwise.NewBaseline(adwise.BaselineHDRF,
						adwise.BaselineConfig{K: k, Allowed: allowed, Seed: uint64(i)})
					if err != nil {
						return nil, err
					}
					return adwise.AsRunner(p), nil
				}
				return adwise.NewADWISE(k,
					adwise.WithAllowedPartitions(allowed),
					adwise.WithInitialWindow(64),
					adwise.WithFixedWindow())
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-10s %.3f\n", spread, strategy, adwise.Summarize(a).ReplicationDegree)
		}
	}
	fmt.Println("\nsmaller spread preserves stream locality: each loader fills its own partition group")
}
