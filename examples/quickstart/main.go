// Quickstart: generate a graph, partition it with ADWISE, inspect the
// partitioning quality.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	// A Brain-like evaluation graph at 5% of the default size: dense with
	// a moderate clustering coefficient — the regime where windowing
	// pays off most.
	g, err := adwise.Generate(adwise.GraphBrain, 0.05, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.V(), g.E())
	// Mildly interleave the generator's emission order, as a real scan
	// would be; see EXPERIMENTS.md on stream orders.
	edges := adwise.Interleave(g.Edges, 64)

	// ADWISE with a latency preference: the window grows as long as the
	// run stays on track to finish within L.
	p, err := adwise.NewADWISE(16, adwise.WithLatencyPreference(500*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	assignment, err := p.Run(adwise.StreamEdges(edges))
	if err != nil {
		log.Fatal(err)
	}

	s := adwise.Summarize(assignment)
	st := p.Stats()
	fmt.Printf("replication degree: %.3f (lower is better; 1.0 = no replication)\n", s.ReplicationDegree)
	fmt.Printf("imbalance: %.3f   cut vertices: %d/%d\n", s.Imbalance, s.CutVertices, s.Vertices)
	fmt.Printf("partitioning latency: %v   peak window: %d   score computations: %d\n",
		st.PartitioningLatency.Round(time.Millisecond), st.PeakWindow, st.ScoreComputations)

	// Compare against the strongest single-edge baseline, HDRF.
	h, err := adwise.NewBaseline(adwise.BaselineHDRF, adwise.BaselineConfig{K: 16})
	if err != nil {
		log.Fatal(err)
	}
	ha, err := adwise.RunBaseline(adwise.StreamEdges(edges), h)
	if err != nil {
		log.Fatal(err)
	}
	hs := adwise.Summarize(ha)
	fmt.Printf("HDRF replication degree for comparison: %.3f\n", hs.ReplicationDegree)
}
