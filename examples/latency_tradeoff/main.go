// Latency trade-off: the paper's headline experiment in miniature. Sweep
// the ADWISE latency preference L, run PageRank on each partitioning, and
// watch the total graph latency (partitioning + processing) dip at the
// sweet spot and rise again when partitioning over-invests.
//
//	go run ./examples/latency_tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	g, err := adwise.Generate(adwise.GraphBrain, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Dilute the generator's perfectly local emission order a little, as a
	// real scan would be.
	edges := adwise.Interleave(g.Edges, 64)
	fmt.Printf("graph: %d vertices, %d edges, k=32, PageRank x300\n", g.V(), g.E())
	fmt.Printf("%-12s %10s %8s %12s %12s\n", "strategy", "part.lat", "RF", "processing", "TOTAL")

	run := func(name string, a *adwise.Assignment, partLat time.Duration) {
		eng, err := adwise.NewEngine(a, g.NumV, adwise.BenchCostModel(), 0)
		if err != nil {
			log.Fatal(err)
		}
		_, rep, err := eng.PageRank(300, 0.85)
		if err != nil {
			log.Fatal(err)
		}
		total := partLat + rep.SimulatedLatency
		fmt.Printf("%-12s %10v %8.3f %12v %12v\n", name,
			partLat.Round(time.Millisecond), adwise.Summarize(a).ReplicationDegree,
			rep.SimulatedLatency.Round(time.Millisecond), total.Round(time.Millisecond))
	}

	// Baseline: HDRF, the best single-edge streaming partitioner.
	h, err := adwise.NewBaseline(adwise.BaselineHDRF, adwise.BaselineConfig{K: 32})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ha, err := adwise.RunBaseline(adwise.StreamEdges(edges), h)
	if err != nil {
		log.Fatal(err)
	}
	hdrfLat := time.Since(start)
	run("hdrf", ha, hdrfLat)

	// ADWISE at increasing latency preferences (multiples of HDRF's
	// latency, per the paper's guidance of ~3x).
	for _, mult := range []float64{3, 10, 30, 100} {
		l := time.Duration(float64(hdrfLat) * mult)
		p, err := adwise.NewADWISE(32, adwise.WithLatencyPreference(l))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		a, err := p.Run(adwise.StreamEdges(edges))
		if err != nil {
			log.Fatal(err)
		}
		run(fmt.Sprintf("adwise %3.0fx", mult), a, time.Since(start))
	}
	fmt.Println("\nthe sweet spot: more partitioning latency buys quality until the investment stops paying off")
}
