// Compare partitioners: the Figure 1 landscape in code — every
// implemented strategy on the same stream, from the fastest hashing
// baselines through the stateful streamers to window-based ADWISE and the
// all-edge NE heuristic.
//
//	go run ./examples/compare_partitioners
package main

import (
	"fmt"
	"log"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	g, err := adwise.Generate(adwise.GraphWeb, 0.08, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Shuffle: give no strategy free locality from the generator order.
	edges := adwise.Shuffle(g.Edges, 1)
	const k = 32
	fmt.Printf("graph: %d vertices, %d edges (web-like, shuffled), k=%d\n\n", g.V(), g.E(), k)
	fmt.Printf("%-14s %-12s %10s %8s %10s\n", "strategy", "class", "latency", "RF", "imbalance")

	report := func(name, class string, a *adwise.Assignment, lat time.Duration) {
		s := adwise.Summarize(a)
		fmt.Printf("%-14s %-12s %10v %8.3f %10.3f\n",
			name, class, lat.Round(time.Millisecond), s.ReplicationDegree, s.Imbalance)
	}

	for _, b := range adwise.Baselines() {
		p, err := adwise.NewBaseline(b, adwise.BaselineConfig{K: k, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		a, err := adwise.RunBaseline(adwise.StreamEdges(edges), p)
		if err != nil {
			log.Fatal(err)
		}
		report(string(b), "single-edge", a, time.Since(start))
	}

	for _, w := range []int{64, 512} {
		p, err := adwise.NewADWISE(k, adwise.WithInitialWindow(w), adwise.WithFixedWindow())
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		a, err := p.Run(adwise.StreamEdges(edges))
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("adwise w=%d", w), "window", a, time.Since(start))
	}

	start := time.Now()
	a, err := adwise.PartitionNE(g, k, 9)
	if err != nil {
		log.Fatal(err)
	}
	report("ne", "all-edge", a, time.Since(start))

	fmt.Println("\nlatency buys quality: single-edge < window < all-edge on replication degree")
}
