// Cost model: how the simulated cluster turns partitioning quality into
// processing latency. Runs the same PageRank workload over two
// partitionings (hash vs ADWISE) across cluster sizes, showing that the
// replication-degree gap translates into a communication-latency gap at
// every machine count — the causal chain the paper's evaluation rests on.
//
//	go run ./examples/cost_model
package main

import (
	"fmt"
	"log"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	g, err := adwise.Generate(adwise.GraphWeb, 0.08, 5)
	if err != nil {
		log.Fatal(err)
	}
	edges := adwise.Shuffle(g.Edges, 1)
	const k = 32

	partitionings := make(map[string]*adwise.Assignment, 2)
	h, err := adwise.NewBaseline(adwise.BaselineHash, adwise.BaselineConfig{K: k})
	if err != nil {
		log.Fatal(err)
	}
	ha, err := adwise.RunBaseline(adwise.StreamEdges(edges), h)
	if err != nil {
		log.Fatal(err)
	}
	partitionings["hash"] = ha
	p, err := adwise.NewADWISE(k, adwise.WithInitialWindow(256), adwise.WithFixedWindow())
	if err != nil {
		log.Fatal(err)
	}
	a, err := p.Run(adwise.StreamEdges(edges))
	if err != nil {
		log.Fatal(err)
	}
	partitionings["adwise"] = a

	fmt.Printf("graph: %d vertices, %d edges; k=%d; PageRank x100\n\n", g.V(), g.E(), k)
	fmt.Printf("%-8s %8s | %12s %12s %12s\n", "strategy", "RF", "machines=4", "machines=8", "machines=16")

	for _, name := range []string{"hash", "adwise"} {
		asn := partitionings[name]
		fmt.Printf("%-8s %8.3f |", name, adwise.Summarize(asn).ReplicationDegree)
		for _, machines := range []int{4, 8, 16} {
			cost := adwise.BenchCostModel()
			cost.Machines = machines
			eng, err := adwise.NewEngine(asn, g.NumV, cost, 0)
			if err != nil {
				log.Fatal(err)
			}
			_, rep, err := eng.PageRank(100, 0.85)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12v", rep.SimulatedLatency.Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("\nfewer replicas → fewer replica-sync messages → lower simulated processing latency,")
	fmt.Println("at every cluster size; more machines spread the same message volume")
}
