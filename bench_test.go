package adwise_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark executes the corresponding experiment from the harness at
// a laptop-friendly scale and reports the headline quality metric
// alongside the timing, so `go test -bench=.` regenerates the whole
// evaluation. Use cmd/adwise-bench to print the full tables and to run at
// larger scales.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

// benchConfig returns the experiment configuration used by the root
// benchmarks. Scale can be raised via the ADWISE_BENCH_SCALE environment
// variable (e.g. ADWISE_BENCH_SCALE=1.0 for the full-size stand-ins).
func benchConfig(b *testing.B) adwise.ExperimentConfig {
	b.Helper()
	cfg := adwise.DefaultExperimentConfig()
	cfg.Scale = 0.1
	if s := os.Getenv("ADWISE_BENCH_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatalf("bad ADWISE_BENCH_SCALE %q: %v", s, err)
		}
		cfg.Scale = v
	}
	return cfg
}

// runExperiment benchmarks one harness experiment and reports the mean
// replication degree of its last row's RF column when present.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig(b)
	exp, err := adwise.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	var table *adwise.ExperimentTable
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		table = t
	}
	b.StopTimer()
	if table != nil && b.N > 0 {
		if rf, ok := lastRF(table); ok {
			b.ReportMetric(rf, "RF")
		}
	}
}

// lastRF extracts the RF cell of the last table row, if the table has an
// RF column.
func lastRF(t *adwise.ExperimentTable) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == "RF" {
			col = i
		}
	}
	if col < 0 || len(t.Rows) == 0 {
		return 0, false
	}
	last := t.Rows[len(t.Rows)-1]
	if col >= len(last) {
		return 0, false
	}
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// BenchmarkTableII regenerates Table II (graph inventory).
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure1 regenerates Figure 1 (latency-vs-quality landscape).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure7a regenerates Figure 7a (PageRank on Brain).
func BenchmarkFigure7a(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFigure7b regenerates Figure 7b (PageRank on Web).
func BenchmarkFigure7b(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFigure7c regenerates Figure 7c (PageRank on Orkut).
func BenchmarkFigure7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkFigure7d regenerates Figure 7d (subgraph isomorphism on Brain).
func BenchmarkFigure7d(b *testing.B) { runExperiment(b, "fig7d") }

// BenchmarkFigure7e regenerates Figure 7e (graph coloring on Web).
func BenchmarkFigure7e(b *testing.B) { runExperiment(b, "fig7e") }

// BenchmarkFigure7f regenerates Figure 7f (clique search on Orkut).
func BenchmarkFigure7f(b *testing.B) { runExperiment(b, "fig7f") }

// BenchmarkFigure7g regenerates Figure 7g (replication degree on Brain).
func BenchmarkFigure7g(b *testing.B) { runExperiment(b, "fig7g") }

// BenchmarkFigure7h regenerates Figure 7h (replication degree on Web).
func BenchmarkFigure7h(b *testing.B) { runExperiment(b, "fig7h") }

// BenchmarkFigure7i regenerates Figure 7i (replication degree on Orkut).
func BenchmarkFigure7i(b *testing.B) { runExperiment(b, "fig7i") }

// BenchmarkFigure8 regenerates Figure 8 (spotlight spread sweep).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkAblationLazy regenerates the lazy-vs-eager traversal ablation.
func BenchmarkAblationLazy(b *testing.B) { runExperiment(b, "ablation-lazy") }

// BenchmarkAblationLambda regenerates the adaptive-λ ablation.
func BenchmarkAblationLambda(b *testing.B) { runExperiment(b, "ablation-lambda") }

// BenchmarkAblationClustering regenerates the clustering-score ablation.
func BenchmarkAblationClustering(b *testing.B) { runExperiment(b, "ablation-clustering") }

// BenchmarkAblationWindow regenerates the fixed-window sweep ablation.
func BenchmarkAblationWindow(b *testing.B) { runExperiment(b, "ablation-window") }

// BenchmarkAblationOrder regenerates the stream-order ablation.
func BenchmarkAblationOrder(b *testing.B) { runExperiment(b, "ablation-order") }

// Micro-benchmarks for the partitioning hot paths, independent of the
// experiment harness.

func benchPartitioner(b *testing.B, build func() (adwise.Runner, error)) {
	b.Helper()
	g, err := adwise.Generate(adwise.GraphBrain, 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	edges := adwise.Interleave(g.Edges, 64)
	b.ReportAllocs()
	b.SetBytes(int64(len(edges) * 8))
	b.ResetTimer()
	var rf float64
	for i := 0; i < b.N; i++ {
		r, err := build()
		if err != nil {
			b.Fatal(err)
		}
		a, err := r.Run(adwise.StreamEdges(edges))
		if err != nil {
			b.Fatal(err)
		}
		rf = adwise.Summarize(a).ReplicationDegree
	}
	b.StopTimer()
	b.ReportMetric(rf, "RF")
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkPartitionHDRF measures the strongest single-edge baseline.
func BenchmarkPartitionHDRF(b *testing.B) {
	benchPartitioner(b, func() (adwise.Runner, error) {
		p, err := adwise.NewBaseline(adwise.BaselineHDRF, adwise.BaselineConfig{K: 32})
		if err != nil {
			return nil, err
		}
		return adwise.AsRunner(p), nil
	})
}

// BenchmarkPartitionDBH measures the hashing baseline.
func BenchmarkPartitionDBH(b *testing.B) {
	benchPartitioner(b, func() (adwise.Runner, error) {
		p, err := adwise.NewBaseline(adwise.BaselineDBH, adwise.BaselineConfig{K: 32})
		if err != nil {
			return nil, err
		}
		return adwise.AsRunner(p), nil
	})
}

// BenchmarkPartitionADWISE measures ADWISE across fixed window sizes.
func BenchmarkPartitionADWISE(b *testing.B) {
	for _, w := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchPartitioner(b, func() (adwise.Runner, error) {
				return adwise.NewADWISE(32,
					adwise.WithInitialWindow(w),
					adwise.WithFixedWindow())
			})
		})
	}
}

// BenchmarkEnginePageRank measures the engine's real parallel execution
// throughput (edge traversals per second across all partitions).
func BenchmarkEnginePageRank(b *testing.B) {
	g, err := adwise.Generate(adwise.GraphBrain, 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	p, err := adwise.NewBaseline(adwise.BaselineHDRF, adwise.BaselineConfig{K: 32})
	if err != nil {
		b.Fatal(err)
	}
	a, err := adwise.RunBaseline(adwise.StreamEdges(adwise.Interleave(g.Edges, 64)), p)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := adwise.NewEngine(a, g.NumV, adwise.BenchCostModel(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.PageRank(10, 0.85); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(10*g.E())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
