package adwise

import (
	"io"

	"github.com/adwise-go/adwise/internal/bench"
)

// Experiment harness re-exports: every table and figure of the paper's
// evaluation can be regenerated programmatically or via cmd/adwise-bench.
type (
	// ExperimentConfig carries the shared experiment parameters (scale,
	// seeds, k/z/spread, workload sizes, cost model).
	ExperimentConfig = bench.Config
	// ExperimentTable is a printable experiment result.
	ExperimentTable = bench.Table
	// Experiment is one runnable table/figure reproduction.
	Experiment = bench.Experiment
)

// DefaultExperimentConfig returns the laptop-scale defaults (k=32, z=8,
// spread=4, scale 0.1).
func DefaultExperimentConfig() ExperimentConfig { return bench.DefaultConfig() }

// Experiments lists every reproducible table/figure in presentation
// order: table2, fig1, fig7a..fig7i, fig8, and the design ablations.
func Experiments() []Experiment { return bench.Experiments() }

// LookupExperiment finds an experiment by ID (e.g. "fig7a").
func LookupExperiment(id string) (Experiment, error) { return bench.Lookup(id) }

// RunAllExperiments executes the full suite, printing each table to w.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	return bench.RunAll(cfg, w)
}

// RunAllExperimentsJSON executes the full suite and writes one JSON array
// of tables to w — the machine-readable form behind adwise-bench -json.
func RunAllExperimentsJSON(cfg ExperimentConfig, w io.Writer) error {
	return bench.RunAllJSON(cfg, w)
}

// CheckScoringRegression compares a freshly measured Scoring table against
// the committed benchmark trajectory (BENCH_scoring.json): per-cell
// speedups may not drop more than tol (0.2 = 20%) below the last
// "ci-baseline" run. Behind adwise-bench -regress-baseline.
func CheckScoringRegression(current *ExperimentTable, baselinePath string, tol float64) error {
	return bench.CheckScoringRegression(current, baselinePath, tol)
}
