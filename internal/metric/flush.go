package metric

import (
	"sync"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
)

// Self-reported flusher health metrics, registered on the flushed
// registry so they ride along in every snapshot.
const (
	// DroppedMetric counts snapshots dropped because the sink could not
	// keep up (bounded queue full) — the sink-failure contract: producers
	// and the flush cadence are never blocked by a slow sink.
	DroppedMetric = "metric.dropped"
	// SinkErrorsMetric counts sink Emit calls that returned an error; the
	// snapshot is lost but the flusher carries on.
	SinkErrorsMetric = "metric.sink_errors"
	// FlushesMetric counts snapshots successfully handed to the sink
	// goroutine (not necessarily yet written).
	FlushesMetric = "metric.flushes"
)

// Sink receives registry snapshots. Emit is called from a single
// dedicated goroutine, so implementations need no internal locking; a
// slow or failing Emit delays only that goroutine — the flush cadence
// drops snapshots instead of waiting (see DroppedMetric).
type Sink interface {
	Emit(s *Snapshot) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(s *Snapshot) error

// Emit implements Sink.
func (f SinkFunc) Emit(s *Snapshot) error { return f(s) }

// Flusher snapshots a registry on a fixed cadence and hands the snapshots
// to a sink asynchronously. The pipeline is
//
//	producers → (atomics) → Registry … ticker → Snapshot → bounded queue → sink goroutine → Sink.Emit
//
// The queue is the isolation boundary: when the sink wedges, the queue
// fills, subsequent snapshots are dropped-and-counted, and neither the
// producers nor the ticker loop ever block.
type Flusher struct {
	reg      *Registry
	sink     Sink
	interval time.Duration
	grace    time.Duration

	dropped  *Counter
	sinkErrs *Counter
	flushes  *Counter

	queue    chan *Snapshot
	stopc    chan struct{}
	loopDone chan struct{}
	emitDone chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
}

// FlusherOption configures a Flusher.
type FlusherOption func(*Flusher)

// WithQueueDepth sets how many pending snapshots may await a slow sink
// before drops begin (default 4).
func WithQueueDepth(n int) FlusherOption {
	return func(f *Flusher) {
		if n > 0 {
			f.queue = make(chan *Snapshot, n)
		}
	}
}

// WithStopGrace bounds how long Stop waits (in real time) for a wedged
// sink before abandoning it (default 1s). A healthy sink finishes the
// final flush well inside any grace; a sink blocked forever must not
// wedge process shutdown.
func WithStopGrace(d time.Duration) FlusherOption {
	return func(f *Flusher) {
		if d > 0 {
			f.grace = d
		}
	}
}

// NewFlusher returns an unstarted flusher for reg with the given sink and
// cadence. interval must be positive. The flusher's health counters
// (metric.dropped, metric.sink_errors, metric.flushes) are registered on
// reg immediately, so they appear in snapshots even before Start.
func NewFlusher(reg *Registry, sink Sink, interval time.Duration, opts ...FlusherOption) *Flusher {
	if interval <= 0 {
		panic("metric: non-positive flush interval")
	}
	f := &Flusher{
		reg:      reg,
		sink:     sink,
		interval: interval,
		grace:    time.Second,
		dropped:  reg.Counter(DroppedMetric),
		sinkErrs: reg.Counter(SinkErrorsMetric),
		flushes:  reg.Counter(FlushesMetric),
		queue:    make(chan *Snapshot, 4),
		stopc:    make(chan struct{}),
		loopDone: make(chan struct{}),
		emitDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Start launches the ticker loop and the sink goroutine. The cadence
// runs on the registry clock when it supports tickers (clock.Real does;
// clock.Fake fires from Advance, making tests deterministic); a
// plain Clock without ticker support falls back to a wall-clock ticker
// for cadence while timestamps stay on the registry clock.
func (f *Flusher) Start() {
	f.startOnce.Do(func() {
		var tclk clock.TickerClock
		if tc, ok := f.reg.Clock().(clock.TickerClock); ok {
			tclk = tc
		} else {
			tclk = clock.Real{}
		}
		ticker := tclk.NewTicker(f.interval)
		go f.emitLoop()
		go func() {
			defer close(f.loopDone)
			defer ticker.Stop()
			for {
				select {
				case <-f.stopc:
					return
				case <-ticker.C():
					f.enqueue()
				}
			}
		}()
	})
}

// enqueue snapshots the registry and offers it to the sink goroutine
// without ever blocking: a full queue (slow sink) drops the snapshot and
// counts it.
func (f *Flusher) enqueue() {
	snap := f.reg.Snapshot()
	select {
	case f.queue <- snap:
		f.flushes.Inc(1)
	default:
		f.dropped.Inc(1)
	}
}

// emitLoop is the single sink goroutine: it drains the queue into
// Sink.Emit until the queue closes.
func (f *Flusher) emitLoop() {
	defer close(f.emitDone)
	for snap := range f.queue {
		if err := f.sink.Emit(snap); err != nil {
			f.sinkErrs.Inc(1)
		}
	}
}

// Stop halts the cadence, attempts one final flush (so short-lived CLI
// runs always emit at least the end state), and waits — bounded by the
// stop grace — for the sink goroutine to drain. A wedged sink is
// abandoned, never waited on forever. Stop is idempotent; a never-started
// flusher stops cleanly.
func (f *Flusher) Stop() {
	f.stopOnce.Do(func() {
		close(f.stopc)
		f.startOnce.Do(func() {
			// Never started: no loops to wind down, but run the final-flush
			// path below against a closed queue for uniformity.
			close(f.loopDone)
			go f.emitLoop()
		})
		<-f.loopDone
		f.enqueue()
		close(f.queue)
		select {
		case <-f.emitDone:
		case <-time.After(f.grace): //adwise:allow clockguard Stop's grace period is a real-time bound on sink drain; a fake clock must not be able to wedge shutdown.
		}
	})
}
