package metric

import "time"

// Snapshot is one point-in-time view of a registry, the unit handed to
// sinks and served by the /v1/metrics endpoint. Counter and timer values
// are cumulative since registry creation; sinks that speak a delta
// protocol (statsd) diff consecutive snapshots themselves.
type Snapshot struct {
	// At is the snapshot time on the registry clock.
	At time.Time `json:"at"`
	// UptimeSeconds is the registry age at snapshot time.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Counters, Gauges, and Timers are sorted by name.
	Counters []CounterPoint `json:"counters,omitempty"`
	Gauges   []GaugePoint   `json:"gauges,omitempty"`
	Timers   []TimerPoint   `json:"timers,omitempty"`
}

// CounterPoint is one counter reading.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge reading.
type GaugePoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TimerPoint is one timer's aggregated distribution: observation count,
// sum, max, and the serving-latency quantiles, all in nanoseconds.
type TimerPoint struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	SumNs int64  `json:"sum_ns"`
	MaxNs int64  `json:"max_ns"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// Mean returns the mean observed duration.
func (tp TimerPoint) Mean() time.Duration {
	if tp.Count == 0 {
		return 0
	}
	return time.Duration(tp.SumNs / tp.Count)
}

// Counter returns the named counter point, or false.
func (s *Snapshot) Counter(name string) (CounterPoint, bool) {
	for _, p := range s.Counters {
		if p.Name == name {
			return p, true
		}
	}
	return CounterPoint{}, false
}

// Gauge returns the named gauge point, or false.
func (s *Snapshot) Gauge(name string) (GaugePoint, bool) {
	for _, p := range s.Gauges {
		if p.Name == name {
			return p, true
		}
	}
	return GaugePoint{}, false
}

// Timer returns the named timer point, or false.
func (s *Snapshot) Timer(name string) (TimerPoint, bool) {
	for _, p := range s.Timers {
		if p.Name == name {
			return p, true
		}
	}
	return TimerPoint{}, false
}

// Snapshot captures the current value of every registered metric, sorted
// by name. It takes the registration lock (against concurrent metric
// creation, not against producers) and allocates the point slices — it is
// a flush/serving-path operation, never a hot-path one. Values race
// benignly with concurrent producers: each point is an atomic read, the
// set is not a consistent cut.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	snap := &Snapshot{
		At:            now,
		UptimeSeconds: now.Sub(r.started).Seconds(),
	}
	for _, name := range sortedNames(r.counters) {
		snap.Counters = append(snap.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedNames(r.gauges) {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedNames(r.timers) {
		t := r.timers[name]
		snap.Timers = append(snap.Timers, TimerPoint{
			Name:  name,
			Count: t.Count(),
			SumNs: int64(t.Sum()),
			MaxNs: int64(t.Max()),
			P50Ns: int64(t.Quantile(0.50)),
			P90Ns: int64(t.Quantile(0.90)),
			P99Ns: int64(t.Quantile(0.99)),
		})
	}
	return snap
}
