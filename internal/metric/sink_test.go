package metric

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testSnapshot(at time.Time, reqs int64, latP50 int64) *Snapshot {
	return &Snapshot{
		At:            at,
		UptimeSeconds: 12,
		Counters:      []CounterPoint{{Name: "serve.edge.requests", Value: reqs}},
		Gauges:        []GaugePoint{{Name: "store.generation", Value: 3}},
		Timers: []TimerPoint{{
			Name: "serve.edge.latency", Count: 10,
			SumNs: 10 * latP50, MaxNs: 2 * latP50,
			P50Ns: latP50, P90Ns: latP50, P99Ns: 2 * latP50,
		}},
	}
}

func TestJSONLinesOneObjectPerLine(t *testing.T) {
	var b strings.Builder
	sink := NewJSONLines(&b)
	if err := sink.Emit(testSnapshot(time.Unix(5, 0), 100, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(testSnapshot(time.Unix(6, 0), 150, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var snap Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if p, ok := snap.Counter("serve.edge.requests"); !ok || p.Value == 0 {
			t.Errorf("line %d missing counter point: %+v", lines, snap.Counters)
		}
		if tp, ok := snap.Timer("serve.edge.latency"); !ok || tp.P50Ns != 1_000_000 {
			t.Errorf("line %d timer point = %+v ok=%v", lines, tp, ok)
		}
	}
	if lines != 2 {
		t.Errorf("emitted %d lines, want 2 (one JSON object per flush)", lines)
	}
}

func TestStatsdCounterDeltas(t *testing.T) {
	var b strings.Builder
	sink := NewStatsd(&b, "adwise")
	if err := sink.Emit(testSnapshot(time.Unix(5, 0), 100, 2_000_000)); err != nil {
		t.Fatal(err)
	}
	first := b.String()
	if !strings.Contains(first, "adwise.serve.edge.requests:100|c\n") {
		t.Errorf("first emit missing cumulative-as-first-delta counter line:\n%s", first)
	}
	if !strings.Contains(first, "adwise.store.generation:3|g\n") {
		t.Errorf("first emit missing gauge line:\n%s", first)
	}
	if !strings.Contains(first, "adwise.serve.edge.latency.p50:2.000|ms\n") {
		t.Errorf("first emit missing p50 timer line:\n%s", first)
	}
	if !strings.Contains(first, "adwise.serve.edge.latency.p99:4.000|ms\n") {
		t.Errorf("first emit missing p99 timer line:\n%s", first)
	}

	b.Reset()
	if err := sink.Emit(testSnapshot(time.Unix(6, 0), 150, 2_000_000)); err != nil {
		t.Fatal(err)
	}
	second := b.String()
	if !strings.Contains(second, "adwise.serve.edge.requests:50|c\n") {
		t.Errorf("second emit should carry the delta 50, got:\n%s", second)
	}

	// An unchanged counter emits no line at all.
	b.Reset()
	if err := sink.Emit(testSnapshot(time.Unix(7, 0), 150, 2_000_000)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "requests") {
		t.Errorf("unchanged counter still emitted:\n%s", b.String())
	}
}

func TestStatsdNoPrefix(t *testing.T) {
	var b strings.Builder
	sink := NewStatsd(&b, "")
	if err := sink.Emit(testSnapshot(time.Unix(5, 0), 1, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "serve.edge.requests:1|c\n") {
		t.Errorf("unprefixed name mangled:\n%s", b.String())
	}
}
