package metric

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSONLines is a Sink writing one JSON object per snapshot per line —
// the machine-readable capture format behind the CLIs' -metrics-out
// flag. It is driven from the flusher's single sink goroutine and needs
// no locking of its own.
type JSONLines struct {
	enc *json.Encoder
}

// NewJSONLines returns a JSON-lines sink over w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{enc: json.NewEncoder(w)}
}

// Emit implements Sink: one compact JSON line per snapshot.
func (j *JSONLines) Emit(s *Snapshot) error { return j.enc.Encode(s) }

// Statsd is a Sink speaking the statsd line protocol ("name:value|type",
// newline-separated) to any writer — typically a UDP conn. Counters are
// emitted as deltas against the previous snapshot (the statsd counter
// contract); gauges as absolute values; timers as one "|ms" line per
// aggregate (count, p50, p90, p99, max), since the client aggregates
// histograms locally instead of shipping raw observations.
type Statsd struct {
	w      io.Writer
	prefix string
	// prev holds the counter values of the last emitted snapshot, for
	// delta computation. Only the flusher's sink goroutine touches it.
	prev map[string]int64
	buf  strings.Builder
}

// NewStatsd returns a statsd sink over w. A non-empty prefix is joined to
// every metric name with a dot.
func NewStatsd(w io.Writer, prefix string) *Statsd {
	return &Statsd{w: w, prefix: prefix, prev: make(map[string]int64)}
}

func (s *Statsd) name(parts ...string) string {
	if s.prefix != "" {
		return s.prefix + "." + strings.Join(parts, ".")
	}
	return strings.Join(parts, ".")
}

// Emit implements Sink: the whole snapshot becomes one buffered write, so
// a datagram transport sends one packet per flush.
func (s *Statsd) Emit(snap *Snapshot) error {
	s.buf.Reset()
	for _, c := range snap.Counters {
		delta := c.Value - s.prev[c.Name]
		s.prev[c.Name] = c.Value
		if delta != 0 {
			fmt.Fprintf(&s.buf, "%s:%d|c\n", s.name(c.Name), delta)
		}
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(&s.buf, "%s:%d|g\n", s.name(g.Name), g.Value)
	}
	for _, t := range snap.Timers {
		if t.Count == 0 {
			continue
		}
		fmt.Fprintf(&s.buf, "%s:%d|g\n", s.name(t.Name, "count"), t.Count)
		fmt.Fprintf(&s.buf, "%s:%.3f|ms\n", s.name(t.Name, "p50"), float64(t.P50Ns)/1e6)
		fmt.Fprintf(&s.buf, "%s:%.3f|ms\n", s.name(t.Name, "p90"), float64(t.P90Ns)/1e6)
		fmt.Fprintf(&s.buf, "%s:%.3f|ms\n", s.name(t.Name, "p99"), float64(t.P99Ns)/1e6)
		fmt.Fprintf(&s.buf, "%s:%.3f|ms\n", s.name(t.Name, "max"), float64(t.MaxNs)/1e6)
	}
	if s.buf.Len() == 0 {
		return nil
	}
	_, err := io.WriteString(s.w, s.buf.String())
	return err
}
