package metric

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
)

// The timer histogram is log-linear (HDR-style): values below 2^subBits
// get exact unit buckets; above that, each power-of-two octave is split
// into 2^subBits sub-buckets, bounding the relative quantile error at
// ±1/2^(subBits+1) (≈ ±3% here) while covering the whole non-negative
// int64 range in a fixed, allocation-free array of atomic counters.
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16 sub-buckets per octave

	// histBuckets covers values up to 2^63-1: subBuckets unit buckets plus
	// (63-subBits) octaves × subBuckets sub-buckets each... derived in
	// bucketIndex; the +1 octave absorbs the top shift.
	histBuckets = subBuckets * (64 - subBits)
)

// bucketIndex maps a non-negative value to its histogram bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	// Normalize the top subBits+1 bits to [subBuckets, 2*subBuckets).
	shift := bits.Len64(u) - (subBits + 1)
	m := u >> shift
	return (shift+1)*subBuckets + int(m-subBuckets)
}

// bucketMid returns the representative value of a bucket: its midpoint,
// so quantile reads split the rounding error symmetrically.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	shift := idx/subBuckets - 1
	m := uint64(idx%subBuckets + subBuckets)
	low := m << shift
	width := uint64(1) << shift
	return int64(low + width/2)
}

// Timer is a duration histogram with zero-alloc, lock-free observation:
// Observe clamps to ≥ 0 nanoseconds, bumps one log-linear bucket, and
// maintains count/sum/max — four uncontended-in-the-common-case atomics,
// no locks, no allocation. Quantiles are computed from the buckets at
// snapshot time with ≈ ±3% relative error.
//
// A Timer doubles as a general value histogram; the duration framing just
// matches its dominant use (request latency, pass latency).
type Timer struct {
	clk     clock.Clock
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
//
//adwise:zeroalloc
func (t *Timer) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	t.buckets[bucketIndex(v)].Add(1)
	t.count.Add(1)
	t.sum.Add(v)
	for {
		cur := t.max.Load()
		if v <= cur || t.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Since observes the time elapsed from start on the registry clock — the
// canonical "stopwatch" use: start := clk.Now(); ...; t.Since(start).
//
//adwise:zeroalloc
func (t *Timer) Since(start time.Time) {
	t.Observe(t.clk.Now().Sub(start))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Sum returns the sum of all observed durations.
func (t *Timer) Sum() time.Duration { return time.Duration(t.sum.Load()) }

// Max returns the largest observed duration.
func (t *Timer) Max() time.Duration { return time.Duration(t.max.Load()) }

// Quantile returns the q-quantile (q in [0,1]) of the observed
// distribution, with the histogram's ≈ ±3% relative error. It returns 0
// with no observations. Concurrent observers make the read approximate;
// quiesced writers make it exact over the recorded buckets.
func (t *Timer) Quantile(q float64) time.Duration {
	count := t.count.Load()
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(count-1)) + 1
	var cum int64
	for i := range t.buckets {
		if n := t.buckets[i].Load(); n > 0 {
			cum += n
			if cum >= target {
				return time.Duration(bucketMid(i))
			}
		}
	}
	return t.Max()
}
