package metric

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 20, 1 << 40, 1<<62 + 12345, 1<<63 - 1}
	prev := -1
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d outside [0,%d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone: %d maps below its predecessor", v)
		}
		prev = idx
	}
}

func TestBucketMidWithinBucket(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for i := 0; i < 100_000; i++ {
		v := int64(rng.Uint64() >> 1) // non-negative
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		if bucketIndex(mid) != idx {
			t.Fatalf("bucketMid(%d) = %d lands in bucket %d, not %d (v=%d)", idx, mid, bucketIndex(mid), idx, v)
		}
		// Relative error bound of the log-linear layout: ±1/2^(subBits+1).
		if v >= subBuckets {
			diff := float64(v - mid)
			if diff < 0 {
				diff = -diff
			}
			if diff > float64(v)/float64(subBuckets) {
				t.Fatalf("bucket error for %d: mid %d off by %.0f (> v/%d)", v, mid, diff, subBuckets)
			}
		}
	}
}

func TestTimerExactSmallValues(t *testing.T) {
	var tm Timer
	// Values below subBuckets occupy exact unit buckets.
	for i := 0; i < 10; i++ {
		tm.Observe(time.Duration(i))
	}
	if got := tm.Quantile(0); got != 0 {
		t.Errorf("q0 = %v, want 0", got)
	}
	if got := tm.Quantile(1); got != 9 {
		t.Errorf("q1 = %v, want 9ns", got)
	}
	if got := tm.Quantile(0.5); got != 4 && got != 5 {
		t.Errorf("q0.5 = %v, want 4 or 5 ns", got)
	}
}

func TestTimerQuantilesAgainstExactDistribution(t *testing.T) {
	var tm Timer
	rng := rand.New(rand.NewPCG(42, 0))
	n := 50_000
	values := make([]float64, n)
	for i := range values {
		// Log-uniform over ~[1µs, 100ms] — a serving-latency-shaped spread.
		exp := 3 + rng.Float64()*5
		v := time.Duration(pow10(exp))
		values[i] = float64(v)
		tm.Observe(v)
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := time.Duration(values[int(q*float64(n-1))])
		got := tm.Quantile(q)
		if !within(got, exact, 0.05) {
			t.Errorf("q%.2f = %v, exact %v: beyond the ±%d%% histogram bound", q, got, exact, 5)
		}
	}
	if tm.Count() != int64(n) {
		t.Errorf("Count = %d, want %d", tm.Count(), n)
	}
}

func TestTimerNegativeClampsToZero(t *testing.T) {
	var tm Timer
	tm.Observe(-time.Second)
	if got := tm.Quantile(1); got != 0 {
		t.Errorf("negative observation landed at %v, want clamp to 0", got)
	}
	if got := tm.Max(); got != 0 {
		t.Errorf("Max = %v, want 0", got)
	}
}

func TestTimerMaxTracksLargest(t *testing.T) {
	var tm Timer
	tm.Observe(3 * time.Second)
	tm.Observe(time.Millisecond)
	tm.Observe(2 * time.Second)
	if got := tm.Max(); got != 3*time.Second {
		t.Errorf("Max = %v, want 3s", got)
	}
}

func TestTimerEmptyQuantile(t *testing.T) {
	var tm Timer
	if got := tm.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func pow10(exp float64) float64 {
	v := 1.0
	for exp >= 1 {
		v *= 10
		exp--
	}
	// Fractional remainder via repeated square root would be overkill;
	// linear interpolation inside the last decade is plenty for a test
	// input generator.
	return v * (1 + 9*exp)
}
