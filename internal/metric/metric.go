// Package metric is the runtime telemetry layer: lock-free buffered
// counters, gauges, and timers, flushed asynchronously to pluggable sinks
// (JSON lines, statsd line protocol).
//
// The design follows the gone/metric mold adapted to this repo's
// invariants:
//
//   - Hot-path operations — Counter.Inc, Gauge.Set, Timer.Observe — are
//     zero-alloc and lock-free (atomic, with counters striped across
//     padded cache lines), so they are safe to call from score-pool
//     workers and the serving read path without perturbing either.
//   - Aggregation state lives client-side: a Timer is a log-bucketed
//     histogram of atomics, not a stream of events, so observation cost
//     is independent of flush health.
//   - The flusher goroutine snapshots the registry on a clock-driven
//     cadence and hands snapshots to a sink over a bounded queue; a slow
//     or failing sink drops snapshots (self-reported via the
//     "metric.dropped" counter) and can never block or slow producers.
//   - Time is injected (internal/clock): with a Fake clock, flush cadence
//     and timer measurements are fully deterministic in tests.
package metric

import (
	"fmt"
	gort "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/adwise-go/adwise/internal/clock"
)

// defaultStripes sizes counter striping to the machine: one stripe per
// core (rounded up to a power of two by newCounter), capped so a counter
// on a very wide box stays a few KiB.
func defaultStripes() int {
	n := gort.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	return n
}

// cacheLine is the padding granularity separating counter stripes so two
// cores incrementing different stripes never share a line.
const cacheLine = 64

// stripe is one padded counter cell.
type stripe struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically accumulating metric (requests served, edges
// streamed, shards stolen). Increments are striped across padded atomic
// cells indexed by a goroutine-stable hash, so GOMAXPROCS goroutines
// hammering one counter mostly touch distinct cache lines. Inc is
// zero-alloc and lock-free; Value folds the stripes.
type Counter struct {
	stripes []stripe
	mask    uint32
}

func newCounter(stripes int) *Counter {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Counter{stripes: make([]stripe, n), mask: uint32(n - 1)}
}

// stripeIndex derives a goroutine-stable stripe choice from the address
// of a stack local: distinct goroutines run on distinct stacks, so their
// hot loops land on distinct stripes, while one goroutine keeps hitting
// the same stripe (no cache-line migration). The pointer never escapes —
// it is immediately reduced to an integer — so the hot path stays
// zero-alloc. Collisions only cost sharing, never correctness.
func stripeIndex() uint32 {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return uint32((p >> 6) ^ (p >> 16))
}

// Inc adds n to the counter. Safe for unbounded concurrency; zero-alloc.
//
//adwise:zeroalloc
func (c *Counter) Inc(n int64) {
	c.stripes[stripeIndex()&c.mask].v.Add(n)
}

// Value returns the current total, folding all stripes. Concurrent
// increments may or may not be included — Value is a monotone snapshot,
// not a linearization point.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Gauge is a last-write-wins instantaneous value (live window size, store
// generation, queue depth). Set/Add are single atomics: zero-alloc,
// lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
//
//adwise:zeroalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
//
//adwise:zeroalloc
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind tags a registered metric name, so one name cannot be two types.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindTimer
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "timer"
	}
}

// Registry owns a namespace of metrics and the clock they measure with.
// Metric lookup/registration takes a lock and may allocate — resolve
// metrics once at construction time and retain the typed handles; only
// the handle operations are hot-path safe.
type Registry struct {
	clk     clock.Clock
	stripes int
	started time.Time

	mu       sync.Mutex
	kinds    map[string]kind
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// Option configures a Registry.
type Option func(*Registry)

// WithClock substitutes the time source (default clock.Real{}). Timer
// measurement helpers and flushers attached to the registry inherit it; a
// clock.Fake makes both deterministic.
func WithClock(clk clock.Clock) Option {
	return func(r *Registry) { r.clk = clk }
}

// WithCounterStripes overrides the stripe count of newly created counters
// (default: GOMAXPROCS at registry creation, rounded up to a power of
// two). Tests pin it to 1 to make Value exact mid-increment.
func WithCounterStripes(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.stripes = n
		}
	}
}

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		clk:      clock.Real{},
		stripes:  defaultStripes(),
		kinds:    make(map[string]kind),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
	for _, opt := range opts {
		opt(r)
	}
	r.started = r.clk.Now()
	return r
}

// Clock returns the registry's time source.
func (r *Registry) Clock() clock.Clock { return r.clk }

// StartedAt returns the registry creation time on its own clock.
func (r *Registry) StartedAt() time.Time { return r.started }

// Uptime returns the time elapsed since registry creation.
func (r *Registry) Uptime() time.Duration { return r.clk.Now().Sub(r.started) }

// Counter returns the counter registered under name, creating it on first
// use. It panics if name is already registered as a different metric type
// — registration happens at construction time and a collision is a
// programming error, exactly like a duplicate strategy registration.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = newCounter(r.stripes)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindTimer)
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{clk: r.clk}
		r.timers[name] = t
	}
	return t
}

func (r *Registry) checkKind(name string, want kind) {
	if have, ok := r.kinds[name]; ok {
		if have != want {
			panic(fmt.Sprintf("metric: %q already registered as a %s, requested as a %s", name, have, want))
		}
		return
	}
	r.kinds[name] = want
}

// sortedNames returns the registered names of one kind in stable order,
// so snapshots and sink output are diffable.
func sortedNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
