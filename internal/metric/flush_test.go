package metric

import (
	gort "runtime"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
)

// gosched yields between spin-wait probes; metric tests never sleep.
func gosched() { gort.Gosched() }

// chanSink delivers every emitted snapshot to a channel, so tests wait on
// real flush completion instead of sleeping.
type chanSink struct {
	snaps chan *Snapshot
}

func newChanSink() *chanSink { return &chanSink{snaps: make(chan *Snapshot, 64)} }

func (cs *chanSink) Emit(s *Snapshot) error {
	cs.snaps <- s
	return nil
}

func (cs *chanSink) wait(t *testing.T) *Snapshot {
	t.Helper()
	select {
	case s := <-cs.snaps:
		return s
	case <-time.After(10 * time.Second):
		t.Fatal("no flush arrived at the sink")
		return nil
	}
}

// blockingSink blocks every Emit until released — the pathological slow
// sink of the failure-semantics contract.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
}

func newBlockingSink() *blockingSink {
	return &blockingSink{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (bs *blockingSink) Emit(s *Snapshot) error {
	bs.entered <- struct{}{}
	<-bs.release
	return nil
}

func TestFlusherCadenceOnFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(100, 0))
	r := New(WithClock(fake), WithCounterStripes(1))
	reqs := r.Counter("reqs")
	sink := newChanSink()
	f := NewFlusher(r, sink, time.Second)
	f.Start()
	defer f.Stop()

	reqs.Inc(3)
	fake.Advance(time.Second)
	snap := sink.wait(t)
	if p, ok := snap.Counter("reqs"); !ok || p.Value != 3 {
		t.Fatalf("first flush reqs = %+v ok=%v, want 3", p, ok)
	}
	if !snap.At.Equal(time.Unix(101, 0)) {
		t.Errorf("first flush At = %v, want %v (fake-clock timestamps)", snap.At, time.Unix(101, 0))
	}

	// No advance → no flush: cadence is clock-driven, not wall-driven.
	select {
	case s := <-sink.snaps:
		t.Fatalf("flush at %v without the clock advancing", s.At)
	default:
	}

	reqs.Inc(2)
	fake.Advance(time.Second)
	snap = sink.wait(t)
	if p, _ := snap.Counter("reqs"); p.Value != 5 {
		t.Errorf("second flush reqs = %d, want cumulative 5", p.Value)
	}
}

func TestFlusherTimerQuantilesInSnapshots(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake))
	lat := r.Timer("lat")
	for i := 1; i <= 100; i++ {
		lat.Observe(time.Duration(i) * time.Millisecond)
	}
	sink := newChanSink()
	f := NewFlusher(r, sink, 5*time.Second)
	f.Start()
	defer f.Stop()

	fake.Advance(5 * time.Second)
	snap := sink.wait(t)
	tp, ok := snap.Timer("lat")
	if !ok || tp.Count != 100 {
		t.Fatalf("timer point = %+v ok=%v, want count 100", tp, ok)
	}
	if !within(time.Duration(tp.P50Ns), 50*time.Millisecond, 0.05) {
		t.Errorf("flushed P50 = %v, want ≈ 50ms", time.Duration(tp.P50Ns))
	}
	if !within(time.Duration(tp.P99Ns), 99*time.Millisecond, 0.05) {
		t.Errorf("flushed P99 = %v, want ≈ 99ms", time.Duration(tp.P99Ns))
	}
}

func TestBlockingSinkDropsNeverBlocks(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake), WithCounterStripes(1))
	hot := r.Counter("hot")
	bs := newBlockingSink()
	f := NewFlusher(r, bs, time.Second, WithQueueDepth(1), WithStopGrace(10*time.Millisecond))
	f.Start()

	// First flush reaches the sink and wedges there.
	fake.Advance(time.Second)
	select {
	case <-bs.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("sink never entered Emit")
	}

	// With the sink wedged and the queue (depth 1) filling, further
	// cadence ticks must drop — and must never block the ticker loop or
	// producers. Each Advance returns promptly by construction (fake
	// clock; non-blocking enqueue); the hot path stays callable
	// throughout. Every processed tick bumps exactly one of
	// flushes/dropped, so waiting on their sum serializes the ticks
	// without sleeping.
	processed := func() int64 {
		s := r.Snapshot()
		d, _ := s.Counter(DroppedMetric)
		fl, _ := s.Counter(FlushesMetric)
		return d.Value + fl.Value
	}
	waitProcessed := func(target int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for processed() < target {
			if time.Now().After(deadline) {
				t.Fatalf("flusher processed %d ticks, want %d", processed(), target)
			}
			gosched()
		}
	}
	waitProcessed(1) // the wedged first flush
	const extraTicks = 5
	for i := 0; i < extraTicks; i++ {
		hot.Inc(1)
		target := processed() + 1
		fake.Advance(time.Second)
		waitProcessed(target)
	}
	// One post-wedge snapshot fit the depth-1 queue; every later tick
	// dropped. Drops are counted on the registry itself (the
	// self-reporting contract).
	if d, _ := r.Snapshot().Counter(DroppedMetric); d.Value < extraTicks-1 {
		t.Fatalf("dropped = %d, want >= %d: slow sink did not shed load", d.Value, extraTicks-1)
	}
	if got := hot.Value(); got != extraTicks {
		t.Errorf("hot-path counter = %d, want %d: producer was perturbed", got, extraTicks)
	}

	// Stop must return despite the wedged sink (bounded by the grace),
	// then releasing the sink must not panic anything.
	done := make(chan struct{})
	go func() { f.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop blocked on a wedged sink")
	}
	close(bs.release)
}

func TestFlusherHotPathZeroAllocWhileFlushing(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake))
	c := r.Counter("hot")
	sink := newChanSink()
	f := NewFlusher(r, sink, time.Second)
	f.Start()
	defer f.Stop()
	fake.Advance(time.Second)
	sink.wait(t)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(1) }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op with a flusher attached, want 0", allocs)
	}
}

func TestStopFlushesFinalSnapshot(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake), WithCounterStripes(1))
	r.Counter("final").Inc(9)
	sink := newChanSink()
	f := NewFlusher(r, sink, time.Hour) // cadence never fires
	f.Start()
	f.Stop()
	snap := sink.wait(t)
	if p, ok := snap.Counter("final"); !ok || p.Value != 9 {
		t.Errorf("final flush counter = %+v ok=%v, want 9", p, ok)
	}
}

func TestStopWithoutStart(t *testing.T) {
	r := New(WithClock(clock.NewFake(time.Unix(0, 0))), WithCounterStripes(1))
	r.Counter("x").Inc(1)
	sink := newChanSink()
	f := NewFlusher(r, sink, time.Second)
	f.Stop() // must not hang or panic; still emits the final state
	snap := sink.wait(t)
	if p, ok := snap.Counter("x"); !ok || p.Value != 1 {
		t.Errorf("unstarted Stop flush = %+v ok=%v, want 1", p, ok)
	}
}

func TestErroringSinkCountedAndSurvived(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake), WithCounterStripes(1))
	emitted := make(chan struct{}, 16)
	sink := SinkFunc(func(s *Snapshot) error {
		emitted <- struct{}{}
		return errSink
	})
	f := NewFlusher(r, sink, time.Second)
	f.Start()
	defer f.Stop()

	fake.Advance(time.Second)
	<-emitted
	fake.Advance(time.Second)
	<-emitted

	deadline := time.Now().Add(10 * time.Second)
	for {
		if p, _ := r.Snapshot().Counter(SinkErrorsMetric); p.Value >= 2 {
			return
		}
		if time.Now().After(deadline) {
			p, _ := r.Snapshot().Counter(SinkErrorsMetric)
			t.Fatalf("sink_errors = %d, want >= 2", p.Value)
		}
		gosched()
	}
}

var errSink = errFixed("sink exploded")

type errFixed string

func (e errFixed) Error() string { return string(e) }
