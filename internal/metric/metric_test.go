package metric

import (
	gort "runtime"
	"sync"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests")
	if c2 := r.Counter("requests"); c2 != c {
		t.Fatal("same name returned a different counter")
	}
	c.Inc(1)
	c.Inc(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	const goroutines, each = 16, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Errorf("Value = %d, want %d: striped increments lost updates", got, goroutines*each)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestTimerSinceUsesRegistryClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	r := New(WithClock(fake))
	tm := r.Timer("lat")
	start := fake.Now()
	fake.Advance(250 * time.Millisecond)
	tm.Since(start)
	if got, want := tm.Max(), 250*time.Millisecond; !within(got, want, 0.04) {
		t.Errorf("Max = %v, want ≈ %v", got, want)
	}
	if tm.Count() != 1 {
		t.Errorf("Count = %d, want 1", tm.Count())
	}
}

func TestUptime(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	r := New(WithClock(fake))
	fake.Advance(90 * time.Second)
	if got := r.Uptime(); got != 90*time.Second {
		t.Errorf("Uptime = %v, want 90s", got)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	fake := clock.NewFake(time.Unix(50, 0))
	r := New(WithClock(fake), WithCounterStripes(1))
	r.Counter("b.count").Inc(2)
	r.Counter("a.count").Inc(1)
	r.Gauge("g").Set(-3)
	r.Timer("t").Observe(time.Millisecond)
	fake.Advance(10 * time.Second)

	snap := r.Snapshot()
	if snap.UptimeSeconds != 10 {
		t.Errorf("UptimeSeconds = %v, want 10", snap.UptimeSeconds)
	}
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a.count" || snap.Counters[1].Name != "b.count" {
		t.Fatalf("counters not sorted/complete: %+v", snap.Counters)
	}
	if p, ok := snap.Gauge("g"); !ok || p.Value != -3 {
		t.Errorf("gauge point = %+v ok=%v, want -3", p, ok)
	}
	tp, ok := snap.Timer("t")
	if !ok || tp.Count != 1 {
		t.Fatalf("timer point = %+v ok=%v", tp, ok)
	}
	if !within(time.Duration(tp.P50Ns), time.Millisecond, 0.04) {
		t.Errorf("P50 = %v, want ≈ 1ms", time.Duration(tp.P50Ns))
	}
}

// Zero-alloc guards: the hot-path operations must never allocate — they
// run inside score-pool workers and the serving read path.

func TestCounterIncZeroAlloc(t *testing.T) {
	c := New().Counter("hot")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(1) }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", allocs)
	}
}

func TestGaugeSetZeroAlloc(t *testing.T) {
	g := New().Gauge("hot")
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(5) }); allocs != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", allocs)
	}
}

func TestTimerObserveZeroAlloc(t *testing.T) {
	tm := New().Timer("hot")
	if allocs := testing.AllocsPerRun(1000, func() { tm.Observe(137 * time.Microsecond) }); allocs != 0 {
		t.Errorf("Timer.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestTimerSinceZeroAlloc(t *testing.T) {
	r := New()
	tm := r.Timer("hot")
	start := r.Clock().Now()
	if allocs := testing.AllocsPerRun(1000, func() { tm.Since(start) }); allocs != 0 {
		t.Errorf("Timer.Since allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkCounterContended hammers one counter from GOMAXPROCS
// goroutines — the contention profile of scorepool workers bumping a
// shared steal counter. Striping should keep this near the uncontended
// single-atomic cost.
func BenchmarkCounterContended(b *testing.B) {
	c := New().Counter("contended")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc(1)
		}
	})
	if got, want := c.Value(), int64(b.N); got != want {
		b.Fatalf("Value = %d, want %d", got, want)
	}
}

// BenchmarkCounterSingle is the uncontended reference point.
func BenchmarkCounterSingle(b *testing.B) {
	c := New().Counter("single")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(1)
	}
}

// BenchmarkTimerContended hammers one timer from GOMAXPROCS goroutines —
// the per-request latency histogram under serving load.
func BenchmarkTimerContended(b *testing.B) {
	tm := New().Timer("contended")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(0)
		for pb.Next() {
			tm.Observe(d)
			d += time.Microsecond
		}
	})
}

func TestStripeCountIsPowerOfTwo(t *testing.T) {
	for _, want := range []int{1, 2, 3, 5, 8, 64} {
		c := newCounter(want)
		n := len(c.stripes)
		if n&(n-1) != 0 || n < want {
			t.Errorf("newCounter(%d) made %d stripes, want power of two >= %d", want, n, want)
		}
	}
	if gort.GOMAXPROCS(0) > 0 && defaultStripes() < 1 {
		t.Error("defaultStripes < 1")
	}
}

// within reports |got-want| <= tol*want — histogram quantiles carry the
// log-bucket's bounded relative error.
func within(got, want time.Duration, tol float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= tol*float64(want)
}
