package bitset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(128)
	if got := s.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if !s.Empty() {
		t.Error("Empty() = false, want true")
	}
	if got := s.Cap(); got != 128 {
		t.Errorf("Cap() = %d, want 128", got)
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-5)
	if got := s.Cap(); got != 0 {
		t.Errorf("Cap() = %d, want 0", got)
	}
	if s.Add(0) {
		t.Error("Add(0) on zero-capacity set reported a change")
	}
}

func TestAddContains(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		if !s.Add(i) {
			t.Errorf("Add(%d) = false on first add", i)
		}
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
		if s.Add(i) {
			t.Errorf("Add(%d) = true on second add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
}

func TestAddOutOfRange(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		if s.Add(i) {
			t.Errorf("Add(%d) out of range reported a change", i)
		}
		if s.Contains(i) {
			t.Errorf("Contains(%d) out of range = true", i)
		}
	}
}

func TestRemove(t *testing.T) {
	s := New(70)
	s.Add(5)
	s.Add(69)
	if !s.Remove(5) {
		t.Error("Remove(5) = false on member")
	}
	if s.Contains(5) {
		t.Error("Contains(5) = true after Remove")
	}
	if s.Remove(5) {
		t.Error("Remove(5) = true on non-member")
	}
	if got := s.Count(); got != 1 {
		t.Errorf("Count() = %d, want 1", got)
	}
}

func TestClear(t *testing.T) {
	s := New(64)
	for i := 0; i < 64; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Empty() = false after Clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(32)
	s.Add(3)
	c := s.Clone()
	c.Add(4)
	if s.Contains(4) {
		t.Error("mutating clone affected original")
	}
	if !c.Contains(3) {
		t.Error("clone lost member 3")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	a.Add(64)
	b.Add(64)
	if !a.Equal(b) {
		t.Error("Equal = false for identical sets")
	}
	b.Add(0)
	if a.Equal(b) {
		t.Error("Equal = true for different sets")
	}
	c := New(64)
	if a.Equal(c) {
		t.Error("Equal = true for different capacities")
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := New(128), New(128)
	for _, i := range []int{1, 5, 64, 100} {
		a.Add(i)
	}
	for _, i := range []int{5, 64, 101} {
		b.Add(i)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 5 {
		t.Errorf("UnionCount = %d, want 5", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := New(128)
	c.Add(2)
	if a.Intersects(c) {
		t.Error("Intersects = true for disjoint sets")
	}
}

func TestMembersSortedAndMin(t *testing.T) {
	s := New(200)
	want := []int{0, 17, 63, 64, 128, 199}
	for _, i := range []int{199, 0, 64, 17, 128, 63} {
		s.Add(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
	if got := s.Min(); got != 0 {
		t.Errorf("Min() = %d, want 0", got)
	}
	if got := New(10).Min(); got != -1 {
		t.Errorf("Min() on empty = %d, want -1", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(64)
	for i := 0; i < 10; i++ {
		s.Add(i)
	}
	calls := 0
	s.ForEach(func(i int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("ForEach visited %d members after early stop, want 3", calls)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(4)
	s.Add(7)
	if got, want := s.String(), "{1, 4, 7}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := New(4).String(), "{}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Count equals the cardinality of the reference map model under
// any sequence of adds and removes.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		const capBits = 300
		s := New(capBits)
		model := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % capBits
			if op%2 == 0 {
				s.Add(i)
				model[i] = true
			} else {
				s.Remove(i)
				delete(model, i)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for i := range model {
			if !s.Contains(i) {
				return false
			}
		}
		for _, m := range s.Members() {
			if !model[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: |A∪B| + |A∩B| == |A| + |B| (inclusion-exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		a, b := New(256), New(256)
		for i := 0; i < 256; i++ {
			if rng.Float64() < 0.3 {
				a.Add(i)
			}
			if rng.Float64() < 0.3 {
				b.Add(i)
			}
		}
		if a.UnionCount(b)+a.IntersectCount(b) != a.Count()+b.Count() {
			t.Fatalf("inclusion-exclusion violated: |A∪B|=%d |A∩B|=%d |A|=%d |B|=%d",
				a.UnionCount(b), a.IntersectCount(b), a.Count(), b.Count())
		}
	}
}
