// Package bitset provides compact fixed-capacity bit sets used to track
// vertex replica sets across partitions.
//
// Partition counts in streaming edge partitioning are small (tens to a few
// hundred), so a replica set is represented as a small slice of 64-bit
// words. The zero value of Set is an empty set with capacity zero; use New
// to size it for a partition count.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. Bits are indexed from 0.
// The zero value is an empty set that cannot hold any bits; create sets
// with New.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set able to hold bits 0..n-1.
func New(n int) Set {
	if n < 0 {
		n = 0
	}
	return Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// View wraps an existing word slice as a set of capacity n without
// copying. The returned set aliases words: mutations through either are
// visible to both, and the view stays valid only as long as the backing
// slice does. Callers use it to expose bit ranges of a larger arena (e.g.
// the vertex cache's replica table) as Sets without per-call allocation.
func View(words []uint64, n int) Set {
	if n < 0 {
		n = 0
	}
	need := (n + wordBits - 1) / wordBits
	if len(words) < need {
		n = len(words) * wordBits
	}
	return Set{words: words, n: n}
}

// Cap returns the capacity of the set in bits.
func (s Set) Cap() int { return s.n }

// Contains reports whether bit i is set. Out-of-range indices are reported
// as absent.
func (s Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Add sets bit i and reports whether the set changed. Out-of-range indices
// are ignored and report false.
func (s *Set) Add(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	w, m := i/wordBits, uint64(1)<<uint(i%wordBits)
	if s.words[w]&m != 0 {
		return false
	}
	s.words[w] |= m
	return true
}

// Remove clears bit i and reports whether the set changed.
func (s *Set) Remove(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	w, m := i/wordBits, uint64(1)<<uint(i%wordBits)
	if s.words[w]&m == 0 {
		return false
	}
	s.words[w] &^= m
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all bits from the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// Equal reports whether both sets have identical capacity and members.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// IntersectCount returns |s ∩ t| considering the common capacity prefix.
func (s Set) IntersectCount(t Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// UnionCount returns |s ∪ t|.
func (s Set) UnionCount(t Set) int {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	c := 0
	for i, w := range long {
		if i < len(short) {
			w |= short[i]
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every set bit in ascending order. Iteration stops
// early if fn returns false.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the set bits in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 4, 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
