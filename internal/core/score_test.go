package core

import (
	"math"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// newTestScorer builds a scorer over k partitions with the given fixed λ
// and clustering toggle, exposing the cache for direct manipulation.
func newTestScorer(k int, lambda float64, clustering bool, totalEdges int64) (*scorer, *vcache.Cache) {
	cache := vcache.New(k)
	parts := make([]int, k)
	for i := range parts {
		parts[i] = i
	}
	cfg := config{
		initialLambda: lambda,
		lambdaMin:     DefaultLambdaMin,
		lambdaMax:     DefaultLambdaMax,
		balanceEps:    DefaultBalanceEps,
		clustering:    clustering,
		totalEdges:    totalEdges,
	}
	return newScorer(cache, parts, cfg), cache
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestScoreEmptyCacheIsPureBalance(t *testing.T) {
	// Nothing assigned: R = 0, CS = 0, and B(p) = (0-0)/(0-0+1) = 0 for
	// every partition, so all scores are exactly 0.
	sc, _ := newTestScorer(4, 1.0, true, 10)
	scores, best, bestPart := sc.scoreEdge(graph.Edge{Src: 0, Dst: 1}, nil)
	for i, s := range scores {
		approx(t, "score", s, 0)
		_ = i
	}
	approx(t, "best", best, 0)
	if bestPart != 0 {
		t.Errorf("bestPart = %d, want 0 (first allowed on tie)", bestPart)
	}
}

func TestScoreBalanceTerm(t *testing.T) {
	// Hand-computed Eq. 3. Sizes: p0=2, p1=0 (k=2). maxsize=2, minsize=0,
	// ε=1 → B(p0) = (2-2)/(2-0+1) = 0; B(p1) = (2-0)/3 = 2/3.
	// λ fixed at 1.5 via direct field control (commit would adapt it).
	sc, cache := newTestScorer(2, 1.5, false, 100)
	cache.Assign(graph.Edge{Src: 10, Dst: 11}, 0)
	cache.Assign(graph.Edge{Src: 12, Dst: 13}, 0)

	// Edge with unseen endpoints: only the balance term contributes.
	scores, best, bestPart := sc.scoreEdge(graph.Edge{Src: 20, Dst: 21}, nil)
	approx(t, "g(e,p0)", scores[0], 0)
	approx(t, "g(e,p1)", scores[1], 1.5*2.0/3.0)
	approx(t, "best", best, 1.0)
	if bestPart != 1 {
		t.Errorf("bestPart = %d, want 1", bestPart)
	}
}

func TestScoreReplicationTerm(t *testing.T) {
	// Hand-computed Eq. 5. One edge (5,6) assigned to p0: both endpoints
	// have partial degree 1, maxDegree=1, Ψ = 1/2 → contribution
	// (2 − 0.5) = 1.5 per endpoint replicated on p.
	// Balance: sizes p0=1, p1=0 → B(p0)=0, B(p1)=(1-0)/(1+1)=0.5.
	sc, cache := newTestScorer(2, 1.0, false, 100)
	cache.Assign(graph.Edge{Src: 5, Dst: 6}, 0)

	// Edge (5,6) again: both endpoints on p0 → R(e,p0) = 3.0.
	scores, best, bestPart := sc.scoreEdge(graph.Edge{Src: 5, Dst: 6}, nil)
	approx(t, "g(e,p0)", scores[0], 3.0)
	approx(t, "g(e,p1)", scores[1], 1.0*0.5)
	approx(t, "best", best, 3.0)
	if bestPart != 0 {
		t.Errorf("bestPart = %d, want 0", bestPart)
	}

	// Edge (5,99): only one endpoint replicated → R(e,p0) = 1.5.
	scores, _, _ = sc.scoreEdge(graph.Edge{Src: 5, Dst: 99}, nil)
	approx(t, "g((5,99),p0)", scores[0], 1.5)
}

func TestScoreDegreeAwareness(t *testing.T) {
	// Two vertices on p0: u with degree 3, w with degree 1 (maxDegree 3).
	// Ψu = 3/6 = 0.5 → (2−Ψu) = 1.5; Ψw = 1/6 → (2−Ψw) ≈ 1.8333.
	// The low-degree vertex pulls harder, so high-degree vertices end up
	// replicated first — the Figure 5 intuition.
	sc, cache := newTestScorer(2, 0, false, 100) // λ=0 kills the balance term
	cache.Assign(graph.Edge{Src: 1, Dst: 2}, 0)
	cache.Assign(graph.Edge{Src: 1, Dst: 3}, 0)
	cache.Assign(graph.Edge{Src: 1, Dst: 4}, 0)

	// u=1 has degree 3; w=2 has degree 1.
	scoresU, _, _ := sc.scoreEdge(graph.Edge{Src: 1, Dst: 50}, nil)
	highDeg := scoresU[0]
	scoresW, _, _ := sc.scoreEdge(graph.Edge{Src: 2, Dst: 50}, nil)
	lowDeg := scoresW[0]
	approx(t, "high-degree pull", highDeg, 2-3.0/6.0)
	approx(t, "low-degree pull", lowDeg, 2-1.0/6.0)
	if lowDeg <= highDeg {
		t.Error("low-degree endpoint must pull harder than high-degree")
	}
}

func TestScoreClusteringTerm(t *testing.T) {
	// The Figure 6 example: u replicated on both partitions, three of its
	// neighbours on p1, one on p2. CS must prefer p1.
	// Construct: neighbours 101,102,103 on p0; neighbour 104 on p1;
	// u (=100) on both.
	sc, cache := newTestScorer(2, 0, true, 100)
	cache.Assign(graph.Edge{Src: 100, Dst: 101}, 0)
	cache.Assign(graph.Edge{Src: 100, Dst: 102}, 0)
	cache.Assign(graph.Edge{Src: 100, Dst: 103}, 0)
	cache.Assign(graph.Edge{Src: 100, Dst: 104}, 1)

	// Score edge (100, 200) with window neighbourhood {101,102,103,104}.
	neighbors := []graph.VertexID{101, 102, 103, 104}
	scores, _, bestPart := sc.scoreEdge(graph.Edge{Src: 100, Dst: 200}, neighbors)

	// R(e,p): u on both partitions; deg(u)=4, maxDegree=4 → Ψu=0.5,
	// contribution 1.5 on both sides. CS(p0)=3/4, CS(p1)=1/4.
	approx(t, "g(e,p0)", scores[0], 1.5+0.75)
	approx(t, "g(e,p1)", scores[1], 1.5+0.25)
	if bestPart != 0 {
		t.Errorf("bestPart = %d, want 0 (stronger local cluster)", bestPart)
	}

	// With clustering disabled the two partitions tie at 1.5.
	sc2, cache2 := newTestScorer(2, 0, false, 100)
	cache2.Assign(graph.Edge{Src: 100, Dst: 101}, 0)
	cache2.Assign(graph.Edge{Src: 100, Dst: 104}, 1)
	scores2, _, _ := sc2.scoreEdge(graph.Edge{Src: 100, Dst: 200}, neighbors)
	approx(t, "no-CS tie", scores2[0], scores2[1])
}

func TestScoreSelfLoopCountsOnce(t *testing.T) {
	sc, cache := newTestScorer(2, 0, false, 100)
	cache.Assign(graph.Edge{Src: 7, Dst: 7}, 0)
	// Self-loop (7,7): Src term only — deg(7)=1, max=1, Ψ=0.5 → 1.5, not 3.
	scores, _, _ := sc.scoreEdge(graph.Edge{Src: 7, Dst: 7}, nil)
	approx(t, "self-loop score", scores[0], 1.5)
}

func TestLambdaAdaptation(t *testing.T) {
	// Eq. 4: λ += ι − tolerance(α), clamped to [0.4, 5].
	sc, _ := newTestScorer(2, 1.0, false, 4)

	// First assignment: sizes become (1,0) → ι = 1. α = 1/4 → tolerance
	// 0.75. λ = 1.0 + (1 − 0.75) = 1.25.
	sc.commit(graph.Edge{Src: 0, Dst: 1}, 0)
	approx(t, "λ after 1st", sc.lambda, 1.25)

	// Second assignment to p1: sizes (1,1) → ι = 0. α = 2/4 → tolerance
	// 0.5. λ = 1.25 + (0 − 0.5) = 0.75.
	sc.commit(graph.Edge{Src: 2, Dst: 3}, 1)
	approx(t, "λ after 2nd", sc.lambda, 0.75)
}

func TestLambdaClamping(t *testing.T) {
	sc, _ := newTestScorer(2, 0.4, false, 1000)
	// With m=1000, early assignments have tolerance ≈ 1 and small ι, so λ
	// keeps decreasing: it must stop at the 0.4 floor.
	for i := 0; i < 20; i += 2 {
		sc.commit(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}, i%2)
	}
	if sc.lambda < DefaultLambdaMin-1e-12 {
		t.Errorf("λ = %v fell below the %v floor", sc.lambda, DefaultLambdaMin)
	}

	// Extreme imbalance with α ≈ 1 drives λ up; it must stop at 5.
	sc2, _ := newTestScorer(2, 5.0, false, 1)
	for i := 0; i < 20; i += 2 {
		sc2.commit(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}, 0)
	}
	if sc2.lambda > DefaultLambdaMax+1e-12 {
		t.Errorf("λ = %v exceeded the %v cap", sc2.lambda, DefaultLambdaMax)
	}
}

func TestCommitReportsNewReplicas(t *testing.T) {
	sc, _ := newTestScorer(2, 1, false, 10)
	newSrc, newDst := sc.commit(graph.Edge{Src: 1, Dst: 2}, 0)
	if !newSrc || !newDst {
		t.Error("first commit must create replicas for both endpoints")
	}
	newSrc, newDst = sc.commit(graph.Edge{Src: 1, Dst: 2}, 0)
	if newSrc || newDst {
		t.Error("repeat commit created replicas")
	}
	newSrc, newDst = sc.commit(graph.Edge{Src: 1, Dst: 3}, 1)
	if !newSrc || !newDst {
		t.Error("commit to a new partition must create replicas")
	}
}

func TestScoreOpsCounted(t *testing.T) {
	sc, _ := newTestScorer(2, 1, false, 10)
	for i := 0; i < 5; i++ {
		sc.scoreEdge(graph.Edge{Src: 0, Dst: 1}, nil)
	}
	if sc.prime.scoreOps != 5 {
		t.Errorf("scoreOps = %d, want 5", sc.prime.scoreOps)
	}
}
