package core

import (
	"github.com/adwise-go/adwise/internal/metric"
)

// Metric names published by the partitioner core when a registry is
// attached via WithMetrics. The pool counters tick live, per scoring
// pass; the rest publish once at the end of Run.
const (
	// MetricAssignments counts edges assigned (end of Run).
	MetricAssignments = "core.assignments"
	// MetricScoreOps counts edge score evaluations (end of Run).
	MetricScoreOps = "core.score_ops"
	// MetricPoolPasses counts scoring passes dispatched to the
	// work-stealing pool (live, per pass).
	MetricPoolPasses = "core.pool.passes"
	// MetricStolenShards counts pool-pass shards executed by pool workers
	// rather than the instance's own goroutine (live, per pass).
	MetricStolenShards = "core.pool.stolen_shards"
	// MetricRunLatency is the partitioning wall-clock per Run, as a
	// histogram timer.
	MetricRunLatency = "core.run.latency"
	// MetricRefillPasses counts batched window refills (live, per pass).
	MetricRefillPasses = "core.refill.passes"
	// MetricRefillBatchedAdds counts edges staged and scored through
	// batched refill passes (live, per pass).
	MetricRefillBatchedAdds = "core.refill.batched_adds"
	// MetricRefillBatchSize is a gauge holding the most recent refill
	// batch size — together with the passes/adds counters it shows whether
	// refills run at the staging cap or dribble (live, per pass).
	MetricRefillBatchSize = "core.refill.batch_size"
	// MetricVcacheEvicted counts vertex-state evictions under a vertex
	// budget (end of Run; 0 on the unbounded default).
	MetricVcacheEvicted = "core.vcache.evicted"
	// MetricVcacheBytes is a gauge holding the final tracked byte
	// footprint of the vertex state (end of Run).
	MetricVcacheBytes = "core.vcache.bytes"
	// MetricVcachePeakBytes is a gauge holding the peak tracked byte
	// footprint of the vertex state (end of Run).
	MetricVcachePeakBytes = "core.vcache.peak_bytes"
)

// WithMetrics attaches a telemetry registry: pool pass/steal counters
// tick live while the run executes (cheap — one atomic add per scoring
// pass, never per edge), and the run totals (assignments, score ops,
// partitioning latency) publish when Run returns. The default, no
// registry, leaves the hot path exactly as before — the nil checks sit on
// the per-pass path, not the per-edge path.
func WithMetrics(reg *metric.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// publishRunMetrics pushes the completed run's totals onto the attached
// registry. Counters accumulate across runs sharing a registry (the
// spotlight case: z instances, one registry).
func (a *Adwise) publishRunMetrics() {
	reg := a.cfg.metrics
	if reg == nil {
		return
	}
	reg.Counter(MetricAssignments).Inc(a.stats.Assignments)
	reg.Counter(MetricScoreOps).Inc(a.stats.ScoreComputations)
	reg.Timer(MetricRunLatency).Observe(a.stats.PartitioningLatency)
	reg.Counter(MetricVcacheEvicted).Inc(a.stats.EvictedVertices)
	reg.Gauge(MetricVcacheBytes).Set(a.stats.CacheBytes)
	reg.Gauge(MetricVcachePeakBytes).Set(a.stats.PeakCacheBytes)
}
