package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// Regression tests for the window-state bugs fixed alongside the parallel
// scoring pool: the stale-partition secondary fallback, the live-Θ reads
// of lazy selection, and scoreSum floating-point drift.

// findEntry locates the window entry of an edge across both sets.
func findEntry(t *testing.T, w *window, e graph.Edge) *winEntry {
	t.Helper()
	for _, ent := range w.candidates {
		if ent.edge == e {
			return ent
		}
	}
	for _, ent := range w.secondary {
		if ent.edge == e {
			return ent
		}
	}
	t.Fatalf("edge %v not found in window", e)
	return nil
}

// forceCandidate moves an entry into the candidate set regardless of its
// classification, mimicking an earlier promotion.
func forceCandidate(w *window, ent *winEntry) {
	if ent.kind != inCandidates {
		w.detach(ent)
		w.pushCandidate(ent)
	}
}

// forceSecondary moves an entry into the secondary set.
func forceSecondary(w *window, ent *winEntry) {
	if ent.kind != inSecondary {
		w.detach(ent)
		w.pushSecondary(ent)
	}
}

// TestPopBestSecondaryFallbackRescoresStaleEntry pins the fix for the
// stale-partition fallback: when lazy selection demotes every candidate,
// popBest pops the best *secondary* entry by cached score — and that
// entry may have been scored long before arbitrary cache changes. The
// popped assignment must match a fresh scoreEdge against the current
// cache, not the cached argmax.
func TestPopBestSecondaryFallbackRescoresStaleEntry(t *testing.T) {
	w, sc := newTestWindow(2, 0.1, 64, false)

	// Vertex 200 gains a replica on p0; the window caches the stale edge
	// S while p0 is still the right answer.
	sc.commit(graph.Edge{Src: 200, Dst: 299}, 0)
	s := graph.Edge{Src: 200, Dst: 201}
	w.add(s)
	entS := findEntry(t, w, s)
	if entS.part != 0 {
		t.Fatalf("setup: cached part = %d, want 0 while p0 holds the only replica", entS.part)
	}
	forceSecondary(w, entS)
	staleScore, stalePart := entS.score, entS.part

	// The cache moves on: 200 gains a p1 replica and p0 crowds up, so a
	// fresh score now prefers p1 — but S's cache still says p0.
	sc.commit(graph.Edge{Src: 200, Dst: 450}, 1)
	sc.commit(graph.Edge{Src: 500, Dst: 501}, 0)
	sc.commit(graph.Edge{Src: 502, Dst: 503}, 0)
	wantScores, wantScore, wantPart := sc.scoreEdge(s, w.neighbors(s))
	_ = wantScores
	if wantPart == stalePart {
		t.Fatalf("setup: fresh argmax %d did not diverge from stale cache %d", wantPart, stalePart)
	}

	// Five cold candidates whose inflated cached scores all decay to
	// ~nothing: four demote through the lazy retries, the fifth through
	// the full-rescore fallback, leaving the candidate set empty and
	// forcing the secondary fallback while S was never rescanned.
	for i := 0; i < 5; i++ {
		e := graph.Edge{Src: graph.VertexID(600 + 2*i), Dst: graph.VertexID(601 + 2*i)}
		w.add(e)
		ent := findEntry(t, w, e)
		forceCandidate(w, ent)
		w.updateScore(ent, 10-0.2*float64(i), 0)
	}

	e, part, score, ok := w.popBest()
	if !ok {
		t.Fatal("popBest failed")
	}
	if e != s {
		t.Fatalf("popped %v, want the high-cached-score secondary entry %v", e, s)
	}
	if part != wantPart {
		t.Errorf("fallback committed stale partition %d, want fresh argmax %d", part, wantPart)
	}
	if math.Abs(score-wantScore) > 1e-9 {
		t.Errorf("fallback score %v, want fresh %v (stale cache held %v)", score, wantScore, staleScore)
	}
}

// TestSelectLazyUsesThetaSnapshot pins the Θ snapshot rule on the lazy
// selection path: demotion decisions across retries must all compare
// against Θ as of pass entry. Historically each retry read the live Θ,
// which the retry's own updateScore had just dragged down — so whether a
// decayed leader was demoted depended on how many leaders had been
// refreshed before it.
func TestSelectLazyUsesThetaSnapshot(t *testing.T) {
	w, sc := newTestWindow(2, 0.1, 64, false)
	// Balanced cache: vertex 1 replicated on p0, sizes equal, so edge
	// (1,50) freshly scores exactly 1.5 (pure replication term).
	sc.commit(graph.Edge{Src: 1, Dst: 2}, 0)
	sc.commit(graph.Edge{Src: 3, Dst: 4}, 1)

	// Seven cold secondary edges dilute Θ's denominator.
	for i := 0; i < 7; i++ {
		w.add(graph.Edge{Src: graph.VertexID(80 + 2*i), Dst: graph.VertexID(81 + 2*i)})
	}
	a, b, c := graph.Edge{Src: 60, Dst: 61}, graph.Edge{Src: 1, Dst: 50}, graph.Edge{Src: 70, Dst: 71}
	for _, e := range []graph.Edge{a, b, c} {
		w.add(e)
		forceCandidate(w, findEntry(t, w, e))
	}
	w.updateScore(findEntry(t, w, a), 10, 0)  // decays to 0
	w.updateScore(findEntry(t, w, b), 3, 0)   // decays to 1.5
	w.updateScore(findEntry(t, w, c), 2.0, 0) // decays to 0

	// Θ at pass entry: (10+3+2)/10 + 0.1 = 1.6.
	// Try 0 demotes A (fresh 0), dropping scoreSum to 5 — live Θ would
	// now be 0.6, under B's fresh 1.5. The snapshot keeps Θ at 1.6:
	// B (fresh 1.5 < runner-up 2.0) must still demote, leaving C as the
	// last candidate and the pop's winner.
	if got := w.theta(); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("setup: theta = %v, want 1.6", got)
	}
	e, _, _, ok := w.popBest()
	if !ok {
		t.Fatal("popBest failed")
	}
	if e != c {
		t.Errorf("popped %v, want %v: the decayed leader %v must demote against the Θ snapshot", e, c, b)
	}
	if w.demotions != 2 {
		t.Errorf("demotions = %d, want 2 (both decayed leaders)", w.demotions)
	}
	if entB := findEntry(t, w, b); entB.kind != inSecondary {
		t.Errorf("decayed leader %v kind = %d, want secondary", b, entB.kind)
	}
}

// exactScoreSum recomputes Σ cached scores over live entries.
func exactScoreSum(w *window) float64 {
	var sum float64
	for _, ent := range w.candidates {
		sum += ent.score
	}
	for _, ent := range w.secondary {
		sum += ent.score
	}
	return sum
}

// churnWindow runs a randomized add/pop/reassess workload that exercises
// every scoreSum update path.
func churnWindow(t *testing.T, w *window, sc *scorer, ops int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	randEdge := func() graph.Edge {
		u := graph.VertexID(rng.Intn(512))
		v := graph.VertexID(rng.Intn(512))
		return graph.Edge{Src: u, Dst: v}
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Float64(); {
		case r < 0.55 || w.len() == 0:
			w.add(randEdge())
		case r < 0.9:
			e, p, _, ok := w.popBest()
			if !ok {
				t.Fatal("popBest failed on non-empty window")
			}
			newSrc, newDst := sc.commit(e, p)
			if newSrc {
				w.reassess(e.Src)
			}
			if newDst && e.Dst != e.Src {
				w.reassess(e.Dst)
			}
		default:
			w.reassess(graph.VertexID(rng.Intn(512)))
		}
	}
}

// TestRescanRecomputesScoreSumExactly pins the drift fix: Θ is maintained
// by incremental += score−old updates, which accumulate one floating-
// point rounding each. After a long churn, a secondary rescan — which
// just refreshed every secondary score anyway — must leave scoreSum
// *exactly* equal to the sum over live entries, not within-epsilon.
func TestRescanRecomputesScoreSumExactly(t *testing.T) {
	w, sc := newTestWindow(8, 0.1, 32, false)
	churnWindow(t, w, sc, 20_000, 42)
	if w.len() == 0 {
		t.Fatal("churn drained the window")
	}
	w.rescanSecondary()
	if got, want := w.scoreSum, exactScoreSum(w); got != want {
		t.Errorf("scoreSum after rescan = %v, want exact Σ %v (drift %g)", got, want, got-want)
	}
}

// TestScoreSumTracksLiveEntriesUnderChurn is the drift invariant: across
// a long randomized workload the incrementally maintained scoreSum must
// stay within float tolerance of Σ live-entry scores (rescans re-anchor
// it exactly; between rescans only bounded rounding may accumulate).
func TestScoreSumTracksLiveEntriesUnderChurn(t *testing.T) {
	w, sc := newTestWindow(8, 0.1, 32, false)
	for round := 0; round < 40; round++ {
		churnWindow(t, w, sc, 500, int64(round))
		got, want := w.scoreSum, exactScoreSum(w)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("round %d: scoreSum %v drifted from Σ %v", round, got, want)
		}
	}
}
