package core

import (
	"math/rand"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// populatedScorer returns a scorer over k partitions with a warm cache:
// n random assignments so replica bitmaps have plenty of set bits for
// the word-scan kernel to walk.
func populatedScorer(tb testing.TB, k, n int) *scorer {
	tb.Helper()
	sc, cache := newTestScorer(k, 1.0, true, int64(n))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		e := graph.Edge{
			Src: graph.VertexID(rng.Intn(n / 4)),
			Dst: graph.VertexID(rng.Intn(n / 4)),
		}
		cache.Assign(e, rng.Intn(k))
	}
	return sc
}

// TestScoreEdgeKernelZeroAlloc pins the //adwise:zeroalloc stamp on the
// replica-scan kernel: a scoring evaluation — balance copy, word-scan
// replica scatter, clustering accumulation, argmax — allocates nothing.
// The adwise-lint hotpath rule stops the source patterns; this proves
// today's compiler output.
func TestScoreEdgeKernelZeroAlloc(t *testing.T) {
	for _, k := range []int{8, 96} { // one-word and multi-word bitmaps
		sc := populatedScorer(t, k, 4_000)
		view := sc.view()
		neighbors := []graph.VertexID{3, 17, 99, 256, 700}
		e := graph.Edge{Src: 1, Dst: 2}
		allocs := testing.AllocsPerRun(200, func() {
			view.scoreEdge(e, neighbors, sc.prime)
		})
		if allocs != 0 {
			t.Errorf("k=%d: scoreEdge kernel allocated %.1f per run, want 0", k, allocs)
		}
	}
}

// BenchmarkScoreEdgeKernel measures one scoring evaluation on a warm
// cache — the per-edge cost every refill batch and rescore pass pays.
func BenchmarkScoreEdgeKernel(b *testing.B) {
	for _, bc := range []struct {
		name       string
		k          int
		clustering bool
	}{
		{"k=8/cs=on", 8, true},
		{"k=8/cs=off", 8, false},
		{"k=96/cs=on", 96, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sc, cache := newTestScorer(bc.k, 1.0, bc.clustering, 40_000)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 40_000; i++ {
				e := graph.Edge{
					Src: graph.VertexID(rng.Intn(10_000)),
					Dst: graph.VertexID(rng.Intn(10_000)),
				}
				cache.Assign(e, rng.Intn(bc.k))
			}
			view := sc.view()
			neighbors := []graph.VertexID{3, 17, 99, 256, 700}
			e := graph.Edge{Src: 1, Dst: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view.scoreEdge(e, neighbors, sc.prime)
			}
		})
	}
}
