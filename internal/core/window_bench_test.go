package core

import (
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/stream"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.Community(60, 12, 0.9, 2000, 11)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPopBest measures the window's assignment loop: fill a fixed
// window, then repeatedly pop the best-scoring edge — the inner loop of
// Algorithm 1 whose cost is dominated by vertex-cache lookups.
func BenchmarkPopBest(b *testing.B) {
	for _, w := range []int{64, 256} {
		b.Run(map[int]string{64: "w=64", 256: "w=256"}[w], func(b *testing.B) {
			g := benchGraph(b)
			b.ReportAllocs()
			b.ResetTimer()
			pops := 0
			for pops < b.N {
				b.StopTimer()
				ad, err := New(16, WithInitialWindow(w), WithFixedWindow())
				if err != nil {
					b.Fatal(err)
				}
				s := stream.FromEdges(g.Edges)
				// Pre-fill the window outside the timed region.
				for ad.win.len() < w {
					e, ok := s.Next()
					if !ok {
						break
					}
					ad.win.add(e)
				}
				b.StartTimer()
				// One op = pop best, commit, refill one edge — the steady
				// state of Algorithm 1's assignment loop.
				for ad.win.len() > 0 && pops < b.N {
					e, p, _, ok := ad.win.popBest()
					if !ok {
						break
					}
					ad.scorer.commit(e, p)
					if e2, ok := s.Next(); ok {
						ad.win.add(e2)
					}
					pops++
				}
			}
		})
	}
}

// BenchmarkAdwiseRun measures a full fixed-window pass end to end: window
// refill (batched stream draw), scoring, cache updates.
func BenchmarkAdwiseRun(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ad, err := New(16, WithInitialWindow(128), WithFixedWindow())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ad.Run(stream.FromEdges(g.Edges)); err != nil {
			b.Fatal(err)
		}
	}
}
