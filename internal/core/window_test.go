package core

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

func newTestWindow(k int, epsilon float64, maxCand int, eager bool) (*window, *scorer) {
	sc, _ := newTestScorer(k, 1.0, true, 100)
	w := newWindow(sc, newScorePool(nil, 1, k, len(sc.parts)), epsilon, maxCand, eager)
	return w, sc
}

func TestWindowThetaTracksMean(t *testing.T) {
	w, _ := newTestWindow(2, 0.1, 64, false)
	if got := w.theta(); got != 0.1 {
		t.Errorf("theta on empty window = %v, want ε=0.1", got)
	}
	w.add(graph.Edge{Src: 0, Dst: 1})
	w.add(graph.Edge{Src: 2, Dst: 3})
	// Empty cache: all scores 0 → mean 0 → Θ = ε.
	if got := w.theta(); got != 0.1 {
		t.Errorf("theta = %v, want 0.1", got)
	}
	if w.len() != 2 {
		t.Errorf("len = %d, want 2", w.len())
	}
}

func TestWindowClassification(t *testing.T) {
	// With a populated cache, an edge incident to a replicated vertex
	// scores above Θ and must enter the candidate set; a cold edge stays
	// secondary. Partition sizes are kept balanced so the cold edge's
	// balance term is exactly zero.
	w, sc := newTestWindow(2, 0.1, 64, false)
	sc.commit(graph.Edge{Src: 0, Dst: 1}, 0)
	sc.commit(graph.Edge{Src: 20, Dst: 21}, 1)

	w.add(graph.Edge{Src: 50, Dst: 51}) // cold: zero score
	w.add(graph.Edge{Src: 0, Dst: 60})  // hot: replication score on p0
	if len(w.candidates) != 1 {
		t.Fatalf("candidates = %d, want 1", len(w.candidates))
	}
	if len(w.secondary) != 1 {
		t.Fatalf("secondary = %d, want 1", len(w.secondary))
	}
	if got := w.candidates[0].edge; got != (graph.Edge{Src: 0, Dst: 60}) {
		t.Errorf("candidate edge = %v", got)
	}
}

func TestWindowEagerAllCandidates(t *testing.T) {
	w, _ := newTestWindow(2, 0.1, 64, true)
	w.add(graph.Edge{Src: 0, Dst: 1})
	w.add(graph.Edge{Src: 2, Dst: 3})
	if len(w.candidates) != 2 || len(w.secondary) != 0 {
		t.Errorf("eager window split %d/%d, want all candidates",
			len(w.candidates), len(w.secondary))
	}
}

func TestWindowMaxCandidatesRespected(t *testing.T) {
	w, sc := newTestWindow(2, 0.0, 2, false)
	sc.commit(graph.Edge{Src: 0, Dst: 1}, 0)
	// Several hot edges, but the candidate cap is 2.
	for i := 0; i < 5; i++ {
		w.add(graph.Edge{Src: 0, Dst: graph.VertexID(100 + i)})
	}
	if len(w.candidates) > 2 {
		t.Errorf("candidates = %d, want <= cap 2", len(w.candidates))
	}
	if w.len() != 5 {
		t.Errorf("window lost edges: len=%d", w.len())
	}
}

func TestWindowPopBestDrainsEverything(t *testing.T) {
	w, sc := newTestWindow(2, 0.1, 64, false)
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 2, Dst: 0}}
	for _, e := range edges {
		w.add(e)
	}
	seen := make(map[graph.Edge]bool)
	for i := 0; i < len(edges); i++ {
		e, p, _, ok := w.popBest()
		if !ok {
			t.Fatalf("popBest exhausted after %d pops, want %d", i, len(edges))
		}
		if p < 0 || p >= 2 {
			t.Fatalf("popBest partition %d out of range", p)
		}
		if seen[e] {
			t.Fatalf("edge %v popped twice", e)
		}
		seen[e] = true
		sc.commit(e, p)
	}
	if _, _, _, ok := w.popBest(); ok {
		t.Error("popBest returned an edge from an empty window")
	}
	if w.len() != 0 {
		t.Errorf("window len = %d after draining", w.len())
	}
}

func TestWindowPopBestPrefersInformedEdge(t *testing.T) {
	// The Figure 3(b) scenario: with e1 cold and e2 hot, the window must
	// assign e2 first even though e1 arrived first.
	w, sc := newTestWindow(2, 0.01, 64, false)
	sc.commit(graph.Edge{Src: 10, Dst: 11}, 0) // warm up vertex 10 on p0

	cold := graph.Edge{Src: 1, Dst: 2}
	hot := graph.Edge{Src: 10, Dst: 3}
	w.add(cold)
	w.add(hot)
	e, p, score, ok := w.popBest()
	if !ok {
		t.Fatal("popBest failed")
	}
	if e != hot {
		t.Errorf("popped %v first, want the informed edge %v", e, hot)
	}
	if p != 0 {
		t.Errorf("assigned to %d, want 0 (replica of vertex 10)", p)
	}
	if score <= 0 {
		t.Errorf("winning score = %v, want > 0", score)
	}
}

func TestWindowReassessPromotes(t *testing.T) {
	w, sc := newTestWindow(2, 0.05, 64, false)
	// Cold edge lands in secondary.
	cold := graph.Edge{Src: 7, Dst: 8}
	w.add(cold)
	if len(w.secondary) != 1 {
		t.Fatalf("expected cold edge in secondary, got %d/%d", len(w.candidates), len(w.secondary))
	}
	// An assignment creates a replica for vertex 7 — reassessing must
	// promote the incident secondary edge past Θ.
	sc.commit(graph.Edge{Src: 7, Dst: 9}, 1)
	w.reassess(7)
	if len(w.candidates) != 1 {
		t.Errorf("reassess did not promote: %d/%d", len(w.candidates), len(w.secondary))
	}
	if w.promotions != 1 {
		t.Errorf("promotions = %d, want 1", w.promotions)
	}
}

func TestWindowNeighborsFromWindowEdges(t *testing.T) {
	w, _ := newTestWindow(2, 0.1, 64, false)
	w.add(graph.Edge{Src: 1, Dst: 2})
	w.add(graph.Edge{Src: 2, Dst: 3})
	w.add(graph.Edge{Src: 4, Dst: 5})

	// N(1)∪N(2) for edge (1,2): from window edges, 2's other neighbour is
	// 3; endpoints themselves are excluded.
	nbs := w.neighbors(graph.Edge{Src: 1, Dst: 2})
	if len(nbs) != 1 || nbs[0] != 3 {
		t.Errorf("neighbors = %v, want [3]", nbs)
	}
	// Disconnected edge has no window neighbourhood.
	if nbs := w.neighbors(graph.Edge{Src: 4, Dst: 5}); len(nbs) != 0 {
		t.Errorf("neighbors = %v, want empty", nbs)
	}
}

func TestWindowIncidentCompaction(t *testing.T) {
	w, sc := newTestWindow(2, 0.1, 64, false)
	e1 := graph.Edge{Src: 1, Dst: 2}
	e2 := graph.Edge{Src: 1, Dst: 3}
	w.add(e1)
	w.add(e2)
	// Pop both; incident lists must compact to empty on next access.
	for i := 0; i < 2; i++ {
		e, p, _, ok := w.popBest()
		if !ok {
			t.Fatal("popBest failed")
		}
		sc.commit(e, p)
	}
	if live := w.iterIncident(1); len(live) != 0 {
		t.Errorf("incident(1) = %d live entries after removal", len(live))
	}
	if _, ok := w.incident[1]; ok {
		t.Error("incident map entry for vertex 1 not deleted after compaction")
	}
}

func TestWindowScoreSumConsistency(t *testing.T) {
	w, sc := newTestWindow(4, 0.1, 64, false)
	sc.commit(graph.Edge{Src: 0, Dst: 1}, 0)
	sc.commit(graph.Edge{Src: 2, Dst: 3}, 1)
	edges := []graph.Edge{{Src: 0, Dst: 5}, {Src: 2, Dst: 6}, {Src: 7, Dst: 8}, {Src: 0, Dst: 2}}
	for _, e := range edges {
		w.add(e)
	}
	for w.len() > 0 {
		var sum float64
		for _, ent := range w.candidates {
			sum += ent.score
		}
		for _, ent := range w.secondary {
			sum += ent.score
		}
		if diff := sum - w.scoreSum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("scoreSum drifted: tracked %v, actual %v", w.scoreSum, sum)
		}
		e, p, _, ok := w.popBest()
		if !ok {
			break
		}
		sc.commit(e, p)
	}
}
