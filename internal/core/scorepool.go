package core

import (
	"sync"
)

// scorePool shards window scoring passes across a fixed set of workers.
//
// Determinism contract: a pass result must be byte-for-byte independent of
// the worker count and of whether the pool ran a pass in parallel at all.
// The pool guarantees this by construction —
//
//   - shard boundaries are a fixed function of (items, n): shard i covers
//     [i·items/n, (i+1)·items/n), so the same items always land in the
//     same shard;
//   - workers only compute: they write disjoint result slots and never
//     touch window state, so evaluation order cannot leak into results
//     (scoreEdge is a pure function of the per-pass scoreView and the
//     cache, which nothing mutates during a pass);
//   - every reduction over shard results (argmax, top-two) merges in shard
//     order with strictly-greater comparisons, which reproduces exactly
//     the first-wins-ties semantics of a single left-to-right scan — the
//     insertion-order tie-break of the serial code.
//
// Mutations (updateScore, promote/demote, set surgery) happen strictly
// after the parallel phase, serially, in snapshot order. The pool is
// therefore an execution detail: workers ∈ {1, 2, …} produce edge-for-edge
// identical assignments.
//
// Workers are started lazily on the first pass large enough to shard and
// torn down by stop() (deferred in Adwise.Run). A pool with n == 1 never
// starts goroutines and runs every pass inline.
type scorePool struct {
	n       int
	scratch []*scoreScratch // one per worker; scratch[0] serves the caller's shard

	tasks   chan func()
	started bool

	// passes counts passes that actually ran on the workers (≥2 shards).
	passes int64
}

// Grain thresholds: below these sizes the dispatch overhead exceeds the
// work and a pass runs inline on the caller (identical results — see the
// determinism contract above).
const (
	// scoreGrainPerWorker is the minimum number of scoreEdge evaluations
	// per shard worth dispatching: one evaluation costs O(k + |N|) cache
	// probes, a few hundred ns at least.
	scoreGrainPerWorker = 32
	// scanGrain is the minimum candidate count worth sharding a cached-
	// score scan over: the scan is a float compare per entry, so only very
	// large windows amortise the handoff.
	scanGrain = 1 << 14
)

func newScorePool(n, k, nparts int) *scorePool {
	if n < 1 {
		n = 1
	}
	p := &scorePool{n: n, scratch: make([]*scoreScratch, n)}
	for i := range p.scratch {
		p.scratch[i] = newScoreScratch(k, nparts)
	}
	return p
}

// start spawns the n-1 helper goroutines (the caller always works shard 0
// inline). Idempotent.
func (p *scorePool) start() {
	if p.started || p.n <= 1 {
		return
	}
	p.started = true
	p.tasks = make(chan func(), p.n-1)
	for i := 1; i < p.n; i++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
}

// stop tears the helper goroutines down. Idempotent; the pool can not be
// restarted (Adwise instances are single-Run).
func (p *scorePool) stop() {
	if p == nil || !p.started {
		return
	}
	p.started = false
	close(p.tasks)
}

// shard returns the fixed boundaries of shard i over items elements.
func (p *scorePool) shard(i, items int) (lo, hi int) {
	return i * items / p.n, (i + 1) * items / p.n
}

// forEach runs fn over [0, items) split into the pool's fixed shards,
// handing each shard its worker id (the index of the scratch it owns).
// Passes smaller than minPerWorker·n run inline on the caller with worker
// id 0 — by the determinism contract the result is identical either way.
// It reports whether the pass actually ran on the workers.
func (p *scorePool) forEach(items, minPerWorker int, fn func(worker, lo, hi int)) bool {
	if p == nil || p.n <= 1 || items < minPerWorker*p.n {
		fn(0, 0, items)
		return false
	}
	p.start()
	p.passes++
	var wg sync.WaitGroup
	for i := 1; i < p.n; i++ {
		lo, hi := p.shard(i, items)
		if lo == hi {
			continue
		}
		wg.Add(1)
		worker := i
		p.tasks <- func() {
			defer wg.Done()
			fn(worker, lo, hi)
		}
	}
	lo, hi := p.shard(0, items)
	fn(0, lo, hi)
	wg.Wait()
	return true
}

// workerOps returns the per-worker score-op counters (index = worker id).
// Worker 0's inline-pass ops are included; the scorer's prime scratch is
// accounted separately.
func (p *scorePool) workerOps() []int64 {
	if p == nil {
		return nil
	}
	ops := make([]int64, len(p.scratch))
	for i, s := range p.scratch {
		ops[i] = s.scoreOps
	}
	return ops
}

// totalOps sums the scoring work done on the pool's scratches.
func (p *scorePool) totalOps() int64 {
	var sum int64
	if p == nil {
		return 0
	}
	for _, s := range p.scratch {
		sum += s.scoreOps
	}
	return sum
}

// shardTop is one shard's cached-score scan result.
type shardTop struct {
	bestIdx   int     // index of the shard's best entry, -1 if the shard was empty
	bestScore float64 // cached score at bestIdx
	second    float64 // best runner-up cached score within the shard (0 floor)
}

// topTwoCached scans entries' cached scores for the argmax and the
// runner-up score — the lazy-selection scan of §III-B — sharded over the
// pool when the window is large enough. The merge walks shards in order
// with strictly-greater comparisons, so the result (including the
// earliest-index tie-break) is exactly that of one serial left-to-right
// scan; the runner-up keeps the serial code's 0 floor (scores are
// non-negative).
func (p *scorePool) topTwoCached(entries []*winEntry) (bestIdx int, second float64) {
	if len(entries) == 0 {
		return -1, 0
	}
	n := 1
	if p != nil && p.n > 1 && len(entries) >= scanGrain {
		n = p.n
	}
	if n == 1 {
		top := scanTopTwo(entries, 0, len(entries))
		return top.bestIdx, top.second
	}
	tops := make([]shardTop, n)
	p.forEach(len(entries), scanGrain/p.n, func(worker, lo, hi int) {
		tops[worker] = scanTopTwo(entries, lo, hi)
	})
	merged := shardTop{bestIdx: -1}
	for _, t := range tops {
		if t.bestIdx < 0 {
			continue
		}
		if merged.bestIdx < 0 {
			merged = t
			continue
		}
		if t.bestScore > merged.bestScore {
			// The old leader becomes the runner-up candidate; the new
			// shard's own runner-up competes too.
			second := merged.bestScore
			if t.second > second {
				second = t.second
			}
			merged = shardTop{bestIdx: t.bestIdx, bestScore: t.bestScore, second: second}
		} else {
			// t.bestScore ≤ leader: it is the shard's only candidate for
			// the global runner-up (its own runner-up is no larger).
			if t.bestScore > merged.second {
				merged.second = t.bestScore
			}
		}
	}
	return merged.bestIdx, merged.second
}

// scanTopTwo is the serial scan kernel over entries[lo:hi]: first-wins
// argmax on strictly-greater, runner-up floored at 0 (all scores are
// non-negative), matching the historical selectLazy scan semantics.
func scanTopTwo(entries []*winEntry, lo, hi int) shardTop {
	if lo >= hi {
		return shardTop{bestIdx: -1}
	}
	top := shardTop{bestIdx: lo, bestScore: entries[lo].score}
	for i := lo + 1; i < hi; i++ {
		if s := entries[i].score; s > top.bestScore {
			top.second = top.bestScore
			top.bestIdx, top.bestScore = i, s
		} else if s > top.second {
			top.second = s
		}
	}
	return top
}
