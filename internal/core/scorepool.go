package core

import (
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/scorepool"
)

// scorePool is one instance's view of window-scoring parallelism: it
// splits a pass into the instance's fixed logical shards and submits them
// to a scorepool.Pool — normally the process-wide shared pool — where the
// instance's own goroutine and any idle pool worker execute them. Under
// spotlight loading this is what lets an instance on a dense segment
// borrow the cores an instance on a sparse segment is not using, instead
// of being pinned to a static cores/z slice of the machine.
//
// Determinism contract: a pass result must be byte-for-byte independent
// of the pool's worker count, of stealing order, and of whether the pass
// ran in parallel at all. The client guarantees this by construction —
//
//   - shard boundaries are a fixed function of (items, n): shard i covers
//     [i·items/n, (i+1)·items/n) with n the instance's *logical* shard
//     count, never the pool width, so the same items always land in the
//     same shard;
//   - shard i always computes with scratch i, and shards only compute:
//     they write disjoint result slots and never touch window state, so
//     neither evaluation order nor the executing goroutine can leak into
//     results (scoreEdge is a pure function of the per-pass scoreView and
//     the cache, which nothing mutates during a pass);
//   - every reduction over shard results (argmax, top-two) merges in shard
//     order with strictly-greater comparisons, which reproduces exactly
//     the first-wins-ties semantics of a single left-to-right scan — the
//     insertion-order tie-break of the serial code.
//
// Mutations (updateScore, promote/demote, set surgery) happen strictly
// after the parallel phase, serially, in snapshot order. The pool is
// therefore an execution detail: any shard count and any pool produce
// edge-for-edge identical assignments.
//
// A client with n == 1 or without a pool never leaves the caller's
// goroutine and runs every pass inline.
type scorePool struct {
	pool *scorepool.Pool // nil → every pass runs inline on the caller
	n    int             // logical shard count (fixed at construction)

	// scratch[i] is owned by logical shard i: at most one pass is active
	// per instance and each shard is claimed exactly once, so whichever
	// goroutine executes shard i has exclusive use of scratch i. Ops
	// accumulated here are this instance's alone — per-instance
	// attribution is structural, not bookkept.
	scratch []*scoreScratch

	pass scorepool.Pass // reusable submission state

	// passes counts passes that actually ran on the pool (≥2 shards);
	// stolen counts shards of those passes executed by pool workers
	// rather than this instance; helpersPeak is the largest number of
	// distinct pool workers that served a single pass.
	passes      int64
	stolen      int64
	helpersPeak int

	// mPasses/mStolen, when set (WithMetrics), mirror the pass and steal
	// counters onto a live telemetry registry. They tick once per pool
	// pass — never per edge — so the scoring hot loop is untouched.
	mPasses *metric.Counter
	mStolen *metric.Counter
}

// Grain thresholds: below these sizes the dispatch overhead exceeds the
// work and a pass runs inline on the caller (identical results — see the
// determinism contract above).
const (
	// scoreGrainPerWorker is the minimum number of scoreEdge evaluations
	// per shard worth dispatching: one evaluation costs O(k + |N|) cache
	// probes, a few hundred ns at least.
	scoreGrainPerWorker = 32
	// scanGrain is the minimum candidate count worth sharding a cached-
	// score scan over: the scan is a float compare per entry, so only very
	// large windows amortise the handoff.
	scanGrain = 1 << 14
)

func newScorePool(pool *scorepool.Pool, n, k, nparts int) *scorePool {
	if n < 1 {
		n = 1
	}
	p := &scorePool{pool: pool, n: n, scratch: make([]*scoreScratch, n)}
	for i := range p.scratch {
		p.scratch[i] = newScoreScratch(k, nparts)
	}
	return p
}

// shard returns the fixed boundaries of shard i over items elements.
func (p *scorePool) shard(i, items int) (lo, hi int) {
	return i * items / p.n, (i + 1) * items / p.n
}

// forEach runs fn over [0, items) split into the instance's fixed logical
// shards, handing each shard its id (the index of the scratch it owns).
// Passes smaller than minPerShard·n run inline on the caller with shard
// id 0 — by the determinism contract the result is identical either way.
// It reports whether the pass actually ran on the pool.
func (p *scorePool) forEach(items, minPerShard int, fn func(shard, lo, hi int)) bool {
	if p == nil || p.n <= 1 || p.pool == nil || items < minPerShard*p.n {
		fn(0, 0, items)
		return false
	}
	p.passes++
	if p.mPasses != nil {
		p.mPasses.Inc(1)
	}
	stolen, helpers := p.pool.Run(&p.pass, p.n, func(shard int) {
		lo, hi := p.shard(shard, items)
		if lo < hi {
			fn(shard, lo, hi)
		}
	})
	p.stolen += int64(stolen)
	if p.mStolen != nil && stolen > 0 {
		p.mStolen.Inc(int64(stolen))
	}
	if helpers > p.helpersPeak {
		p.helpersPeak = helpers
	}
	return true
}

// workerOps returns the per-shard score-op counters (index = logical shard
// id). Shard 0's inline-pass ops are included; the scorer's prime scratch
// is accounted separately.
func (p *scorePool) workerOps() []int64 {
	if p == nil {
		return nil
	}
	ops := make([]int64, len(p.scratch))
	for i, s := range p.scratch {
		ops[i] = s.scoreOps
	}
	return ops
}

// totalOps sums the scoring work done on the client's shard scratches.
func (p *scorePool) totalOps() int64 {
	var sum int64
	if p == nil {
		return 0
	}
	for _, s := range p.scratch {
		sum += s.scoreOps
	}
	return sum
}

// shardTop is one shard's cached-score scan result.
type shardTop struct {
	bestIdx   int     // index of the shard's best entry, -1 if the shard was empty
	bestScore float64 // cached score at bestIdx
	second    float64 // best runner-up cached score within the shard (0 floor)
}

// topTwoCached scans a set's cached scores for the argmax and the
// runner-up score — the lazy-selection scan of §III-B — sharded over the
// pool when the window is large enough. The scan input is the set's flat
// score slice (struct-of-arrays: scores[i] mirrors the entry at index i),
// so each shard is a branch-light loop over contiguous float64s. The
// merge walks shards in order with strictly-greater comparisons, so the
// result (including the earliest-index tie-break) is exactly that of one
// serial left-to-right scan; the runner-up keeps the serial code's 0
// floor (scores are non-negative).
func (p *scorePool) topTwoCached(scores []float64) (bestIdx int, second float64) {
	if len(scores) == 0 {
		return -1, 0
	}
	if p == nil || p.n <= 1 || p.pool == nil || len(scores) < scanGrain {
		top := scanTopTwo(scores, 0, len(scores))
		return top.bestIdx, top.second
	}
	tops := make([]shardTop, p.n)
	p.forEach(len(scores), scanGrain/p.n, func(shard, lo, hi int) {
		tops[shard] = scanTopTwo(scores, lo, hi)
	})
	merged := shardTop{bestIdx: -1}
	for _, t := range tops {
		if t.bestIdx < 0 {
			continue
		}
		if merged.bestIdx < 0 {
			merged = t
			continue
		}
		if t.bestScore > merged.bestScore {
			// The old leader becomes the runner-up candidate; the new
			// shard's own runner-up competes too.
			second := merged.bestScore
			if t.second > second {
				second = t.second
			}
			merged = shardTop{bestIdx: t.bestIdx, bestScore: t.bestScore, second: second}
		} else {
			// t.bestScore ≤ leader: it is the shard's only candidate for
			// the global runner-up (its own runner-up is no larger).
			if t.bestScore > merged.second {
				merged.second = t.bestScore
			}
		}
	}
	return merged.bestIdx, merged.second
}

// scanTopTwo is the serial scan kernel over scores[lo:hi]: first-wins
// argmax on strictly-greater, runner-up floored at 0 (all scores are
// non-negative), matching the historical selectLazy scan semantics. The
// input is a contiguous float64 slice, so the loop is two compares and at
// most two moves per element — no pointer chasing.
func scanTopTwo(scores []float64, lo, hi int) shardTop {
	if lo >= hi {
		return shardTop{bestIdx: -1}
	}
	top := shardTop{bestIdx: lo, bestScore: scores[lo]}
	for i := lo + 1; i < hi; i++ {
		if s := scores[i]; s > top.bestScore {
			top.second = top.bestScore
			top.bestIdx, top.bestScore = i, s
		} else if s > top.second {
			top.second = s
		}
	}
	return top
}
