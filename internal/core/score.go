// Package core implements ADWISE, the adaptive window-based streaming
// edge partitioner of the paper (§III). The spotlight optimization for
// parallel loading (§III-D) lives in internal/runtime, which orchestrates
// this package's partitioner alongside the single-edge baselines.
package core

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Scoring function of §III-C:
//
//	g(e,p) = λ(ι,α)·B(p) + R(e,p) + CS(e,p)          (Eq. 7)
//
// with the adaptive balancing score B and weight λ (Eq. 3, 4), the
// degree-aware replication score R (Eq. 5) and the clustering score CS
// (Eq. 6).

// scorer evaluates g(e,p) against a vertex cache and maintains the
// adaptive balancing weight λ.
type scorer struct {
	cache *vcache.Cache
	parts []int // allowed partitions (spotlight spread)

	lambda     float64
	lambdaMin  float64
	lambdaMax  float64
	balanceEps float64 // ε in Eq. 3
	clustering bool

	totalEdges int64 // m in Eq. 4; <= 0 means unknown

	// scratch buffers, reused across calls
	csCounts []float64 // per-partition clustering-score counters
	scores   []float64 // per-allowed-partition scores
	scoreOps int64     // number of edge score evaluations (each covers all partitions)
}

func newScorer(cache *vcache.Cache, parts []int, cfg config) *scorer {
	return &scorer{
		cache:      cache,
		parts:      parts,
		lambda:     cfg.initialLambda,
		lambdaMin:  cfg.lambdaMin,
		lambdaMax:  cfg.lambdaMax,
		balanceEps: cfg.balanceEps,
		clustering: cfg.clustering,
		totalEdges: cfg.totalEdges,
		csCounts:   make([]float64, cache.K()),
		scores:     make([]float64, len(parts)),
	}
}

// scoreEdge computes g(e,p) for every allowed partition and returns the
// best score and its (global) partition id. neighbors is the window
// neighbourhood N(u)∪N(v) of the edge (excluding the endpoints
// themselves); it drives the clustering score of Eq. 6.
//
// The returned slice aliases internal scratch and is only valid until the
// next scoreEdge call.
func (s *scorer) scoreEdge(e graph.Edge, neighbors []graph.VertexID) (scores []float64, best float64, bestPart int) {
	s.scoreOps++
	minSize, maxSize := s.cache.MinMaxSizeOf(s.parts)
	sizeSpread := float64(maxSize-minSize) + s.balanceEps

	// Degree-aware replication score (Eq. 5): Ψu = deg(u)/(2·maxDegree),
	// so already-replicated low-degree endpoints pull harder (2−Ψ larger)
	// than high-degree ones — replicating high-degree vertices first.
	maxDeg := float64(s.cache.MaxDegree())
	degU, ru := s.cache.Lookup(e.Src)
	degV, rv := s.cache.Lookup(e.Dst)
	psiU := float64(degU) / (2 * maxDeg)
	psiV := float64(degV) / (2 * maxDeg)

	// Clustering score (Eq. 6): per-partition count of window neighbours
	// already replicated there, normalised by |N(u)∪N(v)|.
	useCS := s.clustering && len(neighbors) > 0
	if useCS {
		for _, p := range s.parts {
			s.csCounts[p] = 0
		}
		for _, n := range neighbors {
			s.cache.Replicas(n).ForEach(func(p int) bool {
				s.csCounts[p]++
				return true
			})
		}
	}

	invN := 0.0
	if useCS {
		invN = 1 / float64(len(neighbors))
	}
	best, bestPart = -1, s.parts[0]
	for i, p := range s.parts {
		bal := float64(maxSize-s.cache.Size(p)) / sizeSpread
		g := s.lambda * bal
		if ru.Contains(p) {
			g += 2 - psiU
		}
		if e.Dst != e.Src && rv.Contains(p) {
			g += 2 - psiV
		}
		if useCS {
			g += s.csCounts[p] * invN
		}
		s.scores[i] = g
		if g > best {
			best, bestPart = g, p
		}
	}
	return s.scores, best, bestPart
}

// commit records the assignment of e to partition p in the vertex cache
// and performs the per-assignment λ update of Eq. 4. It reports which
// endpoints gained a new replica (these drive lazy reassessment, §III-B).
func (s *scorer) commit(e graph.Edge, p int) (newSrc, newDst bool) {
	newSrc, newDst = s.cache.Assign(e, p)

	// Adaptive balancing (Eq. 4): λ += ι − tolerance(α) with
	// tolerance(α) = max(0, 1−α), clamped to [λmin, λmax].
	minSize, maxSize := s.cache.MinMaxSizeOf(s.parts)
	var iota float64
	if maxSize > 0 {
		iota = float64(maxSize-minSize) / float64(maxSize)
	}
	alpha := 1.0
	if s.totalEdges > 0 {
		alpha = float64(s.cache.Assigned()) / float64(s.totalEdges)
		if alpha > 1 {
			alpha = 1
		}
	}
	tolerance := 1 - alpha
	if tolerance < 0 {
		tolerance = 0
	}
	s.lambda += iota - tolerance
	if s.lambda < s.lambdaMin {
		s.lambda = s.lambdaMin
	}
	if s.lambda > s.lambdaMax {
		s.lambda = s.lambdaMax
	}
	return newSrc, newDst
}
