// Package core implements ADWISE, the adaptive window-based streaming
// edge partitioner of the paper (§III). The spotlight optimization for
// parallel loading (§III-D) lives in internal/runtime, which orchestrates
// this package's partitioner alongside the single-edge baselines.
package core

import (
	"math/bits"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Scoring function of §III-C:
//
//	g(e,p) = λ(ι,α)·B(p) + R(e,p) + CS(e,p)          (Eq. 7)
//
// with the adaptive balancing score B and weight λ (Eq. 3, 4), the
// degree-aware replication score R (Eq. 5) and the clustering score CS
// (Eq. 6).
//
// Scoring is split into three pieces so window passes can run on a worker
// pool (see scorepool.go):
//
//   - scoreView is the immutable per-pass snapshot of everything a score
//     depends on besides the edge itself: λ, the partition-size extrema,
//     the maximum degree, and a read-only handle on the vertex cache.
//     Within one scoring pass no assignment is committed, so the snapshot
//     is exact — and because it is never written during the pass, any
//     number of workers can score against it concurrently.
//   - scoreScratch is the per-worker mutable state: the clustering-score
//     counters, the per-partition score buffer, the neighbourhood
//     collection buffers, and the worker's score-op counter. Each worker
//     owns one; nothing in a scratch is shared.
//   - scorer owns the cache, the adaptive λ, and a "prime" scratch for the
//     serial paths (add, reassess, single-leader rescores), and mints
//     scoreViews at pass boundaries.

// scoreScratch is the mutable per-worker scoring state. One scratch is
// owned by exactly one goroutine at a time; the pool hands scratch i to
// shard-worker i and the scorer's prime scratch serves every serial path.
type scoreScratch struct {
	csCounts        []float64 // per-global-partition clustering-score counters
	scores          []float64 // per-allowed-partition scores
	neighborScratch []graph.VertexID
	seenScratch     map[graph.VertexID]struct{}
	// scoreOps counts edge score evaluations performed with this scratch
	// (each evaluation covers all allowed partitions).
	scoreOps int64
}

func newScoreScratch(k, nparts int) *scoreScratch {
	return &scoreScratch{
		// Padded to a whole number of 64-bit bitmap words: the clustering
		// accumulation scatters by word-scanning replica bitmaps, and a
		// padded buffer lets that scan index without a per-bit k bound
		// check (bits ≥ k are never set, but the slots must exist).
		csCounts:    make([]float64, paddedParts(k)),
		scores:      make([]float64, nparts),
		seenScratch: make(map[graph.VertexID]struct{}, 64),
	}
}

// paddedParts rounds the partition count up to a whole number of 64-bit
// replica-bitmap words, so word-scan kernels can index scatter targets by
// raw bit position without bounds branches.
func paddedParts(k int) int { return (k + 63) / 64 * 64 }

// scoreView is the immutable scoring snapshot for one window pass. All
// fields are fixed at construction (scorer.view); scoreEdge only reads
// them plus the cache, which no one mutates during a pass — commits happen
// strictly between passes. This is what makes a scoring pass safe to shard
// across workers and, independently, what pins the pass semantics: every
// edge scored in one pass sees the same λ, sizes, and degrees, regardless
// of evaluation order.
//
// The balance term λ·B(p) of Eq. 7 depends only on λ and the partition
// sizes — both fixed for the pass — so the view carries it precomputed
// per allowed partition: the inner scoring loop reads one float64 from a
// flat slice instead of recomputing a division per (edge, partition)
// pair. The precomputation evaluates λ·(maxSize−size(p))/spread with the
// same operation order as the historical per-edge form, so pass scores
// are bit-identical.
type scoreView struct {
	cache vcache.VertexState // read-only during the pass
	parts []int

	// balance[i] = λ·B(parts[i]), fixed for the pass. Aliases the minting
	// scorer's balBuf; valid until the next view is minted, which only
	// happens at pass boundaries.
	balance []float64
	// partIdx maps a global partition id to its index in parts (and hence
	// in balance and the per-scratch score buffer), −1 for partitions
	// outside the allowed spread. Padded to whole bitmap words and static
	// for the scorer's lifetime; it is what lets the kernel scatter
	// replication addends by replica-bitmap bit position instead of
	// probing Contains per allowed partition.
	partIdx    []int32
	maxDeg     float64
	clustering bool
}

// scoreEdge computes g(e,p) for every allowed partition and returns the
// best score and its (global) partition id. neighbors is the window
// neighbourhood N(u)∪N(v) of the edge (excluding the endpoints
// themselves); it drives the clustering score of Eq. 6. All mutable state
// lives in scr, so concurrent calls with distinct scratches are safe.
//
// This is the replica-scan kernel of the scoring hot loop, written
// branch-light over the flat SoA buffers: the score buffer is seeded with
// the precomputed balance terms in one copy, the replication addends are
// scattered by word-scanning the endpoint replica bitmaps with math/bits
// (set bits only — no per-partition Contains probe, no per-bit closure),
// the clustering counts accumulate the same way over the neighbour
// bitmaps, and one flat fold finishes the per-partition sums and the
// argmax. Floating-point operation order per partition slot is identical
// to the historical per-partition loop (balance, +R(u), +R(v), +CS, in
// that order), so scores are bit-identical.
//
// The returned slice aliases scr.scores and is only valid until the next
// scoreEdge call with the same scratch.
//
//adwise:zeroalloc
func (v *scoreView) scoreEdge(e graph.Edge, neighbors []graph.VertexID, scr *scoreScratch) (scores []float64, best float64, bestPart int) {
	scr.scoreOps++

	// Degree-aware replication score (Eq. 5): Ψu = deg(u)/(2·maxDegree),
	// so already-replicated low-degree endpoints pull harder (2−Ψ larger)
	// than high-degree ones — replicating high-degree vertices first.
	degU, ruWords := v.cache.LookupWords(e.Src)

	// Clustering score (Eq. 6): per-partition count of window neighbours
	// already replicated there, normalised by |N(u)∪N(v)|. The counters
	// accumulate at every set bit (csCounts is padded to whole words);
	// only allowed slots are cleared and read, as before.
	useCS := v.clustering && len(neighbors) > 0
	if useCS {
		for _, p := range v.parts {
			scr.csCounts[p] = 0
		}
		for _, n := range neighbors {
			_, nw := v.cache.LookupWords(n)
			for wi, wd := range nw {
				base := wi << 6
				for wd != 0 {
					scr.csCounts[base+bits.TrailingZeros64(wd)]++
					wd &= wd - 1
				}
			}
		}
	}

	// Seed every allowed slot with its balance term, then scatter the
	// replication addends at the endpoints' replica bits.
	copy(scr.scores, v.balance)
	scatterReplica(scr.scores, v.partIdx, ruWords, 2-float64(degU)/(2*v.maxDeg))
	if e.Dst != e.Src {
		degV, rvWords := v.cache.LookupWords(e.Dst)
		scatterReplica(scr.scores, v.partIdx, rvWords, 2-float64(degV)/(2*v.maxDeg))
	}

	if useCS {
		invN := 1 / float64(len(neighbors))
		for i, p := range v.parts {
			scr.scores[i] += scr.csCounts[p] * invN
		}
	}

	// First-wins argmax in allowed-partition order — the same tie-break
	// as the historical fused loop.
	best, bestPart = -1, v.parts[0]
	for i, g := range scr.scores {
		if g > best {
			best, bestPart = g, v.parts[i]
		}
	}
	return scr.scores, best, bestPart
}

// scatterReplica adds addend to the score slot of every allowed partition
// whose bit is set in words — the word-scan replacement for the
// per-partition Contains probe of the replication term. partIdx is padded
// past the highest possible bit, so the inner loop's only branch besides
// the scan itself is the allowed-spread guard.
//
//adwise:zeroalloc
func scatterReplica(scores []float64, partIdx []int32, words []uint64, addend float64) {
	for wi, wd := range words {
		base := wi << 6
		for wd != 0 {
			if idx := partIdx[base+bits.TrailingZeros64(wd)]; idx >= 0 {
				scores[idx] += addend
			}
			wd &= wd - 1
		}
	}
}

// scorer evaluates g(e,p) against a vertex cache and maintains the
// adaptive balancing weight λ. It is the pass-boundary owner of scoring:
// views are minted per pass, and the prime scratch backs the serial paths.
type scorer struct {
	cache vcache.VertexState
	parts []int // allowed partitions (spotlight spread)

	lambda     float64
	lambdaMin  float64
	lambdaMax  float64
	balanceEps float64 // ε in Eq. 3
	clustering bool

	totalEdges int64 // m in Eq. 4; <= 0 means unknown

	// prime is the scratch of the serial scoring paths (window add,
	// reassess, lazy-leader rescores). Worker scratches live in scorePool.
	prime *scoreScratch

	// balBuf backs scoreView.balance: one float64 per allowed partition,
	// refilled by view() at each pass boundary. At most one pass (and hence
	// one live view) exists per scorer, so reuse is safe.
	balBuf []float64
	// partIdx backs scoreView.partIdx: global partition id → allowed
	// index, −1 outside the spread, padded to whole bitmap words. The
	// allowed set never changes, so it is built once.
	partIdx []int32
}

func newScorer(cache vcache.VertexState, parts []int, cfg config) *scorer {
	partIdx := make([]int32, paddedParts(cache.K()))
	for i := range partIdx {
		partIdx[i] = -1
	}
	for i, p := range parts {
		partIdx[p] = int32(i)
	}
	return &scorer{
		cache:      cache,
		parts:      parts,
		lambda:     cfg.initialLambda,
		lambdaMin:  cfg.lambdaMin,
		lambdaMax:  cfg.lambdaMax,
		balanceEps: cfg.balanceEps,
		clustering: cfg.clustering,
		totalEdges: cfg.totalEdges,
		prime:      newScoreScratch(cache.K(), len(parts)),
		balBuf:     make([]float64, len(parts)),
		partIdx:    partIdx,
	}
}

// view snapshots the scoring inputs for one window pass. Cheap: one
// min/max sweep over the allowed partition sizes plus one λ·B(p) fill per
// allowed partition — O(|parts|) once per pass instead of a division per
// scored (edge, partition) pair.
func (s *scorer) view() scoreView {
	minSize, maxSize := s.cache.MinMaxSizeOf(s.parts)
	sizeSpread := float64(maxSize-minSize) + s.balanceEps
	for i, p := range s.parts {
		// Same operation order as the historical per-edge computation
		// (λ * (Δ/spread)) so scores stay bit-identical.
		s.balBuf[i] = s.lambda * (float64(maxSize-s.cache.Size(p)) / sizeSpread)
	}
	return scoreView{
		cache:      s.cache,
		parts:      s.parts,
		balance:    s.balBuf,
		partIdx:    s.partIdx,
		maxDeg:     float64(s.cache.MaxDegree()),
		clustering: s.clustering,
	}
}

// scoreEdge scores one edge against a fresh single-call view using the
// prime scratch — the convenience form for the serial one-edge paths and
// tests. Passes that score many edges build one view and call it directly.
func (s *scorer) scoreEdge(e graph.Edge, neighbors []graph.VertexID) (scores []float64, best float64, bestPart int) {
	v := s.view()
	return v.scoreEdge(e, neighbors, s.prime)
}

// commit records the assignment of e to partition p in the vertex cache
// and performs the per-assignment λ update of Eq. 4. It reports which
// endpoints gained a new replica (these drive lazy reassessment, §III-B).
// A commit is a pass boundary: scoreViews minted before it are stale.
func (s *scorer) commit(e graph.Edge, p int) (newSrc, newDst bool) {
	newSrc, newDst = s.cache.Assign(e, p)

	// Adaptive balancing (Eq. 4): λ += ι − tolerance(α) with
	// tolerance(α) = max(0, 1−α), clamped to [λmin, λmax].
	minSize, maxSize := s.cache.MinMaxSizeOf(s.parts)
	var iota float64
	if maxSize > 0 {
		iota = float64(maxSize-minSize) / float64(maxSize)
	}
	alpha := 1.0
	if s.totalEdges > 0 {
		alpha = float64(s.cache.Assigned()) / float64(s.totalEdges)
		if alpha > 1 {
			alpha = 1
		}
	}
	tolerance := 1 - alpha
	if tolerance < 0 {
		tolerance = 0
	}
	s.lambda += iota - tolerance
	if s.lambda < s.lambdaMin {
		s.lambda = s.lambdaMin
	}
	if s.lambda > s.lambdaMax {
		s.lambda = s.lambdaMax
	}
	return newSrc, newDst
}
