package core

import (
	"math"
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
	"github.com/adwise-go/adwise/internal/vcache"
)

// TestBoundedUnlimitedEquivalence is the vertex-state substitution
// contract: with an effectively infinite budget the tombstone-aware
// Bounded cache never evicts, so swapping it in for the unbounded Cache
// must leave every assignment untouched — same edges, same order, same
// partitions — across traversal mode (lazy/eager), score-worker count
// {1, 2, 8}, and refill path (batched/per-edge). Run under -race in CI
// this also drives the Bounded probe sequence through the sharded
// scoring pool.
func TestBoundedUnlimitedEquivalence(t *testing.T) {
	all := equivalenceGraph(t)[:30_000]
	compare := func(t *testing.T, ref, got *metrics.Assignment) {
		t.Helper()
		if got.Len() != ref.Len() {
			t.Fatalf("bounded run assigned %d edges, cache reference %d", got.Len(), ref.Len())
		}
		for i := range ref.Edges {
			if ref.Edges[i] != got.Edges[i] || ref.Parts[i] != got.Parts[i] {
				t.Fatalf("diverged at assignment %d: cache %v→%d, bounded %v→%d",
					i, ref.Edges[i], ref.Parts[i], got.Edges[i], got.Parts[i])
			}
		}
	}

	for _, mode := range []struct {
		name  string
		edges int
		opts  []Option
	}{
		{"lazy/batched", len(all), nil},
		{"lazy/per-edge", len(all), []Option{WithPerEdgeRefill()}},
		// Eager rescoring is quadratic in the window per pop; a shorter
		// prefix keeps the sweep affordable under -race.
		{"eager/batched", 8_000, []Option{WithEagerTraversal()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			edges := all[:mode.edges]
			run := func(opts ...Option) *metrics.Assignment {
				t.Helper()
				ad, err := New(8, append([]Option{
					WithInitialWindow(256),
					WithFixedWindow(),
					WithMaxCandidates(256),
				}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				a, err := ad.Run(stream.FromEdges(edges))
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			ref := run(mode.opts...)
			workerSweep := []int{1, 2, 8}
			for _, workers := range workerSweep {
				opts := append([]Option{
					WithVertexBudget(math.MaxInt64),
					WithScoreWorkers(workers),
				}, mode.opts...)
				ad, err := New(8, append([]Option{
					WithInitialWindow(256),
					WithFixedWindow(),
					WithMaxCandidates(256),
				}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := ad.Cache().(*vcache.Bounded); !ok {
					t.Fatalf("WithVertexBudget did not select the Bounded cache (got %T)", ad.Cache())
				}
				a, err := ad.Run(stream.FromEdges(edges))
				if err != nil {
					t.Fatal(err)
				}
				compare(t, ref, a)
				st := ad.Stats()
				if st.EvictedVertices != 0 {
					t.Fatalf("workers=%d: unlimited budget evicted %d vertices", workers, st.EvictedVertices)
				}
				if st.PeakCacheBytes == 0 || st.CacheBytes == 0 {
					t.Fatalf("workers=%d: cache byte stats not reported (bytes=%d peak=%d)",
						workers, st.CacheBytes, st.PeakCacheBytes)
				}
			}
		})
	}
}

// TestBoundedEighthBudgetDegradation pins the graceful-degradation
// envelope: at one eighth of the unbounded peak footprint the run must
// still assign every edge, must actually evict, must stay within its
// effective budget, and must keep the replication factor within 2x of
// the unbounded reference on a skewed RMAT stream. The 2x bound is
// deliberately loose — it guards against pathological quality collapse
// (e.g. eviction thrashing that forgets every hub), not against the
// expected few-percent drift the memory experiment tracks.
func TestBoundedEighthBudgetDegradation(t *testing.T) {
	g, err := gen.RMAT(15, 60_000, 0.57, 0.19, 0.19, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func(budget int64) (*metrics.Assignment, RunStats) {
		t.Helper()
		opts := []Option{
			WithInitialWindow(256),
			WithFixedWindow(),
			WithMaxCandidates(256),
		}
		if budget > 0 {
			opts = append(opts, WithVertexBudget(budget))
		}
		ad, err := New(8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromEdges(g.Edges))
		if err != nil {
			t.Fatal(err)
		}
		return a, ad.Stats()
	}

	refA, refStats := run(0)
	refRF := metrics.Summarize(refA).ReplicationDegree
	if refStats.PeakCacheBytes == 0 {
		t.Fatal("unbounded run reported zero peak cache bytes")
	}

	budget := refStats.PeakCacheBytes / 8
	a, st := run(budget)
	if a.Len() != refA.Len() {
		t.Fatalf("bounded run assigned %d edges, unbounded %d", a.Len(), refA.Len())
	}
	effective := vcache.NewBounded(8, budget).Budget()
	if st.PeakCacheBytes > effective {
		t.Fatalf("peak %d exceeds effective budget %d", st.PeakCacheBytes, effective)
	}
	if effective < refStats.PeakCacheBytes && st.EvictedVertices == 0 {
		t.Fatalf("effective budget %d below unbounded peak %d but nothing was evicted",
			effective, refStats.PeakCacheBytes)
	}
	rf := metrics.Summarize(a).ReplicationDegree
	if rf > 2*refRF {
		t.Fatalf("replication factor %.4f at 1/8 budget exceeds 2x the unbounded %.4f", rf, refRF)
	}
	t.Logf("unbounded rf=%.4f peak=%d; 1/8 budget rf=%.4f (%.3fx) peak=%d evicted=%d",
		refRF, refStats.PeakCacheBytes, rf, rf/refRF, st.PeakCacheBytes, st.EvictedVertices)
}
