package core

import (
	"fmt"
	gort "runtime"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/scorepool"
	"github.com/adwise-go/adwise/internal/stream"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Defaults for the tunables of §III. The paper fixes ε ∈ [0,1] "small" for
// the candidate threshold and clamps λ to [0.4, 5] (Eq. 4).
const (
	DefaultEpsilon       = 0.1
	DefaultBalanceEps    = 1.0
	DefaultLambdaMin     = 0.4
	DefaultLambdaMax     = 5.0
	DefaultInitialLambda = 1.0
	DefaultMaxWindow     = 1 << 14
	DefaultMaxCandidates = 64
	// DefaultRefillBatch caps how many fresh edges one refill pass stages
	// and scores together. Large enough that a full-deficit refill of the
	// default window amortises the pool dispatch; small enough that the
	// staging buffer stays cache-resident.
	DefaultRefillBatch = 2048
)

type config struct {
	k             int
	allowed       []int
	latencyPref   time.Duration // L; 0 means "as fast as possible" → single-edge behaviour
	clk           clock.Clock
	epsilon       float64 // ε in Θ = g_avg + ε
	balanceEps    float64 // ε in Eq. 3
	initialLambda float64
	lambdaMin     float64
	lambdaMax     float64
	clustering    bool
	initialWindow int
	maxWindow     int
	fixedWindow   bool // disable adaptation (ablation)
	maxCandidates int
	lazy          bool  // lazy window traversal; eager rescans everything (ablation)
	totalEdges    int64 // m hint when the stream cannot report it
	scoreWorkers  int   // window-scoring logical shards; 0 = auto (GOMAXPROCS)
	perEdgeRefill bool  // serial one-edge-at-a-time refill (reference/ablation)
	refillBatch   int   // refill staging cap; 0 = DefaultRefillBatch
	vertexBudget  int64 // vertex-state byte budget; 0 = unbounded cache
	pool          *scorepool.Pool
	poolSet       bool             // WithScorePool was used (nil is a meaningful value)
	metrics       *metric.Registry // nil → no telemetry published
}

// Option configures an ADWISE partitioner.
type Option func(*config)

// WithLatencyPreference sets the partitioning latency preference L: the
// adaptive window grows only while the run is on track to finish within L
// (condition C2). Zero keeps the window at its initial size floor,
// degenerating to single-edge streaming as described in §III-A.
func WithLatencyPreference(l time.Duration) Option {
	return func(c *config) { c.latencyPref = l }
}

// WithClock substitutes the time source used for latency accounting;
// tests use a fake clock to drive the adaptation deterministically.
func WithClock(clk clock.Clock) Option {
	return func(c *config) { c.clk = clk }
}

// WithEpsilon sets ε in the candidate threshold Θ = g_avg + ε.
func WithEpsilon(eps float64) Option {
	return func(c *config) { c.epsilon = eps }
}

// WithClusteringScore toggles the clustering score CS (Eq. 6). The paper
// switches it off for graphs with negligible clustering (Orkut).
func WithClusteringScore(on bool) Option {
	return func(c *config) { c.clustering = on }
}

// WithAllowedPartitions restricts assignments to a subset of partitions —
// the spotlight spread (§III-D).
func WithAllowedPartitions(parts []int) Option {
	return func(c *config) { c.allowed = parts }
}

// WithInitialLambda sets the starting balancing weight λ.
func WithInitialLambda(l float64) Option {
	return func(c *config) { c.initialLambda = l }
}

// WithLambdaBounds overrides the λ clamp interval (paper: [0.4, 5]).
func WithLambdaBounds(lo, hi float64) Option {
	return func(c *config) { c.lambdaMin, c.lambdaMax = lo, hi }
}

// WithFixedLambda pins λ to the given value by collapsing the clamp
// interval — the "fixed λ" ablation, matching HDRF's static parameter.
func WithFixedLambda(l float64) Option {
	return func(c *config) {
		c.initialLambda = l
		c.lambdaMin, c.lambdaMax = l, l
	}
}

// WithInitialWindow sets the starting window size (default 1, as in
// Algorithm 1). The window never shrinks below this size, so a fixed-size
// window can be emulated together with WithFixedWindow.
func WithInitialWindow(w int) Option {
	return func(c *config) { c.initialWindow = w }
}

// WithMaxWindow caps the window size.
func WithMaxWindow(w int) Option {
	return func(c *config) { c.maxWindow = w }
}

// WithFixedWindow disables the adaptive sizing entirely, keeping the
// window at its initial size — the fixed-window ablation.
func WithFixedWindow() Option {
	return func(c *config) { c.fixedWindow = true }
}

// WithMaxCandidates bounds the lazy-traversal candidate set |C|.
func WithMaxCandidates(n int) Option {
	return func(c *config) { c.maxCandidates = n }
}

// WithEagerTraversal disables lazy traversal: every window edge is
// re-scored on every assignment (the O(w·|P|) baseline of §III-B, used by
// the lazy-vs-eager ablation).
func WithEagerTraversal() Option {
	return func(c *config) { c.lazy = false }
}

// WithTotalEdgesHint supplies m (the stream length) when the stream cannot
// report it; Eq. 4's progress term α and condition C2 depend on it.
func WithTotalEdgesHint(m int64) Option {
	return func(c *config) { c.totalEdges = m }
}

// WithScoreWorkers sets the number of logical shards window scoring
// passes (candidate rescores, secondary rescans, cached-score scans) are
// split into. 0 (the default) resolves to GOMAXPROCS at construction;
// 1 forces fully serial scoring. Shards execute on the process-wide
// work-stealing pool (see WithScorePool), so under parallel loading the
// machine's cores flow to whichever instance has work — there is no need
// to divide cores among instances. Any shard count produces edge-for-edge
// identical assignments — sharding uses fixed boundaries and a
// deterministic shard-order reduction — so the knob trades only
// wall-clock for cores.
func WithScoreWorkers(n int) Option {
	return func(c *config) { c.scoreWorkers = n }
}

// WithPerEdgeRefill restores the serial refill: the window draws one edge
// at a time and scores it on the submitting goroutine. The default scores
// each refill batch as one pool pass; the two paths are edge-for-edge
// identical (the equivalence the refill property tests pin down), so this
// knob exists for ablation and as the reference in those tests, not as a
// correctness escape hatch.
func WithPerEdgeRefill() Option {
	return func(c *config) { c.perEdgeRefill = true }
}

// WithRefillBatch caps how many fresh edges one batched refill pass
// stages and scores together (default DefaultRefillBatch). Smaller caps
// bound staging memory; the batch boundary can never change assignments.
func WithRefillBatch(n int) Option {
	return func(c *config) { c.refillBatch = n }
}

// WithVertexBudget caps the byte footprint of the vertex state. The
// default (0, or negative) keeps the unbounded cache, whose memory grows
// with the number of distinct vertices. A positive budget swaps in the
// bounded cache (vcache.Bounded): when the table would outgrow the budget
// it evicts low-partial-degree vertices HEP-style instead of growing, so
// memory stays fixed while scoring treats evicted vertices as unseen —
// replication quality degrades gracefully on power-law graphs (see the
// bench memory experiment). Eviction makes assignments depend on the
// budget; runs with the same positive budget remain deterministic.
func WithVertexBudget(bytes int64) Option {
	return func(c *config) { c.vertexBudget = bytes }
}

// WithScorePool overrides the pool scoring shards execute on. The default
// (when more than one shard is configured) is the process-wide shared
// work-stealing pool, scorepool.Shared(). Passing nil forces every pass
// inline on the caller regardless of the shard count; passing a private
// pool pins the instance to that pool's workers — the bench harness uses
// this to reproduce the historical static cores/z split for comparison.
// Determinism is unaffected either way: pool choice, like worker count,
// can never change assignments.
func WithScorePool(p *scorepool.Pool) Option {
	return func(c *config) { c.pool, c.poolSet = p, true }
}

// Adwise is the ADWISE streaming partitioner. An instance carries the
// vertex cache accumulated over one stream pass; create a fresh instance
// per Run.
type Adwise struct {
	cfg    config
	parts  []int
	cache  vcache.VertexState
	scorer *scorer
	win    *window
	stats  RunStats
	ran    bool
}

// RunStats reports what one partitioning pass did.
type RunStats struct {
	// Assignments is the number of edges assigned.
	Assignments int64
	// ScoreComputations counts edge score evaluations (each covering all
	// allowed partitions).
	ScoreComputations int64
	// PartitioningLatency is the wall-clock (or fake-clock) duration of
	// the pass.
	PartitioningLatency time.Duration
	// FinalWindow and PeakWindow describe the adaptive window trajectory.
	FinalWindow, PeakWindow int
	// WindowTrace records every window resize as (edge index, new size).
	WindowTrace []WindowChange
	// FinalLambda is λ after the last assignment.
	FinalLambda float64
	// MeanAssignScore is the average g(ê,p̂) over all assignments.
	MeanAssignScore float64
	// Lazy-traversal counters.
	Promotions, Demotions, Reassessments, SecondaryRescans int64
	// ScoreWorkers is the resolved logical scoring shard count (≥ 1).
	ScoreWorkers int
	// ParallelScorePasses counts scoring passes that actually ran sharded
	// on the scoring pool (small passes run inline on the caller).
	ParallelScorePasses int64
	// StolenScoreShards counts shards of this instance's pool passes that
	// were executed by pool workers rather than the instance's own
	// goroutine — the work-stealing flex that lets a dense-segment
	// instance borrow idle cores under parallel loading.
	StolenScoreShards int64
	// PeakPassHelpers is the largest number of distinct pool workers that
	// served a single one of this instance's passes.
	PeakPassHelpers int
	// WorkerScoreOps is the per-logical-shard share of ScoreComputations
	// done on pool passes (index = shard id; shard 0 also runs the inline
	// passes). Shard scratches are owned by this instance, so the counters
	// attribute ops to the instance even when a shared pool executed them.
	// Serial one-edge rescores are accounted to ScoreComputations only.
	WorkerScoreOps []int64
	// RefillPasses counts batched window refills (one staged batch scored
	// and inserted per pass); zero under WithPerEdgeRefill.
	RefillPasses int64
	// BatchedAdds counts edges that entered the window through batched
	// refill passes; under the default refill this equals Assignments on a
	// clean run, and zero under WithPerEdgeRefill.
	BatchedAdds int64
	// EvictedVertices counts vertex-state evictions under WithVertexBudget
	// (0 on the unbounded default).
	EvictedVertices int64
	// CacheBytes and PeakCacheBytes are the final and peak tracked byte
	// footprints of the vertex state.
	CacheBytes, PeakCacheBytes int64
}

// WindowChange is one adaptive window resize event.
type WindowChange struct {
	AtEdge  int64
	NewSize int
}

// New returns an ADWISE partitioner for k partitions.
func New(k int, opts ...Option) (*Adwise, error) {
	cfg := config{
		k:             k,
		clk:           clock.Real{},
		epsilon:       DefaultEpsilon,
		balanceEps:    DefaultBalanceEps,
		initialLambda: DefaultInitialLambda,
		lambdaMin:     DefaultLambdaMin,
		lambdaMax:     DefaultLambdaMax,
		clustering:    true,
		initialWindow: 1,
		maxWindow:     DefaultMaxWindow,
		maxCandidates: DefaultMaxCandidates,
		lazy:          true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: partition count must be >= 1, got %d", k)
	}
	for _, p := range cfg.allowed {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("core: allowed partition %d outside [0,%d)", p, k)
		}
	}
	if cfg.initialWindow < 1 {
		return nil, fmt.Errorf("core: initial window must be >= 1, got %d", cfg.initialWindow)
	}
	if cfg.maxWindow < cfg.initialWindow {
		return nil, fmt.Errorf("core: max window %d below initial window %d", cfg.maxWindow, cfg.initialWindow)
	}
	if cfg.maxCandidates < 1 {
		return nil, fmt.Errorf("core: max candidates must be >= 1, got %d", cfg.maxCandidates)
	}
	if cfg.epsilon < 0 || cfg.epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %v outside [0,1]", cfg.epsilon)
	}
	if cfg.lambdaMin > cfg.lambdaMax {
		return nil, fmt.Errorf("core: lambda bounds inverted [%v,%v]", cfg.lambdaMin, cfg.lambdaMax)
	}
	if cfg.scoreWorkers < 0 {
		return nil, fmt.Errorf("core: score workers must be >= 0 (0 = auto), got %d", cfg.scoreWorkers)
	}
	if cfg.refillBatch < 0 {
		return nil, fmt.Errorf("core: refill batch must be >= 0 (0 = default), got %d", cfg.refillBatch)
	}
	parts := cfg.allowed
	if len(parts) == 0 {
		parts = make([]int, k)
		for i := range parts {
			parts[i] = i
		}
	}
	cache := vcache.Build(vcache.Options{K: k, BudgetBytes: cfg.vertexBudget})
	sc := newScorer(cache, parts, cfg)
	maxCand := cfg.maxCandidates
	if !cfg.lazy {
		// Eager traversal: every edge is a candidate, re-scored each pop.
		maxCand = int(^uint(0) >> 1)
	}
	shards := cfg.scoreWorkers
	if shards == 0 {
		shards = gort.GOMAXPROCS(0)
	}
	execPool := cfg.pool
	if !cfg.poolSet && shards > 1 {
		execPool = scorepool.Shared()
	}
	pool := newScorePool(execPool, shards, k, len(parts))
	if cfg.metrics != nil {
		pool.mPasses = cfg.metrics.Counter(MetricPoolPasses)
		pool.mStolen = cfg.metrics.Counter(MetricStolenShards)
	}
	return &Adwise{
		cfg:    cfg,
		parts:  parts,
		cache:  cache,
		scorer: sc,
		win:    newWindow(sc, pool, cfg.epsilon, maxCand, !cfg.lazy),
	}, nil
}

// Cache exposes the vertex state (for metrics and tests).
func (a *Adwise) Cache() vcache.VertexState { return a.cache }

// Stats returns the statistics of the completed Run.
func (a *Adwise) Stats() RunStats { return a.stats }

// Name identifies the strategy.
func (a *Adwise) Name() string { return "adwise" }

// Run consumes the stream and returns the assignment. It implements
// Algorithm 1: fill the window, repeatedly assign the best-scoring edge,
// and adapt the window size every w assignments via conditions (C1) and
// (C2). Run may be called once per instance.
func (a *Adwise) Run(s stream.Stream) (*metrics.Assignment, error) {
	if a.ran {
		return nil, fmt.Errorf("core: Adwise instance already ran; create a new instance per pass")
	}
	a.ran = true

	// The window refill draws one edge at a time; buffering batches the
	// pulls from the underlying stream (file, chunk, …) and devirtualizes
	// the per-edge call to a concrete method. Buffered.Remaining counts
	// buffered-but-unconsumed edges, so condition (C2) stays exact.
	src := stream.NewBuffered(s, stream.DefaultBatchSize)

	hint := src.Remaining()
	if a.scorer.totalEdges <= 0 && hint >= 0 {
		a.scorer.totalEdges = hint
	}
	if hint < 0 {
		// The stream cannot report its length (Remaining() < 0) and no
		// WithTotalEdgesHint was given. The assignment sizing contract for
		// that case: start from the largest edge population the
		// configuration itself implies — the window bound — and let the
		// assignment grow geometrically past it. maxWindow dominates
		// initialWindow by the New validation, so it is the sharper floor.
		hint = int64(a.cfg.maxWindow)
		if a.scorer.totalEdges > 0 {
			hint = a.scorer.totalEdges
		}
	}
	totalEdges := a.scorer.totalEdges

	// Pre-size the vertex table from the same edge-count hint that sizes
	// the assignment, so known-length streams skip the doubling rehashes
	// (a bounded cache clamps the reservation to its budget).
	a.cache.Reserve(vcache.VerticesHintForEdges(hint))

	asn := metrics.NewAssignment(a.cfg.k, int(hint))

	start := a.cfg.clk.Now()
	deadline := start.Add(a.cfg.latencyPref)

	w := a.cfg.initialWindow
	a.stats.PeakWindow = w

	// (C1) bookkeeping: average assignment score of the current and the
	// previous adaptation period.
	var (
		periodScore   float64
		periodCount   int64
		prevAvgScore  float64
		havePrevAvg   bool
		periodStart   = start
		totalScoreSum float64
	)

	// Refill is two-phase by default: drain the window deficit from the
	// buffered stream in one NextBatch sweep, score the whole batch as a
	// single pool pass (window.addBatch), then classify/insert serially in
	// stream order. WithPerEdgeRefill keeps the historical one-edge loop;
	// both paths are edge-for-edge identical.
	batchCap := a.cfg.refillBatch
	if batchCap <= 0 {
		batchCap = DefaultRefillBatch
	}
	var refillBuf []graph.Edge
	if !a.cfg.perEdgeRefill {
		refillBuf = make([]graph.Edge, batchCap)
	}
	var mRefillPasses, mBatchedAdds *metric.Counter
	var mBatchSize *metric.Gauge
	if a.cfg.metrics != nil {
		mRefillPasses = a.cfg.metrics.Counter(MetricRefillPasses)
		mBatchedAdds = a.cfg.metrics.Counter(MetricRefillBatchedAdds)
		mBatchSize = a.cfg.metrics.Gauge(MetricRefillBatchSize)
	}

	refill := func() {
		if a.cfg.perEdgeRefill {
			for a.win.len() < w {
				e, ok := src.Next()
				if !ok {
					return
				}
				a.win.add(e)
			}
			return
		}
		for a.win.len() < w {
			d := w - a.win.len()
			if d > batchCap {
				d = batchCap
			}
			buf := refillBuf[:d]
			filled := 0
			for filled < d {
				n := src.NextBatch(buf[filled:])
				if n == 0 {
					break
				}
				filled += n
			}
			if filled == 0 {
				return
			}
			a.win.addBatch(buf[:filled])
			a.stats.RefillPasses++
			a.stats.BatchedAdds += int64(filled)
			if mRefillPasses != nil {
				mRefillPasses.Inc(1)
				mBatchedAdds.Inc(int64(filled))
				mBatchSize.Set(int64(filled))
			}
			if filled < d {
				// Short batch: the stream is exhausted (or failed — Err is
				// checked after the window drains).
				return
			}
		}
	}

	refill()
	for a.win.len() > 0 {
		e, p, gBest, ok := a.win.popBest()
		if !ok {
			break
		}
		newSrc, newDst := a.scorer.commit(e, p)
		asn.Add(e, p)
		a.stats.Assignments++
		// The popped entry's score is the g(ê,p̂) that drives (C1).
		periodScore += gBest
		totalScoreSum += gBest
		periodCount++

		if a.cfg.lazy {
			if newSrc {
				a.win.reassess(e.Src)
			}
			if newDst && e.Dst != e.Src {
				a.win.reassess(e.Dst)
			}
		}

		// Adaptive window check every w assignments (Alg. 1 lines 11-16).
		if !a.cfg.fixedWindow && periodCount >= int64(w) {
			now := a.cfg.clk.Now()
			elapsed := now.Sub(periodStart)
			latPerEdge := elapsed / time.Duration(periodCount)

			curAvg := periodScore / float64(periodCount)
			c1 := !havePrevAvg || curAvg >= prevAvgScore
			c2 := a.c2(now, deadline, latPerEdge, src, totalEdges)

			switch {
			case c1 && c2 && w < a.cfg.maxWindow:
				w *= 2
				if w > a.cfg.maxWindow {
					w = a.cfg.maxWindow
				}
				a.recordResize(w)
			case !c2 && w > a.cfg.initialWindow:
				w /= 2
				if w < a.cfg.initialWindow {
					w = a.cfg.initialWindow
				}
				a.recordResize(w)
			}
			prevAvgScore, havePrevAvg = curAvg, true
			periodScore, periodCount = 0, 0
			periodStart = now
		}
		refill()
	}

	// The window drains when the stream stops delivering — which is either
	// clean exhaustion or a mid-stream failure. Treating the latter as
	// success would silently partition a prefix of the graph.
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("core: edge stream failed after %d assignments: %w", a.stats.Assignments, err)
	}

	a.stats.FinalWindow = w
	a.stats.PartitioningLatency = a.cfg.clk.Now().Sub(start)
	a.stats.ScoreComputations = a.scorer.prime.scoreOps + a.win.pool.totalOps()
	a.stats.FinalLambda = a.scorer.lambda
	a.stats.ScoreWorkers = a.win.pool.n
	a.stats.ParallelScorePasses = a.win.pool.passes
	a.stats.StolenScoreShards = a.win.pool.stolen
	a.stats.PeakPassHelpers = a.win.pool.helpersPeak
	a.stats.WorkerScoreOps = a.win.pool.workerOps()
	if a.stats.Assignments > 0 {
		a.stats.MeanAssignScore = totalScoreSum / float64(a.stats.Assignments)
	}
	a.stats.Promotions = a.win.promotions
	a.stats.Demotions = a.win.demotions
	a.stats.Reassessments = a.win.reassessments
	a.stats.SecondaryRescans = a.win.rescans
	a.stats.EvictedVertices = a.cache.EvictedVertices()
	a.stats.CacheBytes = a.cache.Bytes()
	a.stats.PeakCacheBytes = a.cache.PeakBytes()
	a.publishRunMetrics()
	return asn, nil
}

// c2 evaluates condition (C2): the latency preference can still be met,
// i.e. lat_w < L′/|E′| with L′ the time left until the deadline and |E′|
// the edges still to assign (stream remainder plus window fill).
func (a *Adwise) c2(now, deadline time.Time, latPerEdge time.Duration, s stream.Stream, totalEdges int64) bool {
	if a.cfg.latencyPref <= 0 {
		return false
	}
	left := deadline.Sub(now)
	if left <= 0 {
		return false
	}
	remaining := s.Remaining()
	if remaining < 0 {
		if totalEdges > 0 {
			remaining = totalEdges - a.stats.Assignments
		} else {
			remaining = 0
		}
	}
	remaining += int64(a.win.len())
	if remaining <= 0 {
		return true
	}
	budgetPerEdge := left / time.Duration(remaining)
	return latPerEdge < budgetPerEdge
}

func (a *Adwise) recordResize(newSize int) {
	if newSize > a.stats.PeakWindow {
		a.stats.PeakWindow = newSize
	}
	a.stats.WindowTrace = append(a.stats.WindowTrace, WindowChange{
		AtEdge:  a.stats.Assignments,
		NewSize: newSize,
	})
}
