package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/scorepool"
	"github.com/adwise-go/adwise/internal/stream"
)

// checkWindowInvariants verifies the structural window invariants:
// set-slice/entry agreement, incident-list coverage, the Θ accumulator,
// and the candidate cap.
func checkWindowInvariants(t *testing.T, w *window) {
	t.Helper()
	live := make(map[*winEntry]bool, w.len())
	if len(w.candScores) != len(w.candidates) || len(w.secScores) != len(w.secondary) {
		t.Fatalf("score slices out of sync: |candScores|=%d |C|=%d, |secScores|=%d |Q|=%d",
			len(w.candScores), len(w.candidates), len(w.secScores), len(w.secondary))
	}
	for i, ent := range w.candidates {
		if ent.kind != inCandidates {
			t.Fatalf("candidates[%d] has kind %d", i, ent.kind)
		}
		if ent.pos != i {
			t.Fatalf("candidates[%d].pos = %d", i, ent.pos)
		}
		if w.candScores[i] != ent.score {
			t.Fatalf("candScores[%d] = %v, entry caches %v", i, w.candScores[i], ent.score)
		}
		live[ent] = true
	}
	for i, ent := range w.secondary {
		if ent.kind != inSecondary {
			t.Fatalf("secondary[%d] has kind %d", i, ent.kind)
		}
		if ent.pos != i {
			t.Fatalf("secondary[%d].pos = %d", i, ent.pos)
		}
		if w.secScores[i] != ent.score {
			t.Fatalf("secScores[%d] = %v, entry caches %v", i, w.secScores[i], ent.score)
		}
		live[ent] = true
	}
	if !w.eager && len(w.candidates) > w.maxCand {
		t.Fatalf("candidate set %d exceeds cap %d", len(w.candidates), w.maxCand)
	}

	// Incident lists hold live entries only (remove compacts eagerly);
	// every entry must be in its set, and every live entry must appear in
	// the incident list of both endpoints.
	inList := make(map[*winEntry]map[graph.VertexID]bool)
	for v, list := range w.incident {
		for _, ent := range list {
			if ent.kind == removed {
				t.Fatalf("incident[%v] holds removed entry %v: remove must compact endpoint lists", v, ent.edge)
			}
			if !live[ent] {
				t.Fatalf("incident[%v] holds non-removed entry %v absent from both sets", v, ent.edge)
			}
			if inList[ent] == nil {
				inList[ent] = make(map[graph.VertexID]bool, 2)
			}
			inList[ent][v] = true
		}
	}
	for ent := range live {
		if !inList[ent][ent.edge.Src] {
			t.Fatalf("live entry %v missing from incident[%v]", ent.edge, ent.edge.Src)
		}
		if ent.edge.Dst != ent.edge.Src && !inList[ent][ent.edge.Dst] {
			t.Fatalf("live entry %v missing from incident[%v]", ent.edge, ent.edge.Dst)
		}
	}

	if got, want := w.scoreSum, exactScoreSum(w); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("scoreSum %v inconsistent with live entries Σ %v", got, want)
	}
}

// TestWindowInvariantsRandomized drives the window through a randomized
// add/pop/reassess workload, checking the structural invariants
// throughout — in both lazy and eager mode, serial and sharded.
func TestWindowInvariantsRandomized(t *testing.T) {
	for _, tc := range []struct {
		name    string
		eager   bool
		workers int
	}{
		{"lazy/serial", false, 1},
		{"lazy/workers=4", false, 4},
		{"eager/serial", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, _ := newTestScorer(8, 1.0, true, 10_000)
			maxCand := 32
			if tc.eager {
				maxCand = int(^uint(0) >> 1)
			}
			var exec *scorepool.Pool
			if tc.workers > 1 {
				exec = scorepool.New(tc.workers)
				defer exec.Close()
			}
			pool := newScorePool(exec, tc.workers, 8, len(sc.parts))
			w := newWindow(sc, pool, 0.1, maxCand, tc.eager)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 4000; i++ {
				switch r := rng.Float64(); {
				case r < 0.55 || w.len() == 0:
					w.add(graph.Edge{Src: graph.VertexID(rng.Intn(256)), Dst: graph.VertexID(rng.Intn(256))})
				case r < 0.9:
					e, p, _, ok := w.popBest()
					if !ok {
						t.Fatal("popBest failed on non-empty window")
					}
					newSrc, newDst := sc.commit(e, p)
					if !tc.eager {
						if newSrc {
							w.reassess(e.Src)
						}
						if newDst && e.Dst != e.Src {
							w.reassess(e.Dst)
						}
					}
				default:
					w.reassess(graph.VertexID(rng.Intn(256)))
				}
				if i%50 == 0 {
					checkWindowInvariants(t, w)
				}
			}
			checkWindowInvariants(t, w)
		})
	}
}

// equivalenceGraph is the ≥100k-edge stream of the serial ≡ parallel
// contract test.
func equivalenceGraph(t testing.TB) []graph.Edge {
	t.Helper()
	g, err := gen.RMAT(17, 100_000, 0.57, 0.19, 0.19, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g.Edges
}

// TestParallelScoringMatchesSerial is the determinism contract: sharding
// window scoring across any worker count must produce edge-for-edge
// identical assignments to the serial run — same edges, same order, same
// partitions — on a 100k-edge skewed graph, in lazy and eager mode.
// Run under -race this also exercises the pool for data races.
func TestParallelScoringMatchesSerial(t *testing.T) {
	edges := equivalenceGraph(t)
	run := func(workers int, opts ...Option) *metrics.Assignment {
		t.Helper()
		all := append([]Option{
			WithInitialWindow(1024),
			WithFixedWindow(),
			WithMaxCandidates(512),
			WithScoreWorkers(workers),
		}, opts...)
		ad, err := New(8, all...)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			t.Fatal(err)
		}
		if got := ad.Stats().ScoreWorkers; got != workers {
			t.Fatalf("resolved ScoreWorkers = %d, want %d", got, workers)
		}
		return a
	}

	serial := run(1)
	if serial.Len() != len(edges) {
		t.Fatalf("serial run assigned %d of %d edges", serial.Len(), len(edges))
	}
	for _, workers := range []int{2, 8} {
		parallel := run(workers)
		if parallel.Len() != serial.Len() {
			t.Fatalf("workers=%d assigned %d edges, serial %d", workers, parallel.Len(), serial.Len())
		}
		for i := range serial.Edges {
			if serial.Edges[i] != parallel.Edges[i] || serial.Parts[i] != parallel.Parts[i] {
				t.Fatalf("workers=%d diverged at assignment %d: serial %v→%d, parallel %v→%d",
					workers, i, serial.Edges[i], serial.Parts[i], parallel.Edges[i], parallel.Parts[i])
			}
		}
	}

	// Eager mode rescores the whole window every pop — the heaviest pool
	// user; a smaller prefix keeps the quadratic pass affordable.
	short := edges[:10_000]
	eSerial, eParallel := runEager(t, short, 1), runEager(t, short, 4)
	for i := range eSerial.Edges {
		if eSerial.Edges[i] != eParallel.Edges[i] || eSerial.Parts[i] != eParallel.Parts[i] {
			t.Fatalf("eager workers=4 diverged at assignment %d", i)
		}
	}
}

func runEager(t *testing.T, edges []graph.Edge, workers int) *metrics.Assignment {
	t.Helper()
	ad, err := New(8,
		WithInitialWindow(256),
		WithFixedWindow(),
		WithEagerTraversal(),
		WithScoreWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWorkerStatsFolded verifies the per-worker accounting: sharded
// passes happen, their ops land in the per-worker counters, and the
// total ScoreComputations includes both the pool's and the serial ops.
func TestWorkerStatsFolded(t *testing.T) {
	edges := equivalenceGraph(t)[:20_000]
	ad, err := New(8,
		WithInitialWindow(256),
		WithFixedWindow(),
		WithEagerTraversal(), // every pop is a full-window sharded rescore
		WithScoreWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromEdges(edges)); err != nil {
		t.Fatal(err)
	}
	st := ad.Stats()
	if st.ScoreWorkers != 2 {
		t.Errorf("ScoreWorkers = %d, want 2", st.ScoreWorkers)
	}
	if st.ParallelScorePasses == 0 {
		t.Error("ParallelScorePasses = 0: eager 256-window pops should shard")
	}
	if len(st.WorkerScoreOps) != 2 {
		t.Fatalf("WorkerScoreOps has %d workers, want 2", len(st.WorkerScoreOps))
	}
	var poolOps int64
	for i, ops := range st.WorkerScoreOps {
		if ops == 0 {
			t.Errorf("worker %d did no scoring work across %d sharded passes", i, st.ParallelScorePasses)
		}
		poolOps += ops
	}
	if st.ScoreComputations < poolOps {
		t.Errorf("ScoreComputations %d below pool ops %d: serial ops not folded", st.ScoreComputations, poolOps)
	}
}

// TestTopTwoCachedShardedMatchesSerial exercises the deterministic
// reduction directly: the sharded top-two merge must reproduce the serial
// left-to-right scan — including first-wins tie-breaks — on adversarial
// score layouts larger than the scan grain.
func TestTopTwoCachedShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := scanGrain + 1234
	scores := make([]float64, n)
	for i := range scores {
		// Coarse quantisation forces plenty of exact ties, including for
		// the maximum, so the insertion-order tie-break is really tested.
		scores[i] = float64(rng.Intn(64))
	}
	exec := scorepool.New(4)
	defer exec.Close()
	pool := newScorePool(exec, 4, 2, 2)

	for round := 0; round < 50; round++ {
		serialTop := scanTopTwo(scores, 0, len(scores))
		gotIdx, gotSecond := pool.topTwoCached(scores)
		if gotIdx != serialTop.bestIdx || gotSecond != serialTop.second {
			t.Fatalf("round %d: sharded (idx=%d second=%v) != serial (idx=%d second=%v)",
				round, gotIdx, gotSecond, serialTop.bestIdx, serialTop.second)
		}
		// Perturb for the next round.
		for i := 0; i < 100; i++ {
			scores[rng.Intn(n)] = float64(rng.Intn(64))
		}
	}
	if pool.passes == 0 {
		t.Fatal("sharded scan never engaged the pool")
	}
}

// TestForEachShardsTile verifies the fixed shard boundaries: every index
// covered exactly once, shard assignment a pure function of (items, n).
func TestForEachShardsTile(t *testing.T) {
	exec := scorepool.New(2)
	defer exec.Close()
	for _, n := range []int{1, 2, 3, 7, 8} {
		pool := newScorePool(exec, n, 2, 2)
		for _, items := range []int{0, 1, 5, 63, 64, 1000, 4096} {
			covered := make([]int32, items)
			// Shards cover disjoint index ranges, so the concurrent writes
			// below are race-free by construction — exactly the disjoint-
			// slot rule real passes rely on.
			pool.forEach(items, 1, func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d items=%d: index %d covered %d times", n, items, i, c)
				}
			}
		}
	}
}
