package core

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
)

// runRefill runs one fixed-window ADWISE pass over edges with the given
// refill configuration and returns the assignment and run stats.
func runRefill(t *testing.T, edges []graph.Edge, window, workers, batch int, eager, perEdge bool) (*metrics.Assignment, RunStats) {
	t.Helper()
	opts := []Option{
		WithInitialWindow(window),
		WithFixedWindow(),
		WithMaxCandidates(256),
		WithScoreWorkers(workers),
	}
	if eager {
		opts = append(opts, WithEagerTraversal())
	}
	if perEdge {
		opts = append(opts, WithPerEdgeRefill())
	}
	if batch > 0 {
		opts = append(opts, WithRefillBatch(batch))
	}
	ad, err := New(8, opts...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	return a, ad.Stats()
}

// requireSameAssignments fails unless a and b assigned the same edges to
// the same partitions in the same order.
func requireSameAssignments(t *testing.T, label string, a, b *metrics.Assignment) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: assigned %d edges, reference %d", label, b.Len(), a.Len())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Parts[i] != b.Parts[i] {
			t.Fatalf("%s: diverged at assignment %d: reference %v→%d, got %v→%d",
				label, i, a.Edges[i], a.Parts[i], b.Edges[i], b.Parts[i])
		}
	}
}

// TestBatchedRefillMatchesPerEdge is the two-phase refill equivalence
// property: staging the window deficit and scoring it as one pool pass
// must produce edge-for-edge identical assignments to the historical
// per-edge refill — across lazy and eager traversal, every tested worker
// count, and batch caps that force refill batches to break mid-deficit.
// The clustering score is on (the default), so the intra-batch conflict
// path — edges sharing an endpoint with an earlier batch edge — is
// exercised heavily by the skewed RMAT stream. Run under -race this also
// checks the batch score phase for data races.
func TestBatchedRefillMatchesPerEdge(t *testing.T) {
	all := equivalenceGraph(t)
	for _, mode := range []struct {
		name   string
		eager  bool
		n      int // stream prefix (eager pops are quadratic in the window)
		window int
	}{
		{"lazy", false, 30_000, 1024},
		{"eager", true, 6_000, 256},
	} {
		edges := all[:mode.n]
		ref, refStats := runRefill(t, edges, mode.window, 1, 0, mode.eager, true)
		if ref.Len() != mode.n {
			t.Fatalf("%s: per-edge reference assigned %d of %d edges", mode.name, ref.Len(), mode.n)
		}
		if refStats.RefillPasses != 0 || refStats.BatchedAdds != 0 {
			t.Fatalf("%s: per-edge refill reported batched counters: passes=%d adds=%d",
				mode.name, refStats.RefillPasses, refStats.BatchedAdds)
		}
		for _, workers := range []int{1, 2, 8} {
			// batch 0 is the default cap; 7 forces many odd-sized batch
			// boundaries inside every deficit drain.
			for _, batch := range []int{0, 7} {
				label := mode.name
				a, st := runRefill(t, edges, mode.window, workers, batch, mode.eager, false)
				requireSameAssignments(t, label, ref, a)
				if st.RefillPasses == 0 {
					t.Errorf("%s workers=%d batch=%d: no refill passes recorded", label, workers, batch)
				}
				if st.BatchedAdds != int64(mode.n) {
					t.Errorf("%s workers=%d batch=%d: BatchedAdds = %d, want %d (every edge enters via refill)",
						label, workers, batch, st.BatchedAdds, mode.n)
				}
				if st.ScoreComputations != refStats.ScoreComputations {
					t.Errorf("%s workers=%d batch=%d: ScoreComputations = %d, per-edge reference %d",
						label, workers, batch, st.ScoreComputations, refStats.ScoreComputations)
				}
			}
		}
	}
}

// TestBatchedRefillDeficitExceedsStream pins the short-batch boundary:
// with the window deficit larger than the whole stream remainder, the
// drain loop must stop on the short batch, assign everything, and still
// match the per-edge path.
func TestBatchedRefillDeficitExceedsStream(t *testing.T) {
	edges := equivalenceGraph(t)[:3_000]
	const window = 4096 // first deficit (4096) > stream length (3000)
	ref, _ := runRefill(t, edges, window, 1, 0, false, true)
	if ref.Len() != len(edges) {
		t.Fatalf("per-edge reference assigned %d of %d edges", ref.Len(), len(edges))
	}
	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{0, 100} {
			a, st := runRefill(t, edges, window, workers, batch, false, false)
			requireSameAssignments(t, "deficit>stream", ref, a)
			if st.BatchedAdds != int64(len(edges)) {
				t.Errorf("workers=%d batch=%d: BatchedAdds = %d, want %d",
					workers, batch, st.BatchedAdds, len(edges))
			}
		}
	}
}

// unsizedStream hides the stream length: Remaining is unknown (-1), the
// contract under which Run must fall back to the window-derived
// assignment-capacity hint instead of a magic constant.
type unsizedStream struct{ inner stream.Stream }

func (u *unsizedStream) Next() (graph.Edge, bool) { return u.inner.Next() }
func (u *unsizedStream) Remaining() int64         { return -1 }

// TestRefillUnknownRemaining runs both refill paths over a stream that
// cannot report its length: the batched path must drain it via the
// NextBatch fallback identically to the per-edge path, and the capacity
// hint derives from the window configuration (no 1024 magic).
func TestRefillUnknownRemaining(t *testing.T) {
	edges := equivalenceGraph(t)[:10_000]
	run := func(perEdge bool) (*metrics.Assignment, RunStats) {
		opts := []Option{
			WithInitialWindow(512),
			WithFixedWindow(),
			WithScoreWorkers(2),
		}
		if perEdge {
			opts = append(opts, WithPerEdgeRefill())
		}
		ad, err := New(8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(&unsizedStream{inner: stream.FromEdges(edges)})
		if err != nil {
			t.Fatal(err)
		}
		return a, ad.Stats()
	}
	ref, _ := run(true)
	if ref.Len() != len(edges) {
		t.Fatalf("per-edge run over unsized stream assigned %d of %d edges", ref.Len(), len(edges))
	}
	a, st := run(false)
	requireSameAssignments(t, "unsized stream", ref, a)
	if st.BatchedAdds != int64(len(edges)) {
		t.Errorf("BatchedAdds = %d, want %d", st.BatchedAdds, len(edges))
	}
}

// TestRefillBatchValidation pins the option contract: negative caps are
// construction errors, zero means default.
func TestRefillBatchValidation(t *testing.T) {
	if _, err := New(4, WithRefillBatch(-1)); err == nil {
		t.Error("New accepted a negative refill batch cap")
	}
	if _, err := New(4, WithRefillBatch(0)); err != nil {
		t.Errorf("New rejected the zero (default) refill batch cap: %v", err)
	}
}
