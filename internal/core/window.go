package core

import (
	"github.com/adwise-go/adwise/internal/graph"
)

// window implements the edge window with lazy traversal (§III-B): edges are
// split into a candidate set C of high-score edges and a secondary set Q.
// Per assignment only C is (re-)scored; Q is touched when C runs dry or
// when an incident vertex's replica set changes.
//
// The score threshold Θ = g_avg + ε tracks the mean cached score of window
// edges, so only better-than-average edges become candidates.

type setKind uint8

const (
	inCandidates setKind = iota
	inSecondary
	removed
)

type winEntry struct {
	edge  graph.Edge
	score float64 // cached max_p g(edge, p)
	part  int     // cached argmax partition (global id)
	kind  setKind
	pos   int // index within its set slice, for O(1) swap-removal
}

type window struct {
	sc *scorer

	candidates []*winEntry
	secondary  []*winEntry
	// incident maps a vertex to the window entries of its incident edges.
	// Entries are removed lazily: slices may hold removed entries that are
	// compacted during iteration.
	incident map[graph.VertexID][]*winEntry

	scoreSum float64 // Σ cached scores over live entries (for Θ)
	epsilon  float64 // ε in Θ = g_avg + ε
	maxCand  int     // bound on |C|; DESIGN.md documents this engineering cap
	// eager disables lazy traversal: every window edge is a candidate and
	// all of them are re-scored on every pop — the O(w·|P|) baseline the
	// paper's §III-B improves on. Used by the lazy-vs-eager ablation.
	eager bool

	neighborScratch []graph.VertexID
	seenScratch     map[graph.VertexID]struct{}

	// statistics
	promotions, demotions, reassessments, rescans int64
}

func newWindow(sc *scorer, epsilon float64, maxCand int, eager bool) *window {
	return &window{
		sc:          sc,
		incident:    make(map[graph.VertexID][]*winEntry, 256),
		epsilon:     epsilon,
		maxCand:     maxCand,
		eager:       eager,
		seenScratch: make(map[graph.VertexID]struct{}, 64),
	}
}

func (w *window) len() int { return len(w.candidates) + len(w.secondary) }

// theta returns the candidate threshold Θ = g_avg + ε over live entries.
func (w *window) theta() float64 {
	n := w.len()
	if n == 0 {
		return w.epsilon
	}
	return w.scoreSum/float64(n) + w.epsilon
}

// neighbors collects the window neighbourhood N(u)∪N(v) of e: the distinct
// other-endpoints of live window edges incident to e's endpoints,
// excluding u and v themselves. Used by the clustering score (Eq. 6); the
// paper computes N only from window edges for scalability.
func (w *window) neighbors(e graph.Edge) []graph.VertexID {
	w.neighborScratch = w.neighborScratch[:0]
	clear(w.seenScratch)
	w.seenScratch[e.Src] = struct{}{}
	w.seenScratch[e.Dst] = struct{}{}
	collect := func(v graph.VertexID) {
		for _, ent := range w.iterIncident(v) {
			n := ent.edge.Other(v)
			if _, dup := w.seenScratch[n]; dup {
				continue
			}
			w.seenScratch[n] = struct{}{}
			w.neighborScratch = append(w.neighborScratch, n)
		}
	}
	collect(e.Src)
	if e.Dst != e.Src {
		collect(e.Dst)
	}
	return w.neighborScratch
}

// iterIncident returns the live entries incident to v, compacting removed
// entries in place.
func (w *window) iterIncident(v graph.VertexID) []*winEntry {
	list, ok := w.incident[v]
	if !ok {
		return nil
	}
	live := list[:0]
	for _, ent := range list {
		if ent.kind != removed {
			live = append(live, ent)
		}
	}
	if len(live) == 0 {
		delete(w.incident, v)
		return nil
	}
	w.incident[v] = live
	return live
}

// add inserts a fresh stream edge into the window: score it once, classify
// against Θ (§III-B step 1). In eager mode everything is a candidate.
func (w *window) add(e graph.Edge) {
	_, best, part := w.sc.scoreEdge(e, w.neighbors(e))
	ent := &winEntry{edge: e, score: best, part: part}
	if w.eager || (best > w.theta() && len(w.candidates) < w.maxCand) {
		w.pushCandidate(ent)
	} else {
		w.pushSecondary(ent)
	}
	w.scoreSum += best
	w.incident[e.Src] = append(w.incident[e.Src], ent)
	if e.Dst != e.Src {
		w.incident[e.Dst] = append(w.incident[e.Dst], ent)
	}
}

func (w *window) pushCandidate(ent *winEntry) {
	ent.kind = inCandidates
	ent.pos = len(w.candidates)
	w.candidates = append(w.candidates, ent)
}

func (w *window) pushSecondary(ent *winEntry) {
	ent.kind = inSecondary
	ent.pos = len(w.secondary)
	w.secondary = append(w.secondary, ent)
}

// detach removes ent from its current set slice (but not from incident
// lists — those are compacted lazily).
func (w *window) detach(ent *winEntry) {
	var set *[]*winEntry
	switch ent.kind {
	case inCandidates:
		set = &w.candidates
	case inSecondary:
		set = &w.secondary
	default:
		return
	}
	s := *set
	last := len(s) - 1
	s[ent.pos] = s[last]
	s[ent.pos].pos = ent.pos
	*set = s[:last]
}

// remove detaches ent and marks it dead.
func (w *window) remove(ent *winEntry) {
	w.detach(ent)
	ent.kind = removed
	w.scoreSum -= ent.score
}

// updateScore refreshes ent's cached score in place, keeping scoreSum
// consistent.
func (w *window) updateScore(ent *winEntry, score float64, part int) {
	w.scoreSum += score - ent.score
	ent.score, ent.part = score, part
}

// popBest implements GETBESTASSIGNMENT's search (Alg. 1 line 9) with lazy
// traversal: only candidates are considered, falling back to a full
// secondary rescan when the candidate set is empty. The returned entry is
// removed from the window; the winning score g(ê,p̂) is reported for the
// (C1) bookkeeping of the adaptive window.
//
// Candidate selection itself is lazy too: cached scores order the
// candidates (a float comparison scan, no score computation) and only the
// argmax is re-scored. Because replica sets only grow and the balance term
// drifts slowly, a candidate's score rarely drops; when the fresh score
// does fall below the runner-up's cached score, the cache is updated and
// the selection retries, degenerating to a bounded number of re-scorings
// per pop — this is the "high-score edges in one window are likely to
// remain high-score edges in the subsequent window" property of §III-B.
func (w *window) popBest() (e graph.Edge, part int, score float64, ok bool) {
	if w.len() == 0 {
		return graph.Edge{}, 0, 0, false
	}
	if len(w.candidates) == 0 {
		w.rescanSecondary()
	}
	if w.eager {
		if len(w.candidates) > 0 {
			if best := w.rescoreCandidates(); best != nil {
				w.remove(best)
				return best.edge, best.part, best.score, true
			}
		}
	} else if len(w.candidates) > 0 {
		if best := w.selectLazy(); best != nil {
			w.remove(best)
			return best.edge, best.part, best.score, true
		}
	}
	if len(w.secondary) == 0 {
		// Everything was consumed by demotion-free candidate selection.
		if len(w.candidates) == 0 {
			return graph.Edge{}, 0, 0, false
		}
		best := w.candidates[0]
		for _, ent := range w.candidates[1:] {
			if ent.score > best.score {
				best = ent
			}
		}
		w.remove(best)
		return best.edge, best.part, best.score, true
	}
	// Everything scored at or below Θ: fall back to the best secondary
	// entry by cached score (fresh from the rescan above).
	best := w.secondary[0]
	for _, ent := range w.secondary[1:] {
		if ent.score > best.score {
			best = ent
		}
	}
	w.remove(best)
	return best.edge, best.part, best.score, true
}

// selectLazy picks the winning candidate: scan cached scores for the two
// best entries, refresh only the leader, and accept it unless its fresh
// score fell below the runner-up — in which case retry with the updated
// cache (bounded). Returns nil only if demotions empty the candidate set.
func (w *window) selectLazy() *winEntry {
	const maxTries = 4
	for try := 0; try < maxTries; try++ {
		if len(w.candidates) == 0 {
			return nil
		}
		best := w.candidates[0]
		var second float64
		for _, ent := range w.candidates[1:] {
			if ent.score > best.score {
				second = best.score
				best = ent
			} else if ent.score > second {
				second = ent.score
			}
		}
		_, fresh, part := w.sc.scoreEdge(best.edge, w.neighbors(best.edge))
		w.updateScore(best, fresh, part)
		if fresh >= second || len(w.candidates) == 1 {
			return best
		}
		// The leader's score decayed below the runner-up: demote it if it
		// also fell under Θ, then retry against the updated cache.
		if fresh <= w.theta() {
			w.detach(best)
			w.pushSecondary(best)
			w.demotions++
		}
	}
	// Give up on laziness for this pop: full rescore, exact argmax.
	return w.rescoreCandidates()
}

// rescoreCandidates refreshes every candidate's score, demoting those that
// fell to or below Θ (lazy mode only), and returns the argmax (nil if all
// demoted).
func (w *window) rescoreCandidates() *winEntry {
	theta := w.theta()
	var best *winEntry
	for i := 0; i < len(w.candidates); {
		ent := w.candidates[i]
		_, score, part := w.sc.scoreEdge(ent.edge, w.neighbors(ent.edge))
		w.updateScore(ent, score, part)
		if !w.eager && score <= theta {
			// Demote: swap-remove from candidates, push to secondary.
			w.detach(ent)
			w.pushSecondary(ent)
			w.demotions++
			continue // i now holds the swapped-in entry
		}
		if best == nil || score > best.score {
			best = ent
		}
		i++
	}
	return best
}

// rescanSecondary re-scores every secondary entry and promotes those whose
// fresh score exceeds Θ (§III-B step 2).
func (w *window) rescanSecondary() {
	w.rescans++
	theta := w.theta()
	for i := 0; i < len(w.secondary); {
		ent := w.secondary[i]
		_, score, part := w.sc.scoreEdge(ent.edge, w.neighbors(ent.edge))
		w.updateScore(ent, score, part)
		if score > theta && len(w.candidates) < w.maxCand {
			w.detach(ent)
			w.pushCandidate(ent)
			w.promotions++
			continue
		}
		i++
	}
}

// reassess re-scores the secondary edges incident to v — called when v
// gained a new replica, which may have raised their replication or
// clustering scores past Θ (§III-B step 3).
func (w *window) reassess(v graph.VertexID) {
	w.reassessments++
	theta := w.theta()
	for _, ent := range w.iterIncident(v) {
		if ent.kind != inSecondary || len(w.candidates) >= w.maxCand {
			continue
		}
		_, score, part := w.sc.scoreEdge(ent.edge, w.neighbors(ent.edge))
		w.updateScore(ent, score, part)
		if score > theta {
			w.detach(ent)
			w.pushCandidate(ent)
			w.promotions++
		}
	}
}
