package core

import (
	"github.com/adwise-go/adwise/internal/graph"
)

// window implements the edge window with lazy traversal (§III-B): edges are
// split into a candidate set C of high-score edges and a secondary set Q.
// Per assignment only C is (re-)scored; Q is touched when C runs dry or
// when an incident vertex's replica set changes.
//
// The score threshold Θ = g_avg + ε tracks the mean cached score of window
// edges, so only better-than-average edges become candidates.
//
// # The Θ snapshot rule
//
// Every scoring pass — add classification, selectLazy, rescoreCandidates,
// rescanSecondary, reassess — snapshots Θ exactly once at pass entry and
// compares every promotion/demotion decision of the pass against that
// snapshot. updateScore mutates scoreSum mid-pass, but the drifting live
// Θ is never consulted until the next pass begins. This makes the
// decisions of a pass a pure function of its entry state (and hence
// independent of the order entries are evaluated in), which is both the
// correctness rule the serial code needs — historically selectLazy read
// Θ live per retry, so demotions depended on iteration order — and the
// precondition for sharding a pass across score workers.
//
// # Parallel scoring passes
//
// The heavy passes (rescoreCandidates, rescanSecondary, and the cached-
// score scans of lazy selection) run on a scorePool in two phases: a
// parallel compute phase scores a snapshot of the set into a results
// array (workers share nothing — per-worker scratches, an immutable
// scoreView, disjoint result slots), then a serial apply phase walks the
// snapshot in order, refreshing caches and promoting/demoting against
// the pass's Θ snapshot. Fixed shard boundaries plus shard-order argmax
// merges (see scorepool.go) make the assignment sequence edge-for-edge
// identical for any worker count.
//
// # Struct-of-arrays layout
//
// The per-entry data the hot loops touch lives in flat parallel arrays,
// not behind the *winEntry pointers: candScores[i] / secScores[i] mirror
// the cached score of candidates[i] / secondary[i] (the invariant every
// push/detach/updateScore maintains), and a pass's fresh results land in
// passScores / passParts slots indexed like the snapshot. The top-two
// candidate scan — the per-pop cost of lazy selection — is therefore a
// branch-light loop over a contiguous []float64 with no pointer chasing,
// and the same holds for the Θ re-sum and the apply phases.

type setKind uint8

const (
	inCandidates setKind = iota
	inSecondary
	removed
)

type winEntry struct {
	edge  graph.Edge
	score float64 // cached max_p g(edge, p)
	part  int     // cached argmax partition (global id)
	kind  setKind
	pos   int // index within its set slice, for O(1) swap-removal
}

type window struct {
	sc   *scorer
	pool *scorePool

	candidates []*winEntry
	secondary  []*winEntry
	// candScores[i] / secScores[i] cache candidates[i].score /
	// secondary[i].score — the struct-of-arrays mirror the scan kernels
	// run over. Maintained by pushCandidate/pushSecondary/detach/
	// updateScore; checkWindowInvariants asserts the sync.
	candScores []float64
	secScores  []float64
	// incident maps a vertex to the window entries of its incident edges.
	// remove compacts the popped entry's two endpoint lists immediately —
	// removal is the only source of dead entries — so between pops the
	// lists hold live entries only and scoring passes never re-walk
	// garbage.
	incident map[graph.VertexID][]*winEntry

	scoreSum float64 // Σ cached scores over live entries (for Θ)
	epsilon  float64 // ε in Θ = g_avg + ε
	maxCand  int     // bound on |C|; DESIGN.md documents this engineering cap
	// eager disables lazy traversal: every window edge is a candidate and
	// all of them are re-scored on every pop — the O(w·|P|) baseline the
	// paper's §III-B improves on. Used by the lazy-vs-eager ablation.
	eager bool

	// Reusable pass buffers: the set snapshot walked by the apply phase
	// and the parallel compute phase's result slots (struct-of-arrays:
	// passScores[i] / passParts[i] are the fresh score and argmax
	// partition of entSnap[i]).
	entSnap    []*winEntry
	passScores []float64
	passParts  []int32

	// Reusable batched-refill buffers: result slots for the parallel
	// score phase of addBatch (indexed like the fresh-edge batch), the
	// intra-batch conflict marks, and the endpoint set that computes
	// them. Disjoint from the pass buffers above — a refill pass and a
	// rescore pass never overlap, but sharing slots would couple their
	// sizing invariants for no gain.
	refillScores   []float64
	refillParts    []int32
	refillConflict []bool
	refillSeen     map[graph.VertexID]struct{}

	// statistics
	promotions, demotions, reassessments, rescans int64
}

func newWindow(sc *scorer, pool *scorePool, epsilon float64, maxCand int, eager bool) *window {
	return &window{
		sc:       sc,
		pool:     pool,
		incident: make(map[graph.VertexID][]*winEntry, 256),
		epsilon:  epsilon,
		maxCand:  maxCand,
		eager:    eager,
	}
}

func (w *window) len() int { return len(w.candidates) + len(w.secondary) }

// theta returns the candidate threshold Θ = g_avg + ε over live entries.
// Passes snapshot it once at entry (see the Θ snapshot rule above).
func (w *window) theta() float64 {
	n := w.len()
	if n == 0 {
		return w.epsilon
	}
	return w.scoreSum/float64(n) + w.epsilon
}

// neighbors collects the window neighbourhood N(u)∪N(v) of e: the distinct
// other-endpoints of live window edges incident to e's endpoints,
// excluding u and v themselves. Used by the clustering score (Eq. 6); the
// paper computes N only from window edges for scalability. Serial form
// over the prime scratch; scoring passes use neighborsInto with
// per-worker scratches.
func (w *window) neighbors(e graph.Edge) []graph.VertexID {
	return w.neighborsInto(e, w.sc.prime)
}

// neighborsInto is the read-only neighbourhood collection: it walks the
// incident lists (live-only between pops; the removed check is defensive)
// touching only the given scratch — safe for concurrent calls with
// distinct scratches while no one mutates the window (the compute phase
// of a pass). The returned slice aliases scr.neighborScratch.
func (w *window) neighborsInto(e graph.Edge, scr *scoreScratch) []graph.VertexID {
	scr.neighborScratch = scr.neighborScratch[:0]
	clear(scr.seenScratch)
	scr.seenScratch[e.Src] = struct{}{}
	scr.seenScratch[e.Dst] = struct{}{}
	collect := func(v graph.VertexID) {
		for _, ent := range w.incident[v] {
			if ent.kind == removed {
				continue
			}
			n := ent.edge.Other(v)
			if _, dup := scr.seenScratch[n]; dup {
				continue
			}
			scr.seenScratch[n] = struct{}{}
			scr.neighborScratch = append(scr.neighborScratch, n)
		}
	}
	collect(e.Src)
	if e.Dst != e.Src {
		collect(e.Dst)
	}
	return scr.neighborScratch
}

// iterIncident returns the live entries incident to v, compacting removed
// entries in place. Serial paths only — it mutates the incident map.
func (w *window) iterIncident(v graph.VertexID) []*winEntry {
	list, ok := w.incident[v]
	if !ok {
		return nil
	}
	live := list[:0]
	for _, ent := range list {
		if ent.kind != removed {
			live = append(live, ent)
		}
	}
	if len(live) == 0 {
		delete(w.incident, v)
		return nil
	}
	w.incident[v] = live
	return live
}

// add inserts a fresh stream edge into the window: score it once, classify
// against Θ (§III-B step 1). In eager mode everything is a candidate.
// This is the per-edge reference path; the refill hot path scores whole
// batches through addBatch and only classifies serially.
func (w *window) add(e graph.Edge) {
	_, best, part := w.sc.scoreEdge(e, w.neighbors(e))
	w.insertScored(e, best, part)
}

// insertScored is the serial classify/insert half of an add: given the
// fresh score and argmax partition of e, classify against the live Θ
// (which drifts with every insert — classification is inherently
// order-dependent and stays serial) and link the entry into its set and
// the incident lists. Exactly the insertion semantics of add.
func (w *window) insertScored(e graph.Edge, best float64, part int) {
	ent := &winEntry{edge: e, score: best, part: part}
	if w.eager || (best > w.theta() && len(w.candidates) < w.maxCand) {
		w.pushCandidate(ent)
	} else {
		w.pushSecondary(ent)
	}
	w.scoreSum += best
	w.incident[e.Src] = append(w.incident[e.Src], ent)
	if e.Dst != e.Src {
		w.incident[e.Dst] = append(w.incident[e.Dst], ent)
	}
}

// addBatch inserts a refill batch of fresh stream edges, scoring the
// whole batch as one pool pass and then classifying serially in stream
// order — the two-phase form of calling add per edge, with edge-for-edge
// identical results.
//
// Why the batch scores are order-independent: during refill no assignment
// commits, so λ, the partition sizes, the max degree, and every replica
// set are frozen — one scoreView is exact for the entire batch, where the
// per-edge path minted an identical view per add. The only window state
// an insertion mutates that a later *score* could observe is the incident
// lists (the clustering score's neighbourhood). markRefillConflicts
// therefore flags every edge that shares an endpoint with an earlier
// batch edge; non-conflicting edges see exactly the pre-batch
// neighbourhood and score in the parallel phase, conflicting edges
// re-score serially at their insertion point, against the live incident
// lists, precisely as add would have. With the clustering score off the
// window never feeds back into scores at all and the whole batch
// parallelises.
//
// Classification (Θ comparison, candidate cap) happens serially in
// stream order against the live, per-insert Θ — identical to add.
// It reports whether the score phase ran on the pool.
func (w *window) addBatch(edges []graph.Edge) bool {
	if len(edges) == 1 {
		w.add(edges[0])
		return false
	}
	view := w.sc.view()
	conflict := w.markRefillConflicts(edges, view.clustering)

	if cap(w.refillScores) < len(edges) {
		w.refillScores = make([]float64, len(edges))
		w.refillParts = make([]int32, len(edges))
	}
	scores := w.refillScores[:len(edges)]
	parts := w.refillParts[:len(edges)]

	pooled := w.pool.forEach(len(edges), scoreGrainPerWorker, func(shard, lo, hi int) {
		scr := w.sc.prime
		if w.pool != nil {
			scr = w.pool.scratch[shard]
		}
		for i := lo; i < hi; i++ {
			if conflict != nil && conflict[i] {
				continue
			}
			nbs := w.neighborsInto(edges[i], scr)
			_, best, part := view.scoreEdge(edges[i], nbs, scr)
			scores[i], parts[i] = best, int32(part)
		}
	})

	for i, e := range edges {
		if conflict != nil && conflict[i] {
			// The edge shares an endpoint with an earlier batch edge: its
			// neighbourhood includes entries inserted moments ago, so
			// score it here, at its stream position, like add would.
			nbs := w.neighborsInto(e, w.sc.prime)
			_, best, part := view.scoreEdge(e, nbs, w.sc.prime)
			w.insertScored(e, best, part)
			continue
		}
		w.insertScored(e, scores[i], int(parts[i]))
	}
	return pooled
}

// markRefillConflicts returns the per-edge intra-batch conflict marks for
// addBatch: edges[i] is marked when an earlier batch edge shares one of
// its endpoints, meaning its window neighbourhood at insertion time
// differs from the pre-batch snapshot the parallel phase scores against.
// Returns nil — score everything in parallel — when the clustering score
// is off (window state never feeds back into scores) or no edge
// conflicts.
func (w *window) markRefillConflicts(edges []graph.Edge, clustering bool) []bool {
	if !clustering {
		return nil
	}
	if w.refillSeen == nil {
		w.refillSeen = make(map[graph.VertexID]struct{}, 2*len(edges))
	} else {
		clear(w.refillSeen)
	}
	w.refillConflict = append(w.refillConflict[:0], make([]bool, len(edges))...)
	any := false
	for i, e := range edges {
		_, src := w.refillSeen[e.Src]
		_, dst := w.refillSeen[e.Dst]
		if src || dst {
			w.refillConflict[i] = true
			any = true
		}
		w.refillSeen[e.Src] = struct{}{}
		w.refillSeen[e.Dst] = struct{}{}
	}
	if !any {
		return nil
	}
	return w.refillConflict
}

func (w *window) pushCandidate(ent *winEntry) {
	ent.kind = inCandidates
	ent.pos = len(w.candidates)
	w.candidates = append(w.candidates, ent)
	w.candScores = append(w.candScores, ent.score)
}

func (w *window) pushSecondary(ent *winEntry) {
	ent.kind = inSecondary
	ent.pos = len(w.secondary)
	w.secondary = append(w.secondary, ent)
	w.secScores = append(w.secScores, ent.score)
}

// detach removes ent from its current set slice and its parallel score
// slice (incident lists are untouched: a detached entry is still live,
// just changing sets).
func (w *window) detach(ent *winEntry) {
	var set *[]*winEntry
	var scores *[]float64
	switch ent.kind {
	case inCandidates:
		set, scores = &w.candidates, &w.candScores
	case inSecondary:
		set, scores = &w.secondary, &w.secScores
	default:
		return
	}
	s, sc := *set, *scores
	last := len(s) - 1
	s[ent.pos] = s[last]
	s[ent.pos].pos = ent.pos
	sc[ent.pos] = sc[last]
	*set = s[:last]
	*scores = sc[:last]
}

// remove detaches ent and marks it dead, compacting its two endpoint
// incident lists on the spot: removal is the only source of dead list
// entries, so eager compaction here keeps every later walk — including
// the sharded compute phases — free of removed entries.
func (w *window) remove(ent *winEntry) {
	w.detach(ent)
	ent.kind = removed
	w.scoreSum -= ent.score
	w.iterIncident(ent.edge.Src)
	if ent.edge.Dst != ent.edge.Src {
		w.iterIncident(ent.edge.Dst)
	}
}

// updateScore refreshes ent's cached score in place — both the entry
// field and its slot in the set's flat score slice — keeping scoreSum
// consistent.
func (w *window) updateScore(ent *winEntry, score float64, part int) {
	w.scoreSum += score - ent.score
	ent.score, ent.part = score, part
	switch ent.kind {
	case inCandidates:
		w.candScores[ent.pos] = score
	case inSecondary:
		w.secScores[ent.pos] = score
	}
}

// recomputeScoreSum replaces the incrementally maintained scoreSum with
// the exact Σ of live cached scores. The incremental form accumulates one
// floating-point rounding per updateScore over millions of operations;
// re-summing at every secondary rescan bounds the drift of Θ. The flat
// score slices make this a pure float64 reduction.
func (w *window) recomputeScoreSum() {
	var sum float64
	for _, s := range w.candScores {
		sum += s
	}
	for _, s := range w.secScores {
		sum += s
	}
	w.scoreSum = sum
}

// snapshotSet copies a set slice into the reusable pass snapshot buffer,
// sizing the flat result buffers to match. The apply phase walks this
// snapshot in order while promote/demote surgery perturbs the live slice.
func (w *window) snapshotSet(set []*winEntry) ([]*winEntry, []float64, []int32) {
	w.entSnap = append(w.entSnap[:0], set...)
	if cap(w.passScores) < len(set) {
		w.passScores = make([]float64, len(set))
		w.passParts = make([]int32, len(set))
	}
	w.passScores = w.passScores[:len(set)]
	w.passParts = w.passParts[:len(set)]
	return w.entSnap, w.passScores, w.passParts
}

// scoreAll is the parallel compute phase: score every snapshot entry
// against the pass view into its result slots (disjoint indices of the
// flat score/part arrays). Workers read window state nobody mutates
// during the pass; the shard id doubles as the scratch id.
func (w *window) scoreAll(ents []*winEntry, view *scoreView, scores []float64, parts []int32) {
	w.pool.forEach(len(ents), scoreGrainPerWorker, func(shard, lo, hi int) {
		scr := w.sc.prime
		if w.pool != nil {
			scr = w.pool.scratch[shard]
		}
		for i := lo; i < hi; i++ {
			nbs := w.neighborsInto(ents[i].edge, scr)
			_, best, part := view.scoreEdge(ents[i].edge, nbs, scr)
			scores[i], parts[i] = best, int32(part)
		}
	})
}

// popBest implements GETBESTASSIGNMENT's search (Alg. 1 line 9) with lazy
// traversal: only candidates are considered, falling back to a full
// secondary rescan when the candidate set is empty. The returned entry is
// removed from the window; the winning score g(ê,p̂) is reported for the
// (C1) bookkeeping of the adaptive window.
//
// Candidate selection itself is lazy too: cached scores order the
// candidates (a float comparison scan, no score computation) and only the
// argmax is re-scored. Because replica sets only grow and the balance term
// drifts slowly, a candidate's score rarely drops; when the fresh score
// does fall below the runner-up's cached score, the cache is updated and
// the selection retries, degenerating to a bounded number of re-scorings
// per pop — this is the "high-score edges in one window are likely to
// remain high-score edges in the subsequent window" property of §III-B.
func (w *window) popBest() (e graph.Edge, part int, score float64, ok bool) {
	if w.len() == 0 {
		return graph.Edge{}, 0, 0, false
	}
	if len(w.candidates) == 0 {
		w.rescanSecondary()
	}
	if w.eager {
		if len(w.candidates) > 0 {
			if best := w.rescoreCandidates(); best != nil {
				w.remove(best)
				return best.edge, best.part, best.score, true
			}
		}
	} else if len(w.candidates) > 0 {
		if best := w.selectLazy(); best != nil {
			w.remove(best)
			return best.edge, best.part, best.score, true
		}
	}
	if len(w.secondary) == 0 {
		// Everything was consumed by demotion-free candidate selection.
		if len(w.candidates) == 0 {
			return graph.Edge{}, 0, 0, false
		}
		return w.popFreshFrom(w.candidates, w.candScores)
	}
	// Everything scored at or below Θ: pop the best secondary entry. Its
	// cached score may predate arbitrary cache changes — e.g. when lazy
	// selection demoted every candidate, pre-existing secondary entries
	// were last scored whenever they entered the window — so the winner
	// is re-scored before the assignment is committed.
	return w.popFreshFrom(w.secondary, w.secScores)
}

// popFreshFrom picks the set's best entry by cached score (scanning the
// set's flat score slice), re-scores it against the current cache state,
// and removes it. The fresh score is what the caller commits: a cached
// (score, part) pair may be stale on every fallback path, and assigning a
// stale argmax partition would desynchronise the assignment from the
// scoring function.
func (w *window) popFreshFrom(set []*winEntry, scores []float64) (graph.Edge, int, float64, bool) {
	idx, _ := w.pool.topTwoCached(scores)
	best := set[idx]
	view := w.sc.view()
	_, fresh, part := view.scoreEdge(best.edge, w.neighborsInto(best.edge, w.sc.prime), w.sc.prime)
	w.updateScore(best, fresh, part)
	w.remove(best)
	return best.edge, part, fresh, true
}

// selectLazy picks the winning candidate: scan cached scores for the two
// best entries, refresh only the leader, and accept it unless its fresh
// score fell below the runner-up — in which case retry with the updated
// cache (bounded). Returns nil only if demotions empty the candidate set.
// Θ and the scoring view are snapshotted once for the whole selection
// (the Θ snapshot rule): every retry's demotion decision compares against
// the same threshold, so the outcome does not depend on how many leaders
// were refreshed before a given entry was considered.
func (w *window) selectLazy() *winEntry {
	const maxTries = 4
	theta := w.theta()
	view := w.sc.view()
	for try := 0; try < maxTries; try++ {
		if len(w.candidates) == 0 {
			return nil
		}
		idx, second := w.pool.topTwoCached(w.candScores)
		best := w.candidates[idx]
		_, fresh, part := view.scoreEdge(best.edge, w.neighborsInto(best.edge, w.sc.prime), w.sc.prime)
		w.updateScore(best, fresh, part)
		if fresh >= second || len(w.candidates) == 1 {
			return best
		}
		// The leader's score decayed below the runner-up: demote it if it
		// also fell under Θ, then retry against the updated cache.
		if fresh <= theta {
			w.detach(best)
			w.pushSecondary(best)
			w.demotions++
		}
	}
	// Give up on laziness for this pop: full rescore, exact argmax.
	return w.rescoreCandidates()
}

// rescoreCandidates refreshes every candidate's score, demoting those that
// fell to or below the pass's Θ snapshot (lazy mode only), and returns the
// argmax (nil if all demoted). The compute phase runs on the score
// workers; the serial apply phase walks the snapshot in insertion-position
// order, so the argmax tie-break (first strictly-greater win) is fixed.
func (w *window) rescoreCandidates() *winEntry {
	theta := w.theta()
	view := w.sc.view()
	ents, scores, parts := w.snapshotSet(w.candidates)
	w.scoreAll(ents, &view, scores, parts)

	var best *winEntry
	bestScore := 0.0
	for i, ent := range ents {
		w.updateScore(ent, scores[i], int(parts[i]))
		if !w.eager && scores[i] <= theta {
			// Demote: swap-remove from candidates, push to secondary.
			w.detach(ent)
			w.pushSecondary(ent)
			w.demotions++
			continue
		}
		if best == nil || scores[i] > bestScore {
			best, bestScore = ent, scores[i]
		}
	}
	return best
}

// rescanSecondary re-scores every secondary entry and promotes those whose
// fresh score exceeds the pass's Θ snapshot (§III-B step 2). Compute runs
// on the score workers; the apply phase promotes in snapshot order. Since
// the pass just refreshed every secondary score anyway, it finishes by
// re-summing scoreSum exactly, flushing accumulated floating-point drift.
func (w *window) rescanSecondary() {
	w.rescans++
	theta := w.theta()
	view := w.sc.view()
	ents, scores, parts := w.snapshotSet(w.secondary)
	w.scoreAll(ents, &view, scores, parts)

	for i, ent := range ents {
		w.updateScore(ent, scores[i], int(parts[i]))
		if scores[i] > theta && len(w.candidates) < w.maxCand {
			w.detach(ent)
			w.pushCandidate(ent)
			w.promotions++
		}
	}
	w.recomputeScoreSum()
}

// reassess re-scores the secondary edges incident to v — called when v
// gained a new replica, which may have raised their replication or
// clustering scores past Θ (§III-B step 3). Incident lists are short, so
// the pass runs serially on the prime scratch; Θ and the view are
// snapshotted at entry like every other pass.
func (w *window) reassess(v graph.VertexID) {
	w.reassessments++
	theta := w.theta()
	view := w.sc.view()
	for _, ent := range w.iterIncident(v) {
		if ent.kind != inSecondary || len(w.candidates) >= w.maxCand {
			continue
		}
		nbs := w.neighborsInto(ent.edge, w.sc.prime)
		_, score, part := view.scoreEdge(ent.edge, nbs, w.sc.prime)
		w.updateScore(ent, score, part)
		if score > theta {
			w.detach(ent)
			w.pushCandidate(ent)
			w.promotions++
		}
	}
}
