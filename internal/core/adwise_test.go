package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

func clusteredGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Community(60, 10, 0.9, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		k    int
		opts []Option
	}{
		{"k=0", 0, nil},
		{"bad allowed", 4, []Option{WithAllowedPartitions([]int{4})}},
		{"zero window", 4, []Option{WithInitialWindow(0)}},
		{"max below initial", 4, []Option{WithInitialWindow(8), WithMaxWindow(4)}},
		{"bad epsilon", 4, []Option{WithEpsilon(2)}},
		{"bad candidates", 4, []Option{WithMaxCandidates(0)}},
		{"inverted lambda", 4, []Option{WithLambdaBounds(5, 1)}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.k, tc.opts...); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunAssignsEveryEdgeOnce(t *testing.T) {
	g := clusteredGraph(t)
	for _, w := range []int{1, 7, 64} {
		ad, err := New(8, WithInitialWindow(w), WithFixedWindow())
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromGraph(g))
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != g.E() {
			t.Fatalf("w=%d: assigned %d of %d edges", w, a.Len(), g.E())
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		// Window reorders the stream but must not lose or duplicate edges.
		counts := make(map[graph.Edge]int, g.E())
		for _, e := range g.Edges {
			counts[e]++
		}
		for _, e := range a.Edges {
			counts[e]--
		}
		for e, c := range counts {
			if c != 0 {
				t.Fatalf("w=%d: edge %v count off by %d", w, e, c)
			}
		}
		if got := ad.Stats().Assignments; got != int64(g.E()) {
			t.Errorf("w=%d: stats report %d assignments", w, got)
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	ad, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	g := clusteredGraph(t)
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err == nil {
		t.Error("second Run succeeded, want single-use error")
	}
}

func TestCacheConsistency(t *testing.T) {
	g := clusteredGraph(t)
	ad, err := New(8, WithInitialWindow(32), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Summarize(a)
	if got := ad.Cache().ReplicationDegree(); !closeTo(got, s.ReplicationDegree, 1e-9) {
		t.Errorf("cache RF %v != recomputed %v", got, s.ReplicationDegree)
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func TestDeterminism(t *testing.T) {
	g := clusteredGraph(t)
	run := func() *metrics.Assignment {
		ad, err := New(8, WithInitialWindow(64), WithFixedWindow())
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromGraph(g))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := run(), run()
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] || a.Edges[i] != b.Edges[i] {
			t.Fatalf("runs differ at edge %d", i)
		}
	}
}

func TestBalanceHeld(t *testing.T) {
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 3)
	ad, err := New(16, WithInitialWindow(64), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Summarize(a)
	// Paper reports all results at (max-min)/max < 0.05; the adaptive λ
	// must keep the partitioning in that band.
	if s.Imbalance > 0.05 {
		t.Errorf("imbalance %v above the paper's 0.05 band (%+v)", s.Imbalance, s)
	}
}

func TestWindowImprovesQualityOnClusteredGraph(t *testing.T) {
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 3)
	rf := func(w int) float64 {
		ad, err := New(8, WithInitialWindow(w), WithFixedWindow())
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(a).ReplicationDegree
	}
	rf1, rf128 := rf(1), rf(128)
	if rf128 >= rf1 {
		t.Errorf("window did not help on clustered graph: RF(w=1)=%v RF(w=128)=%v", rf1, rf128)
	}
}

func TestBeatsHDRFOnClusteredGraph(t *testing.T) {
	// The paper's headline quality claim at moderate window sizes.
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 3)
	h, err := partition.NewHDRF(partition.Config{K: 8}, partition.HDRFDefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := partition.Run(stream.FromEdges(edges), h)
	if err != nil {
		t.Fatal(err)
	}
	rfHDRF := metrics.Summarize(ha).ReplicationDegree

	ad, err := New(8, WithInitialWindow(256), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	rfADWISE := metrics.Summarize(a).ReplicationDegree
	if rfADWISE >= rfHDRF {
		t.Errorf("ADWISE RF %v not better than HDRF RF %v", rfADWISE, rfHDRF)
	}
}

func TestLazyMatchesEagerQuality(t *testing.T) {
	// Lazy traversal is an efficiency device; its quality must stay close
	// to the eager full-rescan variant (the paper argues the same
	// assignments are made when candidates are selected right).
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 5)
	run := func(opts ...Option) float64 {
		ad, err := New(8, append([]Option{WithInitialWindow(64), WithFixedWindow()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(a).ReplicationDegree
	}
	lazy := run()
	eager := run(WithEagerTraversal())
	if diff := (lazy - eager) / eager; diff > 0.10 {
		t.Errorf("lazy RF %v more than 10%% worse than eager RF %v", lazy, eager)
	}
}

func TestLazyDoesLessWork(t *testing.T) {
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 5)
	ops := func(opts ...Option) int64 {
		ad, err := New(8, append([]Option{WithInitialWindow(128), WithFixedWindow()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ad.Run(stream.FromEdges(edges)); err != nil {
			t.Fatal(err)
		}
		return ad.Stats().ScoreComputations
	}
	lazy := ops()
	eager := ops(WithEagerTraversal())
	if lazy >= eager {
		t.Errorf("lazy traversal did %d score ops, eager %d — no saving", lazy, eager)
	}
}

func TestWindowOneDegeneratesToSingleEdge(t *testing.T) {
	// With w=1 the edge universe has one edge: ADWISE must behave like a
	// single-edge scorer, i.e. never reorder the stream.
	g := clusteredGraph(t)
	ad, err := New(4, WithInitialWindow(1), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != g.Edges[i] {
			t.Fatalf("w=1 reordered stream at %d", i)
		}
	}
}

func TestAdaptiveWindowGrowsWithGenerousBudget(t *testing.T) {
	// Fake clock: every Now() call advances 1µs, so measured per-edge
	// latency is tiny against a huge latency preference → C2 holds and the
	// window doubles (as long as C1 holds too).
	fake := clock.NewFake(time.Unix(0, 0))
	fake.SetStep(time.Microsecond)
	g := clusteredGraph(t)
	ad, err := New(8,
		WithClock(fake),
		WithLatencyPreference(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	st := ad.Stats()
	if st.PeakWindow <= 1 {
		t.Errorf("window never grew: peak %d, trace %v", st.PeakWindow, st.WindowTrace)
	}
}

func TestAdaptiveWindowStaysSmallWithZeroBudget(t *testing.T) {
	// L=0: condition C2 always false → window must stay at 1 (single-edge
	// streaming, §III-A).
	fake := clock.NewFake(time.Unix(0, 0))
	fake.SetStep(time.Microsecond)
	g := clusteredGraph(t)
	ad, err := New(8, WithClock(fake)) // no latency preference
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	if st := ad.Stats(); st.PeakWindow != 1 {
		t.Errorf("window grew to %d without a latency budget", st.PeakWindow)
	}
}

func TestAdaptiveWindowRespectsMaxWindow(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	fake.SetStep(time.Microsecond)
	g := clusteredGraph(t)
	ad, err := New(8,
		WithClock(fake),
		WithLatencyPreference(time.Hour),
		WithMaxWindow(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	st := ad.Stats()
	if st.PeakWindow > 16 {
		t.Errorf("window %d exceeded cap 16 (trace %v)", st.PeakWindow, st.WindowTrace)
	}
	if st.PeakWindow != 16 {
		t.Errorf("window with infinite budget should reach the cap 16, peaked at %d", st.PeakWindow)
	}
	// Every resize in the trace must be a doubling or halving.
	prev := 1
	for _, ch := range st.WindowTrace {
		if ch.NewSize != prev*2 && ch.NewSize != prev/2 && ch.NewSize != 1 {
			t.Errorf("resize %d → %d is not a doubling/halving", prev, ch.NewSize)
		}
		prev = ch.NewSize
	}
}

func TestAdaptiveWindowShrinksWhenBudgetTightens(t *testing.T) {
	// Start with a big window and a deadline that is already almost
	// exhausted: ¬C2 must halve the window back toward the floor.
	fake := clock.NewFake(time.Unix(0, 0))
	fake.SetStep(100 * time.Millisecond) // brutal per-observation cost
	g := clusteredGraph(t)
	ad, err := New(8,
		WithClock(fake),
		WithLatencyPreference(time.Second),
		WithInitialWindow(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	st := ad.Stats()
	if st.FinalWindow != 64 {
		t.Errorf("FinalWindow = %d, want shrink floor at initial window 64", st.FinalWindow)
	}
	// The floor is the initial window; verify no growth happened.
	if st.PeakWindow > 64 {
		t.Errorf("window grew to %d under an exhausted budget", st.PeakWindow)
	}
}

func TestLambdaStaysClamped(t *testing.T) {
	g := clusteredGraph(t)
	ad, err := New(8, WithInitialWindow(16), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	if l := ad.Stats().FinalLambda; l < DefaultLambdaMin || l > DefaultLambdaMax {
		t.Errorf("final λ %v escaped [%v,%v]", l, DefaultLambdaMin, DefaultLambdaMax)
	}
}

func TestFixedLambdaPins(t *testing.T) {
	g := clusteredGraph(t)
	ad, err := New(8, WithFixedLambda(1.1), WithInitialWindow(8), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	if l := ad.Stats().FinalLambda; l != 1.1 {
		t.Errorf("fixed λ drifted to %v", l)
	}
}

func TestAllowedPartitionsRespected(t *testing.T) {
	g := clusteredGraph(t)
	allowed := []int{1, 3, 6}
	ad, err := New(8, WithAllowedPartitions(allowed), WithInitialWindow(16), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	ok := map[int32]bool{1: true, 3: true, 6: true}
	for i, p := range a.Parts {
		if !ok[p] {
			t.Fatalf("edge %d assigned outside spread: %d", i, p)
		}
	}
}

func TestClusteringScoreHelpsOnCliqueCommunities(t *testing.T) {
	g := clusteredGraph(t)
	edges := stream.Shuffled(g.Edges, 9)
	rf := func(on bool) float64 {
		ad, err := New(8, WithInitialWindow(128), WithFixedWindow(), WithClusteringScore(on))
		if err != nil {
			t.Fatal(err)
		}
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(a).ReplicationDegree
	}
	with, without := rf(true), rf(false)
	if with > without*1.05 {
		t.Errorf("clustering score hurt badly on clique communities: with=%v without=%v", with, without)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := clusteredGraph(t)
	ad, err := New(8, WithInitialWindow(32), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Run(stream.FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	st := ad.Stats()
	if st.ScoreComputations == 0 {
		t.Error("ScoreComputations = 0")
	}
	if st.MeanAssignScore <= 0 {
		t.Errorf("MeanAssignScore = %v, want > 0", st.MeanAssignScore)
	}
	if st.FinalWindow < 1 {
		t.Errorf("FinalWindow = %d", st.FinalWindow)
	}
	if ad.Name() != "adwise" {
		t.Errorf("Name = %q", ad.Name())
	}
}

func TestEmptyStream(t *testing.T) {
	ad, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 {
		t.Errorf("assigned %d edges from empty stream", a.Len())
	}
}

func TestSelfLoopStream(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 2}}
	ad, err := New(4, WithInitialWindow(4), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ad.Run(stream.FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Errorf("assigned %d of 3 edges with self-loops", a.Len())
	}
}

func TestRunReturnsStreamError(t *testing.T) {
	// A file stream that fails mid-pass (malformed line) must fail Run:
	// stream exhaustion with a pending error is never a short success.
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\nbroken\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := stream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ad, err := New(4, WithInitialWindow(2), WithFixedWindow())
	if err != nil {
		t.Fatal(err)
	}
	if a, err := ad.Run(fs); err == nil {
		t.Fatalf("Run on failing stream returned %d edges and no error", a.Len())
	}
}
