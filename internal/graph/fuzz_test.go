package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func fuzzHeader(numV, numE uint64) []byte {
	hdr := make([]byte, BinaryHeaderSize)
	copy(hdr, binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], numV)
	binary.LittleEndian.PutUint64(hdr[12:20], numE)
	return hdr
}

func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteBinary(&valid, &Graph{NumV: 4, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}}})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5])    // torn trailing record
	f.Add(valid.Bytes()[:BinaryHeaderSize]) // header only
	f.Add(fuzzHeader(1, 1<<33))             // hostile count, no data
	f.Add(fuzzHeader(1<<40, 0))             // vertex count past the id space
	f.Add([]byte("ADWB"))
	f.Add([]byte("# not binary\n0 1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// ReadBinary over arbitrary bytes must never panic, and — the
		// hardening this fuzzes — never allocate more edge memory than the
		// data actually backs. On success the edge list must match the
		// declared count exactly.
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(data) < BinaryHeaderSize {
			t.Fatalf("accepted %d bytes, shorter than the header", len(data))
		}
		declared := binary.LittleEndian.Uint64(data[12:20])
		if uint64(len(g.Edges)) != declared {
			t.Fatalf("read %d edges, header declares %d", len(g.Edges), declared)
		}
		if body := len(data) - BinaryHeaderSize; uint64(body) < declared*BinaryRecordSize {
			t.Fatalf("accepted %d record bytes for %d declared records", body, declared)
		}
	})
}
