package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Edge-list IO. Two formats are supported:
//
//   - Text: one "src dst" pair per line, whitespace separated, with '#' and
//     '%' comment lines — the SNAP / KONECT convention used for the paper's
//     evaluation graphs. This file.
//   - Binary (ADWB): fixed 8-byte records behind a validated header; see
//     binary.go.
//
// LoadFile sniffs the format and dispatches; the streaming equivalents
// (stream.Open, stream.PlanFile) do the same without materialising.

// ReadEdgeListText parses a text edge list from r. Lines beginning with '#'
// or '%' and blank lines are skipped. Each data line must contain at least
// two integer fields; extra fields (weights, timestamps) are ignored.
func ReadEdgeListText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		src, err := parseVertex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: src: %w", lineNo, err)
		}
		dst, err := parseVertex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: dst: %w", lineNo, err)
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return New(edges)
}

func parseVertex(s string) (VertexID, error) {
	u, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parsing vertex id %q: %w", s, err)
	}
	if u > math.MaxUint32 {
		return 0, fmt.Errorf("vertex id %d exceeds 32-bit id space", u)
	}
	return VertexID(u), nil
}

// WriteEdgeListText writes g as a text edge list with a small header
// comment.
func WriteEdgeListText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices: %d edges: %d\n", g.NumV, len(g.Edges)); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	buf := make([]byte, 0, 32)
	for _, e := range g.Edges {
		buf = strconv.AppendUint(buf[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// LoadFile loads a graph from path, choosing the format by sniffing the
// binary magic and falling back to the text parser. One handle serves both
// sniff and parse, so the decision cannot race a concurrent file swap.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer f.Close()
	bin, err := sniffBinary(f)
	if err != nil {
		return nil, err
	}
	if bin {
		return ReadBinary(f)
	}
	return ReadEdgeListText(f)
}

// SaveFile writes the graph to path; binary format when the extension is
// ".bin", text otherwise.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: creating %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, g); err != nil {
			return err
		}
	} else if err := WriteEdgeListText(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graph: closing %s: %w", path, err)
	}
	return nil
}
