package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Edge-list IO. Two formats are supported:
//
//   - Text: one "src dst" pair per line, whitespace separated, with '#' and
//     '%' comment lines — the SNAP / KONECT convention used for the paper's
//     evaluation graphs.
//   - Binary: magic "ADWB" followed by little-endian uint64 edge count and
//     uint32 pairs; ~4x smaller and ~10x faster to load, used by the bench
//     harness to re-stream large synthetic graphs.

const binaryMagic = "ADWB"

// ReadEdgeListText parses a text edge list from r. Lines beginning with '#'
// or '%' and blank lines are skipped. Each data line must contain at least
// two integer fields; extra fields (weights, timestamps) are ignored.
func ReadEdgeListText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		src, err := parseVertex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: src: %w", lineNo, err)
		}
		dst, err := parseVertex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: dst: %w", lineNo, err)
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return New(edges)
}

func parseVertex(s string) (VertexID, error) {
	u, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parsing vertex id %q: %w", s, err)
	}
	if u > math.MaxUint32 {
		return 0, fmt.Errorf("vertex id %d exceeds 32-bit id space", u)
	}
	return VertexID(u), nil
}

// WriteEdgeListText writes g as a text edge list with a small header
// comment.
func WriteEdgeListText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices: %d edges: %d\n", g.NumV, len(g.Edges)); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	buf := make([]byte, 0, 32)
	for _, e := range g.Edges {
		buf = strconv.AppendUint(buf[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("graph: writing magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumV))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(g.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	var rec [8]byte
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.Src))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Dst))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("graph: writing edge record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing binary graph: %w", err)
	}
	return nil
}

// ReadBinary reads a graph in the compact binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q, want %q", magic, binaryMagic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	numV := binary.LittleEndian.Uint64(hdr[0:8])
	numE := binary.LittleEndian.Uint64(hdr[8:16])
	if numV > math.MaxUint32+1 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds 32-bit id space", numV)
	}
	const maxEdges = 1 << 34 // 16 Gi edges: sanity bound against corrupt headers
	if numE > maxEdges {
		return nil, fmt.Errorf("graph: implausible edge count %d", numE)
	}
	edges := make([]Edge, numE)
	var rec [8]byte
	for i := range edges {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d/%d: %w", i, numE, err)
		}
		edges[i] = Edge{
			Src: VertexID(binary.LittleEndian.Uint32(rec[0:4])),
			Dst: VertexID(binary.LittleEndian.Uint32(rec[4:8])),
		}
	}
	return &Graph{NumV: int(numV), Edges: edges}, nil
}

// sniffBinary reports whether the open file begins with the binary
// edge-list magic, leaving the read position at the start of the file.
func sniffBinary(f *os.File) (bool, error) {
	magic := make([]byte, len(binaryMagic))
	n, err := io.ReadFull(f, magic)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return false, fmt.Errorf("graph: sniffing %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false, fmt.Errorf("graph: rewinding %s: %w", f.Name(), err)
	}
	return n == len(binaryMagic) && string(magic) == binaryMagic, nil
}

// IsBinary reports whether path begins with the binary edge-list magic —
// the format sniff callers need before choosing a loading path that only
// works on text edge lists (e.g. segmented byte-range streaming).
func IsBinary(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer f.Close()
	return sniffBinary(f)
}

// LoadFile loads a graph from path, choosing the format by sniffing the
// binary magic and falling back to the text parser. One handle serves both
// sniff and parse, so the decision cannot race a concurrent file swap.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer f.Close()
	bin, err := sniffBinary(f)
	if err != nil {
		return nil, err
	}
	if bin {
		return ReadBinary(f)
	}
	return ReadEdgeListText(f)
}

// SaveFile writes the graph to path; binary format when the extension is
// ".bin", text otherwise.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: creating %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, g); err != nil {
			return err
		}
	} else if err := WriteEdgeListText(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graph: closing %s: %w", path, err)
	}
	return nil
}
