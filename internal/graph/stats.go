package graph

import (
	"fmt"
	"math/rand/v2"
)

// Stats summarises a graph the way Table II of the paper does: vertex and
// edge counts plus the (estimated) average local clustering coefficient ĉ.
type Stats struct {
	V             int
	E             int
	MaxDegree     int
	AvgDegree     float64
	Clustering    float64 // average local clustering coefficient (ĉ)
	SampledOn     int     // number of vertices ĉ was estimated on
	SelfLoops     int
	IsolatedCount int
}

// StatsOptions configures Summarize.
type StatsOptions struct {
	// ClusteringSample bounds how many vertices the clustering coefficient
	// is estimated on. Zero means the package default (2000); a negative
	// value or a value >= V computes it exactly over all vertices.
	ClusteringSample int
	// Seed drives the vertex sample; fixed so summaries are reproducible.
	Seed uint64
}

const defaultClusteringSample = 2000

// Summarize computes Stats for g. The clustering coefficient follows the
// paper's methodology of estimating on a sample of the graph (they cite a
// sampled ĉ for the Web graph).
func Summarize(g *Graph, opts StatsOptions) Stats {
	deg := g.Degrees()
	s := Stats{V: g.NumV, E: len(g.Edges)}
	totalDeg := 0
	for _, d := range deg {
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.IsolatedCount++
		}
	}
	for _, e := range g.Edges {
		if e.IsSelfLoop() {
			s.SelfLoops++
		}
	}
	if g.NumV > 0 {
		s.AvgDegree = float64(totalDeg) / float64(g.NumV)
	}

	sample := opts.ClusteringSample
	if sample == 0 {
		sample = defaultClusteringSample
	}
	if sample < 0 || sample > g.NumV {
		sample = g.NumV
	}
	csr := BuildCSR(g)
	var sum float64
	if sample == g.NumV {
		for v := 0; v < g.NumV; v++ {
			sum += csr.LocalClustering(VertexID(v))
		}
		s.SampledOn = g.NumV
	} else {
		rng := rand.New(rand.NewPCG(opts.Seed, 0x5eed))
		// Sample without replacement via partial Fisher–Yates over the
		// vertex universe.
		perm := make([]int32, g.NumV)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := 0; i < sample; i++ {
			j := i + rng.IntN(g.NumV-i)
			perm[i], perm[j] = perm[j], perm[i]
			sum += csr.LocalClustering(VertexID(perm[i]))
		}
		s.SampledOn = sample
	}
	if s.SampledOn > 0 {
		s.Clustering = sum / float64(s.SampledOn)
	}
	return s
}

// String renders the stats as a single Table II-style row.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d ĉ=%.4f maxdeg=%d avgdeg=%.2f",
		s.V, s.E, s.Clustering, s.MaxDegree, s.AvgDegree)
}
