// Package graph provides the graph substrate for the ADWISE reproduction:
// edge lists, compressed sparse row adjacency, degree and clustering
// statistics, and text/binary edge-list IO.
//
// Graphs are undirected for partitioning purposes (a vertex-cut does not
// distinguish edge direction), but edges retain their (Src, Dst) orientation
// so directed workloads such as PageRank can use it.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Vertex ids are dense non-negative integers;
// 32 bits covers every graph in the paper's evaluation (max 41M vertices).
type VertexID uint32

// Edge is a single graph edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Reverse returns the edge with endpoints swapped.
func (e Edge) Reverse() Edge { return Edge{Src: e.Dst, Dst: e.Src} }

// Other returns the endpoint of e that is not v. If v is not an endpoint,
// it returns Dst.
func (e Edge) Other(v VertexID) VertexID {
	if e.Src == v {
		return e.Dst
	}
	return e.Src
}

// IsSelfLoop reports whether both endpoints coincide.
func (e Edge) IsSelfLoop() bool { return e.Src == e.Dst }

// String renders the edge as "(src->dst)".
func (e Edge) String() string { return fmt.Sprintf("(%d->%d)", e.Src, e.Dst) }

// Graph is an edge-list graph with a fixed vertex universe 0..NumV-1.
type Graph struct {
	// NumV is the number of vertices; all edge endpoints are < NumV.
	NumV int
	// Edges is the edge list. Order matters: it is the stream order used by
	// streaming partitioners.
	Edges []Edge
}

// New builds a Graph from an edge list, computing the vertex universe from
// the maximum endpoint id. It returns an error if the edge list is empty.
func New(edges []Edge) (*Graph, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	var maxID VertexID
	for _, e := range edges {
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	return &Graph{NumV: int(maxID) + 1, Edges: edges}, nil
}

// V returns the number of vertices.
func (g *Graph) V() int { return g.NumV }

// E returns the number of edges.
func (g *Graph) E() int { return len(g.Edges) }

// Degrees returns the undirected degree of every vertex (self-loops count
// once).
func (g *Graph) Degrees() []int {
	deg := make([]int, g.NumV)
	for _, e := range g.Edges {
		deg[e.Src]++
		if e.Dst != e.Src {
			deg[e.Dst]++
		}
	}
	return deg
}

// OutDegrees returns the directed out-degree of every vertex.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, g.NumV)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// MaxDegree returns the largest undirected degree in the graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, d := range g.Degrees() {
		if d > m {
			m = d
		}
	}
	return m
}

// Dedup returns a copy of the graph with duplicate undirected edges and
// self-loops removed. Edge (u,v) and (v,u) are considered duplicates. The
// relative order of first occurrences is preserved.
func (g *Graph) Dedup() *Graph {
	seen := make(map[Edge]struct{}, len(g.Edges))
	out := make([]Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		if e.IsSelfLoop() {
			continue
		}
		key := e
		if key.Src > key.Dst {
			key = key.Reverse()
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, e)
	}
	return &Graph{NumV: g.NumV, Edges: out}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &Graph{NumV: g.NumV, Edges: edges}
}

// SortEdges orders the edge list by (Src, Dst); useful for golden tests and
// canonical comparisons. It sorts in place.
func (g *Graph) SortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}
