package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListText(t *testing.T) {
	in := `# comment line
% konect-style comment

0 1
1	2 999
3 4 some trailing junk
`
	g, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeListText: %v", err)
	}
	want := []Edge{{0, 1}, {1, 2}, {3, 4}}
	if len(g.Edges) != len(want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
	for i := range want {
		if g.Edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", g.Edges, want)
		}
	}
	if g.NumV != 5 {
		t.Errorf("NumV = %d, want 5", g.NumV)
	}
}

func TestReadEdgeListTextErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"single field", "0\n"},
		{"non-numeric", "a b\n"},
		{"negative", "-1 2\n"},
		{"overflow id", "4294967296 0\n"},
		{"empty input", ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeListText(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadEdgeListText(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := &Graph{NumV: 4, Edges: []Edge{{0, 1}, {2, 3}, {3, 0}}}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatalf("WriteEdgeListText: %v", err)
	}
	back, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeListText: %v", err)
	}
	if back.E() != g.E() {
		t.Fatalf("round trip lost edges: %d vs %d", back.E(), g.E())
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("round trip edge %d: %v vs %v", i, back.Edges[i], g.Edges[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := &Graph{NumV: 1000, Edges: []Edge{{0, 999}, {42, 17}, {999, 0}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.NumV != g.NumV || back.E() != g.E() {
		t.Fatalf("round trip header: V=%d E=%d, want V=%d E=%d", back.NumV, back.E(), g.NumV, g.E())
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("round trip edge %d: %v vs %v", i, back.Edges[i], g.Edges[i])
		}
	}
}

func TestReadBinaryCorrupt(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"bad magic", []byte("NOPE\x00\x00\x00\x00")},
		{"truncated header", []byte("ADWB\x01")},
		{"truncated records", append([]byte("ADWB"),
			// header: numV=2, numE=5, then zero edge records
			2, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(tc.data)); err == nil {
				t.Error("ReadBinary on corrupt input succeeded, want error")
			}
		})
	}
}

func TestSaveLoadFileFormats(t *testing.T) {
	dir := t.TempDir()
	g := &Graph{NumV: 6, Edges: []Edge{{0, 1}, {4, 5}}}

	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if back.E() != g.E() {
			t.Errorf("%s: round trip lost edges", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("LoadFile on missing file succeeded, want error")
	}
}
