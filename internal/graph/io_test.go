package graph

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListText(t *testing.T) {
	in := `# comment line
% konect-style comment

0 1
1	2 999
3 4 some trailing junk
`
	g, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeListText: %v", err)
	}
	want := []Edge{{0, 1}, {1, 2}, {3, 4}}
	if len(g.Edges) != len(want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
	for i := range want {
		if g.Edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", g.Edges, want)
		}
	}
	if g.NumV != 5 {
		t.Errorf("NumV = %d, want 5", g.NumV)
	}
}

func TestReadEdgeListTextErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"single field", "0\n"},
		{"non-numeric", "a b\n"},
		{"negative", "-1 2\n"},
		{"overflow id", "4294967296 0\n"},
		{"empty input", ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeListText(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadEdgeListText(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := &Graph{NumV: 4, Edges: []Edge{{0, 1}, {2, 3}, {3, 0}}}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatalf("WriteEdgeListText: %v", err)
	}
	back, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeListText: %v", err)
	}
	if back.E() != g.E() {
		t.Fatalf("round trip lost edges: %d vs %d", back.E(), g.E())
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("round trip edge %d: %v vs %v", i, back.Edges[i], g.Edges[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := &Graph{NumV: 1000, Edges: []Edge{{0, 999}, {42, 17}, {999, 0}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.NumV != g.NumV || back.E() != g.E() {
		t.Fatalf("round trip header: V=%d E=%d, want V=%d E=%d", back.NumV, back.E(), g.NumV, g.E())
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("round trip edge %d: %v vs %v", i, back.Edges[i], g.Edges[i])
		}
	}
}

func TestReadBinaryCorrupt(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"bad magic", []byte("NOPE\x00\x00\x00\x00")},
		{"truncated header", []byte("ADWB\x01")},
		{"truncated records", append([]byte("ADWB"),
			// header: numV=2, numE=5, then zero edge records
			2, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(tc.data)); err == nil {
				t.Error("ReadBinary on corrupt input succeeded, want error")
			}
		})
	}
}

// TestReadBinaryHostileHeaderAllocation pins the hardening: a header
// declaring far more edges than the stream holds must fail after reading
// the actual bytes, never after allocating for the declared count.
func TestReadBinaryHostileHeaderAllocation(t *testing.T) {
	// Declares 2^33 edges (64 GiB of records) backed by a single record.
	data := append(fuzzHeader(4, 1<<33), make([]byte, BinaryRecordSize)...)
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatal("hostile header accepted")
		}
	})
	// The bounded chunk is 2^16 edges = 512 KiB; anything within a few MiB
	// proves the declared count never drove the allocation. (Allocating the
	// declared 64 GiB would fail outright, but keep the bound explicit.)
	if allocs > 100 {
		t.Errorf("ReadBinary made %.0f allocations on a hostile header", allocs)
	}
}

func TestStatBinaryValidatesSize(t *testing.T) {
	dir := t.TempDir()
	g := &Graph{NumV: 4, Edges: []Edge{{0, 1}, {1, 2}, {2, 3}}}
	path := filepath.Join(dir, "g.bin")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	bi, err := StatBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if bi.NumV != 4 || bi.NumE != 3 {
		t.Fatalf("StatBinary = %+v, want NumV=4 NumE=3", bi)
	}
	if bi.DataStart() != BinaryHeaderSize || bi.DataEnd() != BinaryHeaderSize+3*BinaryRecordSize {
		t.Fatalf("record region [%d,%d), want [%d,%d)", bi.DataStart(), bi.DataEnd(),
			BinaryHeaderSize, BinaryHeaderSize+3*BinaryRecordSize)
	}

	// Truncated and padded copies must be rejected by the size check, and
	// LoadFile (which stats the handle it reads) must reject them too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"truncated": data[:len(data)-BinaryRecordSize],
		"padded":    append(append([]byte{}, data...), 0xab),
	} {
		p := filepath.Join(dir, name+".bin")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := StatBinary(p); err == nil {
			t.Errorf("StatBinary accepted %s file", name)
		}
		if _, err := LoadFile(p); err == nil {
			t.Errorf("LoadFile accepted %s file", name)
		}
	}
	if _, err := StatBinary(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("StatBinary on missing file succeeded")
	}
}

func TestReadRecords(t *testing.T) {
	g := &Graph{NumV: 8, Edges: []Edge{{0, 1}, {2, 3}, {4, 5}, {6, 7}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	records := buf.Bytes()[BinaryHeaderSize:]

	// Exact read.
	dst := make([]Edge, 4)
	n, err := ReadRecords(bytes.NewReader(records), dst)
	if n != 4 || err != nil {
		t.Fatalf("ReadRecords = %d, %v; want 4, nil", n, err)
	}
	for i := range g.Edges {
		if dst[i] != g.Edges[i] {
			t.Fatalf("record %d = %v, want %v", i, dst[i], g.Edges[i])
		}
	}

	// Short read: two complete records available, four requested.
	n, err = ReadRecords(bytes.NewReader(records[:2*BinaryRecordSize]), dst)
	if n != 2 || err == nil {
		t.Fatalf("short ReadRecords = %d, %v; want 2 and an error", n, err)
	}

	// Torn record: complete records decode, the tear is an error.
	n, err = ReadRecords(bytes.NewReader(records[:BinaryRecordSize+3]), dst)
	if n != 1 || err == nil {
		t.Fatalf("torn ReadRecords = %d, %v; want 1 and an error", n, err)
	}
	if dst[0] != g.Edges[0] {
		t.Fatalf("record before the tear = %v, want %v", dst[0], g.Edges[0])
	}

	// Empty destination and clean EOF.
	if n, err := ReadRecords(bytes.NewReader(records), nil); n != 0 || err != nil {
		t.Fatalf("empty-dst ReadRecords = %d, %v", n, err)
	}
	if n, err := ReadRecords(bytes.NewReader(nil), dst); n != 0 || err != io.EOF {
		t.Fatalf("EOF ReadRecords = %d, %v; want 0, io.EOF", n, err)
	}
}

func TestSaveLoadFileFormats(t *testing.T) {
	dir := t.TempDir()
	g := &Graph{NumV: 6, Edges: []Edge{{0, 1}, {4, 5}}}

	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if back.E() != g.E() {
			t.Errorf("%s: round trip lost edges", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("LoadFile on missing file succeeded, want error")
	}
}
