package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"
)

// Binary (ADWB) edge-list format: magic "ADWB", little-endian uint64 vertex
// count, little-endian uint64 edge count, then one fixed 8-byte record per
// edge (two little-endian uint32s: src, dst). ~4x smaller and ~10x faster
// to load than text, and — because every record has the same width — a
// byte range of the data region is computable from the header alone, which
// is what makes segmented binary loading plannable in O(1).
//
// This file owns everything that knows the record layout: header encoding
// and validation (StatBinary), raw record decoding (ReadRecords), and the
// materialising reader/writer pair (ReadBinary / WriteBinary). The
// streaming readers in internal/stream build on StatBinary + ReadRecords
// and never duplicate the format.

const binaryMagic = "ADWB"

const (
	// BinaryHeaderSize is the byte length of the ADWB preamble: 4 magic
	// bytes plus two uint64s (vertex count, edge count).
	BinaryHeaderSize = 4 + 8 + 8
	// BinaryRecordSize is the byte length of one edge record: two uint32s.
	BinaryRecordSize = 8
)

// maxBinaryEdges bounds the declared edge count (16 Gi edges) as a sanity
// check against corrupt headers; file-backed readers additionally verify
// the count against the actual file size.
const maxBinaryEdges = 1 << 34

// An Edge must be exactly one ADWB record — Src in the first four bytes,
// Dst in the last four — for the zero-copy record decode to be valid. Both
// declarations fail to compile if the struct layout drifts.
var (
	_ [BinaryRecordSize]byte = [unsafe.Sizeof(Edge{})]byte{}
	_ [4]byte                = [unsafe.Offsetof(Edge{}.Dst)]byte{}
)

// hostLittleEndian reports whether this host's native byte order matches
// the ADWB on-disk order, making record reads a straight memory copy.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1

// BinaryInfo is the decoded ADWB header: what a loader knows about the
// file before touching the data region.
type BinaryInfo struct {
	// NumV is the declared vertex count.
	NumV uint64
	// NumE is the declared edge count; the data region holds exactly this
	// many fixed-size records.
	NumE uint64
}

// DataStart returns the byte offset of the first edge record.
func (bi BinaryInfo) DataStart() int64 { return BinaryHeaderSize }

// DataEnd returns the byte offset one past the last edge record — for a
// well-formed file, the file size.
func (bi BinaryInfo) DataEnd() int64 {
	return BinaryHeaderSize + int64(bi.NumE)*BinaryRecordSize
}

// decodeBinaryHeader parses and bounds-checks the BinaryHeaderSize-byte
// preamble. It validates everything checkable without the file size.
func decodeBinaryHeader(hdr []byte) (BinaryInfo, error) {
	if len(hdr) < BinaryHeaderSize {
		return BinaryInfo{}, fmt.Errorf("graph: short binary header: %d bytes, want %d", len(hdr), BinaryHeaderSize)
	}
	if string(hdr[:4]) != binaryMagic {
		return BinaryInfo{}, fmt.Errorf("graph: bad magic %q, want %q", hdr[:4], binaryMagic)
	}
	bi := BinaryInfo{
		NumV: binary.LittleEndian.Uint64(hdr[4:12]),
		NumE: binary.LittleEndian.Uint64(hdr[12:20]),
	}
	if bi.NumV > math.MaxUint32+1 {
		return BinaryInfo{}, fmt.Errorf("graph: vertex count %d exceeds 32-bit id space", bi.NumV)
	}
	if bi.NumE > maxBinaryEdges {
		return BinaryInfo{}, fmt.Errorf("graph: implausible edge count %d", bi.NumE)
	}
	return bi, nil
}

// StatBinary reads and validates the ADWB header of the file at path: the
// magic, the declared counts, and — the check a hostile or truncated
// header cannot pass — that the declared edge count matches the actual
// file size exactly. It reads BinaryHeaderSize bytes and stats the file;
// the data region is never touched, so callers may plan byte ranges over
// arbitrarily large files in O(1).
func StatBinary(path string) (BinaryInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return BinaryInfo{}, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer f.Close()
	return StatBinaryFile(f)
}

// StatBinaryFile is StatBinary over an already-open file, so one handle
// can serve format sniff, header validation, and streaming — the decision
// cannot race a concurrent file swap. The read position is left just past
// the header (BinaryInfo.DataStart); callers that address the record
// region by absolute offset need no further seek.
func StatBinaryFile(f *os.File) (BinaryInfo, error) {
	st, err := f.Stat()
	if err != nil {
		return BinaryInfo{}, fmt.Errorf("graph: sizing %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return BinaryInfo{}, fmt.Errorf("graph: rewinding %s: %w", f.Name(), err)
	}
	var hdr [BinaryHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return BinaryInfo{}, fmt.Errorf("graph: reading binary header of %s: %w", f.Name(), err)
	}
	bi, err := decodeBinaryHeader(hdr[:])
	if err != nil {
		return BinaryInfo{}, fmt.Errorf("graph: %s: %w", f.Name(), err)
	}
	if st.Size() != bi.DataEnd() {
		return BinaryInfo{}, fmt.Errorf("graph: %s declares %d edges (%d bytes) but file holds %d bytes",
			f.Name(), bi.NumE, bi.DataEnd(), st.Size())
	}
	return bi, nil
}

// recordBytes returns the backing memory of dst as raw ADWB record bytes.
// Valid because an Edge is exactly one record (asserted above); on a
// little-endian host the bytes are already in on-disk order.
func recordBytes(dst []Edge) []byte {
	if len(dst) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), len(dst)*BinaryRecordSize)
}

// decodeRecordsInPlace fixes the byte order of records that were read raw
// into dst. A no-op on little-endian hosts — the read itself was the
// decode.
func decodeRecordsInPlace(dst []Edge) {
	if hostLittleEndian {
		return
	}
	b := recordBytes(dst)
	for i := range dst {
		rec := b[i*BinaryRecordSize : i*BinaryRecordSize+BinaryRecordSize]
		dst[i] = Edge{
			Src: VertexID(binary.LittleEndian.Uint32(rec[0:4])),
			Dst: VertexID(binary.LittleEndian.Uint32(rec[4:8])),
		}
	}
}

// ReadRecords reads up to len(dst) consecutive ADWB edge records from r
// straight into dst's backing memory — zero-copy on little-endian hosts —
// and returns the number of complete records decoded. The error is nil on
// a full read, io.EOF when the stream ended cleanly before the first byte,
// and io.ErrUnexpectedEOF (wrapped, when the stream ends inside a record)
// or the underlying read error otherwise. dst entries past the returned
// count are garbage.
func ReadRecords(r io.Reader, dst []Edge) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	n, err := io.ReadFull(r, recordBytes(dst))
	full := n / BinaryRecordSize
	decodeRecordsInPlace(dst[:full])
	if torn := n % BinaryRecordSize; torn != 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return full, fmt.Errorf("graph: torn edge record: %d trailing bytes, want %d: %w",
			torn, BinaryRecordSize, io.ErrUnexpectedEOF)
	}
	return full, err
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	var hdr [BinaryHeaderSize]byte
	copy(hdr[:4], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(g.NumV))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(g.Edges)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	if hostLittleEndian {
		// The edge slice already is the on-disk record region: one write,
		// no intermediate buffer.
		if _, err := w.Write(recordBytes(g.Edges)); err != nil {
			return fmt.Errorf("graph: writing edge records: %w", err)
		}
		return nil
	}
	bw := bufio.NewWriter(w)
	var rec [BinaryRecordSize]byte
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.Src))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Dst))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("graph: writing edge record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing binary graph: %w", err)
	}
	return nil
}

// readBinaryChunk is the allocation step of ReadBinary: large enough to
// amortize read calls, small enough that a corrupt header cannot drive a
// huge up-front allocation.
const readBinaryChunk = 1 << 16 // edges: 512 KiB per step

// ReadBinary reads a graph in the compact binary format, materialising the
// edge list. The header is validated before anything is allocated: when r
// can report its size (an *os.File), the declared edge count must match it
// exactly; otherwise the edge slice grows in bounded chunks as records
// actually arrive, so a truncated or hostile header can never drive an
// allocation larger than the real data.
func ReadBinary(r io.Reader) (*Graph, error) {
	// Size check up front, before the reader is wrapped or consumed.
	size := int64(-1)
	if f, ok := r.(interface{ Stat() (os.FileInfo, error) }); ok {
		if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
			size = st.Size()
		}
	}
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [BinaryHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	bi, err := decodeBinaryHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if size >= 0 && size != bi.DataEnd() {
		return nil, fmt.Errorf("graph: header declares %d edges (%d bytes) but file holds %d bytes",
			bi.NumE, bi.DataEnd(), size)
	}
	capHint := min(bi.NumE, readBinaryChunk)
	if size >= 0 {
		capHint = bi.NumE // size-verified: the records really are there
	}
	edges := make([]Edge, 0, capHint)
	for uint64(len(edges)) < bi.NumE {
		want := int(min(bi.NumE-uint64(len(edges)), readBinaryChunk))
		lo := len(edges)
		edges = slices.Grow(edges, want)[:lo+want]
		got, err := ReadRecords(br, edges[lo:])
		edges = edges[:lo+got]
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d/%d: %w", len(edges), bi.NumE, err)
		}
	}
	return &Graph{NumV: int(bi.NumV), Edges: edges}, nil
}

// sniffBinary reports whether the open file begins with the binary
// edge-list magic, leaving the read position at the start of the file.
func sniffBinary(f *os.File) (bool, error) {
	magic := make([]byte, len(binaryMagic))
	n, err := io.ReadFull(f, magic)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return false, fmt.Errorf("graph: sniffing %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false, fmt.Errorf("graph: rewinding %s: %w", f.Name(), err)
	}
	return n == len(binaryMagic) && string(magic) == binaryMagic, nil
}

// SniffBinary reports whether the open file begins with the binary
// edge-list magic, leaving the read position at the start of the file —
// the handle-preserving sniff behind every format-dispatched entry point
// (graph.LoadFile, stream.Open), so the format decision and the reader
// share one handle.
func SniffBinary(f *os.File) (bool, error) { return sniffBinary(f) }

// IsBinary reports whether path begins with the binary edge-list magic.
// Path-based entry points that cannot keep a handle (stream.PlanFile,
// whose ranges are reopened per segment) use this; handle-based readers
// prefer SniffBinary.
func IsBinary(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer f.Close()
	return sniffBinary(f)
}
