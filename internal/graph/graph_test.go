package graph

import (
	"testing"
)

func mustNew(t *testing.T, edges []Edge) *Graph {
	t.Helper()
	g, err := New(edges)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewComputesUniverse(t *testing.T) {
	g := mustNew(t, []Edge{{0, 5}, {2, 3}})
	if g.NumV != 6 {
		t.Errorf("NumV = %d, want 6", g.NumV)
	}
	if g.V() != 6 || g.E() != 2 {
		t.Errorf("V,E = %d,%d want 6,2", g.V(), g.E())
	}
}

func TestNewEmptyEdgeList(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) succeeded, want error")
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{Src: 1, Dst: 2}
	if e.Reverse() != (Edge{Src: 2, Dst: 1}) {
		t.Errorf("Reverse = %v", e.Reverse())
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Error("Other endpoint lookup wrong")
	}
	if e.IsSelfLoop() {
		t.Error("IsSelfLoop = true for (1,2)")
	}
	if !(Edge{3, 3}).IsSelfLoop() {
		t.Error("IsSelfLoop = false for (3,3)")
	}
	if got, want := e.String(), "(1->2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestDegrees(t *testing.T) {
	// Triangle plus a pendant and a self-loop.
	g := mustNew(t, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 4}})
	deg := g.Degrees()
	want := []int{2, 2, 3, 1, 1}
	for v, d := range want {
		if deg[v] != d {
			t.Errorf("deg[%d] = %d, want %d", v, deg[v], d)
		}
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	out := g.OutDegrees()
	wantOut := []int{1, 1, 2, 0, 1}
	for v, d := range wantOut {
		if out[v] != d {
			t.Errorf("outdeg[%d] = %d, want %d", v, out[v], d)
		}
	}
}

func TestDedup(t *testing.T) {
	g := mustNew(t, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	d := g.Dedup()
	if d.E() != 2 {
		t.Fatalf("Dedup left %d edges, want 2 (%v)", d.E(), d.Edges)
	}
	if d.Edges[0] != (Edge{0, 1}) || d.Edges[1] != (Edge{1, 2}) {
		t.Errorf("Dedup edges = %v, want first occurrences in order", d.Edges)
	}
	if g.E() != 5 {
		t.Error("Dedup mutated the receiver")
	}
}

func TestCloneAndSort(t *testing.T) {
	g := mustNew(t, []Edge{{2, 1}, {0, 3}, {2, 0}})
	c := g.Clone()
	c.SortEdges()
	if c.Edges[0] != (Edge{0, 3}) || c.Edges[1] != (Edge{2, 0}) || c.Edges[2] != (Edge{2, 1}) {
		t.Errorf("SortEdges = %v", c.Edges)
	}
	if g.Edges[0] != (Edge{2, 1}) {
		t.Error("Clone shares storage with original")
	}
}

func TestCSRNeighbors(t *testing.T) {
	g := mustNew(t, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	csr := BuildCSR(g)
	if csr.V() != 4 {
		t.Fatalf("V = %d, want 4", csr.V())
	}
	wantNeigh := map[VertexID][]VertexID{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1, 3},
		3: {2},
	}
	for v, want := range wantNeigh {
		got := csr.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v (sorted)", v, got, want)
			}
		}
		if csr.Degree(v) != len(want) {
			t.Errorf("Degree(%d) = %d, want %d", v, csr.Degree(v), len(want))
		}
	}
	if !csr.HasEdge(0, 2) || csr.HasEdge(0, 3) {
		t.Error("HasEdge adjacency wrong")
	}
}

func TestCSRSelfLoop(t *testing.T) {
	g := mustNew(t, []Edge{{0, 0}, {0, 1}})
	csr := BuildCSR(g)
	if got := csr.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2 (self-loop counted once)", got)
	}
}

func TestCommonNeighbors(t *testing.T) {
	// K4: every pair shares the other 2 vertices.
	g := mustNew(t, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	csr := BuildCSR(g)
	if got := csr.CommonNeighbors(0, 1); got != 2 {
		t.Errorf("CommonNeighbors(0,1) = %d, want 2", got)
	}
}

func TestLocalClustering(t *testing.T) {
	tests := []struct {
		name  string
		edges []Edge
		v     VertexID
		want  float64
	}{
		{"triangle", []Edge{{0, 1}, {1, 2}, {2, 0}}, 0, 1.0},
		{"star center", []Edge{{0, 1}, {0, 2}, {0, 3}}, 0, 0.0},
		{"path middle", []Edge{{0, 1}, {1, 2}}, 1, 0.0},
		{"degree one", []Edge{{0, 1}, {1, 2}}, 0, 0.0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			csr := BuildCSR(mustNew(t, tc.edges))
			if got := csr.LocalClustering(tc.v); got != tc.want {
				t.Errorf("LocalClustering(%d) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

func TestSummarizeExact(t *testing.T) {
	// Triangle with a pendant vertex and one isolated vertex.
	g := &Graph{NumV: 5, Edges: []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}}
	s := Summarize(g, StatsOptions{ClusteringSample: -1})
	if s.V != 5 || s.E != 4 {
		t.Errorf("V,E = %d,%d want 5,4", s.V, s.E)
	}
	if s.SampledOn != 5 {
		t.Errorf("SampledOn = %d, want 5 (exact)", s.SampledOn)
	}
	// cc: v0=1, v1=1, v2=1/3 (one of three neighbour pairs linked), v3=0, v4=0.
	want := (1.0 + 1.0 + 1.0/3.0) / 5.0
	if diff := s.Clustering - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Clustering = %v, want %v", s.Clustering, want)
	}
	if s.IsolatedCount != 1 {
		t.Errorf("IsolatedCount = %d, want 1", s.IsolatedCount)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d, want 3", s.MaxDegree)
	}
}

func TestSummarizeSampledDeterministic(t *testing.T) {
	edges := make([]Edge, 0, 3000)
	for i := 0; i < 1000; i++ {
		base := VertexID(3 * i)
		edges = append(edges, Edge{base, base + 1}, Edge{base + 1, base + 2}, Edge{base + 2, base})
	}
	g := mustNew(t, edges)
	a := Summarize(g, StatsOptions{ClusteringSample: 100, Seed: 9})
	b := Summarize(g, StatsOptions{ClusteringSample: 100, Seed: 9})
	if a.Clustering != b.Clustering {
		t.Errorf("sampled clustering not deterministic: %v vs %v", a.Clustering, b.Clustering)
	}
	// Every vertex sits in a triangle, so any sample must report cc = 1.
	if a.Clustering != 1.0 {
		t.Errorf("Clustering = %v, want 1.0", a.Clustering)
	}
	if a.SampledOn != 100 {
		t.Errorf("SampledOn = %d, want 100", a.SampledOn)
	}
}
