package graph

import "sort"

// CSR is a compressed-sparse-row adjacency structure over an undirected
// view of a graph: every edge (u,v) appears in the neighbour list of both u
// and v. Neighbour lists are sorted, enabling O(d1+d2) intersection, which
// the clustering-coefficient computation and the engine's clique workload
// rely on.
type CSR struct {
	offsets []int64
	neigh   []VertexID
}

// BuildCSR constructs the undirected adjacency for g. Self-loops contribute
// a single entry to their vertex's list. Duplicate edges contribute
// duplicate entries; call Graph.Dedup first for a simple graph.
func BuildCSR(g *Graph) *CSR {
	n := g.NumV
	offsets := make([]int64, n+1)
	for _, e := range g.Edges {
		offsets[e.Src+1]++
		if e.Dst != e.Src {
			offsets[e.Dst+1]++
		}
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	neigh := make([]VertexID, offsets[n])
	cursor := make([]int64, n)
	for _, e := range g.Edges {
		neigh[offsets[e.Src]+cursor[e.Src]] = e.Dst
		cursor[e.Src]++
		if e.Dst != e.Src {
			neigh[offsets[e.Dst]+cursor[e.Dst]] = e.Src
			cursor[e.Dst]++
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		nb := neigh[lo:hi]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return &CSR{offsets: offsets, neigh: neigh}
}

// V returns the number of vertices.
func (c *CSR) V() int { return len(c.offsets) - 1 }

// Degree returns the undirected degree of v.
func (c *CSR) Degree(v VertexID) int {
	return int(c.offsets[v+1] - c.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases internal storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) []VertexID {
	return c.neigh[c.offsets[v]:c.offsets[v+1]]
}

// HasEdge reports whether u and v are adjacent, via binary search over u's
// neighbour list.
func (c *CSR) HasEdge(u, v VertexID) bool {
	nb := c.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// CommonNeighbors returns |N(u) ∩ N(v)| by merging the two sorted lists.
func (c *CSR) CommonNeighbors(u, v VertexID) int {
	a, b := c.Neighbors(u), c.Neighbors(v)
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// LocalClustering returns the local clustering coefficient of v: the
// fraction of pairs of neighbours of v that are themselves adjacent.
// Vertices of degree < 2 have coefficient 0 by convention.
func (c *CSR) LocalClustering(v VertexID) float64 {
	nb := c.Neighbors(v)
	d := len(nb)
	if d < 2 {
		return 0
	}
	links := 0
	for _, u := range nb {
		if u == v {
			continue
		}
		links += c.CommonNeighbors(v, u)
	}
	// Every triangle through v is counted twice (once per participating
	// neighbour pair ordering).
	return float64(links) / float64(d*(d-1))
}
