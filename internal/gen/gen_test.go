package gen

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

func checkBasic(t *testing.T, g *graph.Graph, wantV int) {
	t.Helper()
	if g.NumV != wantV {
		t.Errorf("NumV = %d, want %d", g.NumV, wantV)
	}
	for _, e := range g.Edges {
		if int(e.Src) >= g.NumV || int(e.Dst) >= g.NumV {
			t.Fatalf("edge %v outside universe of %d", e, g.NumV)
		}
	}
}

func checkNoSelfLoops(t *testing.T, g *graph.Graph) {
	t.Helper()
	for _, e := range g.Edges {
		if e.IsSelfLoop() {
			t.Fatalf("generator produced self-loop %v", e)
		}
	}
}

func sameEdges(a, b *graph.Graph) bool {
	if a.E() != b.E() {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkBasic(t, g, 100)
	checkNoSelfLoops(t, g)
	if g.E() != 500 {
		t.Errorf("E = %d, want 500", g.E())
	}
	g2, _ := ErdosRenyi(100, 500, 1)
	if !sameEdges(g, g2) {
		t.Error("same seed produced different graphs")
	}
	g3, _ := ErdosRenyi(100, 500, 2)
	if sameEdges(g, g3) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(1, 5, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ErdosRenyi(10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkBasic(t, g, 500)
	checkNoSelfLoops(t, g)
	// m seed-path edges + (n-m-1) vertices each adding m edges.
	wantE := 3 + (500-3-1)*3
	if g.E() != wantE {
		t.Errorf("E = %d, want %d", g.E(), wantE)
	}
	// Preferential attachment must produce a hub: max degree far above m.
	if got := g.MaxDegree(); got < 10 {
		t.Errorf("MaxDegree = %d, want a hub (>= 10)", got)
	}
	g2, _ := BarabasiAlbert(500, 3, 7)
	if !sameEdges(g, g2) {
		t.Error("same seed produced different graphs")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(3, 3, 0); err == nil {
		t.Error("n <= m accepted")
	}
	if _, err := BarabasiAlbert(10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestHolmeKimClusteringRises(t *testing.T) {
	flat, err := HolmeKim(800, 4, 0.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := HolmeKim(800, 4, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkNoSelfLoops(t, tri)
	ccFlat := graph.Summarize(flat, graph.StatsOptions{ClusteringSample: -1}).Clustering
	ccTri := graph.Summarize(tri, graph.StatsOptions{ClusteringSample: -1}).Clustering
	if ccTri <= ccFlat {
		t.Errorf("triad formation did not raise clustering: pt=0 gives %v, pt=0.95 gives %v", ccFlat, ccTri)
	}
}

func TestHolmeKimErrors(t *testing.T) {
	if _, err := HolmeKim(10, 2, 1.5, 0); err == nil {
		t.Error("pt > 1 accepted")
	}
	if _, err := HolmeKim(2, 2, 0.5, 0); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(200, 4, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkBasic(t, g, 200)
	checkNoSelfLoops(t, g)
	if g.E() != 200*4 {
		t.Errorf("E = %d, want %d", g.E(), 800)
	}
	// Low rewiring keeps the lattice's high clustering.
	cc := graph.Summarize(g, graph.StatsOptions{ClusteringSample: -1}).Clustering
	if cc < 0.3 {
		t.Errorf("Clustering = %v, want >= 0.3 for beta=0.1 lattice", cc)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(10, 5, 0.1, 0); err == nil {
		t.Error("2k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, -0.1, 0); err == nil {
		t.Error("beta < 0 accepted")
	}
}

func TestCommunity(t *testing.T) {
	g, err := Community(10, 8, 1.0, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkBasic(t, g, 80)
	checkNoSelfLoops(t, g)
	// pin=1.0: every community is a clique of 8 → 10*28 intra + 20 inter.
	if want := 10*28 + 20; g.E() != want {
		t.Errorf("E = %d, want %d", g.E(), want)
	}
	cc := graph.Summarize(g, graph.StatsOptions{ClusteringSample: -1}).Clustering
	if cc < 0.5 {
		t.Errorf("Clustering = %v, want >= 0.5 for clique communities", cc)
	}
}

func TestCommunityErrors(t *testing.T) {
	if _, err := Community(0, 5, 0.5, 0, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Community(2, 5, 0, 0, 0); err == nil {
		t.Error("pin=0 accepted")
	}
	if _, err := Community(2, 5, 0.5, -1, 0); err == nil {
		t.Error("negative interEdges accepted")
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 5000, 0.57, 0.19, 0.19, 13)
	if err != nil {
		t.Fatal(err)
	}
	checkBasic(t, g, 1024)
	checkNoSelfLoops(t, g)
	if g.E() != 5000 {
		t.Errorf("E = %d, want 5000", g.E())
	}
	// Skewed quadrant probabilities concentrate edges on low vertex ids.
	if got := g.MaxDegree(); got < 40 {
		t.Errorf("MaxDegree = %d, want skew (>= 40)", got)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(0, 10, 0.5, 0.2, 0.2, 0); err == nil {
		t.Error("scale=0 accepted")
	}
	if _, err := RMAT(5, 10, 0.6, 0.3, 0.3, 0); err == nil {
		t.Error("probabilities summing over 1 accepted")
	}
}

func TestStructuredGraphs(t *testing.T) {
	star, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if star.E() != 4 || star.Degrees()[0] != 4 {
		t.Errorf("Star(5): E=%d hubdeg=%d", star.E(), star.Degrees()[0])
	}

	path, err := Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if path.E() != 3 {
		t.Errorf("Path(4): E=%d, want 3", path.E())
	}

	cyc, err := Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.E() != 4 {
		t.Errorf("Cycle(4): E=%d, want 4", cyc.E())
	}
	for _, d := range cyc.Degrees() {
		if d != 2 {
			t.Errorf("Cycle(4) has vertex of degree %d", d)
		}
	}

	k4, err := Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if k4.E() != 6 {
		t.Errorf("Clique(4): E=%d, want 6", k4.E())
	}

	grid, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rows × 3 horizontal + 2×4 vertical = 9 + 8.
	if grid.E() != 17 {
		t.Errorf("Grid2D(3,4): E=%d, want 17", grid.E())
	}

	for _, err := range []error{
		errOf(Star(1)), errOf(Path(1)), errOf(Cycle(1)), errOf(Clique(1)), errOf(Grid2D(1, 1)),
	} {
		if err == nil {
			t.Error("degenerate structured graph accepted")
		}
	}
}

func errOf(_ *graph.Graph, err error) error { return err }

func TestPresetsMatchTableIIRegimes(t *testing.T) {
	// The three presets must land in the paper's clustering regimes:
	// Orkut ~0.04 (low), Brain ~0.51 (moderate), Web ~0.82 (high).
	type band struct{ lo, hi float64 }
	bands := map[Preset]band{
		PresetOrkut: {0.0, 0.12},
		PresetBrain: {0.35, 0.65},
		PresetWeb:   {0.7, 0.95},
	}
	for _, p := range Presets() {
		g, err := p.Generate(0.05, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		checkBasic(t, g, g.NumV)
		cc := graph.Summarize(g, graph.StatsOptions{ClusteringSample: 500, Seed: 1}).Clustering
		b := bands[p]
		if cc < b.lo || cc > b.hi {
			t.Errorf("%s: clustering %v outside regime [%v,%v]", p, cc, b.lo, b.hi)
		}
		v, e, c := p.PaperStats()
		if v == 0 || e == 0 || c == 0 {
			t.Errorf("%s: PaperStats incomplete", p)
		}
		if p.Type() == "Unknown" {
			t.Errorf("%s: missing type label", p)
		}
	}
}

func TestPresetDeterminismAndScale(t *testing.T) {
	for _, p := range Presets() {
		a, err := p.Generate(0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Generate(0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEdges(a, b) {
			t.Errorf("%s: same seed produced different graphs", p)
		}
		small, err := p.Generate(0.02, 9)
		if err != nil {
			t.Fatal(err)
		}
		big, err := p.Generate(0.2, 9)
		if err != nil {
			t.Fatal(err)
		}
		if small.E() >= big.E() {
			t.Errorf("%s: scale 0.02 has %d edges, scale 0.2 has %d", p, small.E(), big.E())
		}
	}
	if _, err := PresetOrkut.Generate(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Preset("nope").Generate(1, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}
