package gen

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
)

// Preset identifies one of the Table II evaluation graphs.
type Preset string

// The three evaluation graphs of the paper (Table II), reproduced as
// synthetic stand-ins at a configurable scale. Scale 1.0 corresponds to the
// default laptop-friendly sizes documented in DESIGN.md §3; the shapes
// (degree skew, clustering regime) rather than the absolute sizes carry the
// experiments.
const (
	// PresetOrkut mimics the Orkut social network: power-law degrees with a
	// very low clustering coefficient (paper: ĉ=0.0413).
	PresetOrkut Preset = "orkut"
	// PresetBrain mimics the Brain biological network: dense, power-law,
	// moderate clustering (paper: ĉ=0.51).
	PresetBrain Preset = "brain"
	// PresetWeb mimics the Web graph: extremely strong clustering from
	// dense intra-site link structure (paper: ĉ=0.816).
	PresetWeb Preset = "web"
)

// Presets lists all presets in Table II order.
func Presets() []Preset { return []Preset{PresetOrkut, PresetBrain, PresetWeb} }

// PaperStats returns the |V|, |E| and ĉ the paper reports for the preset's
// real-world counterpart, for paper-vs-measured reporting.
func (p Preset) PaperStats() (v, e int64, clustering float64) {
	switch p {
	case PresetOrkut:
		return 3_072_441, 117_184_899, 0.0413
	case PresetBrain:
		return 734_600, 165_900_000, 0.509766
	case PresetWeb:
		return 41_291_594, 1_150_725_436, 0.816026
	default:
		return 0, 0, 0
	}
}

// Type returns the Table II graph type label.
func (p Preset) Type() string {
	switch p {
	case PresetOrkut:
		return "Social"
	case PresetBrain:
		return "Biological"
	case PresetWeb:
		return "Web"
	default:
		return "Unknown"
	}
}

// Generate produces the stand-in graph for the preset at the given scale.
// scale 1.0 yields the default evaluation size; smaller values shrink the
// graph proportionally (minimum sizes are enforced so tiny scales still
// produce valid graphs). The same seed always yields the same graph.
func (p Preset) Generate(scale float64, seed uint64) (*graph.Graph, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: preset %s: scale must be positive, got %v", p, scale)
	}
	switch p {
	case PresetOrkut:
		// Orkut: social network, power-law, ĉ≈0.04. Plain preferential
		// attachment has vanishing clustering; a light triad step lifts it
		// into the 0.03-0.06 band of the original.
		n := atLeast(int(60_000*scale), 200)
		m := 16
		return HolmeKim(n, m, 0.05, seed)
	case PresetBrain:
		// Brain: dense with moderate clustering ĉ≈0.5 and mild degree skew.
		// A small-world lattice supplies the density and clustering; a
		// preferential-attachment overlay (~8% of edges) supplies hubs.
		n := atLeast(int(12_000*scale), 150)
		base, err := WattsStrogatz(n, 25, 0.08, seed)
		if err != nil {
			return nil, err
		}
		hubs, err := BarabasiAlbert(n, 2, seed+1)
		if err != nil {
			return nil, err
		}
		nHub := len(base.Edges) / 12
		if nHub > len(hubs.Edges) {
			nHub = len(hubs.Edges)
		}
		base.Edges = append(base.Edges, hubs.Edges[:nHub]...)
		return base, nil
	case PresetWeb:
		// Web: near-clique page clusters (sites) plus sparse inter-site
		// links, ĉ≈0.8.
		communities := atLeast(int(1_500*scale), 8)
		const communitySize = 22
		inter := atLeast(int(22_000*scale), 40)
		return Community(communities, communitySize, 0.93, inter, seed)
	default:
		return nil, fmt.Errorf("gen: unknown preset %q", p)
	}
}

// OrkutLike generates the Orkut stand-in at the given scale.
func OrkutLike(scale float64, seed uint64) (*graph.Graph, error) {
	return PresetOrkut.Generate(scale, seed)
}

// BrainLike generates the Brain stand-in at the given scale.
func BrainLike(scale float64, seed uint64) (*graph.Graph, error) {
	return PresetBrain.Generate(scale, seed)
}

// WebLike generates the Web stand-in at the given scale.
func WebLike(scale float64, seed uint64) (*graph.Graph, error) {
	return PresetWeb.Generate(scale, seed)
}

func atLeast(v, min int) int {
	if v < min {
		return min
	}
	return v
}
