// Package gen generates the synthetic evaluation graphs.
//
// The paper evaluates on three real-world graphs (Orkut, Brain, Web —
// Table II) that differ chiefly in their clustering coefficient ĉ (0.04,
// 0.51, 0.82). Those datasets are not redistributable here, so this package
// provides generators whose outputs occupy the same regimes: power-law
// degree distributions with tunable clustering. See DESIGN.md §3 for the
// substitution argument.
//
// All generators are deterministic for a given seed.
package gen

import (
	"fmt"
	"math/rand/v2"

	"github.com/adwise-go/adwise/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// ErdosRenyi generates G(n, m): m uniformly random edges over n vertices,
// avoiding self-loops. Duplicate edges may occur for dense settings; call
// Graph.Dedup if a simple graph is required.
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n >= 2, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs m >= 1, got %d", m)
	}
	rng := newRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := graph.VertexID(rng.IntN(n))
		v := graph.VertexID(rng.IntN(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// BarabasiAlbert generates a preferential-attachment graph: n vertices,
// each new vertex attaching m edges to existing vertices with probability
// proportional to degree. Produces a power-law degree distribution with a
// near-zero clustering coefficient — the Orkut regime.
func BarabasiAlbert(n, m int, seed uint64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n > m (n=%d, m=%d)", n, m)
	}
	rng := newRNG(seed)
	edges := make([]graph.Edge, 0, (n-m)*m+m)
	// Repeated-endpoints list: picking a uniform element is equivalent to
	// degree-proportional sampling.
	targets := make([]graph.VertexID, 0, 2*((n-m)*m+m))

	// Seed clique-ish core: a path over the first m+1 vertices.
	for v := 1; v <= m; v++ {
		e := graph.Edge{Src: graph.VertexID(v - 1), Dst: graph.VertexID(v)}
		edges = append(edges, e)
		targets = append(targets, e.Src, e.Dst)
	}
	chosen := make(map[graph.VertexID]struct{}, m)
	order := make([]graph.VertexID, 0, m)
	for v := m + 1; v < n; v++ {
		clear(chosen)
		order = order[:0]
		src := graph.VertexID(v)
		for len(order) < m {
			t := targets[rng.IntN(len(targets))]
			if t == src {
				continue
			}
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			order = append(order, t)
		}
		// Emit in selection order: map iteration would randomise the edge
		// order and break seed determinism.
		for _, t := range order {
			edges = append(edges, graph.Edge{Src: src, Dst: t})
			targets = append(targets, src, t)
		}
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// HolmeKim generates a power-law graph with tunable clustering: classic
// preferential attachment where, after each preferential step, a
// triad-formation step with probability pt links the new vertex to a random
// neighbour of the previously chosen target — closing a triangle. Larger pt
// yields a larger clustering coefficient; this is the Brain regime.
func HolmeKim(n, m int, pt float64, seed uint64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: HolmeKim needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: HolmeKim needs n > m (n=%d, m=%d)", n, m)
	}
	if pt < 0 || pt > 1 {
		return nil, fmt.Errorf("gen: HolmeKim triad probability %v outside [0,1]", pt)
	}
	rng := newRNG(seed)
	edges := make([]graph.Edge, 0, (n-m)*m+m)
	targets := make([]graph.VertexID, 0, 2*((n-m)*m+m))
	adj := make([][]graph.VertexID, n) // needed for the triad step

	addEdge := func(u, v graph.VertexID) {
		edges = append(edges, graph.Edge{Src: u, Dst: v})
		targets = append(targets, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 1; v <= m; v++ {
		addEdge(graph.VertexID(v-1), graph.VertexID(v))
	}
	chosen := make(map[graph.VertexID]struct{}, m)
	for v := m + 1; v < n; v++ {
		clear(chosen)
		src := graph.VertexID(v)
		var last graph.VertexID
		havePrev := false
		for len(chosen) < m {
			var t graph.VertexID
			triad := false
			if havePrev && rng.Float64() < pt && len(adj[last]) > 0 {
				t = adj[last][rng.IntN(len(adj[last]))]
				triad = true
			} else {
				t = targets[rng.IntN(len(targets))]
			}
			if t == src {
				continue
			}
			if _, dup := chosen[t]; dup {
				// A failed triad step falls back to preferential attachment
				// on the next iteration rather than spinning on a saturated
				// neighbourhood.
				if triad {
					havePrev = false
				}
				continue
			}
			chosen[t] = struct{}{}
			addEdge(src, t)
			last, havePrev = t, true
		}
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// WattsStrogatz generates a small-world ring lattice over n vertices with
// k neighbours per side and rewiring probability beta. High clustering,
// near-uniform degrees; useful as a structured test graph.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs 1 <= k < n/2 (n=%d, k=%d)", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz rewiring probability %v outside [0,1]", beta)
	}
	rng := newRNG(seed)
	edges := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			dst := graph.VertexID((v + j) % n)
			src := graph.VertexID(v)
			if rng.Float64() < beta {
				for {
					cand := graph.VertexID(rng.IntN(n))
					if cand != src {
						dst = cand
						break
					}
				}
			}
			edges = append(edges, graph.Edge{Src: src, Dst: dst})
		}
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Community generates a graph of c dense communities of size s each:
// every community is an Erdős–Rényi subgraph with edge probability pin, and
// communities are stitched together by interEdges uniformly random
// cross-community edges. With pin near 1 the communities approach cliques
// and the clustering coefficient approaches 1 — the Web regime, where pages
// of a site link densely among themselves.
func Community(c, s int, pin float64, interEdges int, seed uint64) (*graph.Graph, error) {
	if c < 1 || s < 2 {
		return nil, fmt.Errorf("gen: Community needs c >= 1, s >= 2 (c=%d, s=%d)", c, s)
	}
	if pin <= 0 || pin > 1 {
		return nil, fmt.Errorf("gen: Community needs pin in (0,1], got %v", pin)
	}
	if interEdges < 0 {
		return nil, fmt.Errorf("gen: Community needs interEdges >= 0, got %d", interEdges)
	}
	rng := newRNG(seed)
	n := c * s
	expected := int(float64(c)*pin*float64(s*(s-1))/2) + interEdges
	edges := make([]graph.Edge, 0, expected)
	for ci := 0; ci < c; ci++ {
		base := graph.VertexID(ci * s)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if rng.Float64() < pin {
					edges = append(edges, graph.Edge{Src: base + graph.VertexID(i), Dst: base + graph.VertexID(j)})
				}
			}
		}
	}
	for added := 0; added < interEdges; {
		u := graph.VertexID(rng.IntN(n))
		v := graph.VertexID(rng.IntN(n))
		if u == v || int(u)/s == int(v)/s {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
		added++
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("gen: Community produced no edges (c=%d s=%d pin=%v)", c, s, pin)
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Zipf generates m edges over n vertices with both endpoints drawn from a
// Zipf distribution with the given exponent (s > 1), avoiding self-loops.
// Vertex 0 is the heaviest rank, so low vertex ids are hubs. Unlike the
// attachment models the degree skew is a direct knob: raising the exponent
// concentrates the edge mass on fewer hubs and lengthens the degree-1
// tail — the regime where a bounded vertex cache sheds the most state for
// the least replication cost (the memory-pressure workloads of the bench
// memory experiment).
func Zipf(n, m int, exponent float64, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Zipf needs n >= 2, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("gen: Zipf needs m >= 1, got %d", m)
	}
	if exponent <= 1 {
		return nil, fmt.Errorf("gen: Zipf exponent must be > 1, got %v", exponent)
	}
	rng := newRNG(seed)
	z := rand.NewZipf(rng, exponent, 1, uint64(n-1))
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := graph.VertexID(z.Uint64())
		v := graph.VertexID(z.Uint64())
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and m edges using partition probabilities a, b, c (d = 1-a-b-c).
// The standard Graph500 parameters a=0.57, b=0.19, c=0.19 give a skewed,
// power-law-like graph.
func RMAT(scale, m int, a, b, c float64, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d outside [1,30]", scale)
	}
	if m < 1 {
		return nil, fmt.Errorf("gen: RMAT needs m >= 1, got %d", m)
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT probabilities a=%v b=%v c=%v must be non-negative and sum <= 1", a, b, c)
	}
	rng := newRNG(seed)
	n := 1 << uint(scale)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		lo, hi := 0, 0
		size := n
		for size > 1 {
			size /= 2
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no offset
			case r < a+b:
				hi += size
			case r < a+b+c:
				lo += size
			default:
				lo += size
				hi += size
			}
		}
		if lo == hi {
			continue
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(lo), Dst: graph.VertexID(hi)})
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Star generates a hub-and-spoke graph: vertex 0 connected to vertices
// 1..n-1. The canonical example where vertex-cut beats edge-cut and where
// degree-aware strategies must replicate the hub.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Star needs n >= 2, got %d", n)
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(v)})
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Path generates the path graph 0-1-2-...-n-1.
func Path(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Path needs n >= 2, got %d", n)
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v - 1), Dst: graph.VertexID(v)})
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Cycle generates the cycle graph 0-1-...-n-1-0.
func Cycle(n int) (*graph.Graph, error) {
	g, err := Path(n)
	if err != nil {
		return nil, err
	}
	g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(n - 1), Dst: 0})
	return g, nil
}

// Clique generates the complete graph K_n.
func Clique(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Clique needs n >= 2, got %d", n)
	}
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(j)})
		}
	}
	return &graph.Graph{NumV: n, Edges: edges}, nil
}

// Grid2D generates an rows×cols lattice with 4-neighbour connectivity.
func Grid2D(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("gen: Grid2D needs a grid of at least 2 vertices (rows=%d, cols=%d)", rows, cols)
	}
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	edges := make([]graph.Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r+1, c)})
			}
		}
	}
	return &graph.Graph{NumV: rows * cols, Edges: edges}, nil
}
