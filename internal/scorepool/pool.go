// Package scorepool provides the process-wide work-stealing worker pool
// behind window scoring. One shared Pool, sized to GOMAXPROCS, serves the
// scoring passes of every partitioner instance in the process: a pass is
// submitted as a batch of independent shard tasks, the submitting
// goroutine executes shards of its own pass, and any idle pool worker
// steals shards from whichever pass is oldest. An instance draining a
// dense stream segment therefore borrows the cores that instances on
// sparse segments are not using — the flexing that a static cores/z split
// cannot do.
//
// The pool is deliberately oblivious to what a shard computes: tasks are
// func(shard int). Determinism is the caller's property and is easy to
// keep: shard *boundaries* must be a pure function of the pass inputs
// (never of the worker count), shards must write disjoint result slots,
// and reductions must merge in shard order. Under those rules, which
// goroutine executes a shard — the caller or a stealing worker — cannot
// influence the result, so the pool only ever trades wall-clock.
package scorepool

import (
	"math/bits"
	gort "runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines stealing shard tasks from
// submitted passes. The zero value is not usable; call New.
type Pool struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond // wakes workers when a pass arrives or the pool closes
	queue  []*Pass    // passes with unclaimed shards, oldest first
	closed bool

	wgWorkers sync.WaitGroup
}

// Pass is the reusable per-submitter pass state. A submitter owns one Pass
// value and passes it to every Run call; reuse keeps the steady state
// allocation-free. A Pass must not be shared between concurrent Run calls.
type Pass struct {
	fn   func(shard int)
	n    int
	next int // next unclaimed shard; guarded by the pool's mu
	wg   sync.WaitGroup

	// Steal accounting, written under the pool's mu at claim time and
	// published to the submitter by the WaitGroup at pass end.
	stolen  int    // shards executed by pool workers rather than the submitter
	helpers uint64 // bitmask of distinct pool workers that claimed a shard
}

// New starts a pool with the given number of worker goroutines (minimum
// 1). Workers idle on a condition variable when no pass is active.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wgWorkers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide scoring pool, created on first use with
// GOMAXPROCS workers. It is never closed; every partitioner instance in
// the process submits its scoring passes here unless a private pool was
// injected (WithScorePool), which is how the bench harness reproduces the
// old static cores/z split for comparison.
func Shared() *Pool {
	sharedOnce.Do(func() {
		shared = New(gort.GOMAXPROCS(0))
	})
	return shared
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers once the queue drains. Passes submitted after
// Close run entirely on their callers. The shared pool must not be closed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wgWorkers.Wait()
}

// Run executes fn(0) … fn(n-1) and returns when all n shards completed.
// The caller executes shards of its own pass; idle pool workers steal the
// rest. It reports how many shards were stolen by pool workers and how
// many distinct workers participated — the flexing visibility the skew
// benchmarks assert on. Shards may run in any order and concurrently;
// the caller's determinism rules (fixed boundaries, disjoint slots,
// shard-order merges) are what make that order invisible.
func (p *Pool) Run(ps *Pass, n int, fn func(shard int)) (stolen, helpers int) {
	if n <= 0 {
		return 0, 0
	}
	ps.fn, ps.n, ps.next = fn, n, 0
	ps.stolen, ps.helpers = 0, 0
	ps.wg.Add(n)

	p.mu.Lock()
	enqueued := !p.closed && p.workers > 0
	if enqueued {
		p.queue = append(p.queue, ps)
	}
	p.mu.Unlock()
	if enqueued {
		p.cond.Broadcast()
	}

	// The caller works its own pass until every shard is claimed, then
	// waits out the shards helpers are still running.
	for {
		p.mu.Lock()
		if ps.next >= ps.n {
			p.mu.Unlock()
			break
		}
		shard := ps.next
		ps.next++
		if ps.next >= ps.n {
			p.dequeue(ps)
		}
		p.mu.Unlock()
		fn(shard)
		ps.wg.Done()
	}
	ps.wg.Wait()
	return ps.stolen, bits.OnesCount64(ps.helpers)
}

// dequeue removes a fully claimed pass from the queue. Callers hold mu.
func (p *Pool) dequeue(ps *Pass) {
	for i, q := range p.queue {
		if q == ps {
			copy(p.queue[i:], p.queue[i+1:])
			p.queue[len(p.queue)-1] = nil
			p.queue = p.queue[:len(p.queue)-1]
			return
		}
	}
}

// worker steals shards from the oldest pass with unclaimed work.
func (p *Pool) worker(id int) {
	defer p.wgWorkers.Done()
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		ps := p.queue[0]
		shard := ps.next
		ps.next++
		ps.stolen++
		ps.helpers |= 1 << (uint(id) & 63)
		if ps.next >= ps.n {
			p.dequeue(ps)
		}
		p.mu.Unlock()
		ps.fn(shard)
		ps.wg.Done()
		p.mu.Lock()
	}
}
