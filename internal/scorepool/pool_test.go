package scorepool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryShardOnce drives passes of many sizes through pools of
// several widths: every shard index must execute exactly once, whatever
// mix of caller execution and stealing the scheduler produced.
func TestRunCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		var pass Pass
		for _, n := range []int{0, 1, 2, 7, 64, 500} {
			counts := make([]int32, n)
			stolen, helpers := p.Run(&pass, n, func(shard int) {
				atomic.AddInt32(&counts[shard], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: shard %d ran %d times", workers, n, i, c)
				}
			}
			if stolen > n {
				t.Fatalf("workers=%d n=%d: stolen %d > shards", workers, n, stolen)
			}
			if helpers > workers {
				t.Fatalf("workers=%d n=%d: helpers %d > pool width", workers, n, helpers)
			}
		}
		p.Close()
	}
}

// TestStealIsForced pins the stealing path deterministically, single-core
// machines included: the caller claims a shard whose body blocks until the
// other shard has run. The caller cannot claim it (it is blocked inside
// its first shard), so a pool worker must steal it — on every round.
func TestStealIsForced(t *testing.T) {
	p := New(2)
	defer p.Close()
	var pass Pass
	for round := 0; round < 25; round++ {
		release := make(chan struct{})
		var first atomic.Bool
		stolen, helpers := p.Run(&pass, 2, func(shard int) {
			if first.CompareAndSwap(false, true) {
				<-release // block until the second shard's executor arrives
			} else {
				close(release)
			}
		})
		if stolen < 1 {
			t.Fatalf("round %d: stolen = %d, want >= 1 (two shards, one blocked executor)", round, stolen)
		}
		if helpers < 1 {
			t.Fatalf("round %d: helpers = %d, want >= 1", round, helpers)
		}
	}
}

// TestConcurrentSubmitters mimics spotlight: several submitters share one
// pool, each running many passes. All shards of all passes must complete,
// and no pass may observe another pass's shards (the fn closure is
// per-pass). Run under -race this exercises the claim/steal protocol.
func TestConcurrentSubmitters(t *testing.T) {
	p := New(4)
	defer p.Close()
	const (
		submitters = 6
		passes     = 200
		shards     = 8
	)
	var wg sync.WaitGroup
	totals := make([]int64, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var pass Pass
			var local int64
			for r := 0; r < passes; r++ {
				p.Run(&pass, shards, func(shard int) {
					atomic.AddInt64(&local, 1)
				})
			}
			totals[s] = atomic.LoadInt64(&local)
		}(s)
	}
	wg.Wait()
	for s, got := range totals {
		if want := int64(passes * shards); got != want {
			t.Errorf("submitter %d executed %d shard bodies, want %d", s, got, want)
		}
	}
}

// TestRunAfterCloseRunsInline verifies the close contract: a pass
// submitted after Close still completes, entirely on the caller.
func TestRunAfterCloseRunsInline(t *testing.T) {
	p := New(2)
	p.Close()
	var pass Pass
	ran := make([]bool, 16)
	stolen, _ := p.Run(&pass, len(ran), func(shard int) { ran[shard] = true })
	if stolen != 0 {
		t.Errorf("stolen = %d after Close, want 0", stolen)
	}
	for i, ok := range ran {
		if !ok {
			t.Errorf("shard %d did not run after Close", i)
		}
	}
}

// TestSharedSingleton pins the process-wide pool: same instance on every
// call, sized to GOMAXPROCS at first use.
func TestSharedSingleton(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared returned two different pools")
	}
	if a.Workers() < 1 {
		t.Fatalf("shared pool has %d workers", a.Workers())
	}
	var pass Pass
	var n int32
	a.Run(&pass, 4, func(int) { atomic.AddInt32(&n, 1) })
	if n != 4 {
		t.Fatalf("shared pool ran %d of 4 shards", n)
	}
}
