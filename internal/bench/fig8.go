package bench

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
)

// Figure8 regenerates Figure 8: the efficacy of the spotlight optimization
// on Brain. With z=8 parallel partitioners filling k=32 partitions, the
// spread (partitions per partitioner) is swept over {4, 8, 16, 32}; the
// paper reports replication-degree reductions of up to 76% at the minimal
// spread, for all strategies.
func Figure8(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: fig8: %w", err)
	}
	// Spotlight exploits locality already present in the stream; the
	// paper streams the file in its natural order.
	edges := g.Edges
	cfg.progressf("fig8: brain V=%d E=%d", g.NumV, g.E())

	spreads := []int{cfg.K / cfg.Z, 8, 16, cfg.K}
	t := &Table{
		ID:      "Figure 8",
		Title:   fmt.Sprintf("Spotlight: RF vs spread on Brain-like (k=%d, z=%d)", cfg.K, cfg.Z),
		Columns: []string{"strategy"},
	}
	for _, s := range spreads {
		t.Columns = append(t.Columns, fmt.Sprintf("spread=%d", s))
	}
	t.Columns = append(t.Columns, "reduction")

	// Registry-driven strategy set: the sweep baselines plus every
	// window-class strategy, as in the paper's Figure 8 comparison.
	strategies := append(SweepBaselines(), WindowStrategies()...)
	for _, name := range strategies {
		row := []any{name}
		var first, last float64
		for i, spread := range spreads {
			scfg := runtime.SpotlightConfig{K: cfg.K, Z: cfg.Z, Spread: spread}
			// A moderate fixed window keeps the ADWISE sweep deterministic
			// and isolates the spread effect from the latency-adaptation
			// loop; the single-edge strategies ignore the window knob.
			a, err := runtime.RunStrategySpotlight(name, edges, scfg,
				runtime.Spec{K: cfg.K, Seed: cfg.Seed, Window: 64})
			if err != nil {
				return nil, fmt.Errorf("bench: fig8 %s spread=%d: %w", name, spread, err)
			}
			rf := metrics.Summarize(a).ReplicationDegree
			row = append(row, rf)
			if i == 0 {
				first = rf
			}
			if i == len(spreads)-1 {
				last = rf
			}
			cfg.progressf("fig8: %-7s spread=%-2d RF=%.3f", name, spread, rf)
		}
		row = append(row, fmt.Sprintf("-%.0f%%", 100*(1-first/last)))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"reduction = RF drop going from full spread (classic parallel loading) to the minimal spotlight spread k/z")
	return t, nil
}
