package bench

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/stream"
)

// StrategyResult is one partitioning run of an experiment.
type StrategyResult struct {
	// Name labels the strategy (a registry name, e.g. "dbh", "hdrf",
	// "adwise").
	Name string
	// LatencyPref is ADWISE's L (zero for the single-edge baselines).
	LatencyPref time.Duration
	// Latency is the measured wall-clock partitioning latency.
	Latency time.Duration
	// Summary is the partitioning quality.
	Summary metrics.Summary
	// Assignment is the produced partitioning.
	Assignment *metrics.Assignment
}

// evalGraph generates the preset graph and applies the experiment's stream
// order. Orkut and Brain stream in generator (file) order, which carries
// the temporal locality of a real crawl; Web is shuffled because the
// community generator's file order is unrealistically clean (every site
// fully contiguous) — see DESIGN.md §3.
func (c Config) evalGraph(preset gen.Preset) (*graph.Graph, []graph.Edge, error) {
	g, err := preset.Generate(c.Scale, c.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: generating %s: %w", preset, err)
	}
	edges := g.Edges
	if preset == gen.PresetWeb {
		edges = stream.Shuffled(g.Edges, c.Seed+1)
	}
	return g, edges, nil
}

func (c Config) spotlightConfig() runtime.SpotlightConfig {
	return runtime.SpotlightConfig{K: c.K, Z: c.Z, Spread: c.Spread}
}

// runStrategy partitions edges with the named registry strategy under the
// paper's parallel-loading setup.
func (c Config) runStrategy(name string, edges []graph.Edge, spec runtime.Spec) (StrategyResult, error) {
	spec.K = c.K
	if spec.Seed == 0 {
		spec.Seed = c.Seed
	}
	if spec.ScoreWorkers == 0 {
		spec.ScoreWorkers = c.ScoreWorkers
	}
	clk := c.clock()
	start := clk.Now()
	a, err := runtime.RunStrategySpotlight(name, edges, c.spotlightConfig(), spec)
	if err != nil {
		return StrategyResult{}, fmt.Errorf("bench: running %s: %w", name, err)
	}
	return StrategyResult{
		Name:        name,
		LatencyPref: spec.Latency,
		Latency:     clk.Now().Sub(start),
		Summary:     metrics.Summarize(a),
		Assignment:  a,
	}, nil
}

// runBaseline partitions edges with a named single-edge baseline under the
// paper's parallel-loading setup.
func (c Config) runBaseline(name string, edges []graph.Edge) (StrategyResult, error) {
	return c.runStrategy(name, edges, runtime.Spec{})
}

// WithPresetClustering disables the clustering score on Orkut, as the
// paper does ("Orkut has a low clustering coefficient, so that the
// clustering score in ADWISE is not effective and, hence, was switched off
// for this graph").
func WithPresetClustering(preset gen.Preset) core.Option {
	return core.WithClusteringScore(preset != gen.PresetOrkut)
}

// runWindow partitions edges with a window-class strategy at the given
// latency preference under the parallel-loading setup. Each of the Z
// instances adapts its own window against the shared deadline L.
func (c Config) runWindow(name string, preset gen.Preset, edges []graph.Edge, latencyPref time.Duration) (StrategyResult, error) {
	return c.runStrategy(name, edges, runtime.Spec{
		Latency: latencyPref,
		Options: []core.Option{WithPresetClustering(preset)},
	})
}

// SweepBaselines lists the single-edge baselines of the Figure 7/8
// comparison sweep, derived from the registry (strategies registered with
// Meta.Sweep), so a newly registered peer joins the tables automatically.
func SweepBaselines() []string {
	return runtime.NamesWhere(func(m runtime.Meta) bool { return m.Sweep })
}

// WindowStrategies lists the window-class strategies, derived from the
// registry.
func WindowStrategies() []string {
	return runtime.NamesWhere(func(m runtime.Meta) bool { return m.Class == runtime.ClassWindow })
}

// partitionSweep runs the Figure 7 strategy set on edges: every sweep
// baseline from the registry, then every window-class strategy at each
// configured latency multiple of the slowest measured baseline latency
// (the paper anchors the ADWISE sweep on HDRF, its slowest baseline).
func (c Config) partitionSweep(preset gen.Preset, edges []graph.Edge) ([]StrategyResult, error) {
	baselines := SweepBaselines()
	windows := WindowStrategies()
	if len(baselines) == 0 {
		// Fail loudly: with no baselines the latency anchor would be zero
		// and every window run would silently degenerate to L=0.
		return nil, fmt.Errorf("bench: no sweep baselines registered (no strategy has Meta.Sweep)")
	}
	results := make([]StrategyResult, 0, len(baselines)+len(windows)*len(c.LatencyMultipliers))
	var anchor time.Duration
	for _, name := range baselines {
		r, err := c.runBaseline(name, edges)
		if err != nil {
			return nil, err
		}
		c.progressf("  %s: RF=%.3f lat=%v", name, r.Summary.ReplicationDegree, r.Latency.Round(time.Millisecond))
		results = append(results, r)
		if r.Latency > anchor {
			anchor = r.Latency
		}
	}
	for _, name := range windows {
		for _, mult := range c.LatencyMultipliers {
			l := time.Duration(float64(anchor) * mult)
			r, err := c.runWindow(name, preset, edges, l)
			if err != nil {
				return nil, err
			}
			c.progressf("  %s(L=%v): RF=%.3f lat=%v", name, l.Round(time.Millisecond), r.Summary.ReplicationDegree, r.Latency.Round(time.Millisecond))
			results = append(results, r)
		}
	}
	return results, nil
}

// label renders the strategy name with its latency preference.
func (r StrategyResult) label() string {
	if r.LatencyPref == 0 {
		return r.Name
	}
	return fmt.Sprintf("%s L=%s", r.Name, formatDuration(r.LatencyPref))
}
