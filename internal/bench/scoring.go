package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/scorepool"
	"github.com/adwise-go/adwise/internal/stream"
)

// Scoring measures the window-scoring pool in three regimes.
//
// The "single" section is the historical sweep: one ADWISE instance (no
// spotlight, so the scaling of the scoring loop is not confounded with
// instance parallelism) partitions the same stream at fixed window sizes,
// sweeping the logical shard count. Per cell the table reports wall-clock
// latency, speedup over the single-shard run of the same window, the
// sharded-pass count, the stolen-shard count, and whether the assignment
// sequence matched the serial run edge-for-edge — the pool's determinism
// contract, re-verified on every sweep.
//
// The "refill" section isolates what batched refill buys: at fixed
// (window, workers) it compares the historical per-edge refill
// (WithPerEdgeRefill, the reference) against the default batched refill,
// which stages the window deficit and scores it as one pool pass through
// the branch-light replica-scan kernel. Speedup here is per-edge latency
// over batched latency of the *same* cell — the refill dimension, not the
// worker dimension — and every batched run is verified edge-for-edge
// identical to its per-edge reference.
//
// The "skew" section is the workload the process-wide work-stealing pool
// exists for: a z=4 spotlight run over deliberately skewed segments (one
// dense RMAT segment of ~10M·scale edges, three sparse ones at 1/16 of
// that), comparing
//
//   - skew/serial — every instance scores serially (the identity
//     reference);
//   - skew/static — each instance pinned to a private pool of
//     max(1, cores/z) workers: the historical divideScoreWorkers split,
//     which strands the sparse instances' cores while the dense instance
//     is compute-bound;
//   - skew/shared — all instances submit shards to the shared
//     work-stealing pool, at 2 and GOMAXPROCS logical shards per
//     instance, so the dense instance borrows whatever the sparse
//     instances leave idle (the "stolen" column counts exactly those
//     borrowed shard executions).
//
// Every skew cell is verified edge-for-edge identical to skew/serial:
// pool choice and worker count are execution details, never semantics.
//
// Shards are swept over {1, 2, 4, 8} by default in the single section
// (values beyond the machine's cores are still measured —
// oversubscription is a data point). Config.ScoreWorkers pins the sweep
// to {1, n} instead, which combined with -cpuprofile isolates where the
// scoring loop saturates.
func Scoring(cfg Config) (*Table, error) {
	tab := &Table{
		ID: "Scoring",
		Title: fmt.Sprintf("window scoring on the shared work-stealing pool, adwise, k=%d, %d cores",
			cfg.K, gort.GOMAXPROCS(0)),
		Columns: []string{"mode", "window", "workers", "latency", "speedup", "sharded passes", "stolen", "identical"},
		Notes: []string{
			"single/* speedup is against the workers=1 run of the same window; skew/* speedup is against skew/serial;",
			"refill/batched speedup is against refill/per-edge at the same (window, workers) — the refill dimension;",
			"identical = the run's assignment sequence matched its serial reference edge-for-edge (the",
			"deterministic-reduction contract; with stealing, executor identity is invisible to results);",
			"stolen counts pool-pass shards executed by pool workers rather than the submitting instance —",
			"on skew/shared this is the dense instance borrowing the cores a static cores/z split would strand;",
			"small passes run inline, so tiny windows show no sharded passes and no speedup",
		},
	}
	if err := scoringSingle(cfg, tab); err != nil {
		return tab, err
	}
	if err := scoringRefill(cfg, tab); err != nil {
		return tab, err
	}
	if err := scoringSkew(cfg, tab); err != nil {
		return tab, err
	}
	return tab, nil
}

// scoringSingle runs the one-instance shard-count sweep.
func scoringSingle(cfg Config, tab *Table) error {
	g, err := gen.PresetWeb.Generate(cfg.Scale, cfg.Seed)
	if err != nil {
		return fmt.Errorf("bench: generating web graph: %w", err)
	}
	edges := stream.Shuffled(g.Edges, cfg.Seed+1)

	windows := []int{1 << 10, 1 << 12}
	workerSweep := []int{1, 2, 4, 8}
	if cfg.ScoreWorkers > 0 {
		// Pinned (any explicit value, including 1): measure only the serial
		// baseline and the pinned count, so -cpuprofile isolates one
		// configuration.
		workerSweep = []int{1, cfg.ScoreWorkers}
	}

	clk := cfg.clock()
	run := func(window, workers int) (*metrics.Assignment, core.RunStats, time.Duration, error) {
		ad, err := core.New(cfg.K,
			core.WithInitialWindow(window),
			core.WithFixedWindow(),
			core.WithMaxCandidates(window),
			core.WithScoreWorkers(workers),
			core.WithTotalEdgesHint(int64(len(edges))),
		)
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		start := clk.Now()
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		return a, ad.Stats(), clk.Now().Sub(start), nil
	}

	for _, window := range windows {
		serial, _, serialLat, err := run(window, 1)
		if err != nil {
			return fmt.Errorf("bench: scoring w=%d serial: %w", window, err)
		}
		cfg.progressf("  scoring single w=%d workers=1: %v", window, serialLat)
		tab.AddRow("single", window, 1, serialLat, "1.00x", 0, 0, "yes")
		for _, workers := range workerSweep {
			if workers == 1 {
				continue
			}
			a, st, lat, err := run(window, workers)
			if err != nil {
				return fmt.Errorf("bench: scoring w=%d workers=%d: %w", window, workers, err)
			}
			ident := sameAssignments(serial, a)
			tab.AddRow("single", window, workers, lat,
				fmt.Sprintf("%.2fx", float64(serialLat)/float64(lat)),
				st.ParallelScorePasses, st.StolenScoreShards, identLabel(ident))
			cfg.progressf("  scoring single w=%d workers=%d: %v (%.2fx), %d sharded passes, %d stolen",
				window, workers, lat, float64(serialLat)/float64(lat), st.ParallelScorePasses, st.StolenScoreShards)
			if !ident {
				return fmt.Errorf("bench: scoring w=%d workers=%d diverged from the serial assignment sequence", window, workers)
			}
		}
	}
	return nil
}

// scoringRefill runs the batched-vs-per-edge refill comparison: both
// paths at the same window and worker count, per-edge as the latency and
// identity reference. Unlike scoringSingle this measures the refill
// dimension — batching pays off even at workers=1 (one scoreView and one
// batch drain amortised over the whole deficit, plus the word-scan
// kernel), and with workers > 1 the staged batch is the pass the pool can
// finally parallelise.
func scoringRefill(cfg Config, tab *Table) error {
	g, err := gen.PresetWeb.Generate(cfg.Scale, cfg.Seed)
	if err != nil {
		return fmt.Errorf("bench: generating web graph: %w", err)
	}
	edges := stream.Shuffled(g.Edges, cfg.Seed+2)

	const window = 1 << 12
	workerSweep := []int{1, 2, 8}
	if cfg.ScoreWorkers > 0 {
		workerSweep = []int{cfg.ScoreWorkers}
	}

	clk := cfg.clock()
	run := func(workers int, perEdge bool) (*metrics.Assignment, core.RunStats, time.Duration, error) {
		opts := []core.Option{
			core.WithInitialWindow(window),
			core.WithFixedWindow(),
			core.WithMaxCandidates(window),
			core.WithScoreWorkers(workers),
			core.WithTotalEdgesHint(int64(len(edges))),
		}
		if perEdge {
			opts = append(opts, core.WithPerEdgeRefill())
		}
		ad, err := core.New(cfg.K, opts...)
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		start := clk.Now()
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		return a, ad.Stats(), clk.Now().Sub(start), nil
	}

	for _, workers := range workerSweep {
		ref, _, refLat, err := run(workers, true)
		if err != nil {
			return fmt.Errorf("bench: refill per-edge workers=%d: %w", workers, err)
		}
		cfg.progressf("  scoring refill/per-edge w=%d workers=%d: %v", window, workers, refLat)
		tab.AddRow("refill/per-edge", window, workers, refLat, "1.00x", 0, 0, "yes")

		a, st, lat, err := run(workers, false)
		if err != nil {
			return fmt.Errorf("bench: refill batched workers=%d: %w", workers, err)
		}
		ident := sameAssignments(ref, a)
		tab.AddRow("refill/batched", window, workers, lat,
			fmt.Sprintf("%.2fx", float64(refLat)/float64(lat)),
			st.ParallelScorePasses, st.StolenScoreShards, identLabel(ident))
		cfg.progressf("  scoring refill/batched w=%d workers=%d: %v (%.2fx), %d refill passes (%d edges), %d sharded passes",
			window, workers, lat, float64(refLat)/float64(lat), st.RefillPasses, st.BatchedAdds, st.ParallelScorePasses)
		if !ident {
			return fmt.Errorf("bench: batched refill workers=%d diverged from the per-edge assignment sequence", workers)
		}
		if st.RefillPasses == 0 || st.BatchedAdds == 0 {
			return fmt.Errorf("bench: batched refill workers=%d reported no refill passes (%d) or batched adds (%d)",
				workers, st.RefillPasses, st.BatchedAdds)
		}
	}
	return nil
}

// scoringSkewWindow is the fixed ADWISE window of the skew comparison.
const scoringSkewWindow = 256

// scoringSkew runs the skewed-spotlight shared-vs-static comparison.
func scoringSkew(cfg Config, tab *Table) error {
	const z = 4
	dense := int(10_000_000 * cfg.Scale)
	if dense < 8_000 {
		dense = 8_000
	}
	scale := 1
	for 1<<scale < dense/8 {
		scale++
	}
	dg, err := gen.RMAT(scale, dense, 0.57, 0.19, 0.19, cfg.Seed+3)
	if err != nil {
		return fmt.Errorf("bench: generating dense skew segment: %w", err)
	}
	sparse := max(dense/16, 8)
	sparseEdges := make([]graph.Edge, sparse)
	for i := range sparseEdges {
		sparseEdges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	streams := func() []stream.Stream {
		ss := make([]stream.Stream, z)
		ss[0] = stream.FromEdges(dg.Edges)
		for i := 1; i < z; i++ {
			ss[i] = stream.FromEdges(sparseEdges)
		}
		return ss
	}
	scfg := runtime.SpotlightConfig{K: cfg.K, Z: z, Spread: max(cfg.K/z, 1)}
	clk := cfg.clock()

	// run executes one skew cell. workers is the per-instance logical
	// shard count; pools[i], when non-nil, pins instance i to a private
	// pool (the static mode); nil pools select the shared pool (or inline
	// execution when workers == 1).
	run := func(workers int, pools []*scorepool.Pool) (*metrics.Assignment, runtime.Stats, time.Duration, error) {
		start := clk.Now()
		a, stats, err := runtime.RunSpotlightStreamsStats(streams(), scfg, func(i int, allowed []int) (runtime.Runner, error) {
			spec := runtime.Spec{
				K:            cfg.K,
				Allowed:      allowed,
				Seed:         cfg.Seed + uint64(i),
				Window:       scoringSkewWindow,
				ScoreWorkers: workers,
			}
			if pools != nil {
				spec.Options = append(spec.Options, core.WithScorePool(pools[i]))
			}
			return runtime.New("adwise", spec)
		})
		if err != nil {
			return nil, runtime.Stats{}, 0, err
		}
		return a, runtime.AggregateStats(stats), clk.Now().Sub(start), nil
	}

	serial, _, serialLat, err := run(1, nil)
	if err != nil {
		return fmt.Errorf("bench: skew serial: %w", err)
	}
	cfg.progressf("  scoring skew/serial z=%d dense=%d: %v", z, dense, serialLat)
	tab.AddRow("skew/serial", scoringSkewWindow, 1, serialLat, "1.00x", 0, 0, "yes")

	type mode struct {
		name    string
		workers int
		pools   []*scorepool.Pool
	}
	staticShare := max(1, gort.GOMAXPROCS(0)/z)
	staticPools := make([]*scorepool.Pool, z)
	for i := range staticPools {
		staticPools[i] = scorepool.New(staticShare)
	}
	defer func() {
		for _, p := range staticPools {
			p.Close()
		}
	}()
	modes := []mode{
		{"skew/static", staticShare, staticPools},
		{"skew/shared", 2, nil},
	}
	if gmp := gort.GOMAXPROCS(0); gmp != 2 {
		modes = append(modes, mode{"skew/shared", gmp, nil})
	}
	for _, m := range modes {
		a, st, lat, err := run(m.workers, m.pools)
		if err != nil {
			return fmt.Errorf("bench: %s workers=%d: %w", m.name, m.workers, err)
		}
		ident := sameAssignments(serial, a)
		tab.AddRow(m.name, scoringSkewWindow, m.workers, lat,
			fmt.Sprintf("%.2fx", float64(serialLat)/float64(lat)),
			st.ParallelScorePasses, st.StolenScoreShards, identLabel(ident))
		cfg.progressf("  scoring %s workers=%d: %v (%.2fx), %d sharded passes, %d stolen",
			m.name, m.workers, lat, float64(serialLat)/float64(lat), st.ParallelScorePasses, st.StolenScoreShards)
		if !ident {
			return fmt.Errorf("bench: %s workers=%d diverged from the serial assignment sequence", m.name, m.workers)
		}
	}
	return nil
}

func identLabel(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// sameAssignments reports whether two runs assigned the same edges to the
// same partitions in the same order.
func sameAssignments(a, b *metrics.Assignment) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}
