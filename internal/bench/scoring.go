package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
)

// Scoring measures the parallel window-scoring pool: one ADWISE instance
// (no spotlight, so the scaling of the scoring loop is not confounded
// with instance parallelism) partitions the same stream at fixed window
// sizes, sweeping the score-worker count. Per (window, workers) cell the
// table reports wall-clock latency, speedup over the single-worker run of
// the same window, the sharded-pass count, and whether the assignment
// sequence matched the serial run edge-for-edge — the pool's determinism
// contract, re-verified here on every sweep.
//
// Workers are swept over {1, 2, 4, 8} by default (capped at 8; values
// beyond the machine's cores are still measured — oversubscription is a
// data point). Config.ScoreWorkers pins the sweep to {1, n} instead,
// which combined with -cpuprofile isolates where the scoring loop
// saturates.
func Scoring(cfg Config) (*Table, error) {
	g, err := gen.PresetWeb.Generate(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generating web graph: %w", err)
	}
	edges := stream.Shuffled(g.Edges, cfg.Seed+1)

	windows := []int{1 << 10, 1 << 12}
	workerSweep := []int{1, 2, 4, 8}
	if cfg.ScoreWorkers > 0 {
		// Pinned (any explicit value, including 1): measure only the serial
		// baseline and the pinned count, so -cpuprofile isolates one
		// configuration.
		workerSweep = []int{1, cfg.ScoreWorkers}
	}

	type cell struct {
		window, workers int
		latency         time.Duration
		passes          int64
		speedup         float64
		identical       bool
	}

	run := func(window, workers int) (*metrics.Assignment, core.RunStats, time.Duration, error) {
		ad, err := core.New(cfg.K,
			core.WithInitialWindow(window),
			core.WithFixedWindow(),
			core.WithMaxCandidates(window),
			core.WithScoreWorkers(workers),
			core.WithTotalEdgesHint(int64(len(edges))),
		)
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		start := time.Now()
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		return a, ad.Stats(), time.Since(start), nil
	}

	var cells []cell
	for _, window := range windows {
		serial, _, serialLat, err := run(window, 1)
		if err != nil {
			return nil, fmt.Errorf("bench: scoring w=%d serial: %w", window, err)
		}
		cfg.progressf("  scoring w=%d workers=1: %v", window, serialLat)
		cells = append(cells, cell{window: window, workers: 1, latency: serialLat, speedup: 1, identical: true})
		for _, workers := range workerSweep {
			if workers == 1 {
				continue
			}
			a, st, lat, err := run(window, workers)
			if err != nil {
				return nil, fmt.Errorf("bench: scoring w=%d workers=%d: %w", window, workers, err)
			}
			cells = append(cells, cell{
				window:    window,
				workers:   workers,
				latency:   lat,
				passes:    st.ParallelScorePasses,
				speedup:   float64(serialLat) / float64(lat),
				identical: sameAssignments(serial, a),
			})
			cfg.progressf("  scoring w=%d workers=%d: %v (%.2fx), %d sharded passes",
				window, workers, lat, float64(serialLat)/float64(lat), st.ParallelScorePasses)
		}
	}

	tab := &Table{
		ID: "Scoring",
		Title: fmt.Sprintf("parallel window scoring, adwise, %d edges, k=%d, %d cores, fixed window = maxCand",
			len(edges), cfg.K, gort.GOMAXPROCS(0)),
		Columns: []string{"window", "workers", "latency", "speedup", "sharded passes", "identical"},
		Notes: []string{
			"speedup is against the workers=1 run of the same window size; identical = the parallel run's",
			"assignment sequence matched the serial run edge-for-edge (the deterministic-reduction contract)",
			"sharded passes counts rescore/rescan passes large enough to dispatch to the worker pool;",
			"small passes run inline, so tiny windows show no sharded passes and no speedup",
		},
	}
	for _, c := range cells {
		ident := "yes"
		if !c.identical {
			ident = "NO"
		}
		tab.AddRow(c.window, c.workers, c.latency, fmt.Sprintf("%.2fx", c.speedup), c.passes, ident)
	}
	for _, c := range cells {
		if !c.identical {
			return tab, fmt.Errorf("bench: scoring w=%d workers=%d diverged from the serial assignment sequence", c.window, c.workers)
		}
	}
	return tab, nil
}

// sameAssignments reports whether two runs assigned the same edges to the
// same partitions in the same order.
func sameAssignments(a, b *metrics.Assignment) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}
