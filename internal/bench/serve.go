package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/serve"
	"github.com/adwise-go/adwise/internal/stream"
)

// serveBatchSize is the edge count of one /v1/edges batch request.
const serveBatchSize = 256

// Serve measures the partition-lookup service under closed-loop HTTP load:
// a web-preset graph is partitioned (dbh — quality is irrelevant here, the
// index shape is the same), indexed, and served by the instrumented
// handler on a loopback listener; then a sweep of closed-loop generators
// (every worker waits for its response before sending the next request)
// drives GET /v1/edge and POST /v1/edges at increasing concurrency.
//
// Each cell reports client-side throughput (requests/s, edge lookups/s,
// lookups/s per core) and the server-side latency quantiles from the new
// telemetry histograms — the p50/p99 columns are read out of the
// serve.*.latency timers, so the experiment also exercises the metric
// pipeline end to end. Each cell gets a fresh registry, so quantiles are
// per-cell, not cumulative.
func Serve(cfg Config) (*Table, error) {
	tab := &Table{
		ID: "Serve",
		Title: fmt.Sprintf("closed-loop lookup serving, k=%d, %d cores, batch=%d",
			cfg.K, gort.GOMAXPROCS(0), serveBatchSize),
		Columns: []string{"endpoint", "conc", "requests", "lookups/s", "lookups/s/core", "req/s", "p50", "p99"},
		Notes: []string{
			"closed-loop: each of conc workers issues its next request only after the previous response;",
			"p50/p99 are server-side, from the serve.*.latency telemetry histograms (handler wall time,",
			"excluding client and loopback transport); lookups/s counts resolved edges, so the batch",
			"endpoint's rows show the per-request amortisation of transport and JSON overhead",
		},
	}

	g, err := gen.PresetWeb.Generate(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generating web graph: %w", err)
	}
	st, err := runtime.New("dbh", runtime.Spec{K: cfg.K, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	a, err := st.Run(stream.FromEdges(g.Edges))
	if err != nil {
		return nil, fmt.Errorf("bench: partitioning for serving: %w", err)
	}
	ix, err := serve.Build(a)
	if err != nil {
		return nil, err
	}

	// Request budget per cell, scaled like the graph: enough for stable
	// quantiles at full scale, fast at smoke scale.
	requests := int(200_000 * cfg.Scale)
	if requests < 800 {
		requests = 800
	}
	batchRequests := requests / 64
	if batchRequests < 50 {
		batchRequests = 50
	}

	cores := gort.GOMAXPROCS(0)
	sweep := []int{1, cores, 2 * cores}
	prev := 0
	for _, conc := range sweep {
		if conc == prev {
			continue
		}
		prev = conc
		for _, ep := range []string{"edge", "edges"} {
			reqs := requests
			if ep == "edges" {
				reqs = batchRequests
			}
			cell, err := serveCell(ix, a.Edges, ep, conc, reqs, cfg.clock())
			if err != nil {
				return tab, fmt.Errorf("bench: serve %s conc=%d: %w", ep, conc, err)
			}
			perCore := cell.lookupsPerSec / float64(cores)
			tab.AddRow("/v1/"+ep, conc, reqs,
				fmt.Sprintf("%.0f", cell.lookupsPerSec),
				fmt.Sprintf("%.0f", perCore),
				fmt.Sprintf("%.0f", cell.reqPerSec),
				cell.p50, cell.p99)
			cfg.progressf("  serve /v1/%s conc=%d: %.0f lookups/s (%.0f/core), p50=%v p99=%v",
				ep, conc, cell.lookupsPerSec, perCore, cell.p50, cell.p99)
		}
	}
	return tab, nil
}

// serveResult is one load cell's measurement.
type serveResult struct {
	reqPerSec     float64
	lookupsPerSec float64
	p50, p99      time.Duration
}

// serveCell serves ix on a fresh loopback listener with a fresh registry
// and drives it with conc closed-loop workers issuing total requests.
func serveCell(ix *serve.Index, edges []graph.Edge, endpoint string, conc, total int, clk clock.Clock) (serveResult, error) {
	reg := metric.New()
	ins := serve.NewInstruments(reg)
	store := serve.NewStore(ix)
	srv := serve.NewServer(serve.NewInstrumentedHandler(store, ins))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveResult{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	base := "http://" + ln.Addr().String()

	transport := &http.Transport{MaxIdleConns: conc * 2, MaxIdleConnsPerHost: conc * 2}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Pre-build the batch bodies once; workers cycle through them.
	var bodies [][]byte
	if endpoint == "edges" {
		bodies = batchBodies(edges, 8)
	}

	var (
		next     atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	lookupsPerReq := 1
	latName := serve.MetricEdgeLatency
	if endpoint == "edges" {
		lookupsPerReq = serveBatchSize
		latName = serve.MetricBatchLatency
	}

	start := clk.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				var (
					resp *http.Response
					err  error
				)
				if endpoint == "edges" {
					resp, err = client.Post(base+"/v1/edges", "application/json",
						bytes.NewReader(bodies[i%len(bodies)]))
				} else {
					e := edges[(i*16381)%len(edges)]
					resp, err = client.Get(fmt.Sprintf("%s/v1/edge?src=%d&dst=%d", base, e.Src, e.Dst))
				}
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d", resp.StatusCode))
				}
			}
		}()
	}
	wg.Wait()
	wall := clk.Now().Sub(start)

	if n := failures.Load(); n > 0 {
		return serveResult{}, fmt.Errorf("%d/%d requests failed (first: %v)", n, total, firstErr.Load())
	}
	snap := reg.Snapshot()
	tp, ok := snap.Timer(latName)
	if !ok || tp.Count != int64(total) {
		return serveResult{}, fmt.Errorf("latency histogram %s recorded %d requests, want %d", latName, tp.Count, total)
	}
	secs := wall.Seconds()
	return serveResult{
		reqPerSec:     float64(total) / secs,
		lookupsPerSec: float64(total*lookupsPerReq) / secs,
		p50:           time.Duration(tp.P50Ns),
		p99:           time.Duration(tp.P99Ns),
	}, nil
}

// batchBodies builds n distinct /v1/edges request bodies of serveBatchSize
// edges each, striding through the edge list so bodies differ.
func batchBodies(edges []graph.Edge, n int) [][]byte {
	bodies := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		pairs := make([][2]uint32, serveBatchSize)
		for i := range pairs {
			e := edges[(b*serveBatchSize*7+i*31)%len(edges)]
			pairs[i] = [2]uint32{uint32(e.Src), uint32(e.Dst)}
		}
		body, _ := json.Marshal(map[string]any{"edges": pairs})
		bodies = append(bodies, body)
	}
	return bodies
}
