package bench

import (
	"encoding/json"
	"fmt"
	"os"
	gort "runtime"
	"strconv"
	"strings"
)

// Trajectory is the committed benchmark history of one experiment
// (BENCH_<experiment>.json): an append-only sequence of labeled runs, so
// a PR that touches a hot path checks in its before/after measurements
// and CI can guard against silent regressions.
type Trajectory struct {
	Experiment string      `json:"experiment"`
	Runs       []RunRecord `json:"runs"`
}

// RunRecord is one recorded benchmark run.
type RunRecord struct {
	// Label identifies the run's role: free-form for humans ("pr5-static-
	// pool", "pr6-shared-pool"), with "ci-baseline" reserved — the last
	// run so labeled is what CheckScoringRegression compares against.
	Label string `json:"label"`
	// Date is the run date (YYYY-MM-DD, informational).
	Date string `json:"date,omitempty"`
	// Cores is GOMAXPROCS at measurement time; speedup-based guards only
	// compare cells whose worker count fits the current machine.
	Cores int `json:"cores"`
	// Scale is the Config.Scale the run used.
	Scale  float64  `json:"scale"`
	Tables []*Table `json:"tables"`
}

// LoadTrajectory reads a trajectory file.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading trajectory %s: %w", path, err)
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("bench: parsing trajectory %s: %w", path, err)
	}
	return &tr, nil
}

// scoringKey identifies a scoring cell across runs.
type scoringKey struct {
	mode, window, workers string
}

// scoringSpeedups extracts mode/window/workers → speedup from a Scoring
// table. It tolerates the pre-skew column layout (no mode column) by
// keying those rows as mode "single".
func scoringSpeedups(t *Table) map[scoringKey]float64 {
	col := make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		col[c] = i
	}
	wi, ok1 := col["window"]
	ki, ok2 := col["workers"]
	si, ok3 := col["speedup"]
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	mi, hasMode := col["mode"]
	out := make(map[scoringKey]float64, len(t.Rows))
	for _, row := range t.Rows {
		if len(row) <= wi || len(row) <= ki || len(row) <= si || (hasMode && len(row) <= mi) {
			continue
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[si], "x"), 64)
		if err != nil {
			continue
		}
		key := scoringKey{mode: "single", window: row[wi], workers: row[ki]}
		if hasMode {
			key.mode = row[mi]
		}
		out[key] = sp
	}
	return out
}

// CheckScoringRegression guards the scoring microbenchmark against the
// committed baseline: it compares the current Scoring table's per-cell
// speedups (not absolute latencies — those track the machine, speedups
// track the code) against the most recent "ci-baseline" run in the
// trajectory at baselinePath, and fails if any comparable cell lost more
// than tol of its baseline speedup (tol 0.2 = the >20% regression gate).
//
// A cell is comparable when both runs measured it, its worker count fits
// the current machine (workers ≤ GOMAXPROCS — oversubscribed cells
// measure scheduling noise), and the baseline speedup is ≥ 1.05 (cells
// that never sped up — e.g. every cell on a single-core runner — have no
// parallel win to protect and would only flap on noise).
func CheckScoringRegression(current *Table, baselinePath string, tol float64) error {
	tr, err := LoadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	var base *RunRecord
	for i := range tr.Runs {
		if tr.Runs[i].Label == "ci-baseline" {
			base = &tr.Runs[i]
		}
	}
	if base == nil {
		return fmt.Errorf("bench: no ci-baseline run in %s", baselinePath)
	}
	var baseTab *Table
	for _, t := range base.Tables {
		if t.ID == current.ID {
			baseTab = t
			break
		}
	}
	if baseTab == nil {
		return fmt.Errorf("bench: ci-baseline run in %s has no %q table", baselinePath, current.ID)
	}
	baseCells := scoringSpeedups(baseTab)
	curCells := scoringSpeedups(current)
	if len(baseCells) == 0 || len(curCells) == 0 {
		return fmt.Errorf("bench: no comparable speedup cells between current table and %s", baselinePath)
	}
	cores := gort.GOMAXPROCS(0)
	compared := 0
	var failures []string
	for key, baseSp := range baseCells {
		if baseSp < 1.05 {
			continue
		}
		if w, err := strconv.Atoi(key.workers); err != nil || w > cores {
			continue
		}
		curSp, ok := curCells[key]
		if !ok {
			continue
		}
		compared++
		if curSp < baseSp*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s w=%s workers=%s: speedup %.2fx -> %.2fx (> %.0f%% regression)",
				key.mode, key.window, key.workers, baseSp, curSp, tol*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: scoring regression vs %s:\n  %s", baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}
