package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	// ID is the CLI name (e.g. "fig7a").
	ID string
	// Paper names the table or figure reproduced.
	Paper string
	// Run executes the experiment.
	Run func(Config) (*Table, error)
}

// Experiments lists every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table II", TableII},
		{"fig1", "Figure 1", Figure1},
		{"fig7a", "Figure 7a", Figure7a},
		{"fig7b", "Figure 7b", Figure7b},
		{"fig7c", "Figure 7c", Figure7c},
		{"fig7d", "Figure 7d", Figure7d},
		{"fig7e", "Figure 7e", Figure7e},
		{"fig7f", "Figure 7f", Figure7f},
		{"fig7g", "Figure 7g", Figure7g},
		{"fig7h", "Figure 7h", Figure7h},
		{"fig7i", "Figure 7i", Figure7i},
		{"fig8", "Figure 8", Figure8},
		{"ablation-lazy", "DESIGN §5.1", AblationLazy},
		{"ablation-lambda", "DESIGN §5.2", AblationLambda},
		{"ablation-clustering", "DESIGN §5.3", AblationClustering},
		{"ablation-window", "DESIGN §5.4", AblationWindow},
		{"ablation-order", "DESIGN §3", AblationOrder},
		{"ingest", "§III-D loading", Ingest},
		{"scoring", "§III-B scoring", Scoring},
		{"serve", "§II serving", Serve},
		{"memory", "HEP memory envelope", Memory},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Experiments()))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment, printing each table to w as it
// completes. It stops at the first failure.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Experiments() {
		t, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAllJSON executes every experiment and writes the results to w as one
// JSON array of tables. It stops at the first failure, writing nothing.
func RunAllJSON(cfg Config, w io.Writer) error {
	tables := make([]*Table, 0, len(Experiments()))
	for _, e := range Experiments() {
		t, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		tables = append(tables, t)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}
