package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/adwise-go/adwise/internal/engine"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
)

// Figure 7 family: for each strategy (DBH, HDRF, ADWISE×L sweep) partition
// the graph under the paper's parallel-loading setup, execute the workload
// on the engine, and report stacked partitioning + processing latency —
// the total-graph-latency trade-off that is the paper's headline result.

func (c Config) newEngine(a *metrics.Assignment, numV int) (*engine.Engine, error) {
	return engine.New(a, numV, c.Cost, c.Workers)
}

// seedVertices picks n distinct seeded-random vertices from the universe.
func seedVertices(numV, n int, seed uint64) []graph.VertexID {
	rng := rand.New(rand.NewPCG(seed, 0x5eed5))
	if n > numV {
		n = numV
	}
	seen := make(map[graph.VertexID]struct{}, n)
	out := make([]graph.VertexID, 0, n)
	for len(out) < n {
		v := graph.VertexID(rng.IntN(numV))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// figure7PageRank implements Figures 7a–7c: PageRank in blocks of 100
// iterations stacked on the partitioning latency.
func figure7PageRank(cfg Config, preset gen.Preset, id string) (*Table, error) {
	g, edges, err := cfg.evalGraph(preset)
	if err != nil {
		return nil, err
	}
	cfg.progressf("%s: %s V=%d E=%d", id, preset, g.NumV, g.E())
	results, err := cfg.partitionSweep(preset, edges)
	if err != nil {
		return nil, err
	}

	const block = 100
	blocks := cfg.PageRankIters / block
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("PageRank on %s-like (k=%d, z=%d, spread=%d)", preset, cfg.K, cfg.Z, cfg.Spread),
	}
	t.Columns = []string{"strategy", "part.lat", "RF"}
	for b := 1; b <= blocks; b++ {
		t.Columns = append(t.Columns, fmt.Sprintf("proc@%d", b*block))
	}
	t.Columns = append(t.Columns, fmt.Sprintf("TOTAL@%d", blocks*block))

	for _, r := range results {
		eng, err := cfg.newEngine(r.Assignment, g.NumV)
		if err != nil {
			return nil, fmt.Errorf("bench: %s engine for %s: %w", id, r.label(), err)
		}
		_, rep, err := eng.PageRank(cfg.PageRankIters, 0.85)
		if err != nil {
			return nil, fmt.Errorf("bench: %s PageRank for %s: %w", id, r.label(), err)
		}
		row := []any{r.label(), r.Latency, r.Summary.ReplicationDegree}
		for b := 1; b <= blocks; b++ {
			row = append(row, rep.CumulativeLatency(b*block))
		}
		row = append(row, r.Latency+rep.SimulatedLatency)
		t.AddRow(row...)
		cfg.progressf("%s: %-16s total=%v", id, r.label(), (r.Latency + rep.SimulatedLatency).Round(time.Millisecond))
	}
	t.Notes = append(t.Notes,
		"proc@N = simulated processing latency after N PageRank iterations; TOTAL = partitioning + processing")
	return t, nil
}

// Figure7a regenerates Figure 7a: PageRank on Brain.
func Figure7a(cfg Config) (*Table, error) { return figure7PageRank(cfg, gen.PresetBrain, "Figure 7a") }

// Figure7b regenerates Figure 7b: PageRank on Web.
func Figure7b(cfg Config) (*Table, error) { return figure7PageRank(cfg, gen.PresetWeb, "Figure 7b") }

// Figure7c regenerates Figure 7c: PageRank on Orkut (clustering score off).
func Figure7c(cfg Config) (*Table, error) { return figure7PageRank(cfg, gen.PresetOrkut, "Figure 7c") }

// Figure7d regenerates Figure 7d: three consecutive subgraph-isomorphism
// circle searches on Brain, stacked.
func Figure7d(cfg Config) (*Table, error) {
	const id = "Figure 7d"
	g, edges, err := cfg.evalGraph(gen.PresetBrain)
	if err != nil {
		return nil, err
	}
	cfg.progressf("%s: brain V=%d E=%d", id, g.NumV, g.E())
	results, err := cfg.partitionSweep(gen.PresetBrain, edges)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Subgraph isomorphism (circles %v) on Brain-like (k=%d, z=%d, spread=%d)",
			cfg.CycleLengths, cfg.K, cfg.Z, cfg.Spread),
	}
	t.Columns = []string{"strategy", "part.lat", "RF"}
	for _, l := range cfg.CycleLengths {
		t.Columns = append(t.Columns, fmt.Sprintf("SI@len%d", l))
	}
	t.Columns = append(t.Columns, "TOTAL")

	seeds := seedVertices(g.NumV, cfg.CycleSeedCount, cfg.Seed+7)
	for _, r := range results {
		eng, err := cfg.newEngine(r.Assignment, g.NumV)
		if err != nil {
			return nil, fmt.Errorf("bench: %s engine for %s: %w", id, r.label(), err)
		}
		row := []any{r.label(), r.Latency, r.Summary.ReplicationDegree}
		var cum time.Duration
		for _, length := range cfg.CycleLengths {
			_, rep, err := eng.CycleSearch(engine.CycleSearchConfig{
				Length:                  length,
				Seeds:                   seeds,
				MaxMessagesPerPartition: cfg.CycleMessageCap,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s cycle(%d) for %s: %w", id, length, r.label(), err)
			}
			cum += rep.SimulatedLatency
			row = append(row, cum)
		}
		row = append(row, r.Latency+cum)
		t.AddRow(row...)
		cfg.progressf("%s: %-16s total=%v", id, r.label(), (r.Latency + cum).Round(time.Millisecond))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("circle lengths scaled down from the paper's 19/15/21; %d walker seeds, message cap %d/partition/step",
			cfg.CycleSeedCount, cfg.CycleMessageCap))
	return t, nil
}

// Figure7e regenerates Figure 7e: graph coloring on Web in blocks of 50
// iterations.
func Figure7e(cfg Config) (*Table, error) {
	const id = "Figure 7e"
	g, edges, err := cfg.evalGraph(gen.PresetWeb)
	if err != nil {
		return nil, err
	}
	cfg.progressf("%s: web V=%d E=%d", id, g.NumV, g.E())
	results, err := cfg.partitionSweep(gen.PresetWeb, edges)
	if err != nil {
		return nil, err
	}

	const block = 50
	blocks := cfg.ColoringIters / block
	if blocks < 1 {
		blocks = 1
	}
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Graph coloring on Web-like (k=%d, z=%d, spread=%d)", cfg.K, cfg.Z, cfg.Spread),
	}
	t.Columns = []string{"strategy", "part.lat", "RF"}
	for b := 1; b <= blocks; b++ {
		t.Columns = append(t.Columns, fmt.Sprintf("proc@%d", b*block))
	}
	t.Columns = append(t.Columns, "steps", "TOTAL")

	for _, r := range results {
		eng, err := cfg.newEngine(r.Assignment, g.NumV)
		if err != nil {
			return nil, fmt.Errorf("bench: %s engine for %s: %w", id, r.label(), err)
		}
		_, rep, err := eng.Coloring(cfg.ColoringIters)
		if err != nil {
			return nil, fmt.Errorf("bench: %s coloring for %s: %w", id, r.label(), err)
		}
		row := []any{r.label(), r.Latency, r.Summary.ReplicationDegree}
		for b := 1; b <= blocks; b++ {
			row = append(row, rep.CumulativeLatency(b*block))
		}
		row = append(row, rep.Supersteps, r.Latency+rep.SimulatedLatency)
		t.AddRow(row...)
		cfg.progressf("%s: %-16s total=%v", id, r.label(), (r.Latency + rep.SimulatedLatency).Round(time.Millisecond))
	}
	t.Notes = append(t.Notes,
		"coloring may converge before the iteration bound; proc@N flattens past convergence")
	return t, nil
}

// Figure7f regenerates Figure 7f: random-walker clique search (sizes
// 3/4/5, P=0.5 probabilistic flooding, 10 random starts) on Orkut.
func Figure7f(cfg Config) (*Table, error) {
	const id = "Figure 7f"
	g, edges, err := cfg.evalGraph(gen.PresetOrkut)
	if err != nil {
		return nil, err
	}
	cfg.progressf("%s: orkut V=%d E=%d", id, g.NumV, g.E())
	results, err := cfg.partitionSweep(gen.PresetOrkut, edges)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Clique search (sizes %v, P=0.5) on Orkut-like (k=%d, z=%d, spread=%d)",
			cfg.CliqueSizes, cfg.K, cfg.Z, cfg.Spread),
	}
	t.Columns = []string{"strategy", "part.lat", "RF"}
	for _, s := range cfg.CliqueSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("clique@%d", s))
	}
	t.Columns = append(t.Columns, "TOTAL")

	seeds := seedVertices(g.NumV, cfg.CliqueSeedCount, cfg.Seed+13)
	for _, r := range results {
		eng, err := cfg.newEngine(r.Assignment, g.NumV)
		if err != nil {
			return nil, fmt.Errorf("bench: %s engine for %s: %w", id, r.label(), err)
		}
		row := []any{r.label(), r.Latency, r.Summary.ReplicationDegree}
		var cum time.Duration
		for _, size := range cfg.CliqueSizes {
			_, rep, err := eng.CliqueSearch(engine.CliqueSearchConfig{
				Size:               size,
				Seeds:              seeds,
				ForwardProbability: 0.5,
				Seed:               cfg.Seed + uint64(size),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s clique(%d) for %s: %w", id, size, r.label(), err)
			}
			cum += rep.SimulatedLatency
			row = append(row, cum)
		}
		row = append(row, r.Latency+cum)
		t.AddRow(row...)
		cfg.progressf("%s: %-16s total=%v", id, r.label(), (r.Latency + cum).Round(time.Millisecond))
	}
	return t, nil
}

// figure7RF implements Figures 7g–7i: replication degree per strategy with
// the partitioning latency annotation the paper prints above each bar.
func figure7RF(cfg Config, preset gen.Preset, id string) (*Table, error) {
	g, edges, err := cfg.evalGraph(preset)
	if err != nil {
		return nil, err
	}
	cfg.progressf("%s: %s V=%d E=%d", id, preset, g.NumV, g.E())
	results, err := cfg.partitionSweep(preset, edges)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Replication degree on %s-like (k=%d, z=%d, spread=%d)", preset, cfg.K, cfg.Z, cfg.Spread),
		Columns: []string{"strategy", "RF", "part.lat", "imbalance", "balanced(<0.05)"},
	}
	for _, r := range results {
		t.AddRow(r.label(), r.Summary.ReplicationDegree, r.Latency, r.Summary.Imbalance,
			fmt.Sprint(r.Summary.Imbalance < 0.05))
	}
	t.Notes = append(t.Notes, "paper reports all results at imbalance (max-min)/max < 0.05")
	return t, nil
}

// Figure7g regenerates Figure 7g: replication degree on Brain.
func Figure7g(cfg Config) (*Table, error) { return figure7RF(cfg, gen.PresetBrain, "Figure 7g") }

// Figure7h regenerates Figure 7h: replication degree on Web.
func Figure7h(cfg Config) (*Table, error) { return figure7RF(cfg, gen.PresetWeb, "Figure 7h") }

// Figure7i regenerates Figure 7i: replication degree on Orkut.
func Figure7i(cfg Config) (*Table, error) { return figure7RF(cfg, gen.PresetOrkut, "Figure 7i") }
