package bench

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/stream"
)

// Ablations for the design choices called out in DESIGN.md §5: lazy vs
// eager traversal, adaptive vs fixed λ, clustering score on/off, and
// stream order. These are not paper figures; they justify the ADWISE
// design decisions empirically.

// AblationLazy compares lazy window traversal against the eager O(w·|P|)
// baseline: same windows, score-computation counts, latency, and quality.
func AblationLazy(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation-lazy: %w", err)
	}
	edges := stream.Interleave(g.Edges, 64)
	clk := cfg.clock()
	t := &Table{
		ID:      "Ablation: lazy traversal",
		Title:   fmt.Sprintf("Lazy vs eager window traversal (Brain-like, k=%d, single instance)", cfg.K),
		Columns: []string{"variant", "window", "RF", "score ops", "latency"},
	}
	for _, w := range []int{16, 64, 256} {
		for _, lazy := range []bool{true, false} {
			opts := []core.Option{core.WithInitialWindow(w), core.WithFixedWindow()}
			name := "lazy"
			if !lazy {
				opts = append(opts, core.WithEagerTraversal())
				name = "eager"
			}
			ad, err := core.New(cfg.K, opts...)
			if err != nil {
				return nil, err
			}
			start := clk.Now()
			a, err := ad.Run(stream.FromEdges(edges))
			if err != nil {
				return nil, err
			}
			lat := clk.Now().Sub(start)
			st := ad.Stats()
			t.AddRow(name, w, metrics.Summarize(a).ReplicationDegree, st.ScoreComputations, lat)
			cfg.progressf("ablation-lazy: %s w=%d ops=%d lat=%v", name, w, st.ScoreComputations, lat.Round(time.Millisecond))
		}
	}
	t.Notes = append(t.Notes, "lazy traversal must cut score computations at comparable RF (§III-B)")
	return t, nil
}

// AblationLambda compares the adaptive balancing weight λ(ι,α) of Eq. 4
// against fixed settings, including HDRF's recommended λ=1.1.
func AblationLambda(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation-lambda: %w", err)
	}
	edges := stream.Interleave(g.Edges, 64)
	t := &Table{
		ID:      "Ablation: adaptive lambda",
		Title:   fmt.Sprintf("Adaptive vs fixed balancing weight (Brain-like, k=%d, w=128)", cfg.K),
		Columns: []string{"variant", "RF", "imbalance", "final λ"},
	}
	variants := []struct {
		name string
		opts []core.Option
	}{
		{"adaptive", nil},
		{"fixed λ=0.4", []core.Option{core.WithFixedLambda(0.4)}},
		{"fixed λ=1.1", []core.Option{core.WithFixedLambda(1.1)}},
		{"fixed λ=5.0", []core.Option{core.WithFixedLambda(5.0)}},
	}
	for _, v := range variants {
		opts := append([]core.Option{core.WithInitialWindow(128), core.WithFixedWindow()}, v.opts...)
		ad, err := core.New(cfg.K, opts...)
		if err != nil {
			return nil, err
		}
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, err
		}
		s := metrics.Summarize(a)
		t.AddRow(v.name, s.ReplicationDegree, s.Imbalance, fmt.Sprintf("%.2f", ad.Stats().FinalLambda))
		cfg.progressf("ablation-lambda: %s RF=%.3f imb=%.3f", v.name, s.ReplicationDegree, s.Imbalance)
	}
	t.Notes = append(t.Notes,
		"adaptive λ should match the best fixed setting without per-graph tuning (§III-C)")
	return t, nil
}

// AblationClustering toggles the clustering score per evaluation graph —
// the paper switches it off on Orkut because ĉ is negligible there.
func AblationClustering(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Ablation: clustering score",
		Title:   fmt.Sprintf("Clustering score on/off per graph (k=%d, w=128, single instance)", cfg.K),
		Columns: []string{"graph", "ĉ regime", "RF with CS", "RF without CS", "delta"},
	}
	regimes := map[gen.Preset]string{
		gen.PresetOrkut: "low (0.04)",
		gen.PresetBrain: "moderate (0.51)",
		gen.PresetWeb:   "high (0.82)",
	}
	for _, preset := range gen.Presets() {
		_, edges, err := cfg.evalGraph(preset)
		if err != nil {
			return nil, err
		}
		rf := func(on bool) (float64, error) {
			ad, err := core.New(cfg.K,
				core.WithInitialWindow(128), core.WithFixedWindow(),
				core.WithClusteringScore(on))
			if err != nil {
				return 0, err
			}
			a, err := ad.Run(stream.FromEdges(edges))
			if err != nil {
				return 0, err
			}
			return metrics.Summarize(a).ReplicationDegree, nil
		}
		with, err := rf(true)
		if err != nil {
			return nil, err
		}
		without, err := rf(false)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(preset), regimes[preset], with, without,
			fmt.Sprintf("%+.1f%%", 100*(with-without)/without))
		cfg.progressf("ablation-cs: %s with=%.3f without=%.3f", preset, with, without)
	}
	return t, nil
}

// AblationOrder compares stream orders: the generator's natural (file)
// order against a seeded shuffle, for HDRF and ADWISE. Stream locality is
// what windowing and spotlight exploit; this quantifies it.
func AblationOrder(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation-order: %w", err)
	}
	t := &Table{
		ID:      "Ablation: stream order",
		Title:   fmt.Sprintf("Stream order sensitivity (Brain-like, k=%d, z=%d, spread=%d)", cfg.K, cfg.Z, cfg.Spread),
		Columns: []string{"order", "strategy", "RF"},
	}
	for _, order := range []string{"natural", "interleave-64", "shuffled"} {
		var edges = g.Edges
		switch order {
		case "interleave-64":
			edges = stream.Interleave(g.Edges, 64)
		case "shuffled":
			edges = stream.Shuffled(g.Edges, cfg.Seed+1)
		}
		for _, v := range []struct {
			strat string
			spec  runtime.Spec
		}{
			{"hdrf", runtime.Spec{K: cfg.K, Seed: cfg.Seed}},
			{"adwise", runtime.Spec{K: cfg.K, Seed: cfg.Seed, Window: 128}},
		} {
			a, err := runtime.RunStrategySpotlight(v.strat, edges, cfg.spotlightConfig(), v.spec)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation-order %s/%s: %w", order, v.strat, err)
			}
			rf := metrics.Summarize(a).ReplicationDegree
			t.AddRow(order, v.strat, rf)
			cfg.progressf("ablation-order: %s %s RF=%.3f", order, v.strat, rf)
		}
	}
	return t, nil
}

// AblationWindow sweeps fixed window sizes — the latency/quality knob in
// its rawest form (the mechanism behind the Figure 7 latency sweep).
func AblationWindow(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation-window: %w", err)
	}
	edges := stream.Interleave(g.Edges, 64)
	clk := cfg.clock()
	t := &Table{
		ID:      "Ablation: window size",
		Title:   fmt.Sprintf("Fixed window sweep (Brain-like, k=%d, single instance)", cfg.K),
		Columns: []string{"window", "RF", "latency", "score ops"},
	}
	for _, w := range []int{1, 4, 16, 64, 256, 1024} {
		ad, err := core.New(cfg.K, core.WithInitialWindow(w), core.WithFixedWindow())
		if err != nil {
			return nil, err
		}
		start := clk.Now()
		a, err := ad.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, err
		}
		lat := clk.Now().Sub(start)
		t.AddRow(w, metrics.Summarize(a).ReplicationDegree, lat, ad.Stats().ScoreComputations)
		cfg.progressf("ablation-window: w=%d lat=%v", w, lat.Round(time.Millisecond))
	}
	return t, nil
}
