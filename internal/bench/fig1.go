package bench

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

// Figure1 regenerates the research-gap landscape of Figure 1: partitioning
// latency against partitioning quality for the whole algorithm spectrum —
// the hashing family (Hash, 1D, 2D, Grid, DBH), the stateful single-edge
// streamers (Greedy, HDRF), ADWISE at growing window sizes, and the
// all-edge NE heuristic. Run on the Brain stand-in with a single
// partitioner instance so latencies are directly comparable.
func Figure1(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: fig1: %w", err)
	}
	// Single-instance runs use a mildly interleaved stream: the generator's
	// raw ring order is so perfectly local that HDRF's balance term
	// saturates and leaves partitions empty (see EXPERIMENTS.md).
	edges := stream.Interleave(g.Edges, 64)

	t := &Table{
		ID:      "Figure 1",
		Title:   fmt.Sprintf("Partitioning latency vs quality landscape (Brain-like, k=%d, single instance)", cfg.K),
		Columns: []string{"algorithm", "class", "latency", "RF", "imbalance"},
	}

	type entry struct {
		name, class string
		run         func() (*metrics.Assignment, error)
	}
	pcfg := partition.Config{K: cfg.K, Seed: cfg.Seed}
	single := func(build func() (partition.Partitioner, error)) func() (*metrics.Assignment, error) {
		return func() (*metrics.Assignment, error) {
			p, err := build()
			if err != nil {
				return nil, err
			}
			return partition.Run(stream.FromEdges(edges), p), nil
		}
	}
	adwise := func(w int) func() (*metrics.Assignment, error) {
		return func() (*metrics.Assignment, error) {
			ad, err := core.New(cfg.K, core.WithInitialWindow(w), core.WithFixedWindow())
			if err != nil {
				return nil, err
			}
			return ad.Run(stream.FromEdges(edges))
		}
	}
	entries := []entry{
		{"hash", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewHash(pcfg) })},
		{"1d", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewOneDim(pcfg) })},
		{"2d", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewTwoDim(pcfg) })},
		{"grid", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewGrid(pcfg) })},
		{"dbh", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewDBH(pcfg) })},
		{"greedy", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewGreedy(pcfg) })},
		{"hdrf", "single-edge", single(func() (partition.Partitioner, error) { return partition.NewHDRF(pcfg, partition.HDRFDefaultLambda) })},
		{"adwise w=16", "window", adwise(16)},
		{"adwise w=128", "window", adwise(128)},
		{"adwise w=1024", "window", adwise(1024)},
		{"ne", "all-edge", func() (*metrics.Assignment, error) {
			return partition.NE{}.Partition(g, cfg.K, cfg.Seed)
		}},
	}
	for _, e := range entries {
		start := time.Now()
		a, err := e.run()
		if err != nil {
			return nil, fmt.Errorf("bench: fig1 %s: %w", e.name, err)
		}
		lat := time.Since(start)
		s := metrics.Summarize(a)
		t.AddRow(e.name, e.class, lat, s.ReplicationDegree, s.Imbalance)
		cfg.progressf("fig1: %-14s RF=%.3f lat=%v", e.name, s.ReplicationDegree, lat.Round(time.Millisecond))
	}
	t.Notes = append(t.Notes,
		"single-edge streamers minimize latency; window/all-edge trade latency for quality (lower RF)")
	return t, nil
}
