package bench

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/stream"
)

// Figure1 regenerates the research-gap landscape of Figure 1: partitioning
// latency against partitioning quality for the whole algorithm spectrum —
// the hashing family (Hash, 1D, 2D, Grid, DBH), the stateful single-edge
// streamers (Greedy, HDRF), ADWISE at growing window sizes, and the
// all-edge NE heuristic. Run on the Brain stand-in with a single
// partitioner instance so latencies are directly comparable.
func Figure1(cfg Config) (*Table, error) {
	g, err := gen.BrainLike(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: fig1: %w", err)
	}
	// Single-instance runs use a mildly interleaved stream: the generator's
	// raw ring order is so perfectly local that HDRF's balance term
	// saturates and leaves partitions empty (see EXPERIMENTS.md).
	edges := stream.Interleave(g.Edges, 64)
	clk := cfg.clock()

	t := &Table{
		ID:      "Figure 1",
		Title:   fmt.Sprintf("Partitioning latency vs quality landscape (Brain-like, k=%d, single instance)", cfg.K),
		Columns: []string{"algorithm", "class", "latency", "RF", "imbalance"},
	}

	type entry struct {
		label, class string
		spec         runtime.Spec
		strategy     string
	}
	base := runtime.Spec{K: cfg.K, Seed: cfg.Seed}
	var entries []entry
	for _, name := range runtime.Baselines() {
		entries = append(entries, entry{name, "single-edge", base, name})
	}
	for _, w := range []int{16, 128, 1024} {
		spec := base
		spec.Window = w
		entries = append(entries, entry{fmt.Sprintf("adwise w=%d", w), "window", spec, "adwise"})
	}
	entries = append(entries, entry{"ne", "all-edge", base, "ne"})

	for _, e := range entries {
		p, err := runtime.New(e.strategy, e.spec)
		if err != nil {
			return nil, fmt.Errorf("bench: fig1 %s: %w", e.label, err)
		}
		start := clk.Now()
		a, err := p.Run(stream.FromEdges(edges))
		if err != nil {
			return nil, fmt.Errorf("bench: fig1 %s: %w", e.label, err)
		}
		lat := clk.Now().Sub(start)
		s := metrics.Summarize(a)
		t.AddRow(e.label, e.class, lat, s.ReplicationDegree, s.Imbalance)
		cfg.progressf("fig1: %-14s RF=%.3f lat=%v", e.label, s.ReplicationDegree, lat.Round(time.Millisecond))
	}
	t.Notes = append(t.Notes,
		"single-edge streamers minimize latency; window/all-edge trade latency for quality (lower RF)")
	return t, nil
}
