package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "Test",
		Title:   "a table",
		Columns: []string{"name", "value", "lat"},
	}
	tab.AddRow("alpha", 1.23456, 1500*time.Millisecond)
	tab.AddRow("b", 7, 250*time.Microsecond)
	tab.Notes = append(tab.Notes, "a note")

	out := tab.String()
	for _, want := range []string{"Test — a table", "alpha", "1.235", "1.50s", "250µs", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 2 rows, note
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{42 * time.Microsecond, "42µs"},
		{1500 * time.Microsecond, "1.5ms"},
		{2 * time.Second, "2.00s"},
	}
	for _, tc := range tests {
		if got := formatDuration(tc.d); got != tc.want {
			t.Errorf("formatDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must be present.
	wanted := []string{"table2", "fig1", "fig7a", "fig7b", "fig7c", "fig7d",
		"fig7e", "fig7f", "fig7g", "fig7h", "fig7i", "fig8"}
	for _, id := range wanted {
		e, err := Lookup(id)
		if err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
			continue
		}
		if e.Run == nil || e.Paper == "" {
			t.Errorf("experiment %s incomplete: %+v", id, e)
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	ids := make(map[string]bool)
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.PageRankIters = 100
	cfg.ColoringIters = 50
	cfg.CycleLengths = []int{4}
	cfg.CycleSeedCount = 4
	cfg.CycleMessageCap = 5_000
	cfg.CliqueSizes = []int{3}
	cfg.CliqueSeedCount = 4
	cfg.LatencyMultipliers = []float64{3, 10}
	return cfg
}

func TestTableIIStructure(t *testing.T) {
	tab, err := TableII(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table II rows = %d, want 3 (orkut, brain, web)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Errorf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
	}
}

func TestFigure7aStructure(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Figure7a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The registry-driven sweep: every sweep baseline, then one row per
	// window strategy per latency multiplier.
	baselines, windows := SweepBaselines(), WindowStrategies()
	want := len(baselines) + len(windows)*len(cfg.LatencyMultipliers)
	if len(tab.Rows) != want {
		t.Fatalf("Figure 7a rows = %d, want %d", len(tab.Rows), want)
	}
	for i, name := range baselines {
		if tab.Rows[i][0] != name {
			t.Errorf("row %d strategy = %q, want %q", i, tab.Rows[i][0], name)
		}
	}
	// TOTAL column must be the last and non-empty.
	last := tab.Columns[len(tab.Columns)-1]
	if !strings.HasPrefix(last, "TOTAL") {
		t.Errorf("last column = %q, want TOTAL@N", last)
	}
}

func TestFigure8Monotone(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // needs enough edges for the spread sweep to matter
	tab, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(SweepBaselines()) + len(WindowStrategies()); len(tab.Rows) != want {
		t.Fatalf("Figure 8 rows = %d, want %d strategies", len(tab.Rows), want)
	}
	// Column 1 is spread=4, column 4 is spread=32: RF must not increase
	// when the spread shrinks (the Figure 8 claim), allowing small noise.
	for _, row := range tab.Rows {
		small, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", row[1], err)
		}
		big, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", row[4], err)
		}
		if small > big*1.05 {
			t.Errorf("%s: RF at spread=4 (%v) above spread=32 (%v)", row[0], small, big)
		}
	}
}

func TestFigure1Structure(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("Figure 1 rows = %d, want the full landscape (>= 10)", len(tab.Rows))
	}
	names := make(map[string]bool)
	for _, row := range tab.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"hash", "dbh", "hdrf", "greedy", "grid", "ne"} {
		if !names[want] {
			t.Errorf("Figure 1 missing %s", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := tinyConfig()
	for _, fn := range []func(Config) (*Table, error){
		AblationLazy, AblationLambda, AblationClustering, AblationWindow, AblationOrder,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
	}
}

func TestIngestStructure(t *testing.T) {
	tab, err := Ingest(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"text materialised", "text segmented", "binary materialised", "binary segmented"}
	if len(tab.Rows) != len(want) {
		t.Fatalf("Ingest rows = %d, want %d (%v)", len(tab.Rows), len(want), want)
	}
	for i, label := range want {
		if tab.Rows[i][0] != label {
			t.Errorf("row %d label = %q, want %q", i, tab.Rows[i][0], label)
		}
	}
	// Both materialised runs and the binary segmented run chunk the edge
	// list identically (stream.Chunks distribution), so quality must agree
	// exactly across them; text segmented snaps chunk boundaries to byte
	// targets and may differ marginally, so it is excluded.
	for _, i := range []int{2, 3} {
		if tab.Rows[i][3] != tab.Rows[0][3] {
			t.Errorf("row %d (%s) RF = %s, want %s (identical chunking)", i, tab.Rows[i][0], tab.Rows[i][3], tab.Rows[0][3])
		}
	}
}

func TestWorkloadExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiments are slow")
	}
	cfg := tinyConfig()
	for _, id := range []string{"fig7d", "fig7e", "fig7f", "fig7g"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}
