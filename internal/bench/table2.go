package bench

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
)

// TableII regenerates Table II: the evaluation-graph inventory with vertex
// count, edge count, clustering coefficient ĉ, and type — for the
// synthetic stand-ins, side by side with the paper's real-graph numbers.
func TableII(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table II",
		Title:   fmt.Sprintf("Evaluation graphs (synthetic stand-ins at scale %.2f)", cfg.Scale),
		Columns: []string{"Name", "|V|", "|E|", "ĉ", "Type", "paper |V|", "paper |E|", "paper ĉ"},
	}
	for _, preset := range gen.Presets() {
		g, err := preset.Generate(cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s: %w", preset, err)
		}
		s := graph.Summarize(g, graph.StatsOptions{ClusteringSample: 2000, Seed: cfg.Seed})
		pv, pe, pc := preset.PaperStats()
		t.AddRow(string(preset), s.V, s.E, fmt.Sprintf("%.4f", s.Clustering), preset.Type(),
			fmt.Sprint(pv), fmt.Sprint(pe), fmt.Sprintf("%.4f", pc))
		cfg.progressf("table2: %s %v", preset, s)
	}
	t.Notes = append(t.Notes,
		"ĉ estimated on a 2000-vertex sample, as the paper does for Web")
	return t, nil
}
