// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table II, Figure 1, Figures 7a–7i,
// Figure 8) plus the ablations called out in DESIGN.md, printing
// paper-style tables.
//
// Experiment scale is controlled by Config.Scale so the full suite runs on
// a laptop; EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/engine"
)

// Config carries the shared experiment parameters. The defaults mirror the
// paper's setup — k=32 partitions, z=8 parallel loaders with spotlight
// spread 4 — at a reduced graph scale.
type Config struct {
	// Scale is the synthetic-graph scale factor (1.0 = default evaluation
	// size, see gen package).
	Scale float64
	// Seed drives graph generation and every seeded choice downstream.
	Seed uint64
	// K, Z, Spread configure partitioning: K partitions, Z parallel
	// loader instances, Spread partitions per instance.
	K, Z, Spread int
	// LatencyMultipliers are the ADWISE latency preferences, expressed as
	// multiples of the measured HDRF partitioning latency (the paper
	// recommends ~3x; the sweep shows the sweet spot).
	LatencyMultipliers []float64
	// PageRankIters is the total PageRank iteration count (reported in
	// blocks of 100, as in Figures 7a–7c).
	PageRankIters int
	// ColoringIters is the coloring iteration bound (blocks of 50,
	// Figure 7e).
	ColoringIters int
	// CycleLengths are the circle lengths of the subgraph-isomorphism
	// workload (Figure 7d; paper: 19/15/21, scaled down here).
	CycleLengths []int
	// CycleSeedCount bounds the walker seeds per circle search.
	CycleSeedCount int
	// CycleMessageCap bounds per-partition path-message production.
	CycleMessageCap int
	// CliqueSizes are the clique sizes of Figure 7f (paper: 3/4/5).
	CliqueSizes []int
	// CliqueSeedCount is the number of random walker starts (paper: 10).
	CliqueSeedCount int
	// Cost is the engine's simulated cluster cost model.
	Cost engine.CostModel
	// Workers bounds engine parallelism (0 = GOMAXPROCS).
	Workers int
	// ScoreWorkers pins the window-scoring worker count of window-class
	// strategies in every experiment (0 = auto: divided among the Z
	// instances). The scoring experiment sweeps worker counts unless this
	// pins one — the -cpuprofile + -score-workers combination that
	// validates where the scoring loop saturates.
	ScoreWorkers int
	// VertexBudgetBytes pins the memory experiment to a single explicit
	// vertex-state budget instead of its default {∞, ½, ¼, ⅛ of unbounded
	// peak} sweep (0 = sweep). Other experiments run unbounded regardless —
	// eviction changes assignments, and their tables reproduce the paper's
	// unbounded setting.
	VertexBudgetBytes int64
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
	// Clock substitutes the wall-time source behind every measured
	// latency (nil = real time); tests inject a clock.Fake to make
	// harness timing deterministic.
	Clock clock.Clock
}

// clock returns the configured time source, defaulting to real time.
func (c Config) clock() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real{}
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Scale:              0.1,
		Seed:               42,
		K:                  32,
		Z:                  8,
		Spread:             4,
		LatencyMultipliers: []float64{3, 10, 30},
		PageRankIters:      300,
		ColoringIters:      300,
		CycleLengths:       []int{8, 6, 10},
		CycleSeedCount:     8,
		CycleMessageCap:    50_000,
		CliqueSizes:        []int{3, 4, 5},
		CliqueSeedCount:    10,
		Cost:               DefaultBenchCostModel(),
		Workers:            0,
	}
}

// DefaultBenchCostModel is the cluster calibration used by the harness:
// replica-sync messages ~50x an edge traversal, with a small BSP barrier
// overhead, so that (as in the paper's testbed) the processing latency of
// a 100-iteration PageRank block lands within a small multiple of the
// single-edge partitioning latency and is dominated by replication-driven
// communication.
func DefaultBenchCostModel() engine.CostModel {
	return engine.CostModel{
		PerEdge:      20 * time.Nanosecond,
		PerVertex:    10 * time.Nanosecond,
		PerMessage:   2 * time.Microsecond,
		StepOverhead: 100 * time.Microsecond,
		Machines:     8,
	}
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Table is a printable experiment result. The exported fields marshal to
// JSON as-is (cmd/adwise-bench -json), so the per-PR perf trajectory can
// be captured machine-readably; cell values stay strings, formatted
// exactly as the text tables print them.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// WriteJSON writes the table as one JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}
