package bench

import (
	"fmt"
	"os"
	"path/filepath"
	gort "runtime"
	"time"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
)

// Ingest measures the full ingest matrix for feeding the Z spotlight
// instances from a graph file (§III-D, Figure 3): both on-disk formats —
// text edge list and fixed-record ADWB binary — each loaded both ways:
// materialise the edge list and chunk it (graph.LoadFile +
// RunStrategySpotlight) versus streaming disjoint byte ranges of the file
// (RunStrategySpotlightFile). All four paths partition the same Web-like
// graph with the same strategy; the table reports wall time and bytes
// allocated. Binary segmented should win outright: fixed records skip
// text parsing, and its planning is header arithmetic — no counting pass
// over the file at all.
func Ingest(cfg Config) (*Table, error) {
	g, err := gen.PresetWeb.Generate(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: generating web graph: %w", err)
	}
	dir, err := os.MkdirTemp("", "adwise-ingest")
	if err != nil {
		return nil, fmt.Errorf("bench: temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	paths := map[string]string{
		"text":   filepath.Join(dir, "web.txt"),
		"binary": filepath.Join(dir, "web.bin"),
	}
	for _, p := range paths {
		if err := graph.SaveFile(p, g); err != nil {
			return nil, err
		}
	}
	edges := g.E()
	g = nil // the ingest paths must start from the files, not this copy

	scfg := cfg.spotlightConfig()
	spec := runtime.Spec{K: cfg.K, Seed: cfg.Seed}
	strategy := "hdrf"

	type result struct {
		label   string
		latency time.Duration
		allocMB float64
		rf      float64
	}
	clk := cfg.clock()
	measure := func(label string, run func() (*metrics.Assignment, error)) (result, error) {
		var before, after gort.MemStats
		gort.GC()
		gort.ReadMemStats(&before)
		start := clk.Now()
		a, err := run()
		lat := clk.Now().Sub(start)
		if err != nil {
			return result{}, fmt.Errorf("bench: ingest %s: %w", label, err)
		}
		gort.ReadMemStats(&after)
		if a.Len() != edges {
			return result{}, fmt.Errorf("bench: ingest %s assigned %d of %d edges", label, a.Len(), edges)
		}
		return result{
			label:   label,
			latency: lat,
			allocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			rf:      metrics.Summarize(a).ReplicationDegree,
		}, nil
	}

	var results []result
	for _, format := range []string{"text", "binary"} {
		path := paths[format]
		materialised, err := measure(format+" materialised", func() (*metrics.Assignment, error) {
			loaded, err := graph.LoadFile(path)
			if err != nil {
				return nil, err
			}
			return runtime.RunStrategySpotlight(strategy, loaded.Edges, scfg, spec)
		})
		if err != nil {
			return nil, err
		}
		cfg.progressf("  ingest %s: %v, %.1f MB allocated", materialised.label, materialised.latency, materialised.allocMB)

		segmented, err := measure(format+" segmented", func() (*metrics.Assignment, error) {
			return runtime.RunStrategySpotlightFile(strategy, path, scfg, spec)
		})
		if err != nil {
			return nil, err
		}
		cfg.progressf("  ingest %s: %v, %.1f MB allocated", segmented.label, segmented.latency, segmented.allocMB)
		results = append(results, materialised, segmented)
	}

	tab := &Table{
		ID:      "Ingest",
		Title:   fmt.Sprintf("file ingest, %s, %d edges, z=%d loaders, {text,binary} x {materialised,segmented}", strategy, edges, scfg.Z),
		Columns: []string{"ingest", "latency", "alloc MB", "RF"},
		Notes: []string{
			"materialised = LoadFile + chunked RunStrategySpotlight; segmented = byte-range RunStrategySpotlightFile",
			"segmented loading never holds the full edge slice: its steady memory is the per-loader read buffers",
			"plus the vertex caches — constant in the edge count, so the win over materialising grows with the file",
			"binary segmented additionally plans by header arithmetic (no counting pass) and decodes fixed records",
			"zero-copy, so it is the fastest ingest configuration",
		},
	}
	for _, r := range results {
		tab.AddRow(r.label, r.latency, fmt.Sprintf("%.1f", r.allocMB), r.rf)
	}
	return tab, nil
}
