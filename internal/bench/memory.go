package bench

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
	"github.com/adwise-go/adwise/internal/vcache"
)

// memoryZipfExponent is the degree skew of the memory workload. Zipf
// endpoints with s=1.3 give a long tail of low-degree vertices — exactly
// the population the HEP-style eviction sheds first — while a few hubs
// stay hot enough to survive every sweep.
const memoryZipfExponent = 1.3

// Memory measures the bounded vertex state: replication factor, peak
// tracked cache bytes, evictions, and throughput as the byte budget
// shrinks.
//
// The workload is a Zipf-skewed edge stream (~2M·scale edges) partitioned
// by one ADWISE instance at a fixed 1024-edge window. The first run is
// unbounded and establishes the reference replication factor and the peak
// footprint P of the exact byte-accounting model (resident table arrays
// only — see vcache). The sweep then re-runs the identical stream at
// budgets {P/2, P/4, P/8} (or at the single budget pinned by
// Config.VertexBudgetBytes). Per row the table reports the budget, the
// observed peak, evicted vertices, the replication factor measured from
// the full assignment (metrics.Summarize — the cache's own view
// undercounts once evicted vertices re-enter as degree-1), its ratio to
// the unbounded reference, wall-clock latency, and edge throughput.
//
// Two properties are enforced, not just reported: every bounded run's
// peak must stay within its effective budget (the budget floored at the
// minimum table, plus nothing — the accounting is exact), and shrinking
// budgets must actually evict. A bounded run that never evicts is a sweep
// bug, not a result.
func Memory(cfg Config) (*Table, error) {
	edges := int(2_000_000 * cfg.Scale)
	if edges < 20_000 {
		edges = 20_000
	}
	vertices := edges / 4
	g, err := gen.Zipf(vertices, edges, memoryZipfExponent, cfg.Seed+7)
	if err != nil {
		return nil, fmt.Errorf("bench: generating zipf graph: %w", err)
	}

	tab := &Table{
		ID: "Memory",
		Title: fmt.Sprintf("bounded vertex state under HEP-style eviction, adwise, k=%d, zipf s=%.1f, %d edges",
			cfg.K, memoryZipfExponent, len(g.Edges)),
		Columns: []string{"budget", "peak", "evicted", "rf", "rf ratio", "latency", "edges/s"},
		Notes: []string{
			"rf is measured from the full assignment (metrics.Summarize), never from the cache — eviction",
			"re-admits returning vertices as degree-1 with empty replica sets, so the cache's own view undercounts;",
			"peak is the exact byte-accounting model's high-water mark (resident table arrays only) and is",
			"asserted <= the effective budget on every bounded row; budget 0 rows are the unbounded reference",
		},
	}

	clk := cfg.clock()
	run := func(budget int64) (*metrics.Assignment, core.RunStats, time.Duration, error) {
		opts := []core.Option{
			core.WithInitialWindow(1 << 10),
			core.WithFixedWindow(),
			core.WithMaxCandidates(1 << 10),
			core.WithTotalEdgesHint(int64(len(g.Edges))),
		}
		if budget > 0 {
			opts = append(opts, core.WithVertexBudget(budget))
		}
		ad, err := core.New(cfg.K, opts...)
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		start := clk.Now()
		a, err := ad.Run(stream.FromEdges(g.Edges))
		if err != nil {
			return nil, core.RunStats{}, 0, err
		}
		return a, ad.Stats(), clk.Now().Sub(start), nil
	}

	addRow := func(label string, st core.RunStats, rf, refRF float64, lat time.Duration) {
		eps := float64(len(g.Edges)) / lat.Seconds()
		tab.AddRow(label, vcache.FormatBytes(st.PeakCacheBytes), st.EvictedVertices,
			fmt.Sprintf("%.4f", rf), fmt.Sprintf("%.3fx", rf/refRF), lat, fmt.Sprintf("%.0f", eps))
	}

	refA, refStats, refLat, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("bench: memory unbounded reference: %w", err)
	}
	refRF := metrics.Summarize(refA).ReplicationDegree
	cfg.progressf("  memory unbounded: rf=%.4f peak=%s in %v",
		refRF, vcache.FormatBytes(refStats.PeakCacheBytes), refLat)
	addRow("unbounded", refStats, refRF, refRF, refLat)

	budgets := []int64{refStats.PeakCacheBytes / 2, refStats.PeakCacheBytes / 4, refStats.PeakCacheBytes / 8}
	if cfg.VertexBudgetBytes > 0 {
		budgets = []int64{cfg.VertexBudgetBytes}
	}
	for _, budget := range budgets {
		a, st, lat, err := run(budget)
		if err != nil {
			return nil, fmt.Errorf("bench: memory budget=%d: %w", budget, err)
		}
		rf := metrics.Summarize(a).ReplicationDegree
		// The budget may floor at the minimum table; the cache's own
		// effective budget is authoritative for the envelope check.
		effective := vcache.NewBounded(cfg.K, budget).Budget()
		if st.PeakCacheBytes > effective {
			return nil, fmt.Errorf("bench: memory budget=%s: peak %s exceeds effective budget %s",
				vcache.FormatBytes(budget), vcache.FormatBytes(st.PeakCacheBytes), vcache.FormatBytes(effective))
		}
		if a.Len() != refA.Len() {
			return nil, fmt.Errorf("bench: memory budget=%s assigned %d edges, unbounded assigned %d",
				vcache.FormatBytes(budget), a.Len(), refA.Len())
		}
		// An effective budget below the unbounded peak cannot fit the
		// unbounded table, so the run must have shed vertices.
		if effective < refStats.PeakCacheBytes && st.EvictedVertices == 0 {
			return nil, fmt.Errorf("bench: memory budget=%s (effective %s < unbounded peak %s) evicted nothing",
				vcache.FormatBytes(budget), vcache.FormatBytes(effective), vcache.FormatBytes(refStats.PeakCacheBytes))
		}
		cfg.progressf("  memory budget=%s: rf=%.4f (%.3fx) peak=%s evicted=%d in %v",
			vcache.FormatBytes(budget), rf, rf/refRF, vcache.FormatBytes(st.PeakCacheBytes), st.EvictedVertices, lat)
		addRow(vcache.FormatBytes(budget), st, rf, refRF, lat)
	}
	return tab, nil
}
