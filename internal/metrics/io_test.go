package metrics

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

func TestAssignmentTSVRoundTrip(t *testing.T) {
	a := NewAssignment(4, 3)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 2)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 0)
	a.Add(graph.Edge{Src: 9, Dst: 0}, 3)

	var buf bytes.Buffer
	if err := a.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 4 {
		t.Errorf("K = %d, want 4 (from header)", back.K)
	}
	if back.Len() != 3 {
		t.Fatalf("Len = %d, want 3", back.Len())
	}
	for i := range a.Edges {
		if back.Edges[i] != a.Edges[i] || back.Parts[i] != a.Parts[i] {
			t.Fatalf("row %d: got (%v,%d), want (%v,%d)", i,
				back.Edges[i], back.Parts[i], a.Edges[i], a.Parts[i])
		}
	}
}

func TestReadTSVWithoutHeader(t *testing.T) {
	in := "0\t1\t5\n2\t3\t0\n"
	a, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 6 {
		t.Errorf("K = %d, want 6 (inferred max+1)", a.K)
	}
}

func TestReadTSVErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"two fields", "0 1\n"},
		{"bad src", "x 1 0\n"},
		{"bad partition", "0 1 x\n"},
		{"negative partition", "0 1 -2\n"},
		{"header k too small", "# k=2\n0 1 5\n"},
		{"row widens header k", "# k=4 edges=2\n0 1 3\n1 2 4\n"},
		{"row equals header k", "# k=4\n0 1 4\n"},
		{"header after rows too small", "0 1 5\n# k=2\n"},
		{"malformed header k", "# k=abc edges=1\n0 1 0\n"},
		{"zero header k", "# k=0 edges=1\n0 1 0\n"},
		{"negative header k", "# k=-3 edges=1\n0 1 0\n"},
		{"malformed header edges", "# k=2 edges=two\n0 1 0\n"},
		{"truncated vs header edges", "# k=2 edges=3\n0 1 0\n1 2 1\n"},
		{"padded vs header edges", "# k=2 edges=1\n0 1 0\n1 2 1\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadTSV(%q) succeeded, want error", tc.in)
			}
		})
	}
}

// TestReadTSVRejectsWideningRowAtTheRow pins the error to the offending
// line: a row whose partition exceeds the declared k must fail with the
// row's line number, not silently widen K (the pre-strictness behaviour)
// or fail with a detached end-of-file error.
func TestReadTSVRejectsWideningRowAtTheRow(t *testing.T) {
	_, err := ReadTSV(strings.NewReader("# k=3 edges=3\n0 1 2\n1 2 7\n2 3 0\n"))
	if err == nil {
		t.Fatal("row with partition 7 under header k=3 accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if !strings.Contains(err.Error(), "partition 7") {
		t.Errorf("error %q does not name the bad partition", err)
	}
}

func TestReadTSVHeaderWithoutEdgesCount(t *testing.T) {
	a, err := ReadTSV(strings.NewReader("# k=5\n0 1 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 5 || a.Len() != 1 {
		t.Errorf("K=%d Len=%d, want 5,1", a.K, a.Len())
	}
}

// TestReadTSVFreeTextComments pins the header-shape rule: only comments
// whose first token is k=/edges= are headers; prose comments are ignored
// even when they happen to contain a "k=..." word.
func TestReadTSVFreeTextComments(t *testing.T) {
	in := "# generated with k=auto tuning\n# see edges=approx note\n# k=6 edges=1\n0 1 5\n"
	a, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 6 || a.Len() != 1 {
		t.Errorf("K=%d Len=%d, want 6,1", a.K, a.Len())
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# k=3 edges=1\n\n# another comment\n0\t1\t1\n"
	a, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || a.K != 3 {
		t.Errorf("Len=%d K=%d, want 1,3", a.Len(), a.K)
	}
}
