package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/adwise-go/adwise/internal/graph"
)

// Assignment persistence: a TSV of "src dst partition" rows, one per
// streamed edge, preserving stream order. This is the interchange format
// between cmd/adwise (which produces partitionings) and
// cmd/adwise-process (which consumes them).

// WriteTSV writes the assignment as "src\tdst\tpartition" lines preceded
// by a header comment carrying k.
func (a *Assignment) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# k=%d edges=%d\n", a.K, a.Len()); err != nil {
		return fmt.Errorf("metrics: writing assignment header: %w", err)
	}
	buf := make([]byte, 0, 40)
	for i, e := range a.Edges {
		buf = strconv.AppendUint(buf[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(a.Parts[i]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("metrics: writing assignment row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("metrics: flushing assignment: %w", err)
	}
	return nil
}

// ReadTSV parses an assignment written by WriteTSV. The header comment is
// optional; without it, k is inferred as max(partition)+1.
func ReadTSV(r io.Reader) (*Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	a := &Assignment{}
	headerK := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if k, ok := parseHeaderK(line); ok {
				headerK = k
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("metrics: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: src: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: dst: %w", lineNo, err)
		}
		part, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: partition: %w", lineNo, err)
		}
		if part < 0 {
			return nil, fmt.Errorf("metrics: line %d: negative partition %d", lineNo, part)
		}
		a.Edges = append(a.Edges, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)})
		a.Parts = append(a.Parts, int32(part))
		if int(part)+1 > a.K {
			a.K = int(part) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: scanning assignment: %w", err)
	}
	if len(a.Edges) == 0 {
		return nil, fmt.Errorf("metrics: empty assignment")
	}
	if headerK > 0 {
		if a.K > headerK {
			return nil, fmt.Errorf("metrics: header k=%d but partition ids reach %d", headerK, a.K-1)
		}
		a.K = headerK
	}
	return a, nil
}

func parseHeaderK(line string) (int, bool) {
	for _, f := range strings.Fields(line) {
		if rest, found := strings.CutPrefix(f, "k="); found {
			if k, err := strconv.Atoi(rest); err == nil && k > 0 {
				return k, true
			}
		}
	}
	return 0, false
}
