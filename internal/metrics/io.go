package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/adwise-go/adwise/internal/graph"
)

// Assignment persistence: a TSV of "src dst partition" rows, one per
// streamed edge, preserving stream order. This is the interchange format
// between cmd/adwise (which produces partitionings) and
// cmd/adwise-process (which consumes them).

// WriteTSV writes the assignment as "src\tdst\tpartition" lines preceded
// by a header comment carrying k.
func (a *Assignment) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# k=%d edges=%d\n", a.K, a.Len()); err != nil {
		return fmt.Errorf("metrics: writing assignment header: %w", err)
	}
	buf := make([]byte, 0, 40)
	for i, e := range a.Edges {
		buf = strconv.AppendUint(buf[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(a.Parts[i]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("metrics: writing assignment row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("metrics: flushing assignment: %w", err)
	}
	return nil
}

// ReadTSV parses an assignment written by WriteTSV. The header comment —
// a '#' line whose first token is a k= or edges= field, as WriteTSV
// emits — is optional; without it, k is inferred as max(partition)+1.
// Other comment lines are free text and ignored. When a header is
// present it is authoritative: a malformed k= or edges= field, a row
// whose partition is >= k, or a row count that contradicts edges= are
// all errors — a bad row must never silently widen the assignment.
func ReadTSV(r io.Reader) (*Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	a := &Assignment{}
	headerK, headerEdges := -1, -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if !isHeader(line) {
				continue // free-text comment
			}
			k, edges, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			if k > 0 {
				headerK = k
			}
			if edges >= 0 {
				headerEdges = edges
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("metrics: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: src: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: dst: %w", lineNo, err)
		}
		part, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: partition: %w", lineNo, err)
		}
		if part < 0 {
			return nil, fmt.Errorf("metrics: line %d: negative partition %d", lineNo, part)
		}
		if headerK > 0 && int(part) >= headerK {
			return nil, fmt.Errorf("metrics: line %d: partition %d outside header k=%d", lineNo, part, headerK)
		}
		a.Edges = append(a.Edges, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)})
		a.Parts = append(a.Parts, int32(part))
		if int(part)+1 > a.K {
			a.K = int(part) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: scanning assignment: %w", err)
	}
	if len(a.Edges) == 0 {
		return nil, fmt.Errorf("metrics: empty assignment")
	}
	if headerK > 0 {
		// A header placed after data rows still constrains them.
		if a.K > headerK {
			return nil, fmt.Errorf("metrics: header k=%d but partition ids reach %d", headerK, a.K-1)
		}
		a.K = headerK
	}
	if headerEdges >= 0 && len(a.Edges) != headerEdges {
		return nil, fmt.Errorf("metrics: header declares %d edges but file has %d (truncated or padded assignment)",
			headerEdges, len(a.Edges))
	}
	return a, nil
}

// isHeader reports whether a comment line is an assignment header: its
// first token after '#' is a k= or edges= field, the shape WriteTSV
// emits. Any other comment is free text and is ignored wholesale — a
// stray "k=..." word inside prose never becomes a half-parsed header.
func isHeader(line string) bool {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	return len(fields) > 0 &&
		(strings.HasPrefix(fields[0], "k=") || strings.HasPrefix(fields[0], "edges="))
}

// parseHeader extracts the k= and edges= fields of a header comment,
// returning -1 for absent fields. Present-but-malformed fields are
// errors: a header that cannot be trusted must not be half-applied.
func parseHeader(line string) (k, edges int, err error) {
	k, edges = -1, -1
	for _, f := range strings.Fields(line) {
		if rest, found := strings.CutPrefix(f, "k="); found {
			k, err = strconv.Atoi(rest)
			if err != nil || k < 1 {
				return -1, -1, fmt.Errorf("malformed header field %q: k must be a positive integer", f)
			}
		}
		if rest, found := strings.CutPrefix(f, "edges="); found {
			edges, err = strconv.Atoi(rest)
			if err != nil || edges < 0 {
				return -1, -1, fmt.Errorf("malformed header field %q: edges must be a non-negative integer", f)
			}
		}
	}
	return k, edges, nil
}
