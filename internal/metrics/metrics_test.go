package metrics

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

func buildAssignment(k int, pairs []struct {
	e graph.Edge
	p int
}) *Assignment {
	a := NewAssignment(k, len(pairs))
	for _, pr := range pairs {
		a.Add(pr.e, pr.p)
	}
	return a
}

func TestSummarizeHandExample(t *testing.T) {
	// Figure 2 of the paper: cut vertex u (=1) spans two partitions.
	a := NewAssignment(2, 4)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 0)
	a.Add(graph.Edge{Src: 1, Dst: 3}, 1)
	a.Add(graph.Edge{Src: 1, Dst: 4}, 1)

	s := Summarize(a)
	if s.Vertices != 5 {
		t.Errorf("Vertices = %d, want 5", s.Vertices)
	}
	if s.Replicas != 6 { // vertex 1 twice, others once
		t.Errorf("Replicas = %d, want 6", s.Replicas)
	}
	if s.ReplicationDegree != 6.0/5.0 {
		t.Errorf("RF = %v, want 1.2", s.ReplicationDegree)
	}
	if s.CutVertices != 1 {
		t.Errorf("CutVertices = %d, want 1", s.CutVertices)
	}
	if s.MinSize != 2 || s.MaxSize != 2 || s.Imbalance != 0 {
		t.Errorf("sizes: min=%d max=%d imb=%v", s.MinSize, s.MaxSize, s.Imbalance)
	}
	if !s.BalanceOK(0.9) {
		t.Error("BalanceOK(0.9) = false for perfectly balanced assignment")
	}
	if s.NormalizedMaxLoad() != 1.0 {
		t.Errorf("NormalizedMaxLoad = %v, want 1.0", s.NormalizedMaxLoad())
	}
}

func TestSummarizeSelfLoop(t *testing.T) {
	a := NewAssignment(2, 1)
	a.Add(graph.Edge{Src: 3, Dst: 3}, 1)
	s := Summarize(a)
	if s.Vertices != 1 || s.Replicas != 1 {
		t.Errorf("self-loop: vertices=%d replicas=%d, want 1,1", s.Vertices, s.Replicas)
	}
}

func TestImbalanceAndBalanceOK(t *testing.T) {
	a := NewAssignment(2, 4)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 0)
	a.Add(graph.Edge{Src: 2, Dst: 3}, 0)
	a.Add(graph.Edge{Src: 3, Dst: 4}, 1)
	s := Summarize(a)
	if s.Imbalance != 2.0/3.0 {
		t.Errorf("Imbalance = %v, want 2/3", s.Imbalance)
	}
	// min/max = 1/3 > τ must fail for τ=0.5, pass for τ=0.2.
	if s.BalanceOK(0.5) {
		t.Error("BalanceOK(0.5) = true for 1:3 split")
	}
	if !s.BalanceOK(0.2) {
		t.Error("BalanceOK(0.2) = false for 1:3 split")
	}
}

func TestReplicaHistogram(t *testing.T) {
	a := NewAssignment(3, 3)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	a.Add(graph.Edge{Src: 0, Dst: 2}, 1)
	a.Add(graph.Edge{Src: 0, Dst: 3}, 2)
	hist := ReplicaHistogram(a)
	// Vertex 0 has 3 replicas; vertices 1,2,3 have 1 each.
	if hist[1] != 3 || hist[3] != 1 {
		t.Errorf("hist = %v", hist)
	}
}

func TestMerge(t *testing.T) {
	a := NewAssignment(4, 2)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	b := NewAssignment(4, 2)
	b.Add(graph.Edge{Src: 1, Dst: 2}, 3)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("Len after merge = %d, want 2", a.Len())
	}
	s := Summarize(a)
	if s.Replicas != 4 { // vertex 1 on partitions 0 and 3
		t.Errorf("Replicas = %d, want 4", s.Replicas)
	}

	c := NewAssignment(5, 0)
	if err := a.Merge(c); err == nil {
		t.Error("Merge with different K succeeded")
	}
}

func TestValidate(t *testing.T) {
	good := NewAssignment(2, 1)
	good.Add(graph.Edge{Src: 0, Dst: 1}, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("Validate on good assignment: %v", err)
	}

	bad := &Assignment{K: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}, Parts: []int32{5}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted out-of-range partition")
	}
	mismatch := &Assignment{K: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}, Parts: nil}
	if err := mismatch.Validate(); err == nil {
		t.Error("Validate accepted length mismatch")
	}
	badK := &Assignment{K: 0}
	if err := badK.Validate(); err == nil {
		t.Error("Validate accepted K=0")
	}
}

func TestSummaryString(t *testing.T) {
	a := NewAssignment(2, 1)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	if got := Summarize(a).String(); got == "" {
		t.Error("String() empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewAssignment(3, 0))
	if s.ReplicationDegree != 0 || s.Vertices != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if !s.BalanceOK(0.99) {
		t.Error("BalanceOK on empty = false")
	}
}

func TestForEachReplicaIncidences(t *testing.T) {
	a := NewAssignment(4, 3)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 2)
	a.Add(graph.Edge{Src: 3, Dst: 3}, 1) // self-loop: one incidence
	a.Add(graph.Edge{Src: 1, Dst: 0}, 0)
	var got [][2]int32
	a.ForEachReplica(func(v graph.VertexID, p int32) {
		got = append(got, [2]int32{int32(v), p})
	})
	want := [][2]int32{{0, 2}, {1, 2}, {3, 1}, {1, 0}, {0, 0}}
	if len(got) != len(want) {
		t.Fatalf("incidences = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("incidences = %v, want %v", got, want)
		}
	}
}
