// Package metrics evaluates partitionings against the paper's objectives:
// replication degree (Eq. 1) and edge-count balance (Eq. 2).
package metrics

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
)

// Assignment is the result of partitioning an edge stream: the i-th stream
// edge went to partition Parts[i].
type Assignment struct {
	K     int
	Edges []graph.Edge
	Parts []int32
}

// NewAssignment allocates an empty assignment for k partitions with
// capacity for n edges.
func NewAssignment(k, n int) *Assignment {
	return &Assignment{
		K:     k,
		Edges: make([]graph.Edge, 0, n),
		Parts: make([]int32, 0, n),
	}
}

// Add appends an edge assignment.
func (a *Assignment) Add(e graph.Edge, p int) {
	a.Edges = append(a.Edges, e)
	a.Parts = append(a.Parts, int32(p))
}

// Len returns the number of assigned edges.
func (a *Assignment) Len() int { return len(a.Edges) }

// Merge appends all assignments of b into a. Both must share the same K;
// merging is how the parallel-loading experiments combine the z
// partitioner instances into one global partitioning.
func (a *Assignment) Merge(b *Assignment) error {
	if a.K != b.K {
		return fmt.Errorf("metrics: merging assignments with different k (%d vs %d)", a.K, b.K)
	}
	a.Edges = append(a.Edges, b.Edges...)
	a.Parts = append(a.Parts, b.Parts...)
	return nil
}

// ForEachReplica streams every (vertex, partition) incidence of the
// assignment in stream order: once per endpoint per edge, with self-loops
// contributing a single incidence. It is the construction hook for
// anything that derives per-vertex replica state from an assignment —
// ReplicaSets here and the serving index build both go through it.
func (a *Assignment) ForEachReplica(yield func(v graph.VertexID, p int32)) {
	for i, e := range a.Edges {
		p := a.Parts[i]
		yield(e.Src, p)
		if e.Dst != e.Src {
			yield(e.Dst, p)
		}
	}
}

// ReplicaSets recomputes the replica set of every vertex from scratch.
func (a *Assignment) ReplicaSets() map[graph.VertexID]bitset.Set {
	sets := make(map[graph.VertexID]bitset.Set, 1024)
	a.ForEachReplica(func(v graph.VertexID, p int32) {
		s, ok := sets[v]
		if !ok {
			s = bitset.New(a.K)
		}
		s.Add(int(p))
		sets[v] = s
	})
	return sets
}

// Summary captures the partitioning-quality numbers the paper reports.
type Summary struct {
	K                 int
	Edges             int
	Vertices          int // vertices incident to at least one edge
	ReplicationDegree float64
	Replicas          int64 // Σ|Rv|
	CutVertices       int   // vertices with |Rv| > 1
	MinSize, MaxSize  int64
	Imbalance         float64 // (max-min)/max
	Sizes             []int64
}

// Summarize computes the Summary for an assignment.
func Summarize(a *Assignment) Summary {
	s := Summary{K: a.K, Edges: a.Len(), Sizes: make([]int64, a.K)}
	for _, p := range a.Parts {
		s.Sizes[p]++
	}
	if a.K > 0 && a.Len() > 0 {
		s.MinSize, s.MaxSize = s.Sizes[0], s.Sizes[0]
		for _, sz := range s.Sizes[1:] {
			if sz < s.MinSize {
				s.MinSize = sz
			}
			if sz > s.MaxSize {
				s.MaxSize = sz
			}
		}
		if s.MaxSize > 0 {
			s.Imbalance = float64(s.MaxSize-s.MinSize) / float64(s.MaxSize)
		}
	}
	for _, set := range a.ReplicaSets() {
		c := set.Count()
		s.Vertices++
		s.Replicas += int64(c)
		if c > 1 {
			s.CutVertices++
		}
	}
	if s.Vertices > 0 {
		s.ReplicationDegree = float64(s.Replicas) / float64(s.Vertices)
	}
	return s
}

// BalanceOK reports whether the balance constraint of Eq. 2 holds:
// for all partitions i, j with |Pi|>|Pj|: |Pj|/|Pi| > τ.
// Equivalently min/max > τ.
func (s Summary) BalanceOK(tau float64) bool {
	if s.MaxSize == 0 {
		return true
	}
	return float64(s.MinSize)/float64(s.MaxSize) > tau
}

// NormalizedMaxLoad returns maxsize/(edges/k), the load factor of the most
// loaded partition (1.0 is perfect balance).
func (s Summary) NormalizedMaxLoad() float64 {
	if s.Edges == 0 || s.K == 0 {
		return 0
	}
	ideal := float64(s.Edges) / float64(s.K)
	return float64(s.MaxSize) / ideal
}

// String renders the summary as a one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("k=%d edges=%d RF=%.3f imbalance=%.3f maxload=%.3f cut=%d/%d",
		s.K, s.Edges, s.ReplicationDegree, s.Imbalance, s.NormalizedMaxLoad(), s.CutVertices, s.Vertices)
}

// ReplicaHistogram returns counts[h] = number of vertices with replica
// count h, for h in 0..K.
func ReplicaHistogram(a *Assignment) []int {
	hist := make([]int, a.K+1)
	for _, set := range a.ReplicaSets() {
		hist[set.Count()]++
	}
	return hist
}

// Validate checks structural invariants of an assignment: every partition
// id within range and non-NaN internal consistency. It returns the first
// violation found.
func (a *Assignment) Validate() error {
	if len(a.Edges) != len(a.Parts) {
		return fmt.Errorf("metrics: %d edges but %d partition labels", len(a.Edges), len(a.Parts))
	}
	if a.K < 1 {
		return fmt.Errorf("metrics: invalid partition count %d", a.K)
	}
	for i, p := range a.Parts {
		if p < 0 || int(p) >= a.K {
			return fmt.Errorf("metrics: edge %d assigned to partition %d outside [0,%d)", i, p, a.K)
		}
	}
	return nil
}
