package streamerrfix

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/stream"
)

// DrainChecked is the compliant drain loop: exhaustion is only a success
// once Err reports clean.
func DrainChecked(s stream.Stream) ([]graph.Edge, error) {
	var out []graph.Edge
	var buf [64]graph.Edge
	for {
		n := stream.NextBatch(s, buf[:])
		if n == 0 {
			if err := stream.Err(s); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// CountChecked drains via the Errer method form.
func CountChecked(b stream.Batcher, buf []graph.Edge) (int64, error) {
	var total int64
	for {
		n := b.NextBatch(buf)
		if n == 0 {
			break
		}
		total += int64(n)
	}
	if e, ok := b.(stream.Errer); ok {
		if err := e.Err(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// PeekOnce takes a single batch without draining to exhaustion — no loop,
// no obligation.
func PeekOnce(s stream.Stream, buf []graph.Edge) int {
	return stream.NextBatch(s, buf)
}
