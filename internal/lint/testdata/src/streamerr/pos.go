// Package streamerrfix is a lint fixture: positive and negative cases
// for the streamerr rule (the PR-3 stream error contract).
package streamerrfix

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/stream"
)

// DrainSilently consumes the stream to exhaustion and never consults
// Err: a truncated file would pass as a short success.
func DrainSilently(s stream.Stream) []graph.Edge {
	var out []graph.Edge
	var buf [64]graph.Edge
	for {
		n := stream.NextBatch(s, buf[:]) // want "drains a stream to exhaustion without checking Err"
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// DrainBatcherSilently drains through the Batcher method directly.
func DrainBatcherSilently(b stream.Batcher, buf []graph.Edge) int64 {
	var total int64
	for {
		n := b.NextBatch(buf) // want "drains a stream to exhaustion without checking Err"
		if n == 0 {
			return total
		}
		total += int64(n)
	}
}

// DrainNextSilently drains edge-at-a-time via the type-resolved Next.
func DrainNextSilently(s stream.Stream) int {
	count := 0
	for {
		_, ok := s.Next() // want "drains a stream to exhaustion without checking Err"
		if !ok {
			return count
		}
		count++
	}
}
