package directivefix

import "time"

// Reasoned is the compliant waiver: the rule, then why the invariant
// does not apply at this site.
func Reasoned() time.Time {
	return time.Now() //adwise:allow clockguard fixture demonstrates a reasoned measurement-only read
}

// AboveLine shows the standalone-comment placement: the directive on the
// line above the flagged statement also suppresses.
func AboveLine() time.Time {
	//adwise:allow clockguard fixture demonstrates the line-above placement
	return time.Now()
}
