// Package directivefix is a lint fixture for the //adwise:allow and
// //adwise:zeroalloc directive grammar itself: unexplained, stale, and
// malformed directives are findings.
package directivefix

import "time"

// Unexplained suppresses a real finding but gives no reason.
func Unexplained() time.Time {
	return time.Now() //adwise:allow clockguard // want "suppression of clockguard without a reason"
}

// Stale carries an allow with nothing to suppress.
func Stale() int {
	return 42 //adwise:allow clockguard no clock call on this line // want "suppresses nothing"
}

// UnknownRule names a rule that does not exist.
func UnknownRule() int {
	return 7 //adwise:allow warpdrive not a real rule // want "unknown rule"
}

//adwise:zeroalloc // want "not attached to a function declaration"
var floating = 1
