// Package maprangefix is a lint fixture: positive and negative cases
// for the maprange rule (schedule-invariant scoring).
package maprangefix

// AccumulateScores folds map values into an outer float accumulator:
// float addition is not associative, so the sum depends on randomized
// iteration order.
func AccumulateScores(scores map[int]float64) float64 {
	total := 0.0
	for _, s := range scores {
		total += s // want "write to total inside map iteration"
	}
	return total
}

// CollectKeys appends in map order — ordered output from unordered
// iteration.
func CollectKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "write to keys inside map iteration"
	}
	return keys
}

// CountDown decrements an outer counter per entry.
func CountDown(m map[int]bool, n int) int {
	for range m {
		n-- // want "update of n inside map iteration"
	}
	return n
}

// EmitAll sends map entries down a channel in iteration order.
func EmitAll(m map[int]int, out chan int) {
	for _, v := range m {
		out <- v // want "channel send inside map iteration"
	}
}
