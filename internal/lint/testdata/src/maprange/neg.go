package maprangefix

import "sort"

// Lookup reads without writing outer state — pure membership scans are
// order-insensitive.
func Lookup(m map[int]string, want string) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Reindex performs a per-key store into another map: each key writes its
// own slot exactly once, so visit order cannot change the result.
func Reindex(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// SortedFold is the compliant shape for ordered work: materialize keys,
// sort, then iterate the stable sequence.
func SortedFold(scores map[int]float64) float64 {
	keys := make([]int, 0, len(scores))
	for k := range scores {
		keys = append(keys, k) //adwise:allow maprange key collection feeds an explicit sort below; set of keys is order-insensitive
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += scores[k]
	}
	return total
}

// LocalState writes only variables declared inside the loop body, so
// nothing outlives an iteration and order cannot matter.
func LocalState(m map[int]int) bool {
	for _, v := range m {
		candidate := v * v
		if candidate > 100 {
			return true
		}
	}
	return false
}
