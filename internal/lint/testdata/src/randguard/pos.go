// Package randfix is a lint fixture: positive and negative cases for
// the randguard rule.
package randfix

import "math/rand/v2"

// GlobalDraws uses the package-level convenience functions, which share
// the process-seeded global RNG — unreproducible across runs.
func GlobalDraws(n int) int {
	v := rand.IntN(n)         // want "rand.IntN draws from the shared global RNG"
	if rand.Float64() < 0.5 { // want "rand.Float64 draws from the shared global RNG"
		v++
	}
	return v
}

// GlobalShuffle shuffles through the global RNG.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the shared global RNG"
}

// GenericDraw exercises the generic rand.N entry point.
func GenericDraw() int64 {
	return rand.N[int64](10) // want "rand.N draws from the shared global RNG"
}
