package randfix

import "math/rand/v2"

// SeededDraws builds an explicitly seeded local generator — the
// reproducible shape every internal package must use.
func SeededDraws(seed uint64, n int) int {
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	v := rng.IntN(n)
	rng.Shuffle(v, func(i, j int) {})
	return v
}
