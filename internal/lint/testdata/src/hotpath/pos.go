// Package hotpathfix is a lint fixture: positive and negative cases for
// the hotpath rule (//adwise:zeroalloc contract).
package hotpathfix

import "fmt"

// Format renders a label on every call.
//
//adwise:zeroalloc
func Format(v int64) string {
	return fmt.Sprintf("v=%d", v) // want "formats (and allocates)"
}

// Capture builds a closure over its parameter.
//
//adwise:zeroalloc
func Capture(n int64) func() int64 {
	return func() int64 { return n + 1 } // want "func literal captures n"
}

// Grow appends into an unsized buffer.
//
//adwise:zeroalloc
func Grow(dst []int64, v int64) []int64 {
	return append(dst, v) // want "append may grow the backing array"
}

// Table builds a map without a capacity hint.
//
//adwise:zeroalloc
func Table() map[int64]int64 {
	return make(map[int64]int64) // want "make without a capacity hint"
}

// Box passes a concrete value through an interface parameter.
//
//adwise:zeroalloc
func Box(v int64) any {
	return any(v) // want "conversion to interface type boxes a concrete value"
}

// sink accepts anything.
func sink(v any) {}

// BoxArg boxes at the call boundary.
//
//adwise:zeroalloc
func BoxArg(v int64) {
	sink(v) // want "concrete value passed as interface parameter boxes"
}
