// Package hotpathfix is a lint fixture: positive and negative cases for
// the hotpath rule (//adwise:zeroalloc contract).
package hotpathfix

import (
	"fmt"
	"math/bits"
)

// Format renders a label on every call.
//
//adwise:zeroalloc
func Format(v int64) string {
	return fmt.Sprintf("v=%d", v) // want "formats (and allocates)"
}

// Capture builds a closure over its parameter.
//
//adwise:zeroalloc
func Capture(n int64) func() int64 {
	return func() int64 { return n + 1 } // want "func literal captures n"
}

// Grow appends into an unsized buffer.
//
//adwise:zeroalloc
func Grow(dst []int64, v int64) []int64 {
	return append(dst, v) // want "append may grow the backing array"
}

// Table builds a map without a capacity hint.
//
//adwise:zeroalloc
func Table() map[int64]int64 {
	return make(map[int64]int64) // want "make without a capacity hint"
}

// Box passes a concrete value through an interface parameter.
//
//adwise:zeroalloc
func Box(v int64) any {
	return any(v) // want "conversion to interface type boxes a concrete value"
}

// sink accepts anything.
func sink(v any) {}

// BoxArg boxes at the call boundary.
//
//adwise:zeroalloc
func BoxArg(v int64) {
	sink(v) // want "concrete value passed as interface parameter boxes"
}

// CollectBits walks set bits correctly but accumulates hits into an
// unsized buffer — growth inside a stamped scan kernel.
//
//adwise:zeroalloc
func CollectBits(words []uint64) []int {
	var hits []int
	for wi, wd := range words {
		base := wi << 6
		for wd != 0 {
			hits = append(hits, base+bits.TrailingZeros64(wd)) // want "append may grow the backing array"
			wd &= wd - 1
		}
	}
	return hits
}

// ForEachBit dispatches each set bit through a capturing closure — the
// per-bit closure-call shape the word-scan kernels replace.
//
//adwise:zeroalloc
func ForEachBit(words []uint64, total *int) {
	visit := func(p int) { *total += p } // want "func literal captures total"
	for wi, wd := range words {
		base := wi << 6
		for wd != 0 {
			visit(base + bits.TrailingZeros64(wd))
			wd &= wd - 1
		}
	}
}

// ProbeLogsMisses is a tombstone-aware probe whose miss path appends the
// missing key to a log — the exact anti-pattern the bounded vertex state
// must avoid: a miss is the common case under eviction, so the miss path
// is as hot as a hit.
//
//adwise:zeroalloc
func ProbeLogsMisses(keys []uint64, degrees []int32, key uint64, missed []uint64) ([]uint64, int32) {
	mask := uint64(len(keys) - 1)
	for i := key & mask; ; i = (i + 1) & mask {
		d := degrees[i]
		if d == 0 {
			missed = append(missed, key) // want "append may grow the backing array"
			return missed, 0
		}
		if d > 0 && keys[i] == key {
			return missed, d
		}
	}
}

// EvictReports boxes each evicted key into an interface sink — eviction
// sweeps run under memory pressure, the worst time to allocate.
//
//adwise:zeroalloc
func EvictReports(degrees []int32, keys []uint64, threshold int32) {
	for i, d := range degrees {
		if d > 0 && d <= threshold {
			degrees[i] = -1
			sink(keys[i]) // want "concrete value passed as interface parameter boxes"
		}
	}
}
