package hotpathfix

import "math/bits"

// counters is a fixed-size stripe array, mirroring the metric package's
// shape.
type counters struct {
	vals [8]int64
}

// Inc is a compliant zero-alloc hot path: index arithmetic and stores
// only.
//
//adwise:zeroalloc
func (c *counters) Inc(i int, n int64) {
	c.vals[i&7] += n
}

// Lookup probes a preallocated table; pointers pass through interfaces
// without boxing, and sized makes are fine outside stamped functions.
//
//adwise:zeroalloc
func Lookup(table []int64, key uint64) (int64, bool) {
	i := key & uint64(len(table)-1)
	for {
		v := table[i]
		if v == 0 {
			return 0, false
		}
		if v == int64(key) {
			return v, true
		}
		i = (i + 1) & uint64(len(table)-1)
	}
}

// ScatterWords is a compliant word-scan kernel — the shape of the core
// replica-scan scoring path: walk set bits with math/bits and scatter
// through a preallocated index map into preallocated result slots. Index
// arithmetic and stores only, no closures, no growth.
//
//adwise:zeroalloc
func ScatterWords(scores []float64, partIdx []int32, words []uint64, addend float64) {
	for wi, wd := range words {
		base := wi << 6
		for wd != 0 {
			if idx := partIdx[base+bits.TrailingZeros64(wd)]; idx >= 0 {
				scores[idx] += addend
			}
			wd &= wd - 1
		}
	}
}

// ProbeTombstones is a compliant tombstone-aware lookup — the bounded
// vertex-state probe shape: skip dead slots (degree < 0), stop at the
// first empty slot, and report a miss as the zero value with a nil word
// slice. Misses allocate nothing; "unseen" is a return value, not an
// event.
//
//adwise:zeroalloc
func ProbeTombstones(keys []uint64, degrees []int32, words []uint64, wpe int, key uint64) (int32, []uint64) {
	mask := uint64(len(keys) - 1)
	for i := key & mask; ; i = (i + 1) & mask {
		d := degrees[i]
		if d == 0 {
			return 0, nil
		}
		if d > 0 && keys[i] == key {
			s := int(i) * wpe
			return d, words[s : s+wpe]
		}
	}
}

// ScatterMiss is a compliant miss-tolerant scatter: ranging over the nil
// word slice a miss returns simply runs zero iterations, so the kernel
// needs no branch and no allocation on the miss path.
//
//adwise:zeroalloc
func ScatterMiss(scores []float64, partIdx []int32, keys []uint64, degrees []int32, words []uint64, wpe int, key uint64, addend float64) {
	_, ws := ProbeTombstones(keys, degrees, words, wpe, key)
	for wi, wd := range ws {
		base := wi << 6
		for wd != 0 {
			if idx := partIdx[base+bits.TrailingZeros64(wd)]; idx >= 0 {
				scores[idx] += addend
			}
			wd &= wd - 1
		}
	}
}

// Unstamped is ordinary code: the rule only applies to stamped
// functions.
func Unstamped() []int {
	return append(make([]int, 0), 1, 2, 3)
}
