// Package clockfix is a lint fixture: positive and negative cases for
// the clockguard rule. It is excluded from normal builds (testdata) and
// analyzed only by the lint test harness.
package clockfix

import "time"

// Deadline reads the wall clock directly — the violation clockguard
// exists to catch.
func Deadline(d time.Duration) time.Time {
	start := time.Now() // want "time.Now reads the wall clock"
	return start.Add(d)
}

// Nap sleeps on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

// Elapsed uses the time.Since shorthand, which reads the clock too.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Cadence builds a raw ticker instead of going through clock.TickerClock.
func Cadence() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}
