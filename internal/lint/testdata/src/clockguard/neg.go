package clockfix

import (
	"time"

	"github.com/adwise-go/adwise/internal/clock"
)

// Stopwatch measures through an injected clock — the compliant shape.
// Pure time values (durations, arithmetic) never trip the rule.
func Stopwatch(clk clock.Clock, work func()) time.Duration {
	start := clk.Now()
	work()
	return clk.Now().Sub(start)
}

// Budget does duration arithmetic only; time.Duration is a value
// constructor, not a clock read.
func Budget(edges int64) time.Duration {
	return time.Duration(edges) * 20 * time.Nanosecond
}

// Waived reads the wall clock under a reasoned waiver, which suppresses
// the finding (and the reason keeps the directive rule quiet).
func Waived() time.Time {
	return time.Now() //adwise:allow clockguard fixture exercises a reasoned measurement-only waiver
}
