package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() { RegisterRule(maprange{}) }

// maprange enforces the schedule-invariance contract in the packages that
// compute or serve assignments (internal/core, internal/partition,
// internal/serve): Go map iteration order is deliberately randomized, so
// a map-range loop whose body writes state visible outside the loop —
// assignments, scores, appended output, channel sends, printed output —
// makes results depend on iteration order and breaks the "any worker
// count → identical assignments" guarantee. Pure read loops, and loops
// that only build state local to the body, are fine.
//
// The check is write-based, not purity-based: a body that mutates outer
// state only through method calls is invisible to it — treat any map
// iteration in these packages as suspect when reviewing.
type maprange struct{}

// maprangeScoped are the package path suffixes the rule guards.
var maprangeScoped = []string{"internal/core", "internal/partition", "internal/serve"}

func (maprange) Name() string { return "maprange" }

func (maprange) Doc() string {
	return "no map iteration writing assignments, scores, or ordered output in core/partition/serve (schedule invariance)"
}

func (maprange) Check(pkg *Package) []Finding {
	inScope := fixtureFor(pkg, "maprange")
	for _, s := range maprangeScoped {
		inScope = inScope || pathHasSuffix(pkg.Path, s)
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, checkMapRangeBody(pkg, f, rs)...)
			return true
		})
	}
	return out
}

// checkMapRangeBody flags order-dependent writes inside one map-range
// body. A write is order-dependent when its target is rooted at a
// variable declared outside the range statement — with one carve-out:
// `outer[k] = v` where k is exactly the range key is a per-key store,
// deterministic regardless of visit order.
func checkMapRangeBody(pkg *Package, file *ast.File, rs *ast.RangeStmt) []Finding {
	var out []Finding
	keyID, _ := rs.Key.(*ast.Ident)
	outer := func(e ast.Expr) *ast.Ident {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return nil
		}
		if declaredWithin(pkg, id, rs.Pos(), rs.End()) {
			return nil
		}
		return id
	}
	keyObj := func() types.Object {
		if keyID == nil {
			return nil
		}
		if o := pkg.Info.Defs[keyID]; o != nil {
			return o
		}
		return pkg.Info.Uses[keyID]
	}()
	keyedStore := func(lhs ast.Expr, tok token.Token) bool {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok || tok != token.ASSIGN || keyID == nil {
			return false
		}
		id, ok := ix.Index.(*ast.Ident)
		if !ok {
			return false
		}
		if o := pkg.Info.Uses[id]; o != nil || keyObj != nil {
			return o == keyObj
		}
		return id.Name == keyID.Name // syntactic fallback without type info
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if keyedStore(lhs, st.Tok) {
					continue
				}
				if id := outer(lhs); id != nil {
					out = append(out, finding(pkg, "maprange", st.Pos(),
						"write to "+id.Name+" inside map iteration makes the result depend on randomized map order; iterate a stable key sequence instead"))
				}
			}
		case *ast.IncDecStmt:
			if id := outer(st.X); id != nil {
				out = append(out, finding(pkg, "maprange", st.Pos(),
					"update of "+id.Name+" inside map iteration makes the result depend on randomized map order; iterate a stable key sequence instead"))
			}
		case *ast.SendStmt:
			out = append(out, finding(pkg, "maprange", st.Pos(),
				"channel send inside map iteration emits values in randomized map order; iterate a stable key sequence instead"))
		case *ast.CallExpr:
			if sel, ok := unwrapIndex(st.Fun).(*ast.SelectorExpr); ok &&
				calleePkgPath(pkg, file, sel.X) == "fmt" {
				out = append(out, finding(pkg, "maprange", st.Pos(),
					"fmt output inside map iteration prints in randomized map order; iterate a stable key sequence instead"))
			}
		}
		return true
	})
	return out
}
