// Package lint is the contracts-as-code analyzer suite of the
// reproduction: every invariant the ARCHITECTURE.md "Invariants" section
// documents in prose — schedule-invariant scoring, injected clocks,
// reproducible randomness, the stream error contract, zero-alloc hot
// paths — has a machine-checked rule here, run in CI next to vet and the
// race job (see cmd/adwise-lint).
//
// The suite is stdlib-only (go/parser + go/ast + go/types with a
// from-source importer) so `go run ./cmd/adwise-lint ./...` works on a
// bare toolchain. Findings carry file:line:col positions; a finding can
// be suppressed in place with a reasoned directive:
//
//	//adwise:allow <rule> <reason>
//
// on the flagged line or the line directly above it. A suppression
// without a reason — or one that suppresses nothing — is itself a
// finding, so the waiver surface stays as auditable as the rules.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"sync"
)

// Finding is one diagnostic: a rule violation or a directive problem.
type Finding struct {
	// Rule names the rule that fired ("clockguard", ...); directive
	// problems report as "directive".
	Rule string
	// Pos locates the finding.
	Pos token.Position
	// Msg explains it.
	Msg string
}

// String renders the canonical "file:line:col: [rule] msg" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Rule is one invariant checker. Check runs over a single package and
// returns raw findings; suppression directives are applied by the engine
// afterwards, so rules never reason about allows.
type Rule interface {
	// Name is the registry key and the token named in allow directives.
	Name() string
	// Doc is a one-line description of the contract the rule enforces.
	Doc() string
	// Check analyzes one package.
	Check(pkg *Package) []Finding
}

var (
	ruleMu   sync.RWMutex
	ruleReg  = make(map[string]Rule)
	ruleList []Rule
)

// RegisterRule adds a rule to the suite. It panics on duplicates:
// registration happens in this package's init and a collision is a
// programming error.
func RegisterRule(r Rule) {
	ruleMu.Lock()
	defer ruleMu.Unlock()
	if _, dup := ruleReg[r.Name()]; dup {
		panic(fmt.Sprintf("lint: rule %q registered twice", r.Name()))
	}
	ruleReg[r.Name()] = r
	ruleList = append(ruleList, r)
	sort.Slice(ruleList, func(i, j int) bool { return ruleList[i].Name() < ruleList[j].Name() })
}

// Rules returns the registered rules in name order.
func Rules() []Rule {
	ruleMu.RLock()
	defer ruleMu.RUnlock()
	return append([]Rule(nil), ruleList...)
}

// knownRule reports whether name is a registered rule.
func knownRule(name string) bool {
	ruleMu.RLock()
	defer ruleMu.RUnlock()
	_, ok := ruleReg[name]
	return ok
}

// Run loads the packages matching patterns (relative to the module
// containing dir) and checks every registered rule over them, returning
// the unsuppressed findings in (file, line, column, rule) order. An empty
// pattern list means "./...".
func Run(dir string, patterns []string) ([]Finding, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	return RunLoader(l, patterns)
}

// RunLoader is Run over a caller-owned Loader, letting tests share one
// type-checked stdlib across many analysis passes.
func RunLoader(l *Loader, patterns []string) ([]Finding, error) {
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, CheckPackage(pkg)...)
	}
	SortFindings(out)
	return out, nil
}

// CheckPackage runs every registered rule over one package and applies
// its suppression directives.
func CheckPackage(pkg *Package) []Finding {
	var raw []Finding
	for _, r := range Rules() {
		raw = append(raw, r.Check(pkg)...)
	}
	return applyDirectives(pkg, raw)
}

// SortFindings orders findings by (file, line, column, rule) in place.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
