package lint

import (
	"go/ast"
	"strings"
)

func init() { RegisterRule(randguard{}) }

// randguard enforces the reproducibility invariant on randomness: inside
// internal/, any use of math/rand or math/rand/v2 must construct an
// explicitly seeded local generator (rand.New(rand.NewPCG(seed, ...))).
// The package-level convenience functions draw from the shared,
// process-seeded global RNG, which makes runs — stream shuffles, tie
// breaks, generated graphs — unreproducible and racy across goroutines.
type randguard struct{}

// randConstructors are the math/rand selectors that build local
// generator state instead of touching the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

func (randguard) Name() string { return "randguard" }

func (randguard) Doc() string {
	return "no math/rand global-state functions in internal/; seed a local rand.New(...) so runs are reproducible"
}

func (randguard) Check(pkg *Package) []Finding {
	if !strings.Contains(pkg.Path, "/internal/") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unwrapIndex(call.Fun).(*ast.SelectorExpr)
			if !ok || randConstructors[sel.Sel.Name] {
				return true
			}
			p := calleePkgPath(pkg, file, sel.X)
			if p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			out = append(out, finding(pkg, "randguard", call.Pos(),
				"rand."+sel.Sel.Name+" draws from the shared global RNG; use an explicitly seeded local instance (rand.New(rand.NewPCG(seed, ...)))"))
			return true
		})
	}
	return out
}
