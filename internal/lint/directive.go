package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar (documented in ARCHITECTURE.md "Contracts as lint"):
//
//	//adwise:allow <rule> <reason>
//	    Suppresses findings of <rule> on the same line or the line
//	    directly below (i.e. a trailing comment or a standalone comment
//	    above the flagged statement). The reason is mandatory: an allow
//	    without one is reported as a "directive" finding, and so is an
//	    allow that suppresses nothing or names an unknown rule.
//
//	//adwise:zeroalloc
//	    On a function's doc comment: opts the function into the hotpath
//	    rule's zero-allocation checks. Anywhere else it is a "directive"
//	    finding (a floating marker guards nothing).
const (
	allowPrefix     = "//adwise:allow"
	zeroallocMarker = "//adwise:zeroalloc"
)

// allowDirective is one parsed //adwise:allow comment.
type allowDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// collectAllows parses every allow directive in the package.
func collectAllows(pkg *Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				// Fixture affordance: a trailing `// want "..."` expectation
				// (the analyzer test harness) is not part of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := &allowDirective{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.rule = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// zeroallocFuncs returns the function declarations carrying the zeroalloc
// marker in their doc comment, plus directive findings for markers that
// are not attached to any function.
func zeroallocFuncs(pkg *Package) (map[*ast.FuncDecl]bool, []Finding) {
	marked := make(map[*ast.FuncDecl]bool)
	attached := make(map[token.Pos]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), zeroallocMarker) {
					marked[fd] = true
					attached[c.Pos()] = true
				}
			}
		}
	}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), zeroallocMarker) && !attached[c.Pos()] {
					findings = append(findings, Finding{
						Rule: "directive",
						Pos:  pkg.Fset.Position(c.Pos()),
						Msg:  "//adwise:zeroalloc is not attached to a function declaration's doc comment and guards nothing",
					})
				}
			}
		}
	}
	return marked, findings
}

// applyDirectives filters raw findings through the package's allow
// directives and appends directive-hygiene findings: unexplained allows,
// unused allows, unknown rule names, and floating zeroalloc markers.
func applyDirectives(pkg *Package, raw []Finding) []Finding {
	allows := collectAllows(pkg)
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, d := range allows {
			if d.rule == f.Rule && d.pos.Filename == f.Pos.Filename &&
				(d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range allows {
		switch {
		case d.rule == "":
			out = append(out, Finding{Rule: "directive", Pos: d.pos,
				Msg: "//adwise:allow names no rule; write //adwise:allow <rule> <reason>"})
		case !knownRule(d.rule):
			out = append(out, Finding{Rule: "directive", Pos: d.pos,
				Msg: "//adwise:allow names unknown rule \"" + d.rule + "\""})
		case d.reason == "":
			out = append(out, Finding{Rule: "directive", Pos: d.pos,
				Msg: "suppression of " + d.rule + " without a reason; explain why the invariant does not apply here"})
		case !d.used:
			out = append(out, Finding{Rule: "directive", Pos: d.pos,
				Msg: "suppression of " + d.rule + " suppresses nothing; remove the stale directive"})
		}
	}
	return out
}
