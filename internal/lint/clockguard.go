package lint

import (
	"go/ast"
)

func init() { RegisterRule(clockguard{}) }

// clockguard enforces the injected-clock invariant: core logic never
// reads the wall clock directly, it goes through an injected clock.Clock
// (internal/clock), so every latency-driven control loop — the ADWISE
// adaptive window condition, the metric flush cadence — is deterministic
// under a fake clock. Main packages (cmd/*, examples/*) are exempt: they
// are the composition roots that construct the real clock, and their
// wall-clock reads are operator-facing measurement, not logic.
type clockguard struct{}

// clockBanned is the set of time-package functions that read or wait on
// the wall clock. Pure value constructors (time.Duration, time.Date,
// time.Unix) stay legal everywhere.
var clockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func (clockguard) Name() string { return "clockguard" }

func (clockguard) Doc() string {
	return "no direct time.Now/Sleep/ticker calls outside internal/clock and main packages; inject clock.Clock"
}

func (clockguard) Check(pkg *Package) []Finding {
	if pkg.Name == "main" || pathHasSuffix(pkg.Path, "internal/clock") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unwrapIndex(call.Fun).(*ast.SelectorExpr)
			if !ok || !clockBanned[sel.Sel.Name] {
				return true
			}
			if calleePkgPath(pkg, file, sel.X) != "time" {
				return true
			}
			out = append(out, finding(pkg, "clockguard", call.Pos(),
				"time."+sel.Sel.Name+" reads the wall clock in core logic; thread an injected clock.Clock through this path (internal/clock)"))
			return true
		})
	}
	return out
}
