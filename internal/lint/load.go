package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed — and, when possible, type-checked — package of
// the module under analysis. Rules receive exactly this.
type Package struct {
	// Path is the import path ("github.com/adwise-go/adwise/internal/core").
	Path string
	// Name is the package name ("core", "main", ...).
	Name string
	// Dir is the absolute directory.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the build-selected non-test files, parsed with comments.
	Files []*ast.File
	// Types is the type-checked package, nil when type checking failed
	// outright. Partial failure (some imports unresolved) still yields a
	// package; rules must tolerate missing type info.
	Types *types.Package
	// Info holds use/def/type resolution for Files. Always non-nil, but
	// entries exist only where type checking succeeded.
	Info *types.Info
	// TypeErrs records type-checking problems, for -v style reporting.
	// They do not stop analysis: rules degrade to syntactic checks.
	TypeErrs []error
}

// Loader loads and type-checks packages of one module plus the standard
// library, entirely from source: no export data, no subprocesses, no
// dependencies outside the stdlib — the analyzer stays `go run`-able
// anywhere the toolchain is.
type Loader struct {
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset  *token.FileSet
	ctx   build.Context
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg      *Package // nil for dependency-only loads
	tpkg     *types.Package
	err      error
	checking bool // cycle guard
}

// NewLoader returns a Loader rooted at the directory containing go.mod,
// searching upward from dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Cgo-free view: every package in this module — and every stdlib
	// package it imports — has a pure-Go configuration, and skipping cgo
	// keeps the loader free of subprocesses.
	ctx.CgoEnabled = false
	ctx.GOOS = runtime.GOOS
	ctx.GOARCH = runtime.GOARCH
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		ctx:        ctx,
		cache:      make(map[string]*loadEntry),
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves patterns to module packages, parses and type-checks them,
// and returns them in deterministic (import path) order. Supported
// patterns: "./..." (whole module), "./dir/..." (subtree), and "./dir" or
// "dir" (single package directory). testdata, vendor, and dot-directories
// are skipped by pattern expansion but loadable when named explicitly —
// that is how the rule fixtures get analyzed.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand resolves one pattern to package directories under the module.
func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	st, err := os.Stat(base)
	if err != nil || !st.IsDir() {
		return nil, fmt.Errorf("lint: pattern %q does not name a directory under %s", pat, l.ModuleRoot)
	}
	if !recursive {
		if !l.hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no buildable Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir holds at least one buildable non-test Go
// file under the loader's build context.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.ctx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, returning a fully
// populated Package for analysis.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	ent := l.check(path, dir, true)
	if ent.err != nil && ent.pkg == nil {
		return nil, fmt.Errorf("lint: loading %s: %w", path, ent.err)
	}
	return ent.pkg, nil
}

// dirFor resolves an import path to a source directory: module packages
// map into the module tree, everything else is looked up in GOROOT/src.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	dir := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (not in module %s, not in GOROOT)", path, l.ModulePath)
}

// Import implements types.Importer over the same cache the analyzed
// packages use, so one Loader type-checks each package at most once.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	ent := l.check(path, dir, false)
	if ent.tpkg == nil {
		return nil, ent.err
	}
	return ent.tpkg, nil
}

// check parses and type-checks one package directory, memoized by import
// path. full selects whether the caller needs a *Package with AST and
// resolution Info (the analyzed set) or only the *types.Package
// (dependencies). A dependency-only entry is upgraded when later loaded
// in full.
func (l *Loader) check(path, dir string, full bool) *loadEntry {
	if ent, ok := l.cache[path]; ok {
		if ent.checking {
			return &loadEntry{err: fmt.Errorf("import cycle through %q", path)}
		}
		if !full || ent.pkg != nil {
			return ent
		}
		// Upgrade: re-check with Info. Rare (a dependency later named on
		// the command line), and still one extra pass at most.
		delete(l.cache, path)
	}
	ent := &loadEntry{checking: true}
	l.cache[path] = ent

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		ent.err = err
		ent.checking = false
		return ent
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ent.err = err
			ent.checking = false
			return ent
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ent.err = fmt.Errorf("no buildable Go files in %s", dir)
		ent.checking = false
		return ent
	}

	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:       types.SizesFor("gc", l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	ent.checking = false
	ent.tpkg = tpkg
	if err != nil && tpkg == nil {
		ent.err = err
		if !full {
			return ent
		}
	}
	if full {
		ent.pkg = &Package{
			Path:     path,
			Name:     files[0].Name.Name,
			Dir:      dir,
			Fset:     l.fset,
			Files:    files,
			Types:    tpkg,
			Info:     info,
			TypeErrs: typeErrs,
		}
	}
	return ent
}
