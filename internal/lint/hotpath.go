package lint

import (
	"go/ast"
	"go/types"
)

func init() { RegisterRule(hotpath{}) }

// hotpath enforces the zero-allocation contract on functions stamped
// with //adwise:zeroalloc in their doc comment — the metric
// Counter/Gauge/Timer recording paths and the serve lookup paths whose
// AllocsPerRun tests pin 0 allocs. Inside a stamped function the rule
// flags the constructs that allocate or are about to: fmt calls, func
// literals capturing outer variables (the closure header escapes),
// concrete non-pointer values converted or passed to interface types
// (boxing), map/chan make without a capacity hint, and append (the
// backing array may grow). Everything the rule flags is visible at the
// call site, so a violation reads as "this line can allocate".
type hotpath struct{}

func (hotpath) Name() string { return "hotpath" }

func (hotpath) Doc() string {
	return "//adwise:zeroalloc functions may not contain fmt calls, capturing closures, interface boxing, capacity-less make, or append"
}

func (hotpath) Check(pkg *Package) []Finding {
	marked, out := zeroallocFuncs(pkg)
	if len(marked) == 0 {
		return out
	}
	eachFunc(pkg, func(file *ast.File, fd *ast.FuncDecl) {
		if marked[fd] {
			out = append(out, checkZeroAlloc(pkg, file, fd)...)
		}
	})
	return out
}

func checkZeroAlloc(pkg *Package, file *ast.File, fd *ast.FuncDecl) []Finding {
	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, finding(pkg, "hotpath", n.Pos(), msg+" in //adwise:zeroalloc function "+fd.Name.Name))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if cap := capturedVar(pkg, e, fd); cap != "" {
				flag(e, "func literal captures "+cap+"; the closure allocates")
			}
		case *ast.CallExpr:
			out = append(out, checkZeroAllocCall(pkg, file, fd, e)...)
		}
		return true
	})
	return out
}

// capturedVar returns the name of a variable the func literal captures
// from its enclosing function, or "".
func capturedVar(pkg *Package, lit *ast.FuncLit, fd *ast.FuncDecl) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration but outside
		// the literal itself.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			name = id.Name
		}
		return true
	})
	return name
}

func checkZeroAllocCall(pkg *Package, file *ast.File, fd *ast.FuncDecl, call *ast.CallExpr) []Finding {
	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, finding(pkg, "hotpath", n.Pos(), msg+" in //adwise:zeroalloc function "+fd.Name.Name))
	}
	fun := unwrapIndex(call.Fun)

	// fmt anywhere in a zero-alloc path: formatting allocates.
	if sel, ok := fun.(*ast.SelectorExpr); ok && calleePkgPath(pkg, file, sel.X) == "fmt" {
		flag(call, "fmt."+sel.Sel.Name+" formats (and allocates)")
		return out
	}

	// Builtins: make without capacity, append, new. An unresolved
	// identifier of these names is treated as the builtin — the safe
	// reading when type information is missing.
	if id, ok := fun.(*ast.Ident); ok && (isBuiltin(pkg, id) || pkg.Info.Uses[id] == nil) {
		switch id.Name {
		case "make":
			if len(call.Args) == 1 {
				flag(call, "make without a capacity hint allocates and regrows")
			}
			return out
		case "append":
			flag(call, "append may grow the backing array; presize and index instead")
			return out
		case "new":
			flag(call, "new allocates")
			return out
		}
	}

	// Interface boxing: explicit conversion to an interface type, or a
	// concrete non-pointer argument passed as an interface parameter.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(types.Unalias(tv.Type)) && len(call.Args) == 1 {
			if at, ok := pkg.Info.Types[call.Args[0]]; ok && at.Type != nil && boxes(at.Type) {
				flag(call, "conversion to interface type boxes a concrete value")
			}
		}
		return out
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature); ok {
			out = append(out, checkBoxingArgs(pkg, fd, call, sig)...)
		}
	}
	return out
}

// isBuiltin reports whether expr resolves to a language builtin.
func isBuiltin(pkg *Package, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// boxes reports whether storing a value of type t in an interface
// allocates: true for concrete non-pointer types (the value escapes to
// the heap to back the interface data word).
func boxes(t types.Type) bool {
	u := types.Unalias(t).Underlying()
	switch u.(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return false
	case *types.Basic:
		b := u.(*types.Basic)
		return b.Kind() != types.UntypedNil && b.Kind() != types.Invalid
	}
	return true
}

// checkBoxingArgs flags concrete non-pointer arguments passed to
// interface-typed parameters (including variadic ...any tails).
func checkBoxingArgs(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature) []Finding {
	var out []Finding
	params := sig.Params()
	if params == nil {
		return nil
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 && !call.Ellipsis.IsValid() {
			if sl, ok := types.Unalias(params.At(params.Len() - 1).Type()).Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type() // with s..., the slice itself passes: not boxing
		}
		if pt == nil || !types.IsInterface(types.Unalias(pt)) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || !boxes(at.Type) {
			continue
		}
		out = append(out, finding(pkg, "hotpath", arg.Pos(),
			"concrete value passed as interface parameter boxes (allocates) in //adwise:zeroalloc function "+fd.Name.Name))
	}
	return out
}
