package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// This file holds the helpers shared by the rule implementations. Rules
// prefer go/types resolution and fall back to syntax (import names) when
// type information is missing, so a package that fails to type-check is
// still linted rather than silently skipped.

// finding builds a Finding at pos.
func finding(pkg *Package, rule string, pos token.Pos, msg string) Finding {
	return Finding{Rule: rule, Pos: pkg.Fset.Position(pos), Msg: msg}
}

// calleePkgPath resolves the package imported as the base of a selector
// call (time.Now → "time"). It returns "" when the base is not a package
// identifier. file supplies the syntactic fallback scope.
func calleePkgPath(pkg *Package, file *ast.File, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved, but to a variable or type — not a package
	}
	// Syntactic fallback: match the file's import specs by name. Local
	// shadowing is invisible here, which is acceptable — the fallback only
	// runs when type checking already failed.
	for _, spec := range file.Imports {
		ipath := strings.Trim(spec.Path.Value, `"`)
		name := path.Base(ipath)
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name == id.Name {
			return ipath
		}
	}
	return ""
}

// unwrapIndex strips generic instantiation (rand.N[int64]) off a callee
// expression so selector matching sees the underlying function.
func unwrapIndex(fun ast.Expr) ast.Expr {
	for {
		switch e := fun.(type) {
		case *ast.IndexExpr:
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		case *ast.ParenExpr:
			fun = e.X
		default:
			return fun
		}
	}
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression
// (a, a.b.c, a[i].b, *a → a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the identifier's object is declared
// inside [lo, hi). Unresolved identifiers report false (treated as outer:
// the conservative answer for capture/write detection).
func declaredWithin(pkg *Package, id *ast.Ident, lo, hi token.Pos) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() < hi
}

// pathHasSuffix reports whether import path p is exactly suffix or ends
// with "/"+suffix — matching "internal/clock" against any module prefix.
func pathHasSuffix(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// fixtureFor reports whether pkg is a lint test fixture for the named
// rule (testdata/src/<rule>/...), which scoped rules treat as in scope so
// fixtures exercise them without living inside the guarded packages.
func fixtureFor(pkg *Package, rule string) bool {
	return strings.Contains(pkg.Path, "lint/testdata/src/"+rule)
}

// eachFunc invokes fn for every function declaration with a body in the
// package, passing the enclosing file.
func eachFunc(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
