package lint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader type-checks the module (and the stdlib slice it imports)
// once for the whole test binary; every test then analyzes against the
// same cache.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// want is one `// want "substring"` expectation in a fixture file.
type want struct {
	file string
	line int
	text string
}

// collectWants extracts the expectations from a fixture package.
func collectWants(pkg *Package) []want {
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, `// want "`)
				if i < 0 {
					continue
				}
				rest := text[i+len(`// want "`):]
				j := strings.Index(rest, `"`)
				if j < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, want{file: pos.Filename, line: pos.Line, text: rest[:j]})
			}
		}
	}
	return out
}

// fixtureDirs lists the fixture package directories under testdata/src.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading fixture root: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture directories under testdata/src")
	}
	return dirs
}

// TestFixtures runs the whole suite over every fixture package and
// checks findings against the `// want` expectations: each want must be
// hit by a finding on its line, and each finding must be expected.
func TestFixtures(t *testing.T) {
	l := testLoader(t)
	for _, name := range fixtureDirs(t) {
		t.Run(name, func(t *testing.T) {
			pattern := "./internal/lint/testdata/src/" + name
			pkgs, err := l.Load([]string{pattern})
			if err != nil {
				t.Fatalf("loading fixture %s: %v", name, err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("fixture %s loaded %d packages, want 1", name, len(pkgs))
			}
			pkg := pkgs[0]
			if len(pkg.TypeErrs) > 0 {
				t.Errorf("fixture %s has type errors (fixtures must compile): %v", name, pkg.TypeErrs)
			}
			findings := CheckPackage(pkg)
			wants := collectWants(pkg)

			matched := make([]bool, len(findings))
			for _, w := range wants {
				hit := false
				for i, f := range findings {
					if f.Pos.Filename == w.file && f.Pos.Line == w.line && strings.Contains(f.Msg, w.text) {
						matched[i] = true
						hit = true
					}
				}
				if !hit {
					t.Errorf("%s:%d: expected finding containing %q, got none", filepath.Base(w.file), w.line, w.text)
				}
			}
			for i, f := range findings {
				if !matched[i] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
		})
	}
}

// TestEveryRuleHasFixtures is the meta-test: each registered rule must
// ship at least one positive fixture file (with want expectations) and
// one negative fixture file (expected clean), so a rule cannot silently
// rot into never firing — or always firing.
func TestEveryRuleHasFixtures(t *testing.T) {
	for _, r := range Rules() {
		dir := filepath.Join("testdata", "src", r.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("rule %q has no fixture directory %s", r.Name(), dir)
			continue
		}
		pos, neg := false, false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), `// want "`) {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos {
			t.Errorf("rule %q has no positive fixture (a file with // want expectations) in %s", r.Name(), dir)
		}
		if !neg {
			t.Errorf("rule %q has no negative fixture (a want-free file expected clean) in %s", r.Name(), dir)
		}
	}
}

// TestLintClean is the self-check regression test: the tree must lint
// clean, so a new violation fails `go test ./...` before it ever reaches
// CI's adwise-lint step.
func TestLintClean(t *testing.T) {
	findings, err := RunLoader(testLoader(t), []string{"./..."})
	if err != nil {
		t.Fatalf("running suite over module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d finding(s): fix them or add a reasoned //adwise:allow", len(findings))
	}
}

// TestRuleRegistry pins the suite's composition: the five contract rules
// must all be registered.
func TestRuleRegistry(t *testing.T) {
	want := []string{"clockguard", "hotpath", "maprange", "randguard", "streamerr"}
	rules := Rules()
	var got []string
	for _, r := range rules {
		got = append(got, r.Name())
		if r.Doc() == "" {
			t.Errorf("rule %q has no doc line", r.Name())
		}
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("registered rules = %v, want %v", got, want)
	}
}
