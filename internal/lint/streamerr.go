package lint

import (
	"go/ast"
	"go/types"
)

func init() { RegisterRule(streamerr{}) }

// streamerr enforces the stream error contract (PR 3): a fallible stream
// exhausts early and parks its error in Err(), so exhaustion with a
// pending Err is a failure, never a short success. Any function that
// drains a stream to exhaustion — a NextBatch or Next call inside a loop
// — must therefore consult Err before returning; otherwise a truncated
// file silently partitions as a smaller graph.
//
// Stream plumbing is exempt: methods named Next or NextBatch are
// themselves the wrappers that forward error state instead of checking
// it (their callers hold the contract).
type streamerr struct{}

func (streamerr) Name() string { return "streamerr" }

func (streamerr) Doc() string {
	return "functions draining a stream.Batcher to exhaustion must check Err() before returning"
}

func (streamerr) Check(pkg *Package) []Finding {
	var out []Finding
	eachFunc(pkg, func(file *ast.File, fd *ast.FuncDecl) {
		if fd.Name.Name == "Next" || fd.Name.Name == "NextBatch" {
			return
		}
		drainPos := drainCallInLoop(pkg, fd.Body)
		if drainPos == nil {
			return
		}
		if checksErr(pkg, fd.Body) {
			return
		}
		out = append(out, finding(pkg, "streamerr", drainPos.Pos(),
			fd.Name.Name+" drains a stream to exhaustion without checking Err(); a truncated stream would pass as a short success"))
	})
	return out
}

// drainCallInLoop returns a NextBatch/Next stream call nested inside a
// loop within body, or nil. NextBatch is matched by name (the name is
// unique to the stream contract); Next only when type information proves
// it is the stream package's Next, since the bare name is ubiquitous.
// Closures count as part of their enclosing function: a drain loop built
// inside a func literal still obliges the function to check Err.
func drainCallInLoop(pkg *Package, body *ast.BlockStmt) ast.Node {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Search the whole loop — init, condition, post, and body all
			// count as "inside the loop".
		default:
			return true
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && isStreamDrainCall(pkg, call) {
				found = call
				return false
			}
			return found == nil
		})
		return found == nil
	})
	return found
}

// isStreamDrainCall reports whether call pulls edges off a stream:
// any X.NextBatch(...) or stream.NextBatch(...), or a type-resolved
// stream.Stream Next method call.
func isStreamDrainCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := unwrapIndex(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "NextBatch":
		return true
	case "Next":
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			return pathHasSuffix(fn.Pkg().Path(), "internal/stream")
		}
	}
	return false
}

// checksErr reports whether body contains an Err() consultation: a call
// to any .Err() method or to stream.Err(s).
func checksErr(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unwrapIndex(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
			found = true
			return false
		}
		return true
	})
	return found
}
