// Package hashx holds the one 64-bit mixing function shared by every
// hashing site in the tree — the vertex cache, the serving index, the
// hashing partitioners, and the engine's master placement. Vertex ids are
// dense small integers, so they need real mixing before being masked or
// reduced; keeping a single implementation stops the copies from
// drifting.
package hashx

// SplitMix64 is the SplitMix64 finaliser: a fast, well-distributed
// 64-bit mix.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
