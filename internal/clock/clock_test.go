package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Errorf("real clock went backwards: %v then %v", a, b)
	}
}

func TestFakeClockStartsAtEpoch(t *testing.T) {
	epoch := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(epoch)
	if got := f.Now(); !got.Equal(epoch) {
		t.Errorf("Now() = %v, want %v", got, epoch)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.Advance(3 * time.Second)
	if got := f.Now(); !got.Equal(time.Unix(3, 0)) {
		t.Errorf("Now() after Advance = %v, want %v", got, time.Unix(3, 0))
	}
}

func TestFakeClockStep(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.SetStep(time.Second)
	t0 := f.Now()
	t1 := f.Now()
	t2 := f.Now()
	if d := t1.Sub(t0); d != time.Second {
		t.Errorf("step between reads = %v, want 1s", d)
	}
	if d := t2.Sub(t1); d != time.Second {
		t.Errorf("step between reads = %v, want 1s", d)
	}
	f.SetStep(0)
	t3 := f.Now()
	t4 := f.Now()
	if !t4.Equal(t3) {
		t.Errorf("clock moved with zero step: %v then %v", t3, t4)
	}
}

func TestFakeTickerFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()

	select {
	case tick := <-tk.C():
		t.Fatalf("ticker fired at %v before any Advance", tick)
	default:
	}

	f.Advance(time.Second)
	select {
	case tick := <-tk.C():
		if !tick.Equal(time.Unix(1, 0)) {
			t.Errorf("first tick at %v, want %v", tick, time.Unix(1, 0))
		}
	default:
		t.Fatal("no tick after advancing one interval")
	}

	// A sub-interval advance must not fire.
	f.Advance(500 * time.Millisecond)
	select {
	case tick := <-tk.C():
		t.Fatalf("ticker fired at %v after a half-interval advance", tick)
	default:
	}

	// Completing the second interval fires the second tick.
	f.Advance(500 * time.Millisecond)
	select {
	case tick := <-tk.C():
		if !tick.Equal(time.Unix(2, 0)) {
			t.Errorf("second tick at %v, want %v", tick, time.Unix(2, 0))
		}
	default:
		t.Fatal("no tick after completing the second interval")
	}
}

func TestFakeTickerDropsMissedTicks(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()

	// Ten intervals pass with nobody receiving: exactly one tick is
	// pending (time.Ticker semantics), and the ticker re-arms past now.
	f.Advance(10 * time.Second)
	f.Advance(10 * time.Second)
	got := 0
	for {
		select {
		case <-tk.C():
			got++
			continue
		default:
		}
		break
	}
	if got != 1 {
		t.Fatalf("%d ticks pending after 20 unconsumed intervals, want 1", got)
	}

	// The next interval after catch-up fires normally.
	f.Advance(time.Second)
	select {
	case tick := <-tk.C():
		if !tick.Equal(time.Unix(21, 0)) {
			t.Errorf("post-catch-up tick at %v, want %v", tick, time.Unix(21, 0))
		}
	default:
		t.Fatal("no tick after catch-up interval")
	}
}

func TestFakeTickerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case tick := <-tk.C():
		t.Fatalf("stopped ticker fired at %v", tick)
	default:
	}
}

func TestRealTicker(t *testing.T) {
	var c Real
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never fired")
	}
}

func TestFakeClockConcurrentUse(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.SetStep(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Now()
			}
		}()
	}
	wg.Wait()
	// 8000 reads at 1ms auto-step each; the verification read observes the
	// accumulated 8000ms before stepping itself.
	if got := f.Now(); got.Sub(time.Unix(0, 0)) != 8000*time.Millisecond {
		t.Errorf("clock drifted under concurrency: %v", got.Sub(time.Unix(0, 0)))
	}
}
