package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Errorf("real clock went backwards: %v then %v", a, b)
	}
}

func TestFakeClockStartsAtEpoch(t *testing.T) {
	epoch := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(epoch)
	if got := f.Now(); !got.Equal(epoch) {
		t.Errorf("Now() = %v, want %v", got, epoch)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.Advance(3 * time.Second)
	if got := f.Now(); !got.Equal(time.Unix(3, 0)) {
		t.Errorf("Now() after Advance = %v, want %v", got, time.Unix(3, 0))
	}
}

func TestFakeClockStep(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.SetStep(time.Second)
	t0 := f.Now()
	t1 := f.Now()
	t2 := f.Now()
	if d := t1.Sub(t0); d != time.Second {
		t.Errorf("step between reads = %v, want 1s", d)
	}
	if d := t2.Sub(t1); d != time.Second {
		t.Errorf("step between reads = %v, want 1s", d)
	}
	f.SetStep(0)
	t3 := f.Now()
	t4 := f.Now()
	if !t4.Equal(t3) {
		t.Errorf("clock moved with zero step: %v then %v", t3, t4)
	}
}

func TestFakeClockConcurrentUse(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	f.SetStep(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Now()
			}
		}()
	}
	wg.Wait()
	// 8000 reads at 1ms auto-step each; the verification read observes the
	// accumulated 8000ms before stepping itself.
	if got := f.Now(); got.Sub(time.Unix(0, 0)) != 8000*time.Millisecond {
		t.Errorf("clock drifted under concurrency: %v", got.Sub(time.Unix(0, 0)))
	}
}
