// Package clock abstracts time so that latency-driven control loops — in
// particular the ADWISE adaptive window condition (C2) — can be tested
// deterministically with a fake clock and run in production against the
// real one.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Ticker delivers ticks at a fixed interval, like time.Ticker: slow
// receivers miss ticks rather than queueing them.
type Ticker interface {
	// C returns the tick delivery channel.
	C() <-chan time.Time
	// Stop ends tick delivery. It does not close the channel.
	Stop()
}

// TickerClock is a Clock that can also drive periodic work. Real tickers
// fire on the wall clock; Fake tickers fire from Advance, so control loops
// built on a TickerClock (the metric flusher's cadence, for one) are
// deterministic in tests.
type TickerClock interface {
	Clock
	// NewTicker returns a ticker firing every d. It panics if d <= 0,
	// matching time.NewTicker.
	NewTicker(d time.Duration) Ticker
}

// Real is a Clock backed by the system wall clock. The zero value is ready
// to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// NewTicker implements TickerClock via time.NewTicker.
func (Real) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Fake is a manually advanced Clock for tests. The zero value starts at the
// zero time; use NewFake to pick an epoch. Fake is safe for concurrent use.
type Fake struct {
	mu  sync.Mutex
	now time.Time
	// Step, if non-zero, is added to the clock on every Now call, modelling
	// work that takes a fixed amount of time per observation.
	step time.Duration
	// tickers holds the live fake tickers; Advance fires them. The auto
	// step applied by Now never fires tickers — only Advance does, so tick
	// delivery is always an explicit act of the test.
	tickers []*fakeTicker
}

// NewFake returns a Fake clock reading t.
func NewFake(t time.Time) *Fake {
	return &Fake{now: t}
}

// Now implements Clock. If a step is configured, the clock auto-advances by
// that step after each reading.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

// Advance moves the clock forward by d, delivering at most one pending
// tick to each ticker whose next fire time was reached — time.Ticker's
// drop-missed-ticks semantics, compressed: a giant Advance over many
// intervals still delivers a single tick.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	for _, t := range f.tickers {
		t.fireLocked(f.now)
	}
}

// NewTicker implements TickerClock: the returned ticker fires from
// Advance. It panics if d <= 0, matching time.NewTicker.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Fake ticker interval")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTicker{
		f:        f,
		ch:       make(chan time.Time, 1),
		interval: d,
		next:     f.now.Add(d),
	}
	f.tickers = append(f.tickers, t)
	return t
}

type fakeTicker struct {
	f        *Fake
	ch       chan time.Time
	interval time.Duration
	next     time.Time
	stopped  bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.ch }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	t.stopped = true
}

// fireLocked delivers one tick if now reached the next fire time, then
// re-arms strictly past now. Callers hold f.mu; the send is non-blocking,
// so a receiver that fell behind loses ticks instead of stalling Advance.
func (t *fakeTicker) fireLocked(now time.Time) {
	if t.stopped || t.next.After(now) {
		return
	}
	select {
	case t.ch <- t.next:
	default:
	}
	elapsed := now.Sub(t.next)
	steps := elapsed/t.interval + 1
	t.next = t.next.Add(steps * t.interval)
}

// SetStep configures the auto-advance step applied on every Now call.
// A zero step disables auto-advance.
func (f *Fake) SetStep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.step = d
}
