// Package clock abstracts time so that latency-driven control loops — in
// particular the ADWISE adaptive window condition (C2) — can be tested
// deterministically with a fake clock and run in production against the
// real one.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock. The zero value is ready
// to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Fake is a manually advanced Clock for tests. The zero value starts at the
// zero time; use NewFake to pick an epoch. Fake is safe for concurrent use.
type Fake struct {
	mu  sync.Mutex
	now time.Time
	// Step, if non-zero, is added to the clock on every Now call, modelling
	// work that takes a fixed amount of time per observation.
	step time.Duration
}

// NewFake returns a Fake clock reading t.
func NewFake(t time.Time) *Fake {
	return &Fake{now: t}
}

// Now implements Clock. If a step is configured, the clock auto-advances by
// that step after each reading.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

// Advance moves the clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// SetStep configures the auto-advance step applied on every Now call.
// A zero step disables auto-advance.
func (f *Fake) SetStep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.step = d
}
