package vcache

import (
	"testing"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
)

// mapCache reproduces the seed implementation — map[VertexID]*entry with
// one heap allocation and pointer chase per vertex — as the benchmark
// baseline the open-addressing rework is measured against.
type mapEntry struct {
	replicas bitset.Set
	degree   int32
}

type mapCache struct {
	k       int
	entries map[graph.VertexID]*mapEntry
	sizes   []int64
	maxDeg  int32
}

func newMapCache(k int) *mapCache {
	return &mapCache{
		k:       k,
		entries: make(map[graph.VertexID]*mapEntry, 1024),
		sizes:   make([]int64, k),
	}
}

func (c *mapCache) entryFor(v graph.VertexID) *mapEntry {
	e, ok := c.entries[v]
	if !ok {
		e = &mapEntry{replicas: bitset.New(c.k)}
		c.entries[v] = e
	}
	return e
}

func (c *mapCache) Assign(e graph.Edge, p int) (newSrc, newDst bool) {
	se := c.entryFor(e.Src)
	newSrc = se.replicas.Add(p)
	se.degree++
	if se.degree > c.maxDeg {
		c.maxDeg = se.degree
	}
	if e.Dst != e.Src {
		de := c.entryFor(e.Dst)
		newDst = de.replicas.Add(p)
		de.degree++
		if de.degree > c.maxDeg {
			c.maxDeg = de.degree
		}
	}
	c.sizes[p]++
	return newSrc, newDst
}

func (c *mapCache) Lookup(v graph.VertexID) (int, bitset.Set) {
	if e, ok := c.entries[v]; ok {
		return int(e.degree), e.replicas
	}
	return 0, bitset.Set{}
}

// benchEdges synthesizes a power-law-ish edge stream: a few hub vertices
// plus a long tail, the degree shape the cache sees in practice.
func benchEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	x := uint64(0x12345)
	for i := range edges {
		x = hashx.SplitMix64(x)
		src := graph.VertexID(x % uint64(n/8+1))
		x = hashx.SplitMix64(x)
		dst := graph.VertexID(x % uint64(n/2+1))
		edges[i] = graph.Edge{Src: src, Dst: dst}
	}
	return edges
}

const benchK = 32

func BenchmarkAssign(b *testing.B) {
	edges := benchEdges(1 << 16)
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := New(benchK)
			for j, e := range edges {
				c.Assign(e, j%benchK)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := newMapCache(benchK)
			for j, e := range edges {
				c.Assign(e, j%benchK)
			}
		}
	})
}

func BenchmarkLookup(b *testing.B) {
	edges := benchEdges(1 << 16)
	open := New(benchK)
	mapc := newMapCache(benchK)
	for j, e := range edges {
		open.Assign(e, j%benchK)
		mapc.Assign(e, j%benchK)
	}
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			d, r := open.Lookup(e.Src)
			sink += d + r.Count()
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			d, r := mapc.Lookup(e.Src)
			sink += d + r.Count()
		}
		_ = sink
	})
}

// BenchmarkAssignAllocs documents the pointer-free claim: steady-state
// Assign must not allocate per edge (growth amortizes to ~0 over the run).
func BenchmarkAssignSteadyState(b *testing.B) {
	edges := benchEdges(1 << 14)
	c := New(benchK)
	for j, e := range edges {
		c.Assign(e, j%benchK)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Assign(edges[i%len(edges)], i%benchK)
	}
}
