package vcache

import (
	"fmt"
	"math"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
)

// tombstone marks a slot whose vertex was evicted under budget pressure.
// Cache can use degrees[slot] != 0 as the occupancy test because degrees
// only grow; under eviction a probe chain may pass through freed slots, so
// Bounded needs a third state that keeps chains intact: probes skip
// tombstones and only stop at a true empty.
const tombstone = int32(-1)

// Bounded is a vertex cache with the same flat open-addressing layout as
// Cache but a fixed byte budget. When an insertion would outgrow the
// budget the table does not double; instead low-partial-degree vertices
// are evicted HEP-style — on power-law graphs the low-degree tail is the
// bulk of the vertices and the least valuable scoring state, so dropping
// it degrades replication quality gracefully while memory stays fixed.
//
// Evicted vertices become tombstones (degree −1, replica words zeroed).
// An evicted vertex is indistinguishable from one never seen: lookups
// report degree 0 and an empty replica set, and the next Assign re-enters
// it as degree 1 with an empty replica set. Insertions reuse the first
// tombstone on their probe chain; when tombstones come to dominate the
// table (≥ 1/8 of slots at insert pressure) a same-size compaction rehash
// drops them to keep probe chains short.
//
// maxDeg is a high-water mark over the whole run and never decays, even
// when the vertex that set it is evicted — see VertexState.
type Bounded struct {
	k      int
	wpe    int   // replica words per entry: ceil(k/64)
	budget int64 // effective budget, at least the minimum table

	// Same layout as Cache, but degrees is three-state: 0 empty,
	// tombstone (-1) evicted, > 0 live partial degree. Tombstone slots
	// always have zeroed replica words so reuse starts clean.
	mask    uint64
	keys    []graph.VertexID
	degrees []int32
	words   []uint64
	live    int // slots with degree > 0
	dead    int // tombstone slots

	sizes    []int64
	assigned int64
	maxDeg   int32
	rehashes int
	evicted  int64
	peak     int64
}

// NewBounded returns an empty bounded cache for k partitions whose table
// arrays stay within budgetBytes (see the byte-accounting model in
// state.go). The budget is floored at the minimum table size — a budget
// too small for any table means "the smallest table, evicting hard". A
// non-positive budget is unlimited, which makes the bounded cache
// behaviourally identical to Cache. It panics if k < 1.
func NewBounded(k int, budgetBytes int64) *Bounded {
	if k < 1 {
		panic(fmt.Sprintf("vcache: partition count must be >= 1, got %d", k))
	}
	wpe := (k + 63) / 64
	eff := budgetBytes
	if eff <= 0 {
		eff = math.MaxInt64
	}
	if floor := tableBytes(minSlots, wpe, k); eff < floor {
		eff = floor
	}
	b := &Bounded{
		k:       k,
		wpe:     wpe,
		budget:  eff,
		mask:    minSlots - 1,
		keys:    make([]graph.VertexID, minSlots),
		degrees: make([]int32, minSlots),
		words:   make([]uint64, minSlots*wpe),
		sizes:   make([]int64, k),
	}
	b.peak = b.Bytes()
	return b
}

// K returns the partition count.
func (b *Bounded) K() int { return b.k }

// Budget returns the effective byte budget (the configured budget floored
// at the minimum table).
func (b *Bounded) Budget() int64 { return b.budget }

// find returns v's slot, or -1 if v is not currently held. Probes skip
// tombstones and stop only at a true empty slot.
func (b *Bounded) find(v graph.VertexID) int {
	i := hashx.SplitMix64(uint64(v)) & b.mask
	for {
		d := b.degrees[i]
		if d == 0 {
			return -1
		}
		if d > 0 && b.keys[i] == v {
			return int(i)
		}
		i = (i + 1) & b.mask
	}
}

// bump finds or creates v's slot and increments its partial degree. New
// vertices reuse the first tombstone on their probe chain when there is
// one; only an insertion into a true empty counts against the 3/4 load
// factor (live + dead both lengthen probe chains) and can trigger
// makeRoom.
func (b *Bounded) bump(v graph.VertexID) int {
	for {
		i := hashx.SplitMix64(uint64(v)) & b.mask
		reuse := -1
		for {
			d := b.degrees[i]
			if d == 0 {
				if reuse >= 0 {
					b.keys[reuse] = v
					b.degrees[reuse] = 1
					b.live++
					b.dead--
					if b.maxDeg < 1 {
						b.maxDeg = 1
					}
					return reuse
				}
				if uint64(b.live+b.dead+1)*4 > (b.mask+1)*3 {
					b.makeRoom()
					break // re-probe in the reorganised table
				}
				b.keys[i] = v
				b.degrees[i] = 1
				b.live++
				if b.maxDeg < 1 {
					b.maxDeg = 1
				}
				return int(i)
			}
			if d > 0 && b.keys[i] == v {
				d++
				b.degrees[i] = d
				if d > b.maxDeg {
					b.maxDeg = d
				}
				return int(i)
			}
			if d == tombstone && reuse < 0 {
				reuse = int(i)
			}
			i = (i + 1) & b.mask
		}
	}
}

// makeRoom relieves insert pressure, in preference order: compact away
// tombstones when they hold ≥ 1/8 of the table (free room, no state
// loss), double when the doubled table still fits the budget, and
// otherwise evict. Eviction leaves tombstones in place rather than
// compacting eagerly: reinsertions reuse them in place, and if pressure
// recurs before they are reused the tombstone fraction is by then ≥ 1/8
// (eviction frees at least 1/8 of the slots), so the compaction branch
// resolves it. bump therefore re-probes at most twice.
func (b *Bounded) makeRoom() {
	slots := b.mask + 1
	if uint64(b.dead)*8 >= slots {
		b.rehashTo(slots)
		return
	}
	if tableBytes(slots*2, b.wpe, b.k) <= b.budget {
		b.rehashTo(slots * 2)
		return
	}
	b.evictLowDegree()
}

// evictLowDegree drops low-partial-degree vertices until at most half the
// slots are live, ramping the degree threshold 1, 2, 4, … so the fewest
// high-value vertices go (HEP's selection rule on the streaming partial
// degree). The sweep is in slot order and stops exactly at the target, so
// eviction is deterministic for a deterministic input stream. Evicted
// slots become tombstones with zeroed replica words.
func (b *Bounded) evictLowDegree() {
	target := int((b.mask + 1) / 2)
	for t := int64(1); b.live > target; t *= 2 {
		for s, d := range b.degrees {
			if d > 0 && int64(d) <= t {
				b.degrees[s] = tombstone
				clear(b.words[s*b.wpe : (s+1)*b.wpe])
				b.live--
				b.dead++
				b.evicted++
				if b.live <= target {
					break
				}
			}
		}
	}
}

// rehashTo rebuilds the table at the given power-of-two slot count,
// dropping tombstones. Used for budget-permitted growth, Reserve, and
// same-size compaction.
func (b *Bounded) rehashTo(slots uint64) {
	oldKeys, oldDegrees, oldWords := b.keys, b.degrees, b.words
	b.rehashes++
	b.mask = slots - 1
	b.keys = make([]graph.VertexID, slots)
	b.degrees = make([]int32, slots)
	b.words = make([]uint64, int(slots)*b.wpe)
	b.dead = 0
	for s, d := range oldDegrees {
		if d <= 0 {
			continue
		}
		i := hashx.SplitMix64(uint64(oldKeys[s])) & b.mask
		for b.degrees[i] != 0 {
			i = (i + 1) & b.mask
		}
		b.keys[i] = oldKeys[s]
		b.degrees[i] = d
		copy(b.words[int(i)*b.wpe:(int(i)+1)*b.wpe], oldWords[s*b.wpe:(s+1)*b.wpe])
	}
	if bytes := tableBytes(slots, b.wpe, b.k); bytes > b.peak {
		b.peak = bytes
	}
}

// replicaView returns the replica bitmap of a live slot as a Set view
// into the arena — a slice header, no allocation.
func (b *Bounded) replicaView(slot int) bitset.Set {
	return bitset.View(b.words[slot*b.wpe:(slot+1)*b.wpe], b.k)
}

// Known reports whether v is currently held. An evicted vertex is
// unknown again.
func (b *Bounded) Known(v graph.VertexID) bool {
	return b.find(v) >= 0
}

// HasReplica reports whether v is recorded as replicated on partition p.
// Eviction forgets replicas: a vertex that physically has a replica on p
// may report false after being evicted, which costs a redundant replica
// if it is assigned there again, never a correctness violation.
func (b *Bounded) HasReplica(v graph.VertexID, p int) bool {
	slot := b.find(v)
	if slot < 0 || p < 0 || p >= b.k {
		return false
	}
	return b.words[slot*b.wpe+p>>6]&(1<<(uint(p)&63)) != 0
}

// Replicas returns the recorded replica set of v: a view valid until the
// next Assign, empty (capacity 0) for unknown or evicted vertices.
func (b *Bounded) Replicas(v graph.VertexID) bitset.Set {
	if slot := b.find(v); slot >= 0 {
		return b.replicaView(slot)
	}
	return bitset.Set{}
}

// ReplicaCount returns |Rv| for held vertices, 0 otherwise.
func (b *Bounded) ReplicaCount(v graph.VertexID) int {
	if slot := b.find(v); slot >= 0 {
		return b.replicaView(slot).Count()
	}
	return 0
}

// Degree returns the tracked partial degree of v, 0 when unknown or
// evicted.
func (b *Bounded) Degree(v graph.VertexID) int {
	if slot := b.find(v); slot >= 0 {
		return int(b.degrees[slot])
	}
	return 0
}

// Lookup returns the partial degree and replica view of v with a single
// probe; (0, empty) on a miss.
func (b *Bounded) Lookup(v graph.VertexID) (degree int, replicas bitset.Set) {
	if slot := b.find(v); slot >= 0 {
		return int(b.degrees[slot]), b.replicaView(slot)
	}
	return 0, bitset.Set{}
}

// LookupWords is the word-level Lookup for scan kernels. A miss — never
// seen or evicted — returns (0, nil), and a nil word slice ranges zero
// times, so the word-scan inner loop treats evicted state as "unseen"
// with no extra branch.
//
//adwise:zeroalloc
func (b *Bounded) LookupWords(v graph.VertexID) (degree int, words []uint64) {
	if slot := b.find(v); slot >= 0 {
		return int(b.degrees[slot]), b.words[slot*b.wpe : (slot+1)*b.wpe]
	}
	return 0, nil
}

// MaxDegree returns the largest partial degree ever observed (floor 1).
// It is a high-water mark: eviction does not decay it, so the balance
// normaliser is monotone exactly as with the unbounded Cache.
func (b *Bounded) MaxDegree() int {
	if b.maxDeg < 1 {
		return 1
	}
	return int(b.maxDeg)
}

// Assign records the assignment of edge (u,v) to partition p and returns
// which endpoints gained a new replica. Evicted endpoints re-enter as
// degree 1 with an empty replica set, so they always report a new
// replica. It panics if p is out of range.
func (b *Bounded) Assign(e graph.Edge, p int) (newSrc, newDst bool) {
	if p < 0 || p >= b.k {
		panic(fmt.Sprintf("vcache: assignment to partition %d outside [0,%d)", p, b.k))
	}
	w, m := p>>6, uint64(1)<<(uint(p)&63)

	slot := b.bump(e.Src)
	if b.words[slot*b.wpe+w]&m == 0 {
		b.words[slot*b.wpe+w] |= m
		newSrc = true
	}
	if e.Dst != e.Src {
		// bump may reorganise the table, so the Dst slot is resolved
		// after the Src update is complete.
		slot = b.bump(e.Dst)
		if b.words[slot*b.wpe+w]&m == 0 {
			b.words[slot*b.wpe+w] |= m
			newDst = true
		}
	}
	b.sizes[p]++
	b.assigned++
	return newSrc, newDst
}

// Assigned returns the number of edges assigned so far. Edge counts are
// not vertex state and are exact under eviction.
func (b *Bounded) Assigned() int64 { return b.assigned }

// Vertices returns the number of vertices currently held (excludes
// evicted vertices).
func (b *Bounded) Vertices() int { return b.live }

// Size returns the number of edges assigned to partition p (exact under
// eviction).
func (b *Bounded) Size(p int) int64 { return b.sizes[p] }

// Sizes returns a copy of the per-partition edge counts.
func (b *Bounded) Sizes() []int64 {
	out := make([]int64, b.k)
	copy(out, b.sizes)
	return out
}

// MinMaxSize returns the smallest and largest partition sizes.
func (b *Bounded) MinMaxSize() (min, max int64) {
	min, max = b.sizes[0], b.sizes[0]
	for _, s := range b.sizes[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// MinMaxSizeOf returns the smallest and largest sizes among the given
// partitions. It panics on an empty partition list.
func (b *Bounded) MinMaxSizeOf(parts []int) (min, max int64) {
	if len(parts) == 0 {
		panic("vcache: MinMaxSizeOf on empty partition list")
	}
	min, max = b.sizes[parts[0]], b.sizes[parts[0]]
	for _, p := range parts[1:] {
		s := b.sizes[p]
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Imbalance returns (maxsize−minsize)/maxsize; zero when nothing is
// assigned.
func (b *Bounded) Imbalance() float64 {
	min, max := b.MinMaxSize()
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}

// SumReplicas sums |Rv| over currently held vertices. Under eviction this
// undercounts the true replication of the assignment — use the exact
// metrics pass over the assignment for quality measurement.
func (b *Bounded) SumReplicas() int64 {
	var sum int64
	for slot, d := range b.degrees {
		if d > 0 {
			sum += int64(b.replicaView(slot).Count())
		}
	}
	return sum
}

// ReplicationDegree returns the mean replica count over currently held
// vertices; zero when none are held.
func (b *Bounded) ReplicationDegree() float64 {
	if b.live == 0 {
		return 0
	}
	return float64(b.SumReplicas()) / float64(b.live)
}

// ForEachVertex calls fn for every currently held vertex with its replica
// view. Iteration order is unspecified; evicted vertices are not visited.
func (b *Bounded) ForEachVertex(fn func(v graph.VertexID, replicas bitset.Set)) {
	for slot, d := range b.degrees {
		if d > 0 {
			fn(b.keys[slot], b.replicaView(slot))
		}
	}
}

// Reserve grows the table upfront for an expected vertex count, clamped
// to the largest table the budget allows. No-op when the table is already
// large enough.
func (b *Bounded) Reserve(vertices int) {
	slots := slotsFor(vertices)
	for slots > minSlots && tableBytes(slots, b.wpe, b.k) > b.budget {
		slots /= 2
	}
	if slots > b.mask+1 {
		b.rehashTo(slots)
	}
}

// Rehashes counts table rebuilds: growth doublings, Reserve rehashes, and
// post-eviction compactions.
func (b *Bounded) Rehashes() int { return b.rehashes }

// Bytes returns the tracked byte footprint of the table arrays.
func (b *Bounded) Bytes() int64 { return tableBytes(b.mask+1, b.wpe, b.k) }

// PeakBytes returns the largest footprint reached over the run. The
// budget invariant is PeakBytes() <= Budget().
func (b *Bounded) PeakBytes() int64 { return b.peak }

// EvictedVertices counts vertices dropped under budget pressure. A vertex
// evicted and re-inserted n times counts n times.
func (b *Bounded) EvictedVertices() int64 { return b.evicted }
