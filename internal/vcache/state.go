package vcache

import (
	"unsafe"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
)

// VertexState is the read/write surface the partitioning engine uses on
// vertex state: the per-edge scoring reads (Lookup, LookupWords, Degree,
// MaxDegree), the commit write (Assign), the balance/size accessors, and
// the run-level aggregates. Two implementations exist:
//
//   - Cache — the unbounded open-addressing table (the default): exact
//     state for every vertex ever seen, memory grows with |V|.
//   - Bounded — the same layout under a byte budget: when the table would
//     outgrow the budget it evicts low-partial-degree vertices HEP-style
//     instead of doubling, so memory stays fixed while quality degrades
//     gracefully on power-law graphs.
//
// The contract both implementations share: a vertex the state does not
// hold is indistinguishable from one never seen — Lookup reports degree 0
// and an empty replica set, LookupWords reports (0, nil) and a nil word
// slice scans as the empty set, and the next Assign re-enters the vertex
// at degree 1 with an empty replica set. Scoring kernels therefore treat
// a miss as "unseen" with no extra branch. MaxDegree is a high-water mark
// over the whole run: it never decays, even when the vertex that set it
// is evicted, so the replication normaliser of Eq. 5 is identical across
// implementations. Partition sizes and Assigned count edges, not vertex
// state, and are exact under eviction.
//
// Like Cache, a VertexState is owned by one partitioner instance and is
// not safe for concurrent use.
type VertexState interface {
	// K returns the partition count.
	K() int
	// Known reports whether v is currently held (an evicted vertex is
	// unknown again).
	Known(v graph.VertexID) bool
	// HasReplica reports whether v is recorded as replicated on p.
	HasReplica(v graph.VertexID, p int) bool
	// Replicas returns v's replica set as a view valid until the next
	// Assign; empty (capacity 0) for unknown vertices.
	Replicas(v graph.VertexID) bitset.Set
	// ReplicaCount returns |Rv| for held vertices, 0 otherwise.
	ReplicaCount(v graph.VertexID) int
	// Degree returns the tracked partial degree of v (0 when unknown).
	Degree(v graph.VertexID) int
	// Lookup returns degree and replica view with a single probe.
	Lookup(v graph.VertexID) (degree int, replicas bitset.Set)
	// LookupWords is the word-level Lookup for scan kernels: (0, nil) on
	// a miss, and nil scans as the empty set.
	LookupWords(v graph.VertexID) (degree int, words []uint64)
	// MaxDegree returns the largest partial degree ever observed (floor
	// 1). It is a high-water mark and never decays under eviction.
	MaxDegree() int
	// Assign records edge e on partition p and reports which endpoints
	// gained a new replica.
	Assign(e graph.Edge, p int) (newSrc, newDst bool)
	// Assigned returns the number of edges assigned so far (exact).
	Assigned() int64
	// Vertices returns the number of vertices currently held.
	Vertices() int
	// Size returns the edge count of partition p (exact).
	Size(p int) int64
	// Sizes returns a copy of the per-partition edge counts.
	Sizes() []int64
	// MinMaxSize returns the global partition-size extrema.
	MinMaxSize() (min, max int64)
	// MinMaxSizeOf returns the extrema over the given partitions.
	MinMaxSizeOf(parts []int) (min, max int64)
	// Imbalance returns (max−min)/max over all partitions.
	Imbalance() float64
	// SumReplicas sums |Rv| over held vertices.
	SumReplicas() int64
	// ReplicationDegree returns the mean replica count over held vertices.
	ReplicationDegree() float64
	// ForEachVertex visits every held vertex with its replica view.
	ForEachVertex(fn func(v graph.VertexID, replicas bitset.Set))
	// Reserve sizes the table upfront for an expected vertex count, so a
	// known-size stream skips the doubling rehashes. A bounded state
	// clamps the reservation to its budget. No-op when the table is
	// already large enough.
	Reserve(vertices int)
	// Rehashes counts table rebuilds (growth doublings and, for bounded
	// states, post-eviction compactions).
	Rehashes() int
	// Bytes returns the tracked byte footprint of the table arrays
	// (keys, degrees, replica arena, partition sizes).
	Bytes() int64
	// PeakBytes returns the largest Bytes() value ever reached.
	PeakBytes() int64
	// EvictedVertices counts vertices dropped under budget pressure
	// (always 0 for the unbounded Cache).
	EvictedVertices() int64
}

// Both implementations satisfy the interface.
var (
	_ VertexState = (*Cache)(nil)
	_ VertexState = (*Bounded)(nil)
)

// Byte-accounting model: the tracked footprint is the resident table
// arrays — keys, degrees, the replica word arena, and the per-partition
// size counters. Slice headers, the struct itself, and the transient old
// arrays freed by a rehash are not counted; the model is the steady-state
// footprint the budget is meant to bound.
const (
	bytesPerKey    = int64(unsafe.Sizeof(graph.VertexID(0)))
	bytesPerDegree = int64(unsafe.Sizeof(int32(0)))
	bytesPerWord   = int64(unsafe.Sizeof(uint64(0)))
	bytesPerSize   = int64(unsafe.Sizeof(int64(0)))
)

// tableBytes returns the tracked footprint of a table with the given slot
// count, replica words per entry, and partition count.
func tableBytes(slots uint64, wpe, k int) int64 {
	return int64(slots)*(bytesPerKey+bytesPerDegree+int64(wpe)*bytesPerWord) + int64(k)*bytesPerSize
}

// slotsFor returns the smallest power-of-two slot count (≥ minSlots) that
// holds the given vertex count below the 3/4 load-factor growth trigger.
func slotsFor(vertices int) uint64 {
	slots := uint64(minSlots)
	for vertices > 0 && uint64(vertices)*4 > slots*3 {
		slots *= 2
	}
	return slots
}

// VerticesHintForEdges derives a vertex-count table hint from an edge
// count — the same Remaining()/plan-derived figure the assignment sizing
// uses. An edge introduces at most two vertices, and the evaluation
// graphs average ≥ 8 incident edges per vertex, so edges/4 is a
// conservative table reservation: an undershoot costs at most a couple of
// doubling rehashes, an overshoot costs idle slots. Non-positive edge
// counts (unknown length) hint 0, which leaves the table at its minimum.
func VerticesHintForEdges(edges int64) int {
	if edges <= 0 {
		return 0
	}
	const maxHint = int64(1) << 31
	hint := edges / 4
	if hint > maxHint {
		hint = maxHint
	}
	return int(hint)
}

// Options selects and sizes a VertexState — the one construction path
// every strategy shares (partition framework, core, tests).
type Options struct {
	// K is the partition count.
	K int
	// BudgetBytes caps the table's tracked byte footprint. 0 (or
	// negative) selects the unbounded Cache; positive selects a Bounded
	// state that evicts low-degree vertices instead of outgrowing the
	// budget.
	BudgetBytes int64
	// VerticesHint pre-sizes the table for an expected vertex count
	// (see Reserve); 0 starts at the minimum table.
	VerticesHint int
}

// Build constructs the vertex state the options describe.
func Build(o Options) VertexState {
	if o.BudgetBytes > 0 {
		b := NewBounded(o.K, o.BudgetBytes)
		if o.VerticesHint > 0 {
			b.Reserve(o.VerticesHint)
		}
		return b
	}
	if o.VerticesHint > 0 {
		return NewWithHint(o.K, o.VerticesHint)
	}
	return New(o.K)
}
