// Package vcache implements the vertex cache of the streaming-partitioning
// model (Figure 3 (iii) of the paper): for every vertex seen so far it
// maintains the replica set, the partial degree, and globally the per-
// partition edge counts that the balancing scores need.
//
// The cache is an open-addressing hash table with no per-vertex heap
// allocation: vertex keys and partial degrees live in flat arrays, and all
// replica bitmaps share one word arena indexed by slot. Per-edge scoring
// (Lookup) is a probe into three parallel arrays — no pointer chase, no
// map-bucket indirection — which is what the window-based scoring loop of
// ADWISE spends most of its time on.
//
// A Cache is owned by a single partitioner instance and is not safe for
// concurrent use; the parallel-loading model of the paper (§III-D) gives
// every partitioner its own cache.
package vcache

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
)

// minSlots is the initial table size. Power of two so the probe sequence
// can mask instead of mod.
const minSlots = 1024

// Cache is the vertex cache for k partitions.
type Cache struct {
	k   int
	wpe int // replica words per entry: ceil(k/64)

	// Open-addressing table, all slices of length len(keys) (slots) except
	// words (slots*wpe). A slot is occupied iff degrees[slot] != 0: degrees
	// only grow and every insertion starts at 1, so zero is a safe empty
	// marker even for vertex id 0.
	mask    uint64
	keys    []graph.VertexID
	degrees []int32
	words   []uint64 // replica bitmaps, wpe words per slot
	live    int      // occupied slots

	sizes    []int64
	assigned int64
	maxDeg   int32
	rehashes int
}

// New returns an empty cache for k partitions. It panics if k < 1; the
// partition count is a static configuration error, not a runtime condition.
func New(k int) *Cache {
	return NewWithHint(k, 0)
}

// NewWithHint returns an empty cache for k partitions with its table
// pre-sized for the expected vertex count, so a known-size stream (e.g.
// one whose length stream.Remaining or the segment plan reports) skips
// the doubling rehashes New's minimum table would pay on the way up. A
// non-positive hint starts at the minimum table. It panics if k < 1.
func NewWithHint(k, vertices int) *Cache {
	if k < 1 {
		panic(fmt.Sprintf("vcache: partition count must be >= 1, got %d", k))
	}
	wpe := (k + 63) / 64
	slots := slotsFor(vertices)
	return &Cache{
		k:       k,
		wpe:     wpe,
		mask:    slots - 1,
		keys:    make([]graph.VertexID, slots),
		degrees: make([]int32, slots),
		words:   make([]uint64, int(slots)*wpe),
		sizes:   make([]int64, k),
	}
}

// K returns the partition count.
func (c *Cache) K() int { return c.k }

// find returns v's slot, or -1 if v has never been assigned.
func (c *Cache) find(v graph.VertexID) int {
	i := hashx.SplitMix64(uint64(v)) & c.mask
	for {
		if c.degrees[i] == 0 {
			return -1
		}
		if c.keys[i] == v {
			return int(i)
		}
		i = (i + 1) & c.mask
	}
}

// bump finds or creates v's slot and increments its partial degree. The
// table doubles only when an actual insertion would push the load factor
// past 3/4 — assignments among already-known vertices never grow.
func (c *Cache) bump(v graph.VertexID) int {
	i := hashx.SplitMix64(uint64(v)) & c.mask
	for {
		d := c.degrees[i]
		if d == 0 {
			if uint64(c.live+1)*4 > (c.mask+1)*3 {
				c.grow()
				i = hashx.SplitMix64(uint64(v)) & c.mask
				continue // re-probe in the grown table
			}
			c.keys[i] = v
			c.degrees[i] = 1
			c.live++
			if c.maxDeg < 1 {
				c.maxDeg = 1
			}
			return int(i)
		}
		if c.keys[i] == v {
			d++
			c.degrees[i] = d
			if d > c.maxDeg {
				c.maxDeg = d
			}
			return int(i)
		}
		i = (i + 1) & c.mask
	}
}

// grow doubles the table and reinserts every occupied slot. Replica views
// handed out earlier (Replicas, Lookup) are invalidated by growth; they are
// only specified to live until the next Assign.
func (c *Cache) grow() {
	c.rehashTo((c.mask + 1) * 2)
}

// rehashTo rebuilds the table at the given power-of-two slot count.
func (c *Cache) rehashTo(slots uint64) {
	oldKeys, oldDegrees, oldWords := c.keys, c.degrees, c.words
	c.rehashes++
	c.mask = slots - 1
	c.keys = make([]graph.VertexID, slots)
	c.degrees = make([]int32, slots)
	c.words = make([]uint64, int(slots)*c.wpe)
	for s, d := range oldDegrees {
		if d == 0 {
			continue
		}
		i := hashx.SplitMix64(uint64(oldKeys[s])) & c.mask
		for c.degrees[i] != 0 {
			i = (i + 1) & c.mask
		}
		c.keys[i] = oldKeys[s]
		c.degrees[i] = d
		copy(c.words[int(i)*c.wpe:(int(i)+1)*c.wpe], oldWords[s*c.wpe:(s+1)*c.wpe])
	}
}

// replicaView returns the replica bitmap of an occupied slot as a Set view
// into the arena — a slice header, no allocation.
func (c *Cache) replicaView(slot int) bitset.Set {
	return bitset.View(c.words[slot*c.wpe:(slot+1)*c.wpe], c.k)
}

// Known reports whether v has been seen in any previous assignment.
func (c *Cache) Known(v graph.VertexID) bool {
	return c.find(v) >= 0
}

// HasReplica reports whether v is replicated on partition p.
func (c *Cache) HasReplica(v graph.VertexID, p int) bool {
	slot := c.find(v)
	if slot < 0 || p < 0 || p >= c.k {
		return false
	}
	return c.words[slot*c.wpe+p>>6]&(1<<(uint(p)&63)) != 0
}

// Replicas returns the replica set of v. The returned set is a view into
// the cache and must not be modified; it is valid until the next Assign and
// empty (capacity 0) for unknown vertices.
func (c *Cache) Replicas(v graph.VertexID) bitset.Set {
	if slot := c.find(v); slot >= 0 {
		return c.replicaView(slot)
	}
	return bitset.Set{}
}

// ReplicaCount returns |Rv|.
func (c *Cache) ReplicaCount(v graph.VertexID) int {
	if slot := c.find(v); slot >= 0 {
		return c.replicaView(slot).Count()
	}
	return 0
}

// Degree returns the partial degree of v: the number of stream edges
// incident to v assigned so far. Streaming algorithms (DBH, HDRF, ADWISE)
// work with partial degrees because the full degree is unknown mid-stream.
func (c *Cache) Degree(v graph.VertexID) int {
	if slot := c.find(v); slot >= 0 {
		return int(c.degrees[slot])
	}
	return 0
}

// Lookup returns the partial degree and replica set of v with a single
// table probe — the hot path of per-edge scoring. The replica set is a view
// valid until the next Assign.
func (c *Cache) Lookup(v graph.VertexID) (degree int, replicas bitset.Set) {
	if slot := c.find(v); slot >= 0 {
		return int(c.degrees[slot]), c.replicaView(slot)
	}
	return 0, bitset.Set{}
}

// LookupWords is the word-level form of Lookup for branch-light scan
// kernels: it returns the partial degree and the raw replica bitmap words
// of v, so callers can walk set bits with math/bits instead of probing
// per-partition Contains or paying a closure call per bit (Set.ForEach).
// The slice aliases the cache's arena — read-only, valid until the next
// Assign. Unknown vertices return (0, nil); a nil word slice scans as the
// empty set.
//
//adwise:zeroalloc
func (c *Cache) LookupWords(v graph.VertexID) (degree int, words []uint64) {
	if slot := c.find(v); slot >= 0 {
		return int(c.degrees[slot]), c.words[slot*c.wpe : (slot+1)*c.wpe]
	}
	return 0, nil
}

// MaxDegree returns the largest partial degree observed so far, at least 1
// so it can be used as a normaliser before any assignment.
func (c *Cache) MaxDegree() int {
	if c.maxDeg < 1 {
		return 1
	}
	return int(c.maxDeg)
}

// Assign records the assignment of edge (u,v) to partition p and returns
// which endpoints gained a new replica. It updates replica sets, partial
// degrees, and partition sizes. Assign panics if p is out of range — an
// assignment outside [0,k) is a partitioner bug, not an input condition.
func (c *Cache) Assign(e graph.Edge, p int) (newSrc, newDst bool) {
	if p < 0 || p >= c.k {
		panic(fmt.Sprintf("vcache: assignment to partition %d outside [0,%d)", p, c.k))
	}
	w, m := p>>6, uint64(1)<<(uint(p)&63)

	slot := c.bump(e.Src)
	if c.words[slot*c.wpe+w]&m == 0 {
		c.words[slot*c.wpe+w] |= m
		newSrc = true
	}
	if e.Dst != e.Src {
		// bump may grow the table, so the Dst slot is resolved after the
		// Src update is complete.
		slot = c.bump(e.Dst)
		if c.words[slot*c.wpe+w]&m == 0 {
			c.words[slot*c.wpe+w] |= m
			newDst = true
		}
	}
	c.sizes[p]++
	c.assigned++
	return newSrc, newDst
}

// Assigned returns the number of edges assigned so far.
func (c *Cache) Assigned() int64 { return c.assigned }

// Vertices returns the number of distinct vertices seen so far.
func (c *Cache) Vertices() int { return c.live }

// Size returns the number of edges assigned to partition p.
func (c *Cache) Size(p int) int64 { return c.sizes[p] }

// Sizes returns a copy of the per-partition edge counts.
func (c *Cache) Sizes() []int64 {
	out := make([]int64, c.k)
	copy(out, c.sizes)
	return out
}

// MinMaxSize returns the smallest and largest partition sizes. When a
// partitioner is restricted to a subset of partitions (spotlight), use
// MinMaxSizeOf instead.
func (c *Cache) MinMaxSize() (min, max int64) {
	min, max = c.sizes[0], c.sizes[0]
	for _, s := range c.sizes[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// MinMaxSizeOf returns the smallest and largest sizes among the given
// partitions. It panics on an empty partition list.
func (c *Cache) MinMaxSizeOf(parts []int) (min, max int64) {
	if len(parts) == 0 {
		panic("vcache: MinMaxSizeOf on empty partition list")
	}
	min, max = c.sizes[parts[0]], c.sizes[parts[0]]
	for _, p := range parts[1:] {
		s := c.sizes[p]
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Imbalance returns (maxsize−minsize)/maxsize, the ι of Eq. 4 in the
// paper; zero when nothing is assigned.
func (c *Cache) Imbalance() float64 {
	min, max := c.MinMaxSize()
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}

// SumReplicas returns Σ_v |Rv| over all seen vertices: the numerator of the
// replication-degree objective (Eq. 1).
func (c *Cache) SumReplicas() int64 {
	var sum int64
	for slot, d := range c.degrees {
		if d != 0 {
			sum += int64(c.replicaView(slot).Count())
		}
	}
	return sum
}

// ReplicationDegree returns the mean replica count over seen vertices
// (Eq. 1); zero before any assignment.
func (c *Cache) ReplicationDegree() float64 {
	if c.live == 0 {
		return 0
	}
	return float64(c.SumReplicas()) / float64(c.live)
}

// ForEachVertex calls fn for every seen vertex with its replica set (a view
// that must not be modified or retained). Iteration order is unspecified.
func (c *Cache) ForEachVertex(fn func(v graph.VertexID, replicas bitset.Set)) {
	for slot, d := range c.degrees {
		if d != 0 {
			fn(c.keys[slot], c.replicaView(slot))
		}
	}
}

// Reserve grows the table upfront to hold the expected vertex count below
// the load-factor growth trigger. No-op when the table is already large
// enough; existing entries are rehashed into the larger table.
func (c *Cache) Reserve(vertices int) {
	if slots := slotsFor(vertices); slots > c.mask+1 {
		c.rehashTo(slots)
	}
}

// Rehashes counts table rebuilds (doubling growths and Reserve rehashes).
// A correctly hinted cache (NewWithHint, Reserve before the first Assign)
// reports 0 for streams that stay within the hint.
func (c *Cache) Rehashes() int { return c.rehashes }

// Bytes returns the tracked byte footprint of the table arrays (keys,
// degrees, replica arena, partition sizes) — see the byte-accounting model
// in state.go.
func (c *Cache) Bytes() int64 { return tableBytes(c.mask+1, c.wpe, c.k) }

// PeakBytes returns the largest footprint reached. The unbounded table
// only ever grows, so this equals Bytes.
func (c *Cache) PeakBytes() int64 { return c.Bytes() }

// EvictedVertices is always 0: the unbounded cache never evicts.
func (c *Cache) EvictedVertices() int64 { return 0 }
