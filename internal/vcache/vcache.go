// Package vcache implements the vertex cache of the streaming-partitioning
// model (Figure 3 (iii) of the paper): for every vertex seen so far it
// maintains the replica set, the partial degree, and globally the per-
// partition edge counts that the balancing scores need.
//
// A Cache is owned by a single partitioner instance and is not safe for
// concurrent use; the parallel-loading model of the paper (§III-D) gives
// every partitioner its own cache.
package vcache

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
)

type entry struct {
	replicas bitset.Set
	degree   int32
}

// Cache is the vertex cache for k partitions.
type Cache struct {
	k        int
	entries  map[graph.VertexID]*entry
	sizes    []int64
	assigned int64
	maxDeg   int32
}

// New returns an empty cache for k partitions. It panics if k < 1; the
// partition count is a static configuration error, not a runtime condition.
func New(k int) *Cache {
	if k < 1 {
		panic(fmt.Sprintf("vcache: partition count must be >= 1, got %d", k))
	}
	return &Cache{
		k:       k,
		entries: make(map[graph.VertexID]*entry, 1024),
		sizes:   make([]int64, k),
	}
}

// K returns the partition count.
func (c *Cache) K() int { return c.k }

// Known reports whether v has been seen in any previous assignment.
func (c *Cache) Known(v graph.VertexID) bool {
	_, ok := c.entries[v]
	return ok
}

// HasReplica reports whether v is replicated on partition p.
func (c *Cache) HasReplica(v graph.VertexID, p int) bool {
	e, ok := c.entries[v]
	return ok && e.replicas.Contains(p)
}

// Replicas returns the replica set of v. The returned set must not be
// modified; it is empty (capacity 0) for unknown vertices.
func (c *Cache) Replicas(v graph.VertexID) bitset.Set {
	if e, ok := c.entries[v]; ok {
		return e.replicas
	}
	return bitset.Set{}
}

// ReplicaCount returns |Rv|.
func (c *Cache) ReplicaCount(v graph.VertexID) int {
	if e, ok := c.entries[v]; ok {
		return e.replicas.Count()
	}
	return 0
}

// Degree returns the partial degree of v: the number of stream edges
// incident to v assigned so far. Streaming algorithms (DBH, HDRF, ADWISE)
// work with partial degrees because the full degree is unknown mid-stream.
func (c *Cache) Degree(v graph.VertexID) int {
	if e, ok := c.entries[v]; ok {
		return int(e.degree)
	}
	return 0
}

// Lookup returns the partial degree and replica set of v with a single map
// access — the hot path of per-edge scoring.
func (c *Cache) Lookup(v graph.VertexID) (degree int, replicas bitset.Set) {
	if e, ok := c.entries[v]; ok {
		return int(e.degree), e.replicas
	}
	return 0, bitset.Set{}
}

// MaxDegree returns the largest partial degree observed so far, at least 1
// so it can be used as a normaliser before any assignment.
func (c *Cache) MaxDegree() int {
	if c.maxDeg < 1 {
		return 1
	}
	return int(c.maxDeg)
}

func (c *Cache) entryFor(v graph.VertexID) *entry {
	e, ok := c.entries[v]
	if !ok {
		e = &entry{replicas: bitset.New(c.k)}
		c.entries[v] = e
	}
	return e
}

// Assign records the assignment of edge (u,v) to partition p and returns
// which endpoints gained a new replica. It updates replica sets, partial
// degrees, and partition sizes. Assign panics if p is out of range — an
// assignment outside [0,k) is a partitioner bug, not an input condition.
func (c *Cache) Assign(e graph.Edge, p int) (newSrc, newDst bool) {
	if p < 0 || p >= c.k {
		panic(fmt.Sprintf("vcache: assignment to partition %d outside [0,%d)", p, c.k))
	}
	se := c.entryFor(e.Src)
	newSrc = se.replicas.Add(p)
	se.degree++
	if se.degree > c.maxDeg {
		c.maxDeg = se.degree
	}
	if e.Dst != e.Src {
		de := c.entryFor(e.Dst)
		newDst = de.replicas.Add(p)
		de.degree++
		if de.degree > c.maxDeg {
			c.maxDeg = de.degree
		}
	}
	c.sizes[p]++
	c.assigned++
	return newSrc, newDst
}

// Assigned returns the number of edges assigned so far.
func (c *Cache) Assigned() int64 { return c.assigned }

// Vertices returns the number of distinct vertices seen so far.
func (c *Cache) Vertices() int { return len(c.entries) }

// Size returns the number of edges assigned to partition p.
func (c *Cache) Size(p int) int64 { return c.sizes[p] }

// Sizes returns a copy of the per-partition edge counts.
func (c *Cache) Sizes() []int64 {
	out := make([]int64, c.k)
	copy(out, c.sizes)
	return out
}

// MinMaxSize returns the smallest and largest partition sizes. When a
// partitioner is restricted to a subset of partitions (spotlight), use
// MinMaxSizeOf instead.
func (c *Cache) MinMaxSize() (min, max int64) {
	min, max = c.sizes[0], c.sizes[0]
	for _, s := range c.sizes[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// MinMaxSizeOf returns the smallest and largest sizes among the given
// partitions. It panics on an empty partition list.
func (c *Cache) MinMaxSizeOf(parts []int) (min, max int64) {
	if len(parts) == 0 {
		panic("vcache: MinMaxSizeOf on empty partition list")
	}
	min, max = c.sizes[parts[0]], c.sizes[parts[0]]
	for _, p := range parts[1:] {
		s := c.sizes[p]
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Imbalance returns (maxsize−minsize)/maxsize, the ι of Eq. 4 in the
// paper; zero when nothing is assigned.
func (c *Cache) Imbalance() float64 {
	min, max := c.MinMaxSize()
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}

// SumReplicas returns Σ_v |Rv| over all seen vertices: the numerator of the
// replication-degree objective (Eq. 1).
func (c *Cache) SumReplicas() int64 {
	var sum int64
	for _, e := range c.entries {
		sum += int64(e.replicas.Count())
	}
	return sum
}

// ReplicationDegree returns the mean replica count over seen vertices
// (Eq. 1); zero before any assignment.
func (c *Cache) ReplicationDegree() float64 {
	if len(c.entries) == 0 {
		return 0
	}
	return float64(c.SumReplicas()) / float64(len(c.entries))
}

// ForEachVertex calls fn for every seen vertex with its replica set.
// Iteration order is unspecified.
func (c *Cache) ForEachVertex(fn func(v graph.VertexID, replicas bitset.Set)) {
	for v, e := range c.entries {
		fn(v, e.replicas)
	}
}
