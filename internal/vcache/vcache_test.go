package vcache

import (
	"testing"
	"testing/quick"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAssignTracksReplicasAndDegrees(t *testing.T) {
	c := New(4)
	e := graph.Edge{Src: 1, Dst: 2}

	newSrc, newDst := c.Assign(e, 0)
	if !newSrc || !newDst {
		t.Error("first assignment should create replicas for both endpoints")
	}
	newSrc, newDst = c.Assign(e, 0)
	if newSrc || newDst {
		t.Error("repeat assignment to same partition created replicas")
	}
	newSrc, newDst = c.Assign(e, 3)
	if !newSrc || !newDst {
		t.Error("assignment to a new partition should create replicas")
	}

	if got := c.Degree(1); got != 3 {
		t.Errorf("Degree(1) = %d, want 3", got)
	}
	if got := c.ReplicaCount(1); got != 2 {
		t.Errorf("ReplicaCount(1) = %d, want 2", got)
	}
	if !c.HasReplica(1, 0) || !c.HasReplica(1, 3) || c.HasReplica(1, 2) {
		t.Error("HasReplica wrong")
	}
	if got := c.Assigned(); got != 3 {
		t.Errorf("Assigned = %d, want 3", got)
	}
	if got := c.Size(0); got != 2 {
		t.Errorf("Size(0) = %d, want 2", got)
	}
	if got := c.Vertices(); got != 2 {
		t.Errorf("Vertices = %d, want 2", got)
	}
}

func TestAssignSelfLoop(t *testing.T) {
	c := New(2)
	newSrc, newDst := c.Assign(graph.Edge{Src: 5, Dst: 5}, 1)
	if !newSrc {
		t.Error("self-loop src replica not created")
	}
	if newDst {
		t.Error("self-loop dst counted separately")
	}
	if got := c.Degree(5); got != 1 {
		t.Errorf("Degree(5) = %d, want 1 (self-loop counts once)", got)
	}
}

func TestAssignPanicsOutOfRange(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Error("Assign to partition 2 of [0,2) did not panic")
		}
	}()
	c.Assign(graph.Edge{Src: 0, Dst: 1}, 2)
}

func TestUnknownVertexDefaults(t *testing.T) {
	c := New(3)
	if c.Known(9) {
		t.Error("Known(9) = true on empty cache")
	}
	if got := c.Degree(9); got != 0 {
		t.Errorf("Degree(9) = %d, want 0", got)
	}
	if got := c.ReplicaCount(9); got != 0 {
		t.Errorf("ReplicaCount(9) = %d, want 0", got)
	}
	if !c.Replicas(9).Empty() {
		t.Error("Replicas(9) not empty")
	}
	deg, reps := c.Lookup(9)
	if deg != 0 || !reps.Empty() {
		t.Error("Lookup(9) nonzero")
	}
	if got := c.MaxDegree(); got != 1 {
		t.Errorf("MaxDegree on empty cache = %d, want 1 (normaliser floor)", got)
	}
}

func TestSizesAndImbalance(t *testing.T) {
	c := New(3)
	c.Assign(graph.Edge{Src: 0, Dst: 1}, 0)
	c.Assign(graph.Edge{Src: 1, Dst: 2}, 0)
	c.Assign(graph.Edge{Src: 2, Dst: 3}, 1)

	min, max := c.MinMaxSize()
	if min != 0 || max != 2 {
		t.Errorf("MinMaxSize = %d,%d want 0,2", min, max)
	}
	if got := c.Imbalance(); got != 1.0 {
		t.Errorf("Imbalance = %v, want 1.0", got)
	}
	min, max = c.MinMaxSizeOf([]int{0, 1})
	if min != 1 || max != 2 {
		t.Errorf("MinMaxSizeOf([0,1]) = %d,%d want 1,2", min, max)
	}
	sizes := c.Sizes()
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 0 {
		t.Errorf("Sizes = %v", sizes)
	}
	sizes[0] = 99
	if c.Size(0) != 2 {
		t.Error("Sizes returned aliased storage")
	}
}

func TestMinMaxSizeOfEmptyPanics(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Error("MinMaxSizeOf(nil) did not panic")
		}
	}()
	c.MinMaxSizeOf(nil)
}

func TestImbalanceEmptyCache(t *testing.T) {
	if got := New(4).Imbalance(); got != 0 {
		t.Errorf("Imbalance on empty cache = %v, want 0", got)
	}
}

func TestReplicationDegree(t *testing.T) {
	c := New(4)
	if got := c.ReplicationDegree(); got != 0 {
		t.Errorf("ReplicationDegree on empty = %v", got)
	}
	// Vertex 0 on two partitions, vertices 1 and 2 on one each.
	c.Assign(graph.Edge{Src: 0, Dst: 1}, 0)
	c.Assign(graph.Edge{Src: 0, Dst: 2}, 1)
	if got := c.SumReplicas(); got != 4 {
		t.Errorf("SumReplicas = %d, want 4", got)
	}
	if got := c.ReplicationDegree(); got != 4.0/3.0 {
		t.Errorf("ReplicationDegree = %v, want 4/3", got)
	}
}

func TestForEachVertex(t *testing.T) {
	c := New(2)
	c.Assign(graph.Edge{Src: 0, Dst: 1}, 0)
	c.Assign(graph.Edge{Src: 1, Dst: 2}, 1)
	seen := make(map[graph.VertexID]int)
	c.ForEachVertex(func(v graph.VertexID, replicas bitset.Set) {
		seen[v] = replicas.Count()
	})
	want := map[graph.VertexID]int{0: 1, 1: 2, 2: 1}
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for v, c := range want {
		if seen[v] != c {
			t.Errorf("vertex %d: %d replicas, want %d", v, seen[v], c)
		}
	}
}

// Property: after any assignment sequence, Σ partition sizes == Assigned
// and MaxDegree >= every vertex degree.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(pairs []uint16) bool {
		const k = 8
		c := New(k)
		for i, pr := range pairs {
			e := graph.Edge{
				Src: graph.VertexID(pr % 50),
				Dst: graph.VertexID((pr >> 8) % 50),
			}
			c.Assign(e, i%k)
		}
		var total int64
		for p := 0; p < k; p++ {
			total += c.Size(p)
		}
		if total != c.Assigned() {
			return false
		}
		okDeg := true
		c.ForEachVertex(func(v graph.VertexID, _ bitset.Set) {
			if c.Degree(v) > c.MaxDegree() {
				okDeg = false
			}
		})
		return okDeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGrowthPreservesState drives the cache through several table growths
// (load factor crossings) and checks that degrees, replica sets, and
// aggregates survive the rehashes.
func TestGrowthPreservesState(t *testing.T) {
	const k, n = 8, 10_000
	c := New(k)
	for i := 0; i < n; i++ {
		e := graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
		c.Assign(e, i%k)
	}
	if got := c.Vertices(); got != n+1 {
		t.Fatalf("Vertices = %d, want %d", got, n+1)
	}
	if got := c.Assigned(); got != n {
		t.Fatalf("Assigned = %d, want %d", got, n)
	}
	// Interior vertex i touches edges i-1 (partition (i-1)%k) and i (i%k).
	for _, v := range []int{1, 500, 1023, 1024, 5000, n - 1} {
		if got := c.Degree(graph.VertexID(v)); got != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, got)
		}
		if !c.HasReplica(graph.VertexID(v), v%k) || !c.HasReplica(graph.VertexID(v), (v-1)%k) {
			t.Errorf("vertex %d lost a replica across growth", v)
		}
	}
	var total int64
	for p := 0; p < k; p++ {
		total += c.Size(p)
	}
	if total != c.Assigned() {
		t.Errorf("partition sizes sum to %d, want %d", total, c.Assigned())
	}
}

// TestLookupWordsMatchesLookup pins the word-level scan access against
// the Set-view form: same degree, same set bits — including across table
// growth — and (0, nil) for unknown vertices. The k values straddle the
// one-word/multi-word bitmap boundary.
func TestLookupWordsMatchesLookup(t *testing.T) {
	for _, k := range []int{3, 64, 130} {
		c := New(k)
		for i := 0; i < 5_000; i++ {
			e := graph.Edge{Src: graph.VertexID(i % 700), Dst: graph.VertexID((i * 37) % 700)}
			c.Assign(e, (i*13)%k)
		}
		for v := graph.VertexID(0); v < 700; v++ {
			deg, set := c.Lookup(v)
			wDeg, words := c.LookupWords(v)
			if wDeg != deg {
				t.Fatalf("k=%d v=%d: LookupWords degree %d, Lookup %d", k, v, wDeg, deg)
			}
			for p := 0; p < k; p++ {
				inWords := words[p>>6]&(1<<(uint(p)&63)) != 0
				if inWords != set.Contains(p) {
					t.Fatalf("k=%d v=%d p=%d: LookupWords bit %v, Replicas %v", k, v, p, inWords, set.Contains(p))
				}
			}
			// Padding bits past k-1 must be clear: the scan kernel walks
			// every set bit in the words, relying on partIdx only to drop
			// out-of-spread partitions, never out-of-range ones.
			for p := k; p < len(words)*64; p++ {
				if words[p>>6]&(1<<(uint(p)&63)) != 0 {
					t.Fatalf("k=%d v=%d: padding bit %d set", k, v, p)
				}
			}
		}
		if deg, words := c.LookupWords(graph.VertexID(1 << 30)); deg != 0 || words != nil {
			t.Fatalf("k=%d: unknown vertex returned (%d, %v), want (0, nil)", k, deg, words)
		}
	}
}
