package vcache

import (
	"testing"
	"testing/quick"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
)

// driveChain assigns a chain of n edges round-robin over k partitions —
// n+1 distinct vertices, enough to force growth or eviction.
func driveChain(s VertexState, k, n int) {
	for i := 0; i < n; i++ {
		s.Assign(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}, i%k)
	}
}

// TestNewWithHintSkipsRehashes pins the capacity-hint contract: a cache
// pre-sized for the stream's vertex count never rehashes on the way up,
// while an unhinted cache pays one doubling per load-factor crossing.
func TestNewWithHintSkipsRehashes(t *testing.T) {
	const k, n = 4, 50_000
	hinted := NewWithHint(k, n+1)
	driveChain(hinted, k, n)
	if got := hinted.Rehashes(); got != 0 {
		t.Errorf("hinted cache rehashed %d times, want 0", got)
	}
	unhinted := New(k)
	driveChain(unhinted, k, n)
	if got := unhinted.Rehashes(); got == 0 {
		t.Error("unhinted cache never rehashed over 50k inserts (hint test is vacuous)")
	}
	if hinted.Vertices() != unhinted.Vertices() || hinted.Assigned() != unhinted.Assigned() {
		t.Error("hinted and unhinted caches disagree on aggregates")
	}
}

// TestReserveIsIdempotentAndMonotone pins Reserve semantics: shrinking
// reservations are no-ops, growth preserves state.
func TestReserveIsIdempotentAndMonotone(t *testing.T) {
	c := New(4)
	driveChain(c, 4, 100)
	before := c.Bytes()
	c.Reserve(10) // smaller than the current table: no-op
	if c.Bytes() != before || c.Rehashes() != 0 {
		t.Error("Reserve below current size rehashed")
	}
	c.Reserve(100_000)
	if c.Bytes() <= before {
		t.Error("Reserve above current size did not grow")
	}
	if got := c.Degree(50); got != 2 {
		t.Errorf("Degree(50) = %d after Reserve, want 2", got)
	}
}

// TestBoundedHonorsBudget drives far more vertices than the budget can
// hold and checks the budget invariant: peak tracked bytes never exceed
// the effective budget, and evictions actually happened.
func TestBoundedHonorsBudget(t *testing.T) {
	const k, n = 8, 200_000
	budget := 4 * tableBytes(minSlots, 1, k) // room for a 4096-slot table
	b := NewBounded(k, budget)
	driveChain(b, k, n)
	if got := b.PeakBytes(); got > b.Budget() {
		t.Errorf("PeakBytes = %d exceeds budget %d", got, b.Budget())
	}
	if b.EvictedVertices() == 0 {
		t.Error("no evictions under a budget 50x smaller than the stream")
	}
	if b.Assigned() != n {
		t.Errorf("Assigned = %d, want %d (edge counts are exact under eviction)", b.Assigned(), n)
	}
	var total int64
	for p := 0; p < k; p++ {
		total += b.Size(p)
	}
	if total != n {
		t.Errorf("partition sizes sum to %d, want %d", total, n)
	}
	if got := uint64(b.Vertices()); got > (b.mask+1)*3/4 {
		t.Errorf("live vertices %d exceed load capacity of the budgeted table", got)
	}
}

// TestBoundedBudgetFloor pins that an absurdly small budget still yields
// a working minimum table rather than a panic or a zero-slot table.
func TestBoundedBudgetFloor(t *testing.T) {
	b := NewBounded(4, 1)
	if b.Budget() < tableBytes(minSlots, 1, 4) {
		t.Errorf("Budget = %d below minimum table", b.Budget())
	}
	driveChain(b, 4, 5_000)
	if b.Assigned() != 5_000 {
		t.Errorf("Assigned = %d, want 5000", b.Assigned())
	}
	if b.PeakBytes() > b.Budget() {
		t.Errorf("PeakBytes %d exceeds effective budget %d", b.PeakBytes(), b.Budget())
	}
}

// TestBoundedMaxDegreeHighWater pins the maxDeg staleness contract: the
// high-water mark survives eviction of the vertex that set it.
func TestBoundedMaxDegreeHighWater(t *testing.T) {
	const k = 4
	b := NewBounded(k, 1) // minimum table: evicts hard
	// Vertex 0 reaches degree 100 (self-loops bump only the src).
	for i := 0; i < 100; i++ {
		b.Assign(graph.Edge{Src: 0, Dst: 0}, i%k)
	}
	if got := b.MaxDegree(); got != 100 {
		t.Fatalf("MaxDegree = %d, want 100", got)
	}
	// The eviction ramp drops the lowest degrees first, so a flood of
	// degree-1 vertices never touches vertex 0 — flood with degree-128
	// vertices (each fully pumped before the next insert) so the ramp
	// must pass vertex 0's degree to find room.
	for v := graph.VertexID(10_000); b.Known(0) && v < 40_000; v++ {
		for j := 0; j < 128; j++ {
			b.Assign(graph.Edge{Src: v, Dst: v}, int(v)%k)
		}
	}
	if b.Known(0) {
		t.Fatal("vertex 0 never evicted under minimum budget (flood too small?)")
	}
	if got := b.MaxDegree(); got < 100 {
		t.Errorf("MaxDegree decayed to %d after evicting its vertex, want >= 100", got)
	}
	// An evicted vertex re-enters as degree 1 with an empty replica set.
	if got := b.Degree(0); got != 0 {
		t.Errorf("Degree(0) = %d after eviction, want 0", got)
	}
	newSrc, _ := b.Assign(graph.Edge{Src: 0, Dst: 1}, 0)
	if !newSrc {
		t.Error("re-inserted evicted vertex did not report a new replica")
	}
	if got := b.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d after re-insert, want 1", got)
	}
}

// TestBoundedMissAsUnseen pins the miss contract on evicted vertices:
// every read accessor reports exactly what it reports for a vertex never
// seen, including LookupWords' (0, nil).
func TestBoundedMissAsUnseen(t *testing.T) {
	const k = 4
	b := NewBounded(k, 1)
	b.Assign(graph.Edge{Src: 7, Dst: 8}, 2)
	for i := 0; b.Known(7) && i < 1<<20; i++ {
		b.Assign(graph.Edge{Src: graph.VertexID(100 + 2*i), Dst: graph.VertexID(101 + 2*i)}, i%k)
	}
	if b.Known(7) {
		t.Fatal("vertex 7 never evicted")
	}
	if deg, words := b.LookupWords(7); deg != 0 || words != nil {
		t.Errorf("LookupWords(evicted) = (%d, %v), want (0, nil)", deg, words)
	}
	if deg, reps := b.Lookup(7); deg != 0 || !reps.Empty() {
		t.Error("Lookup(evicted) nonzero")
	}
	if b.ReplicaCount(7) != 0 || b.HasReplica(7, 2) || !b.Replicas(7).Empty() {
		t.Error("evicted vertex still reports replicas")
	}
}

// TestBoundedTombstoneProbing exercises the three-state probe logic
// directly: a probe chain running through tombstones must still find live
// vertices past them, and tombstone slots must be reused cleanly.
func TestBoundedTombstoneProbing(t *testing.T) {
	const k = 4
	b := NewBounded(k, 1)
	// Fill past the eviction threshold several times over, interleaving
	// lookups of a long-chain survivor set.
	survivors := make(map[graph.VertexID]int)
	for i := 0; i < 40_000; i++ {
		v := graph.VertexID(i)
		b.Assign(graph.Edge{Src: v, Dst: v + 1}, int(v)%k)
	}
	// Whatever is held now must agree between ForEachVertex and find-based
	// accessors — a probe bug would lose vertices behind tombstones.
	b.ForEachVertex(func(v graph.VertexID, replicas bitset.Set) {
		survivors[v] = replicas.Count()
	})
	if len(survivors) != b.Vertices() {
		t.Fatalf("ForEachVertex visited %d vertices, Vertices() = %d", len(survivors), b.Vertices())
	}
	for v, rc := range survivors {
		if !b.Known(v) {
			t.Fatalf("vertex %d visited by ForEachVertex but not Known (probe lost it behind a tombstone)", v)
		}
		if got := b.ReplicaCount(v); got != rc {
			t.Fatalf("vertex %d: ReplicaCount %d != ForEachVertex view %d", v, got, rc)
		}
	}
	// Live slots + tombstones never exceed the table, and the load-factor
	// invariant that bounds probe chains holds.
	if uint64(b.live+b.dead)*4 > (b.mask+1)*3+4 {
		t.Errorf("occupied slots %d exceed 3/4 of %d-slot table", b.live+b.dead, b.mask+1)
	}
}

// TestBoundedUnlimitedMatchesCache is the layer-level equivalence
// property: with no budget, Bounded and Cache are observably identical
// under any assignment sequence (the engine-level edge-for-edge test
// lives in internal/core).
func TestBoundedUnlimitedMatchesCache(t *testing.T) {
	f := func(pairs []uint16) bool {
		const k = 8
		c := New(k)
		b := NewBounded(k, 0) // unlimited
		for i, pr := range pairs {
			e := graph.Edge{
				Src: graph.VertexID(pr % 97),
				Dst: graph.VertexID((pr >> 8) % 97),
			}
			cs, cd := c.Assign(e, i%k)
			bs, bd := b.Assign(e, i%k)
			if cs != bs || cd != bd {
				return false
			}
		}
		if c.Vertices() != b.Vertices() || c.Assigned() != b.Assigned() ||
			c.MaxDegree() != b.MaxDegree() || c.SumReplicas() != b.SumReplicas() {
			return false
		}
		for v := graph.VertexID(0); v < 97; v++ {
			cDeg, cWords := c.LookupWords(v)
			bDeg, bWords := b.LookupWords(v)
			if cDeg != bDeg || (cWords == nil) != (bWords == nil) {
				return false
			}
			for w := range cWords {
				if cWords[w] != bWords[w] {
					return false
				}
			}
		}
		if b.EvictedVertices() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBoundedReserveClampsToBudget pins that a reservation larger than
// the budget allows is clamped, not honoured.
func TestBoundedReserveClampsToBudget(t *testing.T) {
	const k = 4
	budget := 4 * tableBytes(minSlots, 1, k)
	b := NewBounded(k, budget)
	b.Reserve(1 << 20)
	if b.Bytes() > b.Budget() {
		t.Errorf("Reserve grew table to %d bytes past budget %d", b.Bytes(), b.Budget())
	}
	if b.PeakBytes() > b.Budget() {
		t.Errorf("PeakBytes %d past budget %d after Reserve", b.PeakBytes(), b.Budget())
	}
}

func TestVerticesHintForEdges(t *testing.T) {
	cases := []struct {
		edges int64
		want  int
	}{
		{-1, 0}, {0, 0}, {4, 1}, {1000, 250}, {int64(1) << 40, 1 << 31},
	}
	for _, tc := range cases {
		if got := VerticesHintForEdges(tc.edges); got != tc.want {
			t.Errorf("VerticesHintForEdges(%d) = %d, want %d", tc.edges, got, tc.want)
		}
	}
}

func TestBuildSelectsImplementation(t *testing.T) {
	if _, ok := Build(Options{K: 4}).(*Cache); !ok {
		t.Error("Build without budget did not return *Cache")
	}
	if _, ok := Build(Options{K: 4, VerticesHint: 5000}).(*Cache); !ok {
		t.Error("Build with hint did not return *Cache")
	}
	b, ok := Build(Options{K: 4, BudgetBytes: 1 << 20, VerticesHint: 5000}).(*Bounded)
	if !ok {
		t.Fatal("Build with budget did not return *Bounded")
	}
	if b.Bytes() > b.Budget() {
		t.Error("Build-reserved bounded table exceeds budget")
	}
}

func TestParseFormatBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"", 0}, {"0", 0}, {"4096", 4096}, {"1k", 1 << 10}, {"1KiB", 1 << 10},
		{"64MiB", 64 << 20}, {"64mb", 64 << 20}, {"1.5g", 3 << 29}, {"2TiB", 2 << 40},
		{" 512 MiB ", 512 << 20},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"x", "-1", "12qb", "MiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) did not error", bad)
		}
	}
	for n, want := range map[int64]string{
		512:      "512B",
		1 << 10:  "1.0KiB",
		64 << 20: "64.0MiB",
		3 << 29:  "1.5GiB",
		2 << 40:  "2.0TiB",
		16 << 20: "16.0MiB",
	} {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
