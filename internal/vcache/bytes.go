package vcache

import (
	"fmt"
	"strconv"
	"strings"
)

// byteUnits maps the accepted size suffixes to their byte multipliers.
// Binary (KiB/MiB/...) and decimal-looking (KB/MB/...) suffixes both mean
// the binary multiple — memory budgets are table allocations, and a "512MB"
// budget that silently meant 512·10⁶ would under-report the table by 5%.
var byteUnits = []struct {
	suffix string
	mult   int64
}{
	{"tib", 1 << 40}, {"tb", 1 << 40}, {"t", 1 << 40},
	{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
	{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
	{"b", 1},
}

// ParseBytes parses a human-readable byte size ("64MiB", "1.5g", "4096")
// into bytes. A bare number is bytes; suffixes are case-insensitive and
// binary (K=1024). The empty string parses as 0 (no budget).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range byteUnits {
		if strings.HasSuffix(t, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("vcache: invalid byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytes renders a byte count human-readably with binary units
// ("16.0MiB"), matching what ParseBytes accepts.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
		tib = 1 << 40
	)
	switch {
	case n >= tib:
		return fmt.Sprintf("%.1fTiB", float64(n)/float64(tib))
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(gib))
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(mib))
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(kib))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
