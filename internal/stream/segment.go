package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Segmented byte-range loading (paper §II Figure 3, §III-D): z loader
// instances each stream a disjoint chunk of one large graph file. Plan
// splits the file into z byte ranges aligned to line boundaries in a
// single counting pass — the same pass that makes Remaining exact for
// condition (C2) — and Segment streams one range via seek + bounded read
// behind the same Batcher interface as File. No instance ever holds the
// full edge list, which is what lets z loaders cover a graph file far
// larger than any one machine's memory.

// Range is one planned byte range of an edge-list file: the half-open
// interval [Start, End) aligned to an edge boundary (a line start for
// text, a record boundary for binary) and holding exactly Edges edges.
type Range struct {
	// Path is the edge-list file the range indexes into.
	Path string
	// Format is the file encoding the range was planned against; it
	// selects the reader OpenSegment builds. The zero value is FormatText.
	Format Format
	// Start and End delimit the byte range [Start, End). Start is always
	// an edge boundary; End is the next segment's Start (or the end of the
	// edge region).
	Start, End int64
	// Edges is the number of edges in the range — counted with the text
	// parser's own shape test, or derived by record arithmetic for binary
	// — so a segment's Remaining is exact.
	Edges int64
}

// Plan splits the text edge-list file at path into z byte ranges aligned
// to line boundaries. (Format-agnostic callers use PlanFile, which
// dispatches here for text and to PlanBinary's counting-free record
// arithmetic for ADWB.) The byte targets are size·i/z; each boundary snaps forward
// to the next line start, so a target that falls mid-line never splits an
// edge, and a boundary is deferred past its target until the range it
// closes holds at least one data line. The single pass also counts the
// data lines per range. When line lengths are so skewed that the
// byte-proportional split would still leave some range without a data line
// (a loader that streams nothing), Plan falls back to a second pass that
// splits by data-line count instead — same sizes as stream.Chunks — so any
// file with at least z data lines plans successfully. Fewer data lines
// than z is an error, mirroring the materialised executor's
// degenerate-input check.
func Plan(path string, z int) ([]Range, error) {
	if z < 1 {
		return nil, fmt.Errorf("stream: plan needs z >= 1, got %d", z)
	}
	size, err := fileSize(path)
	if err != nil {
		return nil, err
	}
	// Byte-proportional pass: close the live range at the first line start
	// at or past its target size·(i+1)/z, provided it holds a data line.
	var total int64
	ranges, err := planScan(path, z, func(p *planState) bool {
		return p.offset >= size*int64(len(p.ranges)+1)/int64(z)
	}, &total)
	if err != nil {
		return nil, err
	}
	if total < int64(z) {
		return nil, fmt.Errorf("stream: %s has %d data lines, cannot feed %d segment loaders", path, total, z)
	}
	for _, r := range ranges {
		if r.Edges == 0 {
			// Skewed alignment (e.g. one giant line spanning several byte
			// targets): re-plan by data-line count, which cannot leave a
			// range empty when total >= z.
			return planByCount(path, z, total)
		}
	}
	return ranges, nil
}

// planByCount splits by data-line count with stream.Chunks' size
// distribution (sizes differ by at most one, larger chunks first): the
// live range closes at the first line start after it reaches its quota.
func planByCount(path string, z int, total int64) ([]Range, error) {
	base, extra := total/int64(z), total%int64(z)
	quota := func(i int) int64 {
		q := base
		if int64(i) < extra {
			q++
		}
		return q
	}
	return planScan(path, z, func(p *planState) bool {
		return p.cur.Edges >= quota(len(p.ranges))
	}, new(int64))
}

// planState is the scan position planScan exposes to its boundary rule.
type planState struct {
	ranges []Range
	cur    Range
	offset int64 // byte offset of the line start under consideration
}

// planScan is the shared planning pass: one sequential read of path that
// counts data lines into the live range and closes it at a line start when
// shouldClose says so (never empty — a close additionally requires at
// least one data line). It returns exactly z ranges tiling [0, size] and
// accumulates the file's data-line count into total.
func planScan(path string, z int, shouldClose func(*planState) bool, total *int64) ([]Range, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s for planning: %w", path, err)
	}
	defer f.Close()

	p := planState{ranges: make([]Range, 0, z), cur: Range{Path: path}}
	closeRange := func(end int64) {
		p.cur.End = end
		p.ranges = append(p.ranges, p.cur)
		p.cur = Range{Path: path, Start: end}
	}

	br := bufio.NewReaderSize(f, 1<<20)
	for {
		line, rerr := br.ReadString('\n')
		if len(line) > 0 {
			if len(p.ranges) < z-1 && p.cur.Edges > 0 && shouldClose(&p) {
				closeRange(p.offset)
			}
			if isDataLine(strings.TrimSpace(line)) {
				p.cur.Edges++
				*total++
			}
			p.offset += int64(len(line))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("stream: planning %s: %w", path, rerr)
		}
	}
	// EOF: close the live range and pad to exactly z ranges tiling the
	// file, so callers can validate per-range counts uniformly.
	for len(p.ranges) < z {
		closeRange(p.offset)
	}
	return p.ranges, nil
}

func fileSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("stream: sizing %s: %w", path, err)
	}
	return st.Size(), nil
}

// Segment streams the edges of one planned byte range of a text edge
// list: seek to Start, then a read bounded at End. Ranges from the same
// plan never overlap, so z concurrent segments cover the file exactly
// once. It implements Batcher and the stream error contract exactly like
// File.
type Segment struct {
	f *os.File
	lineParser
}

// OpenSegment opens r's byte range as an edge stream, dispatching on the
// range's Format: text ranges get a line-parsing Segment, binary ranges a
// fixed-record BinaryFile. Remaining is exact from the plan — no
// per-segment counting pass either way.
func OpenSegment(r Range) (FileStream, error) {
	// Concrete results pass through an error check before entering the
	// interface return, so a failed open yields a truly nil FileStream —
	// never an interface wrapping a typed nil pointer.
	switch r.Format {
	case FormatText:
		s, err := openTextSegment(r)
		if err != nil {
			return nil, err
		}
		return s, nil
	case FormatBinary:
		s, err := OpenBinarySegment(r)
		if err != nil {
			return nil, err
		}
		return s, nil
	default:
		return nil, fmt.Errorf("stream: segment range of %s has unknown format %v", r.Path, r.Format)
	}
}

func openTextSegment(r Range) (*Segment, error) {
	if r.Start < 0 || r.End < r.Start {
		return nil, fmt.Errorf("stream: invalid segment range [%d,%d) of %s", r.Start, r.End, r.Path)
	}
	f, err := os.Open(r.Path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening segment of %s: %w", r.Path, err)
	}
	if _, err := f.Seek(r.Start, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("stream: seeking to byte %d of %s: %w", r.Start, r.Path, err)
	}
	return &Segment{
		f:          f,
		lineParser: newLineParser(io.LimitReader(f, r.End-r.Start), r.Edges),
	}, nil
}

// Close releases the underlying file handle.
func (s *Segment) Close() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("stream: closing segment: %w", err)
	}
	return nil
}
