package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"unicode"

	"github.com/adwise-go/adwise/internal/graph"
)

// maxLineBytes bounds the scanner token size for edge-list lines. A line
// longer than this is a stream error (bufio.ErrTooLong), surfaced via Err.
const maxLineBytes = 1024 * 1024

// lineParser is the text edge-list scanning core shared by File (whole
// file) and Segment (one planned byte range): a scanner over some byte
// range plus the exact remaining count established by the counting pass.
// It implements the stream error contract — a parse or scan failure zeroes
// the remainder and is reported by Err, so exhaustion with a pending error
// is distinguishable from clean completion.
type lineParser struct {
	sc        *bufio.Scanner
	remaining int64
	err       error
}

func newLineParser(r io.Reader, remaining int64) lineParser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLineBytes), maxLineBytes)
	return lineParser{sc: sc, remaining: remaining}
}

// fail records the stream error and zeroes the remainder: edges past the
// failure point will never arrive, and condition (C2) must not budget
// latency for them.
func (p *lineParser) fail(err error) {
	p.err = err
	p.remaining = 0
}

// Next implements Stream as a one-edge batch. A malformed line terminates
// the stream; the parse error is available via Err.
func (p *lineParser) Next() (graph.Edge, bool) {
	var one [1]graph.Edge
	if p.NextBatch(one[:]) == 0 {
		return graph.Edge{}, false
	}
	return one[0], true
}

// NextBatch implements Batcher: it parses up to len(dst) edges in one call,
// touching the scanner in a tight loop so the per-edge cost is line parsing
// alone rather than parsing plus interface dispatch per edge.
func (p *lineParser) NextBatch(dst []graph.Edge) int {
	if p.err != nil {
		return 0
	}
	n := 0
	for n < len(dst) && p.sc.Scan() {
		line := strings.TrimSpace(p.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			p.fail(fmt.Errorf("stream: malformed line %q", line))
			return n
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			p.fail(fmt.Errorf("stream: parsing src %q: %w", fields[0], err))
			return n
		}
		dstID, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			p.fail(fmt.Errorf("stream: parsing dst %q: %w", fields[1], err))
			return n
		}
		p.remaining--
		dst[n] = graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dstID)}
		n++
	}
	if n < len(dst) && p.err == nil {
		if err := p.sc.Err(); err != nil {
			p.fail(fmt.Errorf("stream: scanning edge list: %w", err))
		}
	}
	return n
}

// Remaining implements Stream. After a stream error it reports 0: a failed
// stream has no usable remainder.
func (p *lineParser) Remaining() int64 { return p.remaining }

// Err implements Errer: the first error encountered while streaming, or
// nil on clean exhaustion.
func (p *lineParser) Err() error { return p.err }

// isDataLine reports whether a trimmed line is one the parser would attempt
// to parse as an edge: non-empty, not a comment, and at least two fields.
// The counting pass and the parser share this shape test so Remaining
// counts exactly the lines NextBatch parses.
func isDataLine(trimmed string) bool {
	if trimmed == "" || trimmed[0] == '#' || trimmed[0] == '%' {
		return false
	}
	i := strings.IndexFunc(trimmed, unicode.IsSpace)
	return i >= 0 && strings.TrimSpace(trimmed[i:]) != ""
}

// File streams edges from a text edge-list file without materialising the
// graph in memory — the loading model of Figure 3 in the paper, where "the
// graph data is stored in a large file ... the streaming partitioning
// algorithm loads the data as a stream of graph edges".
//
// The edge count is established up front with a line count pass, exactly as
// the paper suggests for condition (C2).
type File struct {
	f *os.File
	lineParser
}

// OpenFile opens path as an edge stream. The first pass counts data lines
// so Remaining is exact; the counting pass and the parse share one handle,
// so the count cannot race a concurrent file swap.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s: %w", path, err)
	}
	fs, err := openFileHandle(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// openFileHandle builds the text stream over an already-open handle
// positioned anywhere: it counts data lines from the start, rewinds, and
// parses from the same handle.
func openFileHandle(f *os.File) (*File, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("stream: rewinding %s: %w", f.Name(), err)
	}
	count, err := countDataLinesIn(f)
	if err != nil {
		return nil, fmt.Errorf("stream: counting lines in %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("stream: rewinding %s: %w", f.Name(), err)
	}
	return &File{f: f, lineParser: newLineParser(f, count)}, nil
}

// countDataLinesIn is the counting pass over any reader: it counts exactly
// the lines the parser would attempt to parse (isDataLine), which is what
// keeps Remaining and NextBatch in agreement.
func countDataLinesIn(r io.Reader) (int64, error) {
	var count int64
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		line, err := br.ReadString('\n')
		if isDataLine(strings.TrimSpace(line)) {
			count++
		}
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// Close releases the underlying file.
func (fs *File) Close() error {
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("stream: closing file: %w", err)
	}
	return nil
}
