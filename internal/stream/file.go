package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/adwise-go/adwise/internal/graph"
)

// File streams edges from a text edge-list file without materialising the
// graph in memory — the loading model of Figure 3 in the paper, where "the
// graph data is stored in a large file ... the streaming partitioning
// algorithm loads the data as a stream of graph edges".
//
// The edge count is established up front with a line count pass, exactly as
// the paper suggests for condition (C2).
type File struct {
	f         *os.File
	sc        *bufio.Scanner
	remaining int64
	err       error
}

// OpenFile opens path as an edge stream. The first pass counts data lines
// so Remaining is exact.
func OpenFile(path string) (*File, error) {
	count, err := countDataLines(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s: %w", path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return &File{f: f, sc: sc, remaining: count}, nil
}

func countDataLines(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("stream: opening %s for counting: %w", path, err)
	}
	defer f.Close()
	var count int64
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && trimmed[0] != '#' && trimmed[0] != '%' {
			count++
		}
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return 0, fmt.Errorf("stream: counting lines in %s: %w", path, err)
		}
	}
}

// Next implements Stream as a one-edge batch. A malformed line terminates
// the stream; the parse error is available via Err.
func (fs *File) Next() (graph.Edge, bool) {
	var one [1]graph.Edge
	if fs.NextBatch(one[:]) == 0 {
		return graph.Edge{}, false
	}
	return one[0], true
}

// NextBatch implements Batcher: it parses up to len(dst) edges in one call,
// touching the scanner in a tight loop so the per-edge cost is line parsing
// alone rather than parsing plus interface dispatch per edge.
func (fs *File) NextBatch(dst []graph.Edge) int {
	if fs.err != nil {
		return 0
	}
	n := 0
	for n < len(dst) && fs.sc.Scan() {
		line := strings.TrimSpace(fs.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			fs.err = fmt.Errorf("stream: malformed line %q", line)
			return n
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			fs.err = fmt.Errorf("stream: parsing src %q: %w", fields[0], err)
			return n
		}
		dstID, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			fs.err = fmt.Errorf("stream: parsing dst %q: %w", fields[1], err)
			return n
		}
		fs.remaining--
		dst[n] = graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dstID)}
		n++
	}
	if n < len(dst) && fs.err == nil {
		fs.err = fs.sc.Err()
	}
	return n
}

// Remaining implements Stream.
func (fs *File) Remaining() int64 { return fs.remaining }

// Err returns the first error encountered while streaming, or nil on clean
// exhaustion.
func (fs *File) Err() error { return fs.err }

// Close releases the underlying file.
func (fs *File) Close() error {
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("stream: closing file: %w", err)
	}
	return nil
}
