package stream

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// writeBinaryFile writes edges as an ADWB file and returns its path.
func writeBinaryFile(t *testing.T, edges []graph.Edge) string {
	t.Helper()
	g := &graph.Graph{NumV: 1 << 20, Edges: edges}
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func randomEdges(rng *rand.Rand, n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(rng.Uint32()),
			Dst: graph.VertexID(rng.Uint32()),
		}
	}
	return edges
}

func TestBinaryFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	edges := randomEdges(rng, 1000)
	path := writeBinaryFile(t, edges)

	bf, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	if rem := bf.Remaining(); rem != int64(len(edges)) {
		t.Fatalf("Remaining = %d, want %d", rem, len(edges))
	}
	got := drain(t, bf)
	if err := bf.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("drained %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	if bf.Remaining() != 0 {
		t.Errorf("Remaining after drain = %d, want 0", bf.Remaining())
	}
}

func TestBinaryFileNextMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	edges := randomEdges(rng, 100)
	path := writeBinaryFile(t, edges)
	bf, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	for i, want := range edges {
		e, ok := bf.Next()
		if !ok {
			t.Fatalf("Next exhausted at edge %d of %d", i, len(edges))
		}
		if e != want {
			t.Fatalf("edge %d = %v, want %v", i, e, want)
		}
	}
	if _, ok := bf.Next(); ok {
		t.Error("Next yielded an edge past the declared count")
	}
}

func TestOpenBinaryFileRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	valid := func(numE uint64, dataBytes int) []byte {
		return append(binaryHeaderBytes(10, numE), make([]byte, dataBytes)...)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      []byte("ADWB\x01"),
		"bad magic":         valid(2, 16)[1:],
		"truncated body":    valid(4, 24),    // declares 4 records, holds 3
		"trailing bytes":    valid(2, 17),    // one stray byte after records
		"torn record":       valid(2, 12),    // second record cut mid-way
		"overlong declared": valid(1<<40, 8), // implausible count
	}
	for name, data := range cases {
		if _, err := OpenBinaryFile(write(name, data)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
		if _, err := PlanBinary(write(name, data), 1); err == nil {
			t.Errorf("%s: planned, want error", name)
		}
	}
	// Sanity: the valid template really is valid.
	if _, err := OpenBinaryFile(write("valid", valid(2, 16))); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
}

func TestBinaryFileReportsMidStreamTruncation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	edges := randomEdges(rng, 512)
	path := writeBinaryFile(t, edges)
	bf, err := OpenBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	// Shrink the file after the size validation: the stream must fail, not
	// exhaust short with a nil Err.
	if err := os.Truncate(path, graph.BinaryHeaderSize+100*graph.BinaryRecordSize); err != nil {
		t.Fatal(err)
	}
	got := drain(t, bf)
	if bf.Err() == nil {
		t.Fatalf("drained %d of %d edges from a truncated file with nil Err", len(got), len(edges))
	}
	if bf.Remaining() != 0 {
		t.Errorf("Remaining after stream error = %d, want 0", bf.Remaining())
	}
}

func TestPlanBinarySegmentsCoverEveryEdgeOnce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for round := 0; round < 40; round++ {
		n := 1 + rng.IntN(500)
		z := 1 + rng.IntN(8)
		if z > n {
			z = n
		}
		edges := randomEdges(rng, n)
		path := writeBinaryFile(t, edges)
		ranges, err := PlanBinary(path, z)
		if err != nil {
			t.Fatalf("round %d (n=%d z=%d): %v", round, n, z, err)
		}
		var got []graph.Edge
		for i, r := range ranges {
			seg, err := OpenSegment(r)
			if err != nil {
				t.Fatal(err)
			}
			part := drain(t, seg)
			if err := seg.Err(); err != nil {
				t.Fatalf("round %d segment %d: %v", round, i, err)
			}
			if int64(len(part)) != r.Edges {
				t.Fatalf("round %d segment %d: %d edges, planned %d", round, i, len(part), r.Edges)
			}
			seg.Close()
			got = append(got, part...)
		}
		if len(got) != n {
			t.Fatalf("round %d: segments yielded %d edges, want %d", round, len(got), n)
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("round %d: edge %d = %v, want %v", round, i, got[i], edges[i])
			}
		}
	}
}

// TestPlanBinaryTilesRecordRegion is the pure-arithmetic property: for
// random edge counts and z, the planned ranges tile the record region
// exactly — contiguous, record-aligned, Chunks-distributed sizes, counts
// consistent with the byte math — without ever opening a segment.
func TestPlanBinaryTilesRecordRegion(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for round := 0; round < 200; round++ {
		n := 1 + rng.IntN(100_000)
		z := 1 + rng.IntN(64)
		if z > n {
			z = n
		}
		path := writeSyntheticBinary(t, uint64(n))
		ranges, err := PlanBinary(path, z)
		if err != nil {
			t.Fatalf("round %d (n=%d z=%d): %v", round, n, z, err)
		}
		if len(ranges) != z {
			t.Fatalf("round %d: %d ranges, want %d", round, len(ranges), z)
		}
		offset := int64(graph.BinaryHeaderSize)
		var total int64
		base, extra := int64(n)/int64(z), int64(n)%int64(z)
		for i, r := range ranges {
			if r.Format != FormatBinary {
				t.Fatalf("round %d range %d format = %v", round, i, r.Format)
			}
			if r.Start != offset {
				t.Fatalf("round %d range %d starts at %d, want %d (ranges must tile)", round, i, r.Start, offset)
			}
			if (r.End-r.Start)%graph.BinaryRecordSize != 0 {
				t.Fatalf("round %d range %d [%d,%d) not record-aligned", round, i, r.Start, r.End)
			}
			if got := (r.End - r.Start) / graph.BinaryRecordSize; got != r.Edges {
				t.Fatalf("round %d range %d spans %d records but declares %d", round, i, got, r.Edges)
			}
			want := base
			if int64(i) < extra {
				want++
			}
			if r.Edges != want {
				t.Fatalf("round %d range %d holds %d records, want Chunks size %d", round, i, r.Edges, want)
			}
			offset = r.End
			total += r.Edges
		}
		if total != int64(n) {
			t.Fatalf("round %d: ranges hold %d records, want %d", round, total, n)
		}
		if end := int64(graph.BinaryHeaderSize) + int64(n)*graph.BinaryRecordSize; offset != end {
			t.Fatalf("round %d: last range ends at %d, want record region end %d", round, offset, end)
		}
	}
}

// writeSyntheticBinary creates an ADWB file declaring numE records whose
// data region is a hole (never written): planning must still work, because
// it reads the header and stats the size — nothing else.
func writeSyntheticBinary(t *testing.T, numE uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synthetic.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(binaryHeaderBytes(1, numE)); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(graph.BinaryHeaderSize) + int64(numE)*graph.BinaryRecordSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPlanBinaryNeverReadsDataRegion pins the O(1) acceptance criterion:
// planning an ADWB file is header arithmetic only. The fixture declares a
// multi-GiB record region that exists only as a filesystem hole — any
// implementation that scanned or counted the data would grind through
// gigabytes of zeros; header arithmetic returns instantly with exact
// ranges.
func TestPlanBinaryNeverReadsDataRegion(t *testing.T) {
	const numE = 1 << 28 // 2 GiB of records, all hole
	path := writeSyntheticBinary(t, numE)
	for _, z := range []int{1, 7, 64} {
		ranges, err := PlanBinary(path, z)
		if err != nil {
			t.Fatalf("z=%d: %v", z, err)
		}
		var total int64
		for _, r := range ranges {
			total += r.Edges
		}
		if total != numE {
			t.Fatalf("z=%d: planned %d records, want %d", z, total, numE)
		}
		if end := ranges[len(ranges)-1].End; end != int64(graph.BinaryHeaderSize)+numE*graph.BinaryRecordSize {
			t.Fatalf("z=%d: region ends at %d", z, end)
		}
	}
}

func TestOpenBinarySegmentRejectsBadRanges(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	path := writeBinaryFile(t, randomEdges(rng, 16))
	const h = graph.BinaryHeaderSize
	cases := map[string]Range{
		"inside header":   {Path: path, Format: FormatBinary, Start: h - 4, End: h + 8, Edges: 1},
		"inverted":        {Path: path, Format: FormatBinary, Start: h + 16, End: h + 8, Edges: 1},
		"unaligned start": {Path: path, Format: FormatBinary, Start: h + 3, End: h + 11, Edges: 1},
		"unaligned span":  {Path: path, Format: FormatBinary, Start: h, End: h + 13, Edges: 1},
		"count mismatch":  {Path: path, Format: FormatBinary, Start: h, End: h + 16, Edges: 3},
		"past region":     {Path: path, Format: FormatBinary, Start: h, End: h + 17*graph.BinaryRecordSize, Edges: 17},
	}
	for name, r := range cases {
		if _, err := OpenBinarySegment(r); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func TestOpenAndPlanFileDispatchOnFormat(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	edges := randomEdges(rng, 64)
	binPath := writeBinaryFile(t, edges)
	var txt bytes.Buffer
	for _, e := range edges {
		fmt.Fprintf(&txt, "%d %d\n", e.Src, e.Dst)
	}
	txtPath := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path   string
		format Format
	}{
		{binPath, FormatBinary},
		{txtPath, FormatText},
	} {
		if f, err := Sniff(tc.path); err != nil || f != tc.format {
			t.Fatalf("Sniff(%s) = %v, %v; want %v", tc.path, f, err, tc.format)
		}
		s, err := Open(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, s)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if len(got) != len(edges) {
			t.Fatalf("%v Open drained %d edges, want %d", tc.format, len(got), len(edges))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("%v edge %d = %v, want %v", tc.format, i, got[i], edges[i])
			}
		}
		ranges, err := PlanFile(tc.path, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ranges {
			if r.Format != tc.format {
				t.Fatalf("PlanFile(%s) range %d format = %v, want %v", tc.path, i, r.Format, tc.format)
			}
		}
	}

	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open on a missing file succeeded")
	}
	if _, err := PlanFile(filepath.Join(t.TempDir(), "nope"), 2); err == nil {
		t.Error("PlanFile on a missing file succeeded")
	}
}
