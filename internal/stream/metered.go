package stream

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
)

// Metric names published by the ingest layer when runs are instrumented
// (runtime.Spec.Metrics). Edges tick live per batch, so a flusher sampling
// the registry sees ingest progress — and edges/sec — while a pass runs.
const (
	// MetricEdgesRead counts edges drawn from instrumented streams.
	MetricEdgesRead = "stream.edges_read"
	// MetricSegmentsDone counts instrumented segment streams that reached
	// exhaustion.
	MetricSegmentsDone = "stream.segments_done"
	// MetricBytesPlanned totals the byte lengths of the planned segment
	// ranges of instrumented file runs.
	MetricBytesPlanned = "stream.bytes_planned"
)

// Metered wraps a Stream, mirroring the edges drawn from it onto a live
// telemetry counter and firing a hook exactly once at exhaustion. The
// counter ticks once per batch on batch-capable inner streams, so the cost
// is one atomic add per DefaultBatchSize edges, not per edge.
type Metered struct {
	inner Stream
	edges *metric.Counter
	done  func()
	fired bool
}

// NewMetered wraps s. edges may be nil (edge counting disabled); done may
// be nil (no exhaustion hook).
func NewMetered(s Stream, edges *metric.Counter, done func()) *Metered {
	return &Metered{inner: s, edges: edges, done: done}
}

// Next implements Stream.
func (m *Metered) Next() (graph.Edge, bool) {
	e, ok := m.inner.Next()
	if ok {
		if m.edges != nil {
			m.edges.Inc(1)
		}
	} else {
		m.exhausted()
	}
	return e, ok
}

// NextBatch implements Batcher: one counter tick per batch.
func (m *Metered) NextBatch(dst []graph.Edge) int {
	n := NextBatch(m.inner, dst)
	if n > 0 {
		if m.edges != nil {
			m.edges.Inc(int64(n))
		}
	} else {
		m.exhausted()
	}
	return n
}

// Remaining implements Stream.
func (m *Metered) Remaining() int64 { return m.inner.Remaining() }

// Err implements Errer, forwarding the inner stream's error state.
func (m *Metered) Err() error { return Err(m.inner) }

func (m *Metered) exhausted() {
	if m.fired || m.done == nil {
		return
	}
	m.fired = true
	m.done()
}
