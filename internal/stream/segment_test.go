package stream

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

func TestPlanTilesFileOnLineBoundaries(t *testing.T) {
	content := "# header\n0 1\n1 2\n2 3\n% comment\n3 4\n4 5\n5 6\n"
	path := writeFile(t, content)
	ranges, err := Plan(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 3 {
		t.Fatalf("Plan returned %d ranges, want 3", len(ranges))
	}
	var offset, total int64
	for i, r := range ranges {
		if r.Start != offset {
			t.Errorf("range %d starts at %d, want %d (ranges must tile)", i, r.Start, offset)
		}
		if r.Start > 0 && content[r.Start-1] != '\n' {
			t.Errorf("range %d starts mid-line at byte %d", i, r.Start)
		}
		offset = r.End
		total += r.Edges
	}
	if offset != int64(len(content)) {
		t.Errorf("last range ends at %d, want file size %d", offset, len(content))
	}
	if total != 6 {
		t.Errorf("planned %d data lines, want 6", total)
	}
}

func TestPlanErrors(t *testing.T) {
	path := writeFile(t, "0 1\n1 2\n")
	if _, err := Plan(path, 0); err == nil {
		t.Error("z=0 accepted")
	}
	if _, err := Plan(filepath.Join(t.TempDir(), "nope.txt"), 2); err == nil {
		t.Error("missing file accepted")
	}
	// Fewer data lines than z: some loader would stream nothing.
	if _, err := Plan(path, 3); err == nil {
		t.Error("z above the data line count accepted")
	}
}

func TestSegmentStreamsItsRangeExactly(t *testing.T) {
	path := writeFile(t, "0 1\n1 2\n2 3\n3 4\n4 5\n")
	ranges, err := Plan(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []graph.Edge
	for i, r := range ranges {
		seg, err := OpenSegment(r)
		if err != nil {
			t.Fatal(err)
		}
		if rem := seg.Remaining(); rem != r.Edges {
			t.Errorf("segment %d Remaining = %d, want planned %d", i, rem, r.Edges)
		}
		edges := drain(t, seg)
		if int64(len(edges)) != r.Edges {
			t.Errorf("segment %d yielded %d edges, planned %d", i, len(edges), r.Edges)
		}
		if err := seg.Err(); err != nil {
			t.Errorf("segment %d: %v", i, err)
		}
		if err := seg.Close(); err != nil {
			t.Error(err)
		}
		got = append(got, edges...)
	}
	for i, e := range got {
		if e != (graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}) {
			t.Fatalf("edge %d = %v out of order", i, e)
		}
	}
}

func TestOpenSegmentRejectsInvalidRange(t *testing.T) {
	path := writeFile(t, "0 1\n")
	if _, err := OpenSegment(Range{Path: path, Start: 5, End: 2}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := OpenSegment(Range{Path: path, Start: -1, End: 2}); err == nil {
		t.Error("negative start accepted")
	}
}

func TestSegmentForwardsParseErrors(t *testing.T) {
	path := writeFile(t, "0 1\n1 2\nbroken\n2 3\n3 4\n4 5\n")
	ranges, err := Plan(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for _, r := range ranges {
		seg, err := OpenSegment(r)
		if err != nil {
			t.Fatal(err)
		}
		drain(t, seg)
		if seg.Err() != nil {
			sawErr = true
			if seg.Remaining() != 0 {
				t.Errorf("Remaining after segment error = %d, want 0", seg.Remaining())
			}
		}
		seg.Close()
	}
	if !sawErr {
		t.Error("no segment reported the malformed line")
	}
}

// TestPlanNeverLeavesALoaderEmpty pins the skewed-alignment cases: every
// range of a successful Plan holds at least one data line even when the
// byte-proportional targets all fall inside comment blocks or one giant
// line — files the materialised chunker handles, so the planner must too.
func TestPlanNeverLeavesALoaderEmpty(t *testing.T) {
	files := map[string]string{
		// Both byte targets (z=3) land inside the trailing comment block.
		"comment tail": "0 1\n1 2\n2 3\n" + strings.Repeat("# padding comment line\n", 40),
		// A giant comment line spans every interior byte target.
		"giant line": "0 1\n1 2\n2 3\n# " + strings.Repeat("x", 4096) + "\n",
		// Leading comment block pushes all data past the first target.
		"comment head": strings.Repeat("# header padding\n", 40) + "0 1\n1 2\n2 3\n",
		// Last data line far longer than the rest.
		"fat last line": "0 1\n1 2\n1048575 1048575          \n",
	}
	for name, content := range files {
		t.Run(name, func(t *testing.T) {
			path := writeFile(t, content)
			z := 3
			ranges, err := Plan(path, z)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for i, r := range ranges {
				if r.Edges == 0 {
					t.Errorf("range %d planned with no data lines: %+v", i, r)
				}
				seg, err := OpenSegment(r)
				if err != nil {
					t.Fatal(err)
				}
				got := drain(t, seg)
				if err := seg.Err(); err != nil {
					t.Fatalf("range %d: %v", i, err)
				}
				if int64(len(got)) != r.Edges {
					t.Errorf("range %d yielded %d edges, planned %d", i, len(got), r.Edges)
				}
				total += int64(len(got))
				seg.Close()
			}
			if total != 3 {
				t.Errorf("segments yielded %d edges, want 3", total)
			}
		})
	}
}

// randomEdgeFile writes n edges with randomised id widths, comment lines,
// blank lines, varying separators, and a randomised trailing newline —
// exercising every way a byte target can fall mid-line.
func randomEdgeFile(t *testing.T, rng *rand.Rand, n int) (string, []graph.Edge) {
	t.Helper()
	var (
		b    strings.Builder
		want []graph.Edge
	)
	for i := 0; i < n; i++ {
		switch rng.IntN(6) {
		case 0:
			b.WriteString("# a comment line of random length ")
			b.WriteString(strings.Repeat("x", rng.IntN(40)))
			b.WriteString("\n")
		case 1:
			b.WriteString("\n")
		}
		src := graph.VertexID(rng.Uint64N(1 << rng.IntN(30)))
		dst := graph.VertexID(rng.Uint64N(1 << rng.IntN(30)))
		sep := " "
		if rng.IntN(2) == 0 {
			sep = "\t"
		}
		fmt.Fprintf(&b, "%d%s%d", src, sep, dst)
		want = append(want, graph.Edge{Src: src, Dst: dst})
		if i < n-1 || rng.IntN(2) == 0 {
			b.WriteString("\n")
		}
	}
	path := filepath.Join(t.TempDir(), "rand.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, want
}

// Property: for any newline alignment and any z, the planned segments
// cover every edge exactly once, in order, with exact per-segment counts —
// and match what a whole-file stream produces.
func TestQuickSegmentsCoverEveryEdgeOnce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0x5e6))
	for round := 0; round < 60; round++ {
		n := 1 + rng.IntN(200)
		z := 1 + rng.IntN(8)
		if z > n {
			z = n
		}
		path, want := randomEdgeFile(t, rng, n)
		ranges, err := Plan(path, z)
		if err != nil {
			t.Fatalf("round %d (n=%d z=%d): %v", round, n, z, err)
		}
		if len(ranges) != z {
			t.Fatalf("round %d: Plan returned %d ranges, want %d", round, len(ranges), z)
		}
		var got []graph.Edge
		prevEnd := int64(0)
		for i, r := range ranges {
			if r.Start != prevEnd {
				t.Fatalf("round %d: range %d starts at %d, want %d", round, i, r.Start, prevEnd)
			}
			prevEnd = r.End
			seg, err := OpenSegment(r)
			if err != nil {
				t.Fatal(err)
			}
			edges := drain(t, seg)
			if err := seg.Err(); err != nil {
				t.Fatalf("round %d segment %d: %v", round, i, err)
			}
			if int64(len(edges)) != r.Edges {
				t.Fatalf("round %d segment %d: %d edges, planned %d", round, i, len(edges), r.Edges)
			}
			seg.Close()
			got = append(got, edges...)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d (n=%d z=%d): segments yielded %d edges, want %d", round, n, z, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: edge %d = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}
