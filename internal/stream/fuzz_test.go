package stream

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// Fuzz targets for both ingest decoders. The seed corpus mirrors the
// fixtures the deterministic tests use: well-formed files, comments and
// blank lines, malformed lines, truncated and corrupt headers.

func FuzzLineParser(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 3\n"))
	f.Add([]byte("# header\n0 1\n% comment\n\n1 2\t3\n"))
	f.Add([]byte("0 1\nbroken\n2 3\n"))
	f.Add([]byte("0 1\n1 2\nbroken line here no\n2 3\n3 4\n"))
	f.Add([]byte("9999999999999999999 1\n"))
	f.Add([]byte("4294967296 0\n")) // src one past the 32-bit id space
	f.Add([]byte("0 1"))            // no trailing newline
	f.Add([]byte("  7   9   extra fields 12\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The counting pass and the parser must agree: on a clean parse the
		// edge count equals the counted data lines and Remaining hits 0; on
		// a failed parse Remaining is zeroed.
		count, err := countDataLinesIn(bytes.NewReader(data))
		if err != nil {
			t.Skip() // reader over bytes cannot fail; defensive
		}
		parse := func(batch int) (int64, error) {
			p := newLineParser(bytes.NewReader(data), count)
			buf := make([]graph.Edge, batch)
			var got int64
			for {
				n := p.NextBatch(buf)
				if n == 0 {
					break
				}
				got += int64(n)
			}
			if p.err != nil && p.Remaining() != 0 {
				t.Fatalf("Remaining = %d after parse error %v, want 0", p.Remaining(), p.err)
			}
			if p.err == nil {
				if got != count {
					t.Fatalf("clean parse yielded %d edges, counting pass says %d", got, count)
				}
				if p.Remaining() != 0 {
					t.Fatalf("Remaining = %d after clean exhaustion, want 0", p.Remaining())
				}
			}
			return got, p.err
		}
		gotBig, errBig := parse(512)
		gotOne, errOne := parse(1)
		if gotBig != gotOne || (errBig == nil) != (errOne == nil) {
			t.Fatalf("batch-size dependence: batch=512 -> (%d, %v), batch=1 -> (%d, %v)",
				gotBig, errBig, gotOne, errOne)
		}
	})
}

func fuzzBinarySeed(edges []graph.Edge) []byte {
	var b bytes.Buffer
	_ = graph.WriteBinary(&b, &graph.Graph{NumV: 16, Edges: edges})
	return b.Bytes()
}

func FuzzBinaryFile(f *testing.F) {
	valid := fuzzBinarySeed([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                     // torn trailing record
	f.Add(valid[:graph.BinaryHeaderSize])           // header only, declares 3 records
	f.Add(append(append([]byte{}, valid...), 0xff)) // trailing garbage
	f.Add([]byte("ADWB"))
	f.Add([]byte("ADWBxxxxxxxxxxxxxxxx"))
	f.Add([]byte("0 1\n1 2\n"))        // text masquerading as binary input
	f.Add(binaryHeaderBytes(1, 1<<40)) // hostile edge count, no data
	f.Add(binaryHeaderBytes(1<<40, 1)) // vertex count past the id space
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		bf, err := OpenBinaryFile(path)
		if err != nil {
			return // rejected at validation — the common, correct outcome
		}
		defer bf.Close()
		// The open validated the header against the file size, so the
		// stream must drain cleanly to exactly the declared record count.
		want := bf.Remaining()
		var got int64
		buf := make([]graph.Edge, 64)
		for {
			n := bf.NextBatch(buf)
			if n == 0 {
				break
			}
			got += int64(n)
		}
		if err := bf.Err(); err != nil {
			t.Fatalf("validated binary file failed mid-stream: %v", err)
		}
		if got != want {
			t.Fatalf("drained %d records, header declared %d", got, want)
		}

		// Segments must partition exactly the same records.
		if want >= 2 {
			ranges, err := PlanBinary(path, 2)
			if err != nil {
				t.Fatalf("open succeeded but planning failed: %v", err)
			}
			var segTotal int64
			for _, r := range ranges {
				seg, err := OpenSegment(r)
				if err != nil {
					t.Fatal(err)
				}
				for {
					n := seg.NextBatch(buf)
					if n == 0 {
						break
					}
					segTotal += int64(n)
				}
				if err := seg.Err(); err != nil {
					t.Fatalf("segment of validated file failed: %v", err)
				}
				seg.Close()
			}
			if segTotal != want {
				t.Fatalf("segments drained %d records, header declared %d", segTotal, want)
			}
		}
	})
}

// binaryHeaderBytes builds a bare ADWB header for hostile-header seeds.
func binaryHeaderBytes(numV, numE uint64) []byte {
	hdr := make([]byte, graph.BinaryHeaderSize)
	copy(hdr, "ADWB")
	binary.LittleEndian.PutUint64(hdr[4:12], numV)
	binary.LittleEndian.PutUint64(hdr[12:20], numE)
	return hdr
}
