package stream

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// The stream error contract: exhaustion with a pending Err is a failure,
// never a short success, and every wrapper forwards the inner error state.

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func openBad(t *testing.T) *File {
	t.Helper()
	fs, err := OpenFile(writeFile(t, "0 1\nbogus\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestErrNilForInfallibleStreams(t *testing.T) {
	if err := Err(FromEdges(edgesN(3))); err != nil {
		t.Errorf("Err on slice stream = %v, want nil", err)
	}
}

func TestErrForwardedThroughWrappers(t *testing.T) {
	wrappers := map[string]func(Stream) Stream{
		"buffered": func(s Stream) Stream { return NewBuffered(s, 4) },
		"counted":  func(s Stream) Stream { return &Counted{Inner: s} },
		"limit":    func(s Stream) Stream { return &Limit{Inner: s, Max: 100} },
		"nested": func(s Stream) Stream {
			return NewBuffered(&Counted{Inner: &Limit{Inner: s, Max: 100}}, 4)
		},
	}
	for name, wrap := range wrappers {
		t.Run(name, func(t *testing.T) {
			s := wrap(openBad(t))
			got := drain(t, s)
			if len(got) != 1 {
				t.Errorf("drained %d edges before failure, want 1", len(got))
			}
			if Err(s) == nil {
				t.Error("wrapper hid the inner stream's error")
			}
		})
	}
}

func TestCollectReturnsStreamError(t *testing.T) {
	edges, err := Collect(openBad(t))
	if err == nil {
		t.Fatalf("Collect of failing stream returned %d edges and no error", len(edges))
	}
}

func TestFileRemainingZeroedOnError(t *testing.T) {
	fs := openBad(t)
	drain(t, fs)
	if fs.Err() == nil {
		t.Fatal("no stream error recorded")
	}
	if got := fs.Remaining(); got != 0 {
		t.Errorf("Remaining after error = %d, want 0 (no usable remainder)", got)
	}
}

func TestCountMatchesParserShapeTest(t *testing.T) {
	// The counting pass must not count lines the parser rejects
	// (fewer than two fields), so Remaining is exact up to the failure.
	fs, err := OpenFile(writeFile(t, "0 1\nsingletoken\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if got := fs.Remaining(); got != 2 {
		t.Errorf("Remaining = %d, want 2 (malformed line not counted)", got)
	}
}

func TestOversizedLineIsStreamError(t *testing.T) {
	// A >1 MiB line overflows the scanner token buffer: that must surface
	// as a stream error, not silent truncation.
	long := "0 " + strings.Repeat("7", maxLineBytes+16)
	fs, err := OpenFile(writeFile(t, "1 2\n"+long+"\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	got := drain(t, fs)
	if len(got) != 1 {
		t.Errorf("drained %d edges before oversized line, want 1", len(got))
	}
	if fs.Err() == nil {
		t.Error("oversized line did not set Err")
	}
	if fs.Remaining() != 0 {
		t.Errorf("Remaining after error = %d, want 0", fs.Remaining())
	}
}

func TestTruncatedFileIsStreamError(t *testing.T) {
	// A file cut off mid-edge (no second field on the final line) is a
	// malformed line, not a clean end of stream.
	fs, err := OpenFile(writeFile(t, "0 1\n1 2\n314"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	got := drain(t, fs)
	if len(got) != 2 {
		t.Errorf("drained %d edges before truncation point, want 2", len(got))
	}
	if fs.Err() == nil {
		t.Error("truncated trailing edge did not set Err")
	}
}

func TestBufferedNextBatchAfterInnerError(t *testing.T) {
	b := NewBuffered(openBad(t), 4)
	var buf [8]graph.Edge
	total := 0
	for {
		n := b.NextBatch(buf[:])
		if n == 0 {
			break
		}
		total += n
	}
	if total != 1 {
		t.Errorf("batched %d edges before failure, want 1", total)
	}
	if b.Err() == nil {
		t.Error("Buffered batch path hid the inner error")
	}
}

func TestErrIsFirstFailure(t *testing.T) {
	fs := openBad(t)
	drain(t, fs)
	first := fs.Err()
	drain(t, fs) // further draws must not change the recorded error
	if !errors.Is(fs.Err(), first) {
		t.Errorf("Err changed across draws: %v vs %v", first, fs.Err())
	}
}
