package stream

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
)

func meteredFixture(n int) ([]graph.Edge, *metric.Registry) {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return edges, metric.New(metric.WithCounterStripes(1))
}

func counterOf(t *testing.T, reg *metric.Registry, name string) int64 {
	t.Helper()
	p, ok := reg.Snapshot().Counter(name)
	if !ok {
		t.Fatalf("counter %q not in snapshot", name)
	}
	return p.Value
}

func TestMeteredCountsBatches(t *testing.T) {
	edges, reg := meteredFixture(100)
	doneFires := 0
	m := NewMetered(FromEdges(edges), reg.Counter(MetricEdgesRead), func() { doneFires++ })

	var buf [32]graph.Edge
	total := 0
	for {
		n := m.NextBatch(buf[:])
		if n == 0 {
			break
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("drained %d edges, want 100", total)
	}
	if got := counterOf(t, reg, MetricEdgesRead); got != 100 {
		t.Errorf("%s = %d, want 100", MetricEdgesRead, got)
	}
	if doneFires != 1 {
		t.Errorf("done hook fired %d times, want exactly 1", doneFires)
	}
	// Further exhausted reads never re-fire the hook.
	m.NextBatch(buf[:])
	if _, ok := m.Next(); ok || doneFires != 1 {
		t.Errorf("post-exhaustion read: ok=%v doneFires=%d, want false/1", ok, doneFires)
	}
}

func TestMeteredCountsSingleDraws(t *testing.T) {
	edges, reg := meteredFixture(5)
	m := NewMetered(FromEdges(edges), reg.Counter(MetricEdgesRead), nil)
	for {
		if _, ok := m.Next(); !ok {
			break
		}
	}
	if got := counterOf(t, reg, MetricEdgesRead); got != 5 {
		t.Errorf("%s = %d, want 5", MetricEdgesRead, got)
	}
	if m.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", m.Remaining())
	}
}

func TestMeteredForwardsErr(t *testing.T) {
	edges, _ := meteredFixture(3)
	m := NewMetered(FromEdges(edges), nil, nil)
	if err := Err(m); err != nil {
		t.Errorf("clean stream Err = %v, want nil", err)
	}
	// nil counter and nil hook: draining must not panic.
	if _, err := Collect(m); err != nil {
		t.Fatal(err)
	}
}
