package stream

import (
	"fmt"
	"os"

	"github.com/adwise-go/adwise/internal/graph"
)

// Format-agnostic ingest entry points. Every consumer that streams a graph
// file — the spotlight executor, the CLIs, the bench harness — goes through
// Open (one stream over the whole file) or PlanFile + OpenSegment (z
// disjoint ranges), and the format is a dispatch decision made here, once.
// A new on-disk representation (mmap, remote byte ranges) is a new Format
// plus readers behind the same FileStream surface, not a new special case
// in every caller.

// Format identifies the on-disk encoding of a graph file or of a planned
// Range. The zero value is FormatText, so hand-built text Ranges keep
// their historical semantics.
type Format uint8

const (
	// FormatText is a SNAP-style text edge list: one "src dst" line per
	// edge, '#'/'%' comments. Planning needs a counting pass.
	FormatText Format = iota
	// FormatBinary is the fixed-record ADWB encoding. Planning is pure
	// record arithmetic on the header — no data read.
	FormatBinary
)

// String renders the format name.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// FileStream is the surface every file-backed edge stream shares: batched
// streaming, the stream error contract, and a close. File, Segment, and
// BinaryFile all implement it; consumers dispatch on nothing else.
type FileStream interface {
	Batcher
	Errer
	Close() error
}

var (
	_ FileStream = (*File)(nil)
	_ FileStream = (*Segment)(nil)
	_ FileStream = (*BinaryFile)(nil)
)

// Sniff reports the format of the graph file at path.
func Sniff(path string) (Format, error) {
	bin, err := graph.IsBinary(path)
	if err != nil {
		return FormatText, err
	}
	if bin {
		return FormatBinary, nil
	}
	return FormatText, nil
}

// Open opens path as a single edge stream over the whole file, sniffing
// the format: ADWB files stream fixed records, everything else streams as
// a text edge list. One handle serves the sniff and the reader, so the
// format decision cannot race a concurrent file swap. Remaining is exact
// either way — from the validated header for binary, from the counting
// pass for text.
func Open(path string) (FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s: %w", path, err)
	}
	bin, err := graph.SniffBinary(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	var (
		fs   FileStream
		oerr error
	)
	if bin {
		fs, oerr = openBinaryHandle(f)
	} else {
		fs, oerr = openFileHandle(f)
	}
	if oerr != nil {
		f.Close()
		return nil, oerr
	}
	return fs, nil
}

// PlanFile splits the graph file at path into z disjoint ranges for z
// segment loaders, sniffing the format: text files take the counting pass
// of Plan; ADWB files are planned by record arithmetic alone (PlanBinary)
// — the data region is never read. Every returned Range carries its
// Format, so OpenSegment dispatches without re-sniffing.
func PlanFile(path string, z int) ([]Range, error) {
	format, err := Sniff(path)
	if err != nil {
		return nil, err
	}
	if format == FormatBinary {
		return PlanBinary(path, z)
	}
	return Plan(path, z)
}
