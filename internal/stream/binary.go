package stream

import (
	"fmt"
	"io"
	"os"

	"github.com/adwise-go/adwise/internal/graph"
)

// Binary (ADWB) ingest: every edge is one fixed 8-byte record behind a
// validated header (see internal/graph/binary.go), so the fast format of
// the bench harness streams behind the same Batcher/Errer surface as text
// edge lists — and, unlike text, its segment planning needs no counting
// pass at all: record arithmetic on the header splits the data region into
// z exact ranges in O(1), however large the file.

// recordReader is the fixed-record decoding core shared by the whole-file
// and segment binary streams: a bounded reader over some record region
// plus the exact remaining count established from the header. Batches are
// decoded zero-copy — records are read straight into the destination edge
// slice (graph.ReadRecords). It implements the stream error contract: a
// read failure or truncation zeroes the remainder and is reported by Err.
type recordReader struct {
	r         io.Reader
	remaining int64
	err       error
}

// fail records the stream error and zeroes the remainder, mirroring
// lineParser: edges past the failure point will never arrive, and
// condition (C2) must not budget latency for them.
func (d *recordReader) fail(err error) {
	d.err = err
	d.remaining = 0
}

// Next implements Stream as a one-record batch.
func (d *recordReader) Next() (graph.Edge, bool) {
	var one [1]graph.Edge
	if d.NextBatch(one[:]) == 0 {
		return graph.Edge{}, false
	}
	return one[0], true
}

// NextBatch implements Batcher: up to len(dst) records decoded in one
// bounded read, directly into dst's backing memory.
func (d *recordReader) NextBatch(dst []graph.Edge) int {
	if d.err != nil || d.remaining == 0 || len(dst) == 0 {
		return 0
	}
	if int64(len(dst)) > d.remaining {
		dst = dst[:d.remaining]
	}
	n, err := graph.ReadRecords(d.r, dst)
	d.remaining -= int64(n)
	if err != nil {
		// The record region was size-validated at open, so a short read
		// means the file changed (or the medium failed) mid-stream.
		missing := d.remaining
		d.fail(fmt.Errorf("stream: reading edge records (%d still expected): %w", missing, err))
	}
	return n
}

// Remaining implements Stream. After a stream error it reports 0: a failed
// stream has no usable remainder.
func (d *recordReader) Remaining() int64 { return d.remaining }

// Err implements Errer: the first error encountered while streaming, or
// nil on clean exhaustion.
func (d *recordReader) Err() error { return d.err }

// BinaryFile streams a record region of an ADWB binary edge-list file
// without materialising the edge list — the binary counterpart of File and
// Segment in one type, since with fixed records the whole file is just the
// segment [DataStart, DataEnd). OpenBinaryFile streams the whole region;
// OpenBinarySegment streams one planned sub-range.
type BinaryFile struct {
	f *os.File
	recordReader
}

// OpenBinaryFile opens path as an edge stream over its full record region.
// The header is validated against the file size up front
// (graph.StatBinaryFile, on the same handle the stream reads), so
// Remaining is exact with no counting pass.
func OpenBinaryFile(path string) (*BinaryFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s: %w", path, err)
	}
	bf, err := openBinaryHandle(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return bf, nil
}

// openBinaryHandle validates the header through the already-open handle
// and streams its whole record region.
func openBinaryHandle(f *os.File) (*BinaryFile, error) {
	bi, err := graph.StatBinaryFile(f)
	if err != nil {
		return nil, err
	}
	return binaryRangeOver(f, bi.DataStart(), bi.DataEnd()), nil
}

// OpenBinarySegment opens r's byte range of an ADWB file as an edge
// stream. The range must be record-aligned and lie inside the file's
// record region, which is revalidated against the freshly opened handle —
// a plan gone stale against a swapped file fails loudly here rather than
// decoding garbage. Remaining is exact by construction (Edges is pure
// record arithmetic), with no per-segment counting pass.
func OpenBinarySegment(r Range) (*BinaryFile, error) {
	if r.Start < graph.BinaryHeaderSize || r.End < r.Start {
		return nil, fmt.Errorf("stream: invalid binary segment range [%d,%d) of %s", r.Start, r.End, r.Path)
	}
	if (r.End-r.Start)%graph.BinaryRecordSize != 0 || (r.Start-graph.BinaryHeaderSize)%graph.BinaryRecordSize != 0 {
		return nil, fmt.Errorf("stream: binary segment range [%d,%d) of %s not record-aligned", r.Start, r.End, r.Path)
	}
	if want := (r.End - r.Start) / graph.BinaryRecordSize; r.Edges != want {
		return nil, fmt.Errorf("stream: binary segment range [%d,%d) holds %d records, planned %d", r.Start, r.End, want, r.Edges)
	}
	f, err := os.Open(r.Path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening %s: %w", r.Path, err)
	}
	bi, err := graph.StatBinaryFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if r.End > bi.DataEnd() {
		f.Close()
		return nil, fmt.Errorf("stream: binary segment range [%d,%d) extends past record region of %s (ends at %d)",
			r.Start, r.End, r.Path, bi.DataEnd())
	}
	return binaryRangeOver(f, r.Start, r.End), nil
}

func binaryRangeOver(f *os.File, start, end int64) *BinaryFile {
	return &BinaryFile{
		f: f,
		recordReader: recordReader{
			r:         io.NewSectionReader(f, start, end-start),
			remaining: (end - start) / graph.BinaryRecordSize,
		},
	}
}

// Close releases the underlying file handle.
func (bf *BinaryFile) Close() error {
	if err := bf.f.Close(); err != nil {
		return fmt.Errorf("stream: closing binary stream: %w", err)
	}
	return nil
}

// PlanBinary splits the ADWB file at path into z record-aligned byte
// ranges by pure arithmetic on the validated header: no counting pass, no
// data read — O(1) regardless of file size. Range sizes follow the
// stream.Chunks distribution (sizes differ by at most one, larger ranges
// first), so a binary segmented run consumes exactly the chunks the
// materialised spotlight path would. Fewer records than z is an error,
// mirroring the text planner's degenerate-input check.
func PlanBinary(path string, z int) ([]Range, error) {
	if z < 1 {
		return nil, fmt.Errorf("stream: plan needs z >= 1, got %d", z)
	}
	bi, err := graph.StatBinary(path)
	if err != nil {
		return nil, err
	}
	if bi.NumE < uint64(z) {
		return nil, fmt.Errorf("stream: %s has %d edge records, cannot feed %d segment loaders", path, bi.NumE, z)
	}
	base, extra := int64(bi.NumE)/int64(z), int64(bi.NumE)%int64(z)
	ranges := make([]Range, 0, z)
	offset := bi.DataStart()
	for i := 0; i < z; i++ {
		n := base
		if int64(i) < extra {
			n++
		}
		end := offset + n*graph.BinaryRecordSize
		ranges = append(ranges, Range{
			Path:   path,
			Format: FormatBinary,
			Start:  offset,
			End:    end,
			Edges:  n,
		})
		offset = end
	}
	return ranges, nil
}
