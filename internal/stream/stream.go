// Package stream models the edge stream of the streaming-partitioning model
// (§II-B of the paper): a single ordered pass over the edges of a graph.
//
// Streams expose an optional length hint, which ADWISE's adaptive window
// condition (C2) uses to estimate the remaining per-edge latency budget
// (the paper notes the graph size "is usually known or can be determined
// efficiently using line count on the graph file").
package stream

import (
	"fmt"
	"math/rand/v2"

	"github.com/adwise-go/adwise/internal/graph"
)

// Stream is a single-pass sequence of edges.
type Stream interface {
	// Next returns the next edge. ok is false when the stream is exhausted.
	Next() (e graph.Edge, ok bool)
	// Remaining returns the number of edges left, or -1 if unknown.
	Remaining() int64
}

// Batcher is a Stream that can deliver many edges per call, amortizing the
// per-edge interface-dispatch cost of Next over a whole batch. A NextBatch
// call fills dst from the front and returns the number of edges written;
// zero means the stream is exhausted. Short non-zero reads are allowed.
type Batcher interface {
	Stream
	NextBatch(dst []graph.Edge) int
}

// Errer is the error-reporting side of a fallible Stream. A stream that can
// fail mid-pass (a file that hits a malformed line, an I/O error, ...)
// exhausts early and records the cause here. Exhaustion with a pending Err
// is a failure, never a short success: every consumer that drains a stream
// to completion must check Err before treating the pass as done.
type Errer interface {
	// Err returns the first error encountered while streaming, or nil on
	// clean exhaustion so far.
	Err() error
}

// Err returns the pending stream error of s: the Errer error if s reports
// one, nil for streams that cannot fail (slices) or have not failed.
// Wrappers (Buffered, Counted, Limit) forward their inner stream's error
// state, so checking the outermost stream suffices.
func Err(s Stream) error {
	if e, ok := s.(Errer); ok {
		return e.Err()
	}
	return nil
}

// NextBatch fills dst from s, using the stream's native batch support when
// available and falling back to a per-edge Next loop otherwise. It returns
// the number of edges written; zero means exhaustion (dst must be
// non-empty).
func NextBatch(s Stream, dst []graph.Edge) int {
	if b, ok := s.(Batcher); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		e, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n
}

// Collect drains s into a new edge slice, batch-wise. A stream that fails
// mid-pass returns the error, not a silently-short slice.
func Collect(s Stream) ([]graph.Edge, error) {
	hint := s.Remaining()
	if hint < 0 {
		hint = 1024
	}
	out := make([]graph.Edge, 0, hint)
	var buf [512]graph.Edge
	for {
		n := NextBatch(s, buf[:])
		if n == 0 {
			if err := Err(s); err != nil {
				return nil, fmt.Errorf("stream: collecting after %d edges: %w", len(out), err)
			}
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// Slice is an in-memory Stream over an edge slice. The zero value is an
// exhausted stream.
type Slice struct {
	edges []graph.Edge
	pos   int
}

// FromEdges returns a Stream over edges in order. The slice is not copied;
// callers must not mutate it while streaming.
func FromEdges(edges []graph.Edge) *Slice {
	return &Slice{edges: edges}
}

// FromGraph returns a Stream over g's edge list in stream order.
func FromGraph(g *graph.Graph) *Slice {
	return &Slice{edges: g.Edges}
}

// Next implements Stream.
func (s *Slice) Next() (graph.Edge, bool) {
	if s.pos >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// NextBatch implements Batcher: a single copy out of the backing slice.
func (s *Slice) NextBatch(dst []graph.Edge) int {
	n := copy(dst, s.edges[s.pos:])
	s.pos += n
	return n
}

// Remaining implements Stream.
func (s *Slice) Remaining() int64 { return int64(len(s.edges) - s.pos) }

// Reset rewinds the stream to the first edge, allowing reuse across
// experiment repetitions.
func (s *Slice) Reset() { s.pos = 0 }

// Shuffled returns a new edge slice holding a seeded pseudo-random
// permutation of edges. The input is not modified. Streaming partitioner
// quality depends on stream order; experiments fix the seed so runs are
// comparable.
func Shuffled(edges []graph.Edge, seed uint64) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	rng := rand.New(rand.NewPCG(seed, 0x57a7e))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Interleave reorders edges by splitting them into `blocks` contiguous
// blocks and emitting them round-robin, one edge per block. It models
// stream orders with diluted locality — e.g. a breadth-first web crawl
// whose frontier cycles through many sites — without the total locality
// loss of a full shuffle. The input is not modified. blocks <= 1 returns a
// plain copy.
func Interleave(edges []graph.Edge, blocks int) []graph.Edge {
	out := make([]graph.Edge, 0, len(edges))
	if blocks <= 1 {
		return append(out, edges...)
	}
	chunks := Chunks(edges, blocks)
	for round := 0; len(out) < len(edges); round++ {
		for _, ch := range chunks {
			if round < len(ch) {
				out = append(out, ch[round])
			}
		}
	}
	return out
}

// Chunks splits edges into z contiguous chunks whose sizes differ by at
// most one, mirroring the paper's parallel loading model where each of the
// z partitioner instances receives a disjoint chunk of the global graph.
// It returns fewer than z chunks only when len(edges) < z.
func Chunks(edges []graph.Edge, z int) [][]graph.Edge {
	if z <= 0 {
		z = 1
	}
	if z > len(edges) {
		z = len(edges)
	}
	if z == 0 {
		return nil
	}
	chunks := make([][]graph.Edge, 0, z)
	base, extra := len(edges)/z, len(edges)%z
	start := 0
	for i := 0; i < z; i++ {
		size := base
		if i < extra {
			size++
		}
		chunks = append(chunks, edges[start:start+size])
		start += size
	}
	return chunks
}

// Counted wraps a Stream and counts the edges drawn from it.
type Counted struct {
	Inner Stream
	N     int64
}

// Next implements Stream.
func (c *Counted) Next() (graph.Edge, bool) {
	e, ok := c.Inner.Next()
	if ok {
		c.N++
	}
	return e, ok
}

// NextBatch implements Batcher, delegating to the inner stream's batch
// support.
func (c *Counted) NextBatch(dst []graph.Edge) int {
	n := NextBatch(c.Inner, dst)
	c.N += int64(n)
	return n
}

// Remaining implements Stream.
func (c *Counted) Remaining() int64 { return c.Inner.Remaining() }

// Err implements Errer, forwarding the inner stream's error state.
func (c *Counted) Err() error { return Err(c.Inner) }

// Limit wraps a Stream and stops after max edges; used in failure-injection
// tests to model truncated inputs.
type Limit struct {
	Inner Stream
	Max   int64
	drawn int64
}

// Next implements Stream.
func (l *Limit) Next() (graph.Edge, bool) {
	if l.drawn >= l.Max {
		return graph.Edge{}, false
	}
	e, ok := l.Inner.Next()
	if ok {
		l.drawn++
	}
	return e, ok
}

// NextBatch implements Batcher, capping the batch at the edges left under
// Max.
func (l *Limit) NextBatch(dst []graph.Edge) int {
	left := l.Max - l.drawn
	if left <= 0 {
		return 0
	}
	if int64(len(dst)) > left {
		dst = dst[:left]
	}
	n := NextBatch(l.Inner, dst)
	l.drawn += int64(n)
	return n
}

// Remaining implements Stream.
func (l *Limit) Remaining() int64 {
	r := l.Inner.Remaining()
	if r < 0 {
		return -1
	}
	if left := l.Max - l.drawn; left < r {
		return left
	}
	return r
}

// Err implements Errer, forwarding the inner stream's error state.
func (l *Limit) Err() error { return Err(l.Inner) }

// Buffered adapts any Stream into one whose Next is a cheap slice read:
// edges are pulled from the inner stream a batch at a time via NextBatch.
// Consumers that must inspect edges one by one (the ADWISE window refill)
// hold a concrete *Buffered so the per-edge call devirtualizes, while the
// inner stream is only touched once per batch.
type Buffered struct {
	inner Stream
	buf   []graph.Edge
	pos   int
	done  bool
}

// DefaultBatchSize is the batch granularity used by batch-aware consumers
// (partition.Run, the ADWISE refill loop, Buffered's default).
const DefaultBatchSize = 512

// NewBuffered wraps s with a batch buffer of the given size (<= 0 selects
// DefaultBatchSize). If s is already a *Buffered it is returned unchanged.
func NewBuffered(s Stream, size int) *Buffered {
	if b, ok := s.(*Buffered); ok {
		return b
	}
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Buffered{inner: s, buf: make([]graph.Edge, 0, size)}
}

// Next implements Stream from the buffer, refilling batch-wise.
func (b *Buffered) Next() (graph.Edge, bool) {
	if b.pos >= len(b.buf) {
		if b.done {
			return graph.Edge{}, false
		}
		b.buf = b.buf[:cap(b.buf)]
		n := NextBatch(b.inner, b.buf)
		b.buf = b.buf[:n]
		b.pos = 0
		if n == 0 {
			b.done = true
			return graph.Edge{}, false
		}
	}
	e := b.buf[b.pos]
	b.pos++
	return e, true
}

// NextBatch implements Batcher: buffered edges first, then straight from
// the inner stream without double-copying.
func (b *Buffered) NextBatch(dst []graph.Edge) int {
	if b.pos < len(b.buf) {
		n := copy(dst, b.buf[b.pos:])
		b.pos += n
		return n
	}
	if b.done {
		return 0
	}
	n := NextBatch(b.inner, dst)
	if n == 0 {
		b.done = true
	}
	return n
}

// Remaining implements Stream: the inner remainder plus the edges already
// buffered but not yet handed out, so latency accounting (condition C2)
// stays exact under batching.
func (b *Buffered) Remaining() int64 {
	pending := int64(len(b.buf) - b.pos)
	r := b.inner.Remaining()
	if r < 0 {
		if b.done {
			return pending
		}
		return -1
	}
	return r + pending
}

// Err implements Errer, forwarding the inner stream's error state: a
// buffered stream whose source failed must not look cleanly exhausted.
func (b *Buffered) Err() error { return Err(b.inner) }
