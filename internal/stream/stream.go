// Package stream models the edge stream of the streaming-partitioning model
// (§II-B of the paper): a single ordered pass over the edges of a graph.
//
// Streams expose an optional length hint, which ADWISE's adaptive window
// condition (C2) uses to estimate the remaining per-edge latency budget
// (the paper notes the graph size "is usually known or can be determined
// efficiently using line count on the graph file").
package stream

import (
	"math/rand/v2"

	"github.com/adwise-go/adwise/internal/graph"
)

// Stream is a single-pass sequence of edges.
type Stream interface {
	// Next returns the next edge. ok is false when the stream is exhausted.
	Next() (e graph.Edge, ok bool)
	// Remaining returns the number of edges left, or -1 if unknown.
	Remaining() int64
}

// Slice is an in-memory Stream over an edge slice. The zero value is an
// exhausted stream.
type Slice struct {
	edges []graph.Edge
	pos   int
}

// FromEdges returns a Stream over edges in order. The slice is not copied;
// callers must not mutate it while streaming.
func FromEdges(edges []graph.Edge) *Slice {
	return &Slice{edges: edges}
}

// FromGraph returns a Stream over g's edge list in stream order.
func FromGraph(g *graph.Graph) *Slice {
	return &Slice{edges: g.Edges}
}

// Next implements Stream.
func (s *Slice) Next() (graph.Edge, bool) {
	if s.pos >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Remaining implements Stream.
func (s *Slice) Remaining() int64 { return int64(len(s.edges) - s.pos) }

// Reset rewinds the stream to the first edge, allowing reuse across
// experiment repetitions.
func (s *Slice) Reset() { s.pos = 0 }

// Shuffled returns a new edge slice holding a seeded pseudo-random
// permutation of edges. The input is not modified. Streaming partitioner
// quality depends on stream order; experiments fix the seed so runs are
// comparable.
func Shuffled(edges []graph.Edge, seed uint64) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	rng := rand.New(rand.NewPCG(seed, 0x57a7e))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Interleave reorders edges by splitting them into `blocks` contiguous
// blocks and emitting them round-robin, one edge per block. It models
// stream orders with diluted locality — e.g. a breadth-first web crawl
// whose frontier cycles through many sites — without the total locality
// loss of a full shuffle. The input is not modified. blocks <= 1 returns a
// plain copy.
func Interleave(edges []graph.Edge, blocks int) []graph.Edge {
	out := make([]graph.Edge, 0, len(edges))
	if blocks <= 1 {
		return append(out, edges...)
	}
	chunks := Chunks(edges, blocks)
	for round := 0; len(out) < len(edges); round++ {
		for _, ch := range chunks {
			if round < len(ch) {
				out = append(out, ch[round])
			}
		}
	}
	return out
}

// Chunks splits edges into z contiguous chunks whose sizes differ by at
// most one, mirroring the paper's parallel loading model where each of the
// z partitioner instances receives a disjoint chunk of the global graph.
// It returns fewer than z chunks only when len(edges) < z.
func Chunks(edges []graph.Edge, z int) [][]graph.Edge {
	if z <= 0 {
		z = 1
	}
	if z > len(edges) {
		z = len(edges)
	}
	if z == 0 {
		return nil
	}
	chunks := make([][]graph.Edge, 0, z)
	base, extra := len(edges)/z, len(edges)%z
	start := 0
	for i := 0; i < z; i++ {
		size := base
		if i < extra {
			size++
		}
		chunks = append(chunks, edges[start:start+size])
		start += size
	}
	return chunks
}

// Counted wraps a Stream and counts the edges drawn from it.
type Counted struct {
	Inner Stream
	N     int64
}

// Next implements Stream.
func (c *Counted) Next() (graph.Edge, bool) {
	e, ok := c.Inner.Next()
	if ok {
		c.N++
	}
	return e, ok
}

// Remaining implements Stream.
func (c *Counted) Remaining() int64 { return c.Inner.Remaining() }

// Limit wraps a Stream and stops after max edges; used in failure-injection
// tests to model truncated inputs.
type Limit struct {
	Inner Stream
	Max   int64
	drawn int64
}

// Next implements Stream.
func (l *Limit) Next() (graph.Edge, bool) {
	if l.drawn >= l.Max {
		return graph.Edge{}, false
	}
	e, ok := l.Inner.Next()
	if ok {
		l.drawn++
	}
	return e, ok
}

// Remaining implements Stream.
func (l *Limit) Remaining() int64 {
	r := l.Inner.Remaining()
	if r < 0 {
		return -1
	}
	if left := l.Max - l.drawn; left < r {
		return left
	}
	return r
}
