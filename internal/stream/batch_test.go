package stream

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// plainStream hides batch support so the NextBatch fallback path is
// exercised.
type plainStream struct{ inner Stream }

func (p *plainStream) Next() (graph.Edge, bool) { return p.inner.Next() }
func (p *plainStream) Remaining() int64         { return p.inner.Remaining() }

func TestNextBatchSlice(t *testing.T) {
	s := FromEdges(edgesN(10))
	var buf [4]graph.Edge
	sizes := []int{4, 4, 2, 0}
	total := 0
	for _, want := range sizes {
		n := NextBatch(s, buf[:])
		if n != want {
			t.Fatalf("NextBatch = %d, want %d", n, want)
		}
		for i := 0; i < n; i++ {
			if buf[i].Src != graph.VertexID(total+i) {
				t.Fatalf("batch edge %d = %v out of order", total+i, buf[i])
			}
		}
		total += n
	}
}

func TestNextBatchFallback(t *testing.T) {
	s := &plainStream{inner: FromEdges(edgesN(5))}
	var buf [3]graph.Edge
	if n := NextBatch(s, buf[:]); n != 3 {
		t.Fatalf("fallback NextBatch = %d, want 3", n)
	}
	if n := NextBatch(s, buf[:]); n != 2 {
		t.Fatalf("fallback NextBatch = %d, want 2", n)
	}
	if n := NextBatch(s, buf[:]); n != 0 {
		t.Fatalf("fallback NextBatch on exhausted stream = %d, want 0", n)
	}
}

func TestCollect(t *testing.T) {
	edges := edgesN(1000)
	got, err := Collect(FromEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("Collect returned %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("Collect edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	if got, err := Collect(FromEdges(nil)); err != nil || len(got) != 0 {
		t.Errorf("Collect of empty stream = %d edges, err %v", len(got), err)
	}
}

func TestBufferedMatchesInner(t *testing.T) {
	edges := edgesN(100)
	b := NewBuffered(&plainStream{inner: FromEdges(edges)}, 16)
	if got := b.Remaining(); got != 100 {
		t.Fatalf("Remaining before draw = %d, want 100", got)
	}
	got := drain(t, b)
	if len(got) != len(edges) {
		t.Fatalf("drained %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	if got := b.Remaining(); got != 0 {
		t.Errorf("Remaining after drain = %d, want 0", got)
	}
}

func TestBufferedRemainingCountsPending(t *testing.T) {
	b := NewBuffered(FromEdges(edgesN(10)), 4)
	if _, ok := b.Next(); !ok {
		t.Fatal("Next failed")
	}
	// One drawn, three sit in the buffer: inner reports 6, pending adds 3.
	if got := b.Remaining(); got != 9 {
		t.Errorf("Remaining after one draw = %d, want 9", got)
	}
}

func TestBufferedNextBatchDrainsPendingFirst(t *testing.T) {
	b := NewBuffered(FromEdges(edgesN(10)), 4)
	b.Next() // buffer holds edges 1..3
	var buf [8]graph.Edge
	if n := b.NextBatch(buf[:]); n != 3 {
		t.Fatalf("pending batch = %d, want 3", n)
	}
	if buf[0].Src != 1 || buf[2].Src != 3 {
		t.Fatalf("pending batch out of order: %v", buf[:3])
	}
	if n := b.NextBatch(buf[:]); n != 6 {
		t.Fatalf("pass-through batch = %d, want 6", n)
	}
}

func TestBufferedIdempotentWrap(t *testing.T) {
	b := NewBuffered(FromEdges(edgesN(3)), 2)
	if b2 := NewBuffered(b, 8); b2 != b {
		t.Error("NewBuffered re-wrapped an existing *Buffered")
	}
}

func TestFileNextBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# header\n1 2\n3 4\n\n5 6\n7 8\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Remaining(); got != 4 {
		t.Fatalf("Remaining = %d, want 4", got)
	}
	var buf [3]graph.Edge
	if n := f.NextBatch(buf[:]); n != 3 {
		t.Fatalf("first batch = %d, want 3", n)
	}
	want := []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 5, Dst: 6}}
	for i, w := range want {
		if buf[i] != w {
			t.Errorf("batch[%d] = %v, want %v", i, buf[i], w)
		}
	}
	if n := f.NextBatch(buf[:]); n != 1 || buf[0] != (graph.Edge{Src: 7, Dst: 8}) {
		t.Fatalf("second batch = %d (%v), want 1 edge (7->8)", n, buf[0])
	}
	if n := f.NextBatch(buf[:]); n != 0 {
		t.Fatalf("batch after exhaustion = %d, want 0", n)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestFileNextBatchMalformedStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("1 2\nnot-an-edge\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf [8]graph.Edge
	if n := f.NextBatch(buf[:]); n != 1 {
		t.Fatalf("batch before malformed line = %d, want 1", n)
	}
	if f.Err() == nil {
		t.Error("malformed line did not set Err")
	}
	if n := f.NextBatch(buf[:]); n != 0 {
		t.Error("batch after error returned edges")
	}
}

func TestLimitNextBatch(t *testing.T) {
	l := &Limit{Inner: FromEdges(edgesN(10)), Max: 5}
	var buf [4]graph.Edge
	if n := NextBatch(l, buf[:]); n != 4 {
		t.Fatalf("first limited batch = %d, want 4", n)
	}
	if n := NextBatch(l, buf[:]); n != 1 {
		t.Fatalf("second limited batch = %d, want 1", n)
	}
	if n := NextBatch(l, buf[:]); n != 0 {
		t.Fatalf("batch past limit = %d, want 0", n)
	}
}

func TestCountedNextBatch(t *testing.T) {
	c := &Counted{Inner: FromEdges(edgesN(7))}
	var buf [4]graph.Edge
	NextBatch(c, buf[:])
	NextBatch(c, buf[:])
	if c.N != 7 {
		t.Errorf("Counted.N = %d, want 7", c.N)
	}
}

// Chunks edge cases: z exceeding the edge count and empty input.
func TestChunksMoreChunksThanEdges(t *testing.T) {
	edges := edgesN(3)
	chunks := Chunks(edges, 8)
	if len(chunks) != 3 {
		t.Fatalf("Chunks(3 edges, z=8) returned %d chunks, want 3", len(chunks))
	}
	for i, ch := range chunks {
		if len(ch) != 1 {
			t.Errorf("chunk %d has %d edges, want 1", i, len(ch))
		}
	}
}

func TestChunksEmptyInput(t *testing.T) {
	if chunks := Chunks(nil, 4); chunks != nil {
		t.Errorf("Chunks(nil, 4) = %v, want nil", chunks)
	}
	if chunks := Chunks([]graph.Edge{}, 0); chunks != nil {
		t.Errorf("Chunks(empty, 0) = %v, want nil", chunks)
	}
}

func TestInterleaveEmptyAndOversizedBlocks(t *testing.T) {
	if out := Interleave(nil, 4); len(out) != 0 {
		t.Errorf("Interleave(nil, 4) returned %d edges", len(out))
	}
	edges := edgesN(3)
	out := Interleave(edges, 10)
	if len(out) != 3 {
		t.Fatalf("Interleave(3 edges, 10 blocks) returned %d edges", len(out))
	}
	seen := make(map[graph.Edge]bool)
	for _, e := range out {
		seen[e] = true
	}
	for _, e := range edges {
		if !seen[e] {
			t.Errorf("edge %v lost by oversized-block interleave", e)
		}
	}
}
