package stream

import (
	"testing"
	"testing/quick"

	"github.com/adwise-go/adwise/internal/graph"
)

func TestInterleaveRoundRobin(t *testing.T) {
	edges := edgesN(6)
	got := Interleave(edges, 2)
	// Blocks: [e0 e1 e2] [e3 e4 e5] → round robin: e0 e3 e1 e4 e2 e5.
	want := []graph.Edge{edges[0], edges[3], edges[1], edges[4], edges[2], edges[5]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Interleave = %v, want %v", got, want)
		}
	}
}

func TestInterleaveUnevenBlocks(t *testing.T) {
	edges := edgesN(7)
	got := Interleave(edges, 3)
	if len(got) != 7 {
		t.Fatalf("length %d, want 7", len(got))
	}
	seen := make(map[graph.Edge]int)
	for _, e := range got {
		seen[e]++
	}
	for _, e := range edges {
		if seen[e] != 1 {
			t.Fatalf("edge %v appears %d times", e, seen[e])
		}
	}
}

func TestInterleaveDegenerate(t *testing.T) {
	edges := edgesN(4)
	for _, blocks := range []int{0, 1, -3} {
		got := Interleave(edges, blocks)
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("blocks=%d changed order", blocks)
			}
		}
	}
	// More blocks than edges degenerates to the identity as well.
	got := Interleave(edges, 100)
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("blocks>len changed order: %v", got)
		}
	}
	if out := Interleave(nil, 5); len(out) != 0 {
		t.Errorf("Interleave(nil) = %v", out)
	}
}

func TestInterleaveDoesNotMutateInput(t *testing.T) {
	edges := edgesN(10)
	Interleave(edges, 4)
	for i := range edges {
		if edges[i] != (graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}) {
			t.Fatal("Interleave mutated its input")
		}
	}
}

// Property: Interleave is a permutation for any (n, blocks).
func TestQuickInterleavePermutation(t *testing.T) {
	f := func(n uint8, blocks int8) bool {
		edges := edgesN(int(n))
		out := Interleave(edges, int(blocks))
		if len(out) != len(edges) {
			return false
		}
		seen := make(map[graph.Edge]int, len(edges))
		for _, e := range out {
			seen[e]++
		}
		for _, e := range edges {
			if seen[e] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
