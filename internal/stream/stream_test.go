package stream

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/adwise-go/adwise/internal/graph"
)

func edgesN(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return out
}

func drain(t *testing.T, s Stream) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestSliceStreamOrderAndRemaining(t *testing.T) {
	edges := edgesN(5)
	s := FromEdges(edges)
	if got := s.Remaining(); got != 5 {
		t.Errorf("Remaining = %d, want 5", got)
	}
	got := drain(t, s)
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	if got := s.Remaining(); got != 0 {
		t.Errorf("Remaining after drain = %d, want 0", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("Next on exhausted stream returned ok")
	}
}

func TestSliceStreamReset(t *testing.T) {
	s := FromEdges(edgesN(3))
	drain(t, s)
	s.Reset()
	if got := len(drain(t, s)); got != 3 {
		t.Errorf("drained %d edges after Reset, want 3", got)
	}
}

func TestFromGraph(t *testing.T) {
	g := &graph.Graph{NumV: 4, Edges: edgesN(3)}
	if got := len(drain(t, FromGraph(g))); got != 3 {
		t.Errorf("drained %d edges, want 3", got)
	}
}

func TestShuffledIsSeededPermutation(t *testing.T) {
	edges := edgesN(100)
	a := Shuffled(edges, 1)
	b := Shuffled(edges, 1)
	c := Shuffled(edges, 2)

	if len(a) != len(edges) {
		t.Fatalf("Shuffled changed length: %d", len(a))
	}
	sameAsB, sameAsC, sameAsOrig := true, true, true
	seen := make(map[graph.Edge]int)
	for i := range a {
		if a[i] != b[i] {
			sameAsB = false
		}
		if a[i] != c[i] {
			sameAsC = false
		}
		if a[i] != edges[i] {
			sameAsOrig = false
		}
		seen[a[i]]++
	}
	if !sameAsB {
		t.Error("same seed produced different shuffles")
	}
	if sameAsC {
		t.Error("different seeds produced identical shuffles")
	}
	if sameAsOrig {
		t.Error("shuffle left input order untouched (astronomically unlikely)")
	}
	for _, e := range edges {
		if seen[e] != 1 {
			t.Fatalf("edge %v appears %d times after shuffle", e, seen[e])
		}
	}
	// Input must be untouched.
	for i := range edges {
		if edges[i] != (graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}) {
			t.Fatal("Shuffled mutated its input")
		}
	}
}

func TestChunksPartitionInput(t *testing.T) {
	tests := []struct {
		n, z      int
		wantSizes []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{2, 5, []int{1, 1}},
		{5, 1, []int{5}},
		{4, 0, []int{4}}, // z <= 0 coerced to 1
	}
	for _, tc := range tests {
		chunks := Chunks(edgesN(tc.n), tc.z)
		if len(chunks) != len(tc.wantSizes) {
			t.Fatalf("Chunks(%d,%d) gave %d chunks, want %d", tc.n, tc.z, len(chunks), len(tc.wantSizes))
		}
		total := 0
		for i, ch := range chunks {
			if len(ch) != tc.wantSizes[i] {
				t.Errorf("Chunks(%d,%d)[%d] has %d edges, want %d", tc.n, tc.z, i, len(ch), tc.wantSizes[i])
			}
			total += len(ch)
		}
		if total != tc.n {
			t.Errorf("Chunks(%d,%d) covers %d edges", tc.n, tc.z, total)
		}
	}
}

// Property: chunks cover every edge exactly once in order, for any (n, z).
func TestQuickChunksCoverage(t *testing.T) {
	f := func(n uint8, z uint8) bool {
		edges := edgesN(int(n))
		chunks := Chunks(edges, int(z))
		var flat []graph.Edge
		for _, ch := range chunks {
			flat = append(flat, ch...)
		}
		if len(flat) != len(edges) {
			return false
		}
		for i := range flat {
			if flat[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountedStream(t *testing.T) {
	c := &Counted{Inner: FromEdges(edgesN(4))}
	drain(t, c)
	if c.N != 4 {
		t.Errorf("Counted.N = %d, want 4", c.N)
	}
}

func TestLimitStream(t *testing.T) {
	l := &Limit{Inner: FromEdges(edgesN(10)), Max: 3}
	if got := l.Remaining(); got != 3 {
		t.Errorf("Remaining = %d, want 3", got)
	}
	if got := len(drain(t, l)); got != 3 {
		t.Errorf("drained %d edges, want 3", got)
	}
}

func TestFileStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# header\n0 1\n1 2\n\n% more\n2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fs.Close()
	if got := fs.Remaining(); got != 3 {
		t.Errorf("Remaining = %d, want 3 (line count pass)", got)
	}
	got := drain(t, fs)
	if len(got) != 3 || got[2] != (graph.Edge{Src: 2, Dst: 3}) {
		t.Errorf("drained %v", got)
	}
	if err := fs.Err(); err != nil {
		t.Errorf("Err = %v, want nil", err)
	}
}

func TestFileStreamMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\nbogus\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fs.Close()
	got := drain(t, fs)
	if len(got) != 1 {
		t.Errorf("drained %d edges before malformed line, want 1", len(got))
	}
	if fs.Err() == nil {
		t.Error("Err = nil after malformed line, want parse error")
	}
}

func TestFileStreamMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("OpenFile on missing path succeeded, want error")
	}
}
