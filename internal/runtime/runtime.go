// Package runtime is the unified strategy runtime of the reproduction: it
// treats every partitioner — the single-edge baselines and window-based
// ADWISE alike — as one interchangeable Strategy that streams edges into an
// assignment, exactly the view of the paper's parallel loading model
// (§III-D) where z instances each consume a chunk of the graph.
//
// The package layers as
//
//	Strategy (name, run-over-stream, stats)
//	  ↑ registry (name → builder, Spec carries the shared knobs)
//	  ↑ spotlight executor (RunSpotlight: z instances, restricted spread)
//	  ↑ vertex cache + batched edge streams (the measured hot paths)
//
// Everything above this package — the bench harness, both CLIs, the public
// facade — constructs partitioners through the registry instead of
// hand-rolled string switches.
package runtime

import (
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

// Runner is the minimal run-over-stream capability: one partitioner
// instance consuming an edge stream and producing an assignment over the
// global partition set. It is the unit the spotlight executor schedules.
type Runner interface {
	Run(s stream.Stream) (*metrics.Assignment, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(s stream.Stream) (*metrics.Assignment, error)

// Run implements Runner.
func (f RunnerFunc) Run(s stream.Stream) (*metrics.Assignment, error) { return f(s) }

// Strategy is a named, stats-reporting Runner — the single abstraction all
// partitioning strategies implement. Instances are single-use: one Run per
// instance, with Stats valid after Run returns.
type Strategy interface {
	Runner
	// Name identifies the strategy ("hdrf", "adwise", ...).
	Name() string
	// Stats reports what the completed Run did.
	Stats() Stats
}

// Stats is the strategy-independent account of one partitioning pass.
// Fields that a strategy does not track are zero (e.g. ScoreComputations
// for the hashing family, window sizes for single-edge strategies).
type Stats struct {
	// Assignments is the number of edges assigned.
	Assignments int64
	// Vertices is the number of distinct vertices seen.
	Vertices int
	// ScoreComputations counts edge score evaluations (each covering all
	// allowed partitions).
	ScoreComputations int64
	// PartitioningLatency is the wall-clock duration of the pass.
	PartitioningLatency time.Duration
	// FinalWindow and PeakWindow describe the adaptive window trajectory
	// (window strategies only).
	FinalWindow, PeakWindow int
	// FinalLambda is the balancing weight after the last assignment
	// (adaptive-λ strategies only).
	FinalLambda float64
	// ScoreWorkers is the resolved logical scoring shard count (window
	// strategies only; 0 for strategies without a scoring pool).
	ScoreWorkers int
	// ParallelScorePasses counts scoring passes that ran sharded on the
	// scoring pool; PoolScoreOps is the share of ScoreComputations those
	// passes performed. Per-instance attribution holds even on the shared
	// process-wide pool: ops land in the instance's own shard scratches no
	// matter which pool worker executed them.
	ParallelScorePasses int64
	PoolScoreOps        int64
	// StolenScoreShards counts pool-pass shards executed by pool workers
	// rather than the instance's own goroutine — >0 means the instance
	// actually borrowed cores (the work-stealing flex under spotlight).
	StolenScoreShards int64
	// RefillPasses counts batched window refills; BatchedAdds counts the
	// edges those passes staged and scored (window strategies with batched
	// refill only — zero elsewhere and under per-edge refill).
	RefillPasses int64
	BatchedAdds  int64
	// EvictedVertices counts vertex-state evictions under a vertex budget
	// (0 on the unbounded default).
	EvictedVertices int64
	// CacheBytes and PeakCacheBytes are the final and peak tracked byte
	// footprints of the vertex state.
	CacheBytes, PeakCacheBytes int64
}

// AggregateStats folds per-instance spotlight stats into one run-level
// view: throughput counters are summed (safe against double-counting —
// see RunSpotlightStreamsStats), latency and window peaks are maximums
// (instances run concurrently; the slowest one bounds the run), and
// FinalLambda is left zero because z independent λ trajectories have no
// meaningful single final value.
func AggregateStats(stats []Stats) Stats {
	var agg Stats
	for _, st := range stats {
		agg.Assignments += st.Assignments
		agg.Vertices += st.Vertices
		agg.ScoreComputations += st.ScoreComputations
		agg.ParallelScorePasses += st.ParallelScorePasses
		agg.PoolScoreOps += st.PoolScoreOps
		agg.StolenScoreShards += st.StolenScoreShards
		agg.RefillPasses += st.RefillPasses
		agg.BatchedAdds += st.BatchedAdds
		agg.ScoreWorkers += st.ScoreWorkers
		// Byte footprints sum: the z caches coexist for the run, so the
		// run-level envelope is their total.
		agg.EvictedVertices += st.EvictedVertices
		agg.CacheBytes += st.CacheBytes
		agg.PeakCacheBytes += st.PeakCacheBytes
		if st.PartitioningLatency > agg.PartitioningLatency {
			agg.PartitioningLatency = st.PartitioningLatency
		}
		if st.FinalWindow > agg.FinalWindow {
			agg.FinalWindow = st.FinalWindow
		}
		if st.PeakWindow > agg.PeakWindow {
			agg.PeakWindow = st.PeakWindow
		}
	}
	return agg
}

// partitionerStrategy adapts a single-edge partition.Partitioner to
// Strategy via the batched partition.Run loop.
type partitionerStrategy struct {
	p     partition.Partitioner
	clk   clock.Clock
	stats Stats
}

// FromPartitioner wraps a single-edge streaming partitioner as a Strategy.
// Latency is measured on the real clock; FromPartitionerClock substitutes
// a fake one for deterministic tests.
func FromPartitioner(p partition.Partitioner) Strategy {
	return FromPartitionerClock(p, clock.Real{})
}

// FromPartitionerClock is FromPartitioner with an injected time source
// for the PartitioningLatency measurement.
func FromPartitionerClock(p partition.Partitioner, clk clock.Clock) Strategy {
	return &partitionerStrategy{p: p, clk: clk}
}

// StreamingRunner is the historical name of FromPartitioner, kept for the
// spotlight call sites that only need the Runner half.
func StreamingRunner(p partition.Partitioner) Strategy { return FromPartitioner(p) }

func (ps *partitionerStrategy) Name() string { return ps.p.Name() }

func (ps *partitionerStrategy) Run(s stream.Stream) (*metrics.Assignment, error) {
	start := ps.clk.Now()
	a, err := partition.Run(s, ps.p)
	if err != nil {
		return nil, err
	}
	c := ps.p.Cache()
	ps.stats = Stats{
		Assignments:         c.Assigned(),
		Vertices:            c.Vertices(),
		PartitioningLatency: ps.clk.Now().Sub(start),
		EvictedVertices:     c.EvictedVertices(),
		CacheBytes:          c.Bytes(),
		PeakCacheBytes:      c.PeakBytes(),
	}
	return a, nil
}

func (ps *partitionerStrategy) Stats() Stats { return ps.stats }

// Partitioner exposes the wrapped single-edge partitioner, for callers that
// need the per-edge Assign interface (e.g. incremental pipelines).
func (ps *partitionerStrategy) Partitioner() partition.Partitioner { return ps.p }

// adwiseStrategy adapts core.Adwise (which reports the richer core.RunStats)
// to the uniform Strategy surface.
type adwiseStrategy struct {
	*core.Adwise
}

func (a adwiseStrategy) Stats() Stats {
	st := a.Adwise.Stats()
	var poolOps int64
	for _, ops := range st.WorkerScoreOps {
		poolOps += ops
	}
	return Stats{
		Assignments:         st.Assignments,
		Vertices:            a.Cache().Vertices(),
		ScoreComputations:   st.ScoreComputations,
		PartitioningLatency: st.PartitioningLatency,
		FinalWindow:         st.FinalWindow,
		PeakWindow:          st.PeakWindow,
		FinalLambda:         st.FinalLambda,
		ScoreWorkers:        st.ScoreWorkers,
		ParallelScorePasses: st.ParallelScorePasses,
		PoolScoreOps:        poolOps,
		StolenScoreShards:   st.StolenScoreShards,
		RefillPasses:        st.RefillPasses,
		BatchedAdds:         st.BatchedAdds,
		EvictedVertices:     st.EvictedVertices,
		CacheBytes:          st.CacheBytes,
		PeakCacheBytes:      st.PeakCacheBytes,
	}
}

// Detail returns the full ADWISE run statistics (window trace, lazy
// traversal counters) behind the uniform Stats.
func (a adwiseStrategy) Detail() core.RunStats { return a.Adwise.Stats() }

// neStrategy runs the all-edge neighbourhood-expansion heuristic under the
// Strategy interface by materialising the stream first. It is the Figure 1
// "high quality, super-linear latency" reference point; unlike the
// streaming strategies it needs the whole chunk in memory. Under a
// restricted spotlight spread it grows len(allowed) partitions and remaps
// them onto the allowed global ids, so NE composes with parallel loading
// like every other strategy.
type neStrategy struct {
	k       int
	allowed []int
	seed    uint64
	clk     clock.Clock
	stats   Stats
}

func (n *neStrategy) Name() string { return "ne" }

func (n *neStrategy) Run(s stream.Stream) (*metrics.Assignment, error) {
	start := n.clk.Now()
	edges, err := stream.Collect(s)
	if err != nil {
		return nil, err
	}
	g, err := graph.New(edges)
	if err != nil {
		return nil, err
	}
	local := n.k
	if len(n.allowed) > 0 {
		local = len(n.allowed)
	}
	a, err := partition.NE{}.Partition(g, local, n.seed)
	if err != nil {
		return nil, err
	}
	if len(n.allowed) > 0 {
		remapped := metrics.NewAssignment(n.k, a.Len())
		for i, e := range a.Edges {
			remapped.Add(e, n.allowed[a.Parts[i]])
		}
		a = remapped
	}
	n.stats = Stats{
		Assignments:         int64(a.Len()),
		Vertices:            g.V(),
		PartitioningLatency: n.clk.Now().Sub(start),
	}
	return a, nil
}

func (n *neStrategy) Stats() Stats { return n.stats }
