package runtime

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
	"github.com/adwise-go/adwise/internal/stream"
)

// syntheticEdge derives edge i of the big test graph deterministically, so
// the materialised comparison slice and the file contents agree without a
// shared in-memory source.
func syntheticEdge(i int, numV uint64) graph.Edge {
	src := hashx.SplitMix64(uint64(i)) % numV
	dst := hashx.SplitMix64(uint64(i)^0xa5a5a5a5) % numV
	return graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
}

// writeBigEdgeFile writes n fixed-width edge lines (16 bytes each), so the
// planner's byte targets land exactly on the boundaries stream.Chunks
// would pick — making the segmented and materialised chunkings comparable
// edge for edge.
func writeBigEdgeFile(t *testing.T, path string, n int, numV uint64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	for i := 0; i < n; i++ {
		e := syntheticEdge(i, numV)
		fmt.Fprintf(bw, "%07d %07d\n", e.Src, e.Dst)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedSpotlightMatchesMaterialised is the end-to-end check of the
// segmented loading path: a >=1M-edge graph file partitioned by z=4
// segment loaders (RunStrategySpotlightFile) must produce exactly the
// assignment of the materialised RunSpotlight path — same edges, same
// per-instance chunk semantics — while the segmented side never holds the
// full edge slice (each instance streams its own byte range; peak edge
// buffering is one batch per instance).
func TestSegmentedSpotlightMatchesMaterialised(t *testing.T) {
	const (
		n    = 1 << 20 // 1,048,576 edges
		numV = 1 << 17
	)
	path := filepath.Join(t.TempDir(), "big.txt")
	writeBigEdgeFile(t, path, n, numV)

	cfg := SpotlightConfig{K: 32, Z: 4, Spread: 8}
	spec := Spec{K: 32, Seed: 9}

	// Segmented: streams the file's byte ranges directly.
	segmented, err := RunStrategySpotlightFile("hdrf", path, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Materialised reference: the same edges as an in-memory slice.
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = syntheticEdge(i, numV)
	}
	materialised, err := RunStrategySpotlight("hdrf", edges, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Same per-instance chunk semantics: the planner's per-segment edge
	// counts must equal the materialised chunk sizes.
	ranges, err := stream.Plan(path, cfg.Z)
	if err != nil {
		t.Fatal(err)
	}
	chunks := stream.Chunks(edges, cfg.Z)
	for i, r := range ranges {
		if r.Edges != int64(len(chunks[i])) {
			t.Fatalf("segment %d holds %d edges, materialised chunk holds %d", i, r.Edges, len(chunks[i]))
		}
	}

	if segmented.Len() != n || materialised.Len() != n {
		t.Fatalf("assigned %d (segmented) / %d (materialised) of %d edges", segmented.Len(), materialised.Len(), n)
	}
	for i := range segmented.Edges {
		if segmented.Edges[i] != materialised.Edges[i] {
			t.Fatalf("edge %d differs: %v (segmented) vs %v (materialised)", i, segmented.Edges[i], materialised.Edges[i])
		}
		if segmented.Parts[i] != materialised.Parts[i] {
			t.Fatalf("edge %d assigned to %d (segmented) vs %d (materialised)", i, segmented.Parts[i], materialised.Parts[i])
		}
	}
}

// TestBinarySegmentedSpotlightMatchesMaterialised mirrors the 1M-edge text
// equivalence test for the ADWB path: a binary graph file partitioned by
// z=4 record-range loaders (RunStrategySpotlightFile, planned by header
// arithmetic with no counting pass) must produce exactly the assignment of
// the materialised RunStrategySpotlight path — PlanBinary deliberately
// reproduces the stream.Chunks size distribution, so the instances consume
// identical chunks edge for edge.
func TestBinarySegmentedSpotlightMatchesMaterialised(t *testing.T) {
	const (
		n    = 1 << 20 // 1,048,576 edges
		numV = 1 << 17
	)
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = syntheticEdge(i, numV)
	}
	path := filepath.Join(t.TempDir(), "big.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, &graph.Graph{NumV: numV, Edges: edges}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := SpotlightConfig{K: 32, Z: 4, Spread: 8}
	spec := Spec{K: 32, Seed: 9}

	segmented, err := RunStrategySpotlightFile("hdrf", path, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	materialised, err := RunStrategySpotlight("hdrf", edges, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Identical chunk semantics: planned per-range record counts must equal
	// the materialised chunk sizes.
	ranges, err := stream.PlanFile(path, cfg.Z)
	if err != nil {
		t.Fatal(err)
	}
	chunks := stream.Chunks(edges, cfg.Z)
	for i, r := range ranges {
		if r.Format != stream.FormatBinary {
			t.Fatalf("range %d planned as %v, want binary", i, r.Format)
		}
		if r.Edges != int64(len(chunks[i])) {
			t.Fatalf("segment %d holds %d edges, materialised chunk holds %d", i, r.Edges, len(chunks[i]))
		}
	}

	if segmented.Len() != n || materialised.Len() != n {
		t.Fatalf("assigned %d (segmented) / %d (materialised) of %d edges", segmented.Len(), materialised.Len(), n)
	}
	for i := range segmented.Edges {
		if segmented.Edges[i] != materialised.Edges[i] {
			t.Fatalf("edge %d differs: %v (segmented) vs %v (materialised)", i, segmented.Edges[i], materialised.Edges[i])
		}
		if segmented.Parts[i] != materialised.Parts[i] {
			t.Fatalf("edge %d assigned to %d (segmented) vs %d (materialised)", i, segmented.Parts[i], materialised.Parts[i])
		}
	}
}

func TestRunStrategySpotlightFileErrors(t *testing.T) {
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	if _, err := RunStrategySpotlightFile("hdrf", filepath.Join(t.TempDir(), "nope.txt"), cfg, Spec{K: 4}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("0 1\n1 2\nbroken line here no\n2 3\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStrategySpotlightFile("hdrf", bad, cfg, Spec{K: 4}); err == nil {
		t.Error("malformed mid-file line did not fail the run")
	}
	if _, err := RunStrategySpotlightFile("nope", bad, cfg, Spec{K: 4}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunStrategySpotlightFileAdwise(t *testing.T) {
	// The window strategy composes with segmented loading: all edges
	// assigned, spreads respected.
	const n = 4000
	path := filepath.Join(t.TempDir(), "mid.txt")
	writeBigEdgeFile(t, path, n, 1<<10)
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2, Sequential: true}
	a, err := RunStrategySpotlightFile("adwise", path, cfg, Spec{K: 8, Seed: 3, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != n {
		t.Fatalf("assigned %d of %d edges", a.Len(), n)
	}
	ranges, err := stream.Plan(path, cfg.Z)
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	for i, r := range ranges {
		ok := make(map[int32]bool)
		for _, p := range cfg.SpreadFor(i) {
			ok[int32(p)] = true
		}
		for j := int64(0); j < r.Edges; j++ {
			if !ok[a.Parts[idx]] {
				t.Fatalf("edge %d of segment %d assigned to %d outside spread %v", idx, i, a.Parts[idx], cfg.SpreadFor(i))
			}
			idx++
		}
	}
}
