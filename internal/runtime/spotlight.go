package runtime

import (
	"fmt"
	"sync"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
)

// Spotlight partitioning (§III-D): when z partitioner instances load
// disjoint chunks of the graph in parallel, each instance is restricted to
// a *spread* of s partitions instead of all k. A small spread preserves
// stream locality (the paper measures up to 76-80% replication-degree
// reduction) and reduces score computations; s = k recovers the classic
// shared loading model.

// SpotlightConfig configures a parallel loading run.
type SpotlightConfig struct {
	// K is the global partition count.
	K int
	// Z is the number of parallel partitioner instances; each receives a
	// disjoint chunk of the edge stream (the paper uses z = 8, one per
	// machine).
	Z int
	// Spread is the number of partitions each instance may fill. K/Z gives
	// disjoint spotlight groups; K gives the classic full-spread loading.
	Spread int
	// Sequential forces the instances to run one after another instead of
	// in parallel; used by tests and deterministic latency accounting.
	Sequential bool
}

func (c SpotlightConfig) validate() error {
	if c.K < 1 {
		return fmt.Errorf("runtime: spotlight K must be >= 1, got %d", c.K)
	}
	if c.Z < 1 {
		return fmt.Errorf("runtime: spotlight Z must be >= 1, got %d", c.Z)
	}
	if c.K%c.Z != 0 {
		return fmt.Errorf("runtime: spotlight requires Z (%d) to divide K (%d)", c.Z, c.K)
	}
	if c.Spread < c.K/c.Z || c.Spread > c.K {
		return fmt.Errorf("runtime: spotlight spread %d outside [K/Z=%d, K=%d]", c.Spread, c.K/c.Z, c.K)
	}
	return nil
}

// SpreadFor returns the partitions instance i ∈ [0,Z) may fill: a block of
// Spread partitions starting at i·(K/Z), wrapping modulo K. With
// Spread = K/Z the blocks are disjoint (full spotlight); growing Spread
// overlaps neighbouring blocks until Spread = K covers everything. Every
// partition is covered by at least one instance for any valid spread.
func (c SpotlightConfig) SpreadFor(i int) []int {
	stride := c.K / c.Z
	parts := make([]int, c.Spread)
	for j := 0; j < c.Spread; j++ {
		parts[j] = (i*stride + j) % c.K
	}
	return parts
}

// RunSpotlightStreams partitions Z edge streams with Z parallel instances
// built by build(i, allowed) — instance i consumes streams[i] — and merges
// their assignments in instance order. It is the general executor behind
// both loading models of the paper: in-memory chunks (RunSpotlight) and
// disjoint byte ranges of one graph file (RunStrategySpotlightFile).
// Builders typically return a registry-constructed Strategy; any Runner
// works. A stream that fails mid-pass fails the run even if its Runner
// ignored the stream error contract.
func RunSpotlightStreams(streams []stream.Stream, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*metrics.Assignment, error) {
	a, _, err := RunSpotlightStreamsStats(streams, cfg, build)
	return a, err
}

// RunSpotlightStreamsStats is RunSpotlightStreams plus per-instance
// statistics: stats[i] is instance i's Stats if its Runner implements
// Strategy (zero otherwise). With every instance scoring on the shared
// work-stealing pool, per-instance counters remain correctly attributed —
// each instance's score ops land in its own shard scratches no matter
// which pool worker executed them — so summing stats across instances
// (AggregateStats) neither double-counts nor loses pool-executed work.
func RunSpotlightStreamsStats(streams []stream.Stream, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*metrics.Assignment, []Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if len(streams) != cfg.Z {
		return nil, nil, fmt.Errorf("runtime: spotlight got %d streams for Z=%d instances", len(streams), cfg.Z)
	}
	runners := make([]Runner, cfg.Z)
	for i := range runners {
		r, err := build(i, cfg.SpreadFor(i))
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: building spotlight instance %d: %w", i, err)
		}
		runners[i] = r
	}

	results := make([]*metrics.Assignment, cfg.Z)
	errs := make([]error, cfg.Z)
	runOne := func(i int) {
		results[i], errs[i] = runners[i].Run(streams[i])
		if errs[i] == nil {
			// Exhaustion with a pending stream error is a failure, never a
			// short success — enforce it here even for Runners that do not
			// check stream.Err themselves.
			errs[i] = stream.Err(streams[i])
		}
	}
	if cfg.Sequential {
		for i := range runners {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range runners {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: spotlight instance %d: %w", i, err)
		}
	}

	total := 0
	for _, res := range results {
		total += res.Len()
	}
	merged := metrics.NewAssignment(cfg.K, total)
	for _, res := range results {
		if err := merged.Merge(res); err != nil {
			return nil, nil, err
		}
	}
	stats := make([]Stats, cfg.Z)
	for i, r := range runners {
		if st, ok := r.(Strategy); ok {
			stats[i] = st.Stats()
		}
	}
	return merged, stats, nil
}

// RunSpotlight partitions an in-memory edge slice with Z parallel
// instances: the slice is split into Z near-equal contiguous chunks
// (stream.Chunks), mirroring the paper's parallel loading model where each
// worker machine streams its own chunk of the graph file. Fewer edges than
// Z is an error — stream.Chunks would silently build fewer runners,
// leaving the remaining spreads' partitions unreachable with no signal.
func RunSpotlight(edges []graph.Edge, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*metrics.Assignment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(edges) < cfg.Z {
		return nil, fmt.Errorf("runtime: spotlight needs at least Z=%d edges so every instance receives a chunk, got %d", cfg.Z, len(edges))
	}
	chunks := stream.Chunks(edges, cfg.Z)
	streams := make([]stream.Stream, len(chunks))
	for i, ch := range chunks {
		streams[i] = stream.FromEdges(ch)
	}
	return RunSpotlightStreams(streams, cfg, build)
}

// splitScoreWorkers resolves the per-instance logical scoring shard
// counts under parallel loading. With total == 0 (auto) every instance
// stays auto too — each resolves to GOMAXPROCS shards executing on the
// process-wide work-stealing pool, which arbitrates the machine's cores
// across instances dynamically, so there is nothing to divide and no core
// is ever stranded. An explicit total is a per-run budget: it is
// distributed across the z instances with the remainder spread over the
// first total%z instances (never the floor-division of the historical
// divideScoreWorkers, which stranded up to z−1 requested shards — 8
// cores, z=3 → 6 workers), with every instance getting at least 1.
// Sequential runs execute instances one at a time, so each may use the
// full explicit total.
func splitScoreWorkers(total, z int, sequential bool) []int {
	shares := make([]int, max(z, 1))
	if total == 0 {
		return shares // all auto
	}
	if sequential {
		for i := range shares {
			shares[i] = total
		}
		return shares
	}
	base, rem := total/len(shares), total%len(shares)
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	return shares
}

// splitVertexBudget divides a run-level vertex-state byte budget across
// the z instances with remainder spread, like splitScoreWorkers. Unlike
// score workers there is no sequential exception: all z caches coexist
// for the whole run (each instance keeps its state until the merge), so
// the run-level envelope is their sum regardless of execution order.
// total 0 (unbounded) leaves every instance unbounded.
func splitVertexBudget(total int64, z int) []int64 {
	shares := make([]int64, max(z, 1))
	if total <= 0 {
		return shares // all unbounded
	}
	n := int64(len(shares))
	base, rem := total/n, total%n
	for i := range shares {
		shares[i] = base
		if int64(i) < rem {
			shares[i]++
		}
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	return shares
}

// RunStrategySpotlight is the registry-driven convenience: it partitions
// edges with Z instances of the named strategy, each restricted to its
// spread, with the per-instance seed offset, chunk-size hint, and
// score-worker share the paper's setup uses.
func RunStrategySpotlight(name string, edges []graph.Edge, cfg SpotlightConfig, spec Spec) (*metrics.Assignment, error) {
	a, _, err := RunStrategySpotlightStats(name, edges, cfg, spec)
	return a, err
}

// RunStrategySpotlightStats is RunStrategySpotlight plus the per-instance
// Stats of RunSpotlightStreamsStats.
func RunStrategySpotlightStats(name string, edges []graph.Edge, cfg SpotlightConfig, spec Spec) (*metrics.Assignment, []Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if len(edges) < cfg.Z {
		return nil, nil, fmt.Errorf("runtime: spotlight needs at least Z=%d edges so every instance receives a chunk, got %d", cfg.Z, len(edges))
	}
	if spec.K == 0 {
		spec.K = cfg.K
	}
	shares := splitScoreWorkers(spec.ScoreWorkers, cfg.Z, cfg.Sequential)
	budgets := splitVertexBudget(spec.VertexBudgetBytes, cfg.Z)
	chunkEdges := int64(len(edges)/max(cfg.Z, 1) + 1)
	chunks := stream.Chunks(edges, cfg.Z)
	streams := make([]stream.Stream, len(chunks))
	for i, ch := range chunks {
		streams[i] = stream.FromEdges(ch)
	}
	return RunSpotlightStreamsStats(streams, cfg, func(i int, allowed []int) (Runner, error) {
		s := spec
		s.Allowed = allowed
		s.Seed = spec.Seed + uint64(i)
		s.ScoreWorkers = shares[i]
		s.VertexBudgetBytes = budgets[i]
		if s.TotalEdgesHint == 0 {
			s.TotalEdgesHint = chunkEdges
		}
		return New(name, s)
	})
}

// RunStrategySpotlightFile partitions the graph file at path — text edge
// list or ADWB binary, sniffed by the ingest layer — with Z registry-built
// instances of the named strategy, each streaming a disjoint byte range of
// the file (stream.PlanFile + stream.OpenSegment): the paper's Figure 3
// deployment, where z loader machines each consume their own chunk of one
// large graph file. Text files are planned with one counting pass; binary
// files by record arithmetic on the header alone, with no pass over the
// data at all. With streaming strategies the edge list is never
// materialised: peak memory is z segment readers plus the per-instance
// vertex caches. (The all-edge "ne" strategy is the exception — it
// collects each instance's segment into memory by design.) Each instance
// gets the per-instance seed offset of RunStrategySpotlight and an exact
// per-segment edge count for condition (C2).
func RunStrategySpotlightFile(name, path string, cfg SpotlightConfig, spec Spec) (*metrics.Assignment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ranges, err := stream.PlanFile(path, cfg.Z)
	if err != nil {
		return nil, err
	}
	segs := make([]stream.FileStream, len(ranges))
	defer func() {
		for _, s := range segs {
			if s != nil {
				s.Close()
			}
		}
	}()
	streams := make([]stream.Stream, len(ranges))
	for i, r := range ranges {
		seg, err := stream.OpenSegment(r)
		if err != nil {
			return nil, err
		}
		segs[i], streams[i] = seg, seg
		if spec.Metrics != nil {
			// Meter each segment: edges tick live per batch (a flusher
			// sampling the registry sees ingest progress mid-pass), the
			// planned byte length lands up front, and exhaustion bumps the
			// segments-done counter.
			reg := spec.Metrics
			reg.Counter(stream.MetricBytesPlanned).Inc(r.End - r.Start)
			segsDone := reg.Counter(stream.MetricSegmentsDone)
			streams[i] = stream.NewMetered(seg, reg.Counter(stream.MetricEdgesRead), func() {
				segsDone.Inc(1)
			})
		}
	}
	if spec.K == 0 {
		spec.K = cfg.K
	}
	shares := splitScoreWorkers(spec.ScoreWorkers, cfg.Z, cfg.Sequential)
	budgets := splitVertexBudget(spec.VertexBudgetBytes, cfg.Z)
	return RunSpotlightStreams(streams, cfg, func(i int, allowed []int) (Runner, error) {
		s := spec
		s.Allowed = allowed
		s.Seed = spec.Seed + uint64(i)
		s.ScoreWorkers = shares[i]
		s.VertexBudgetBytes = budgets[i]
		if s.TotalEdgesHint == 0 {
			s.TotalEdgesHint = ranges[i].Edges
		}
		return New(name, s)
	})
}
