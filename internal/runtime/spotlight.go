package runtime

import (
	"fmt"
	"sync"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
)

// Spotlight partitioning (§III-D): when z partitioner instances load
// disjoint chunks of the graph in parallel, each instance is restricted to
// a *spread* of s partitions instead of all k. A small spread preserves
// stream locality (the paper measures up to 76-80% replication-degree
// reduction) and reduces score computations; s = k recovers the classic
// shared loading model.

// SpotlightConfig configures a parallel loading run.
type SpotlightConfig struct {
	// K is the global partition count.
	K int
	// Z is the number of parallel partitioner instances; each receives a
	// disjoint chunk of the edge stream (the paper uses z = 8, one per
	// machine).
	Z int
	// Spread is the number of partitions each instance may fill. K/Z gives
	// disjoint spotlight groups; K gives the classic full-spread loading.
	Spread int
	// Sequential forces the instances to run one after another instead of
	// in parallel; used by tests and deterministic latency accounting.
	Sequential bool
}

func (c SpotlightConfig) validate() error {
	if c.K < 1 {
		return fmt.Errorf("runtime: spotlight K must be >= 1, got %d", c.K)
	}
	if c.Z < 1 {
		return fmt.Errorf("runtime: spotlight Z must be >= 1, got %d", c.Z)
	}
	if c.K%c.Z != 0 {
		return fmt.Errorf("runtime: spotlight requires Z (%d) to divide K (%d)", c.Z, c.K)
	}
	if c.Spread < c.K/c.Z || c.Spread > c.K {
		return fmt.Errorf("runtime: spotlight spread %d outside [K/Z=%d, K=%d]", c.Spread, c.K/c.Z, c.K)
	}
	return nil
}

// SpreadFor returns the partitions instance i ∈ [0,Z) may fill: a block of
// Spread partitions starting at i·(K/Z), wrapping modulo K. With
// Spread = K/Z the blocks are disjoint (full spotlight); growing Spread
// overlaps neighbouring blocks until Spread = K covers everything. Every
// partition is covered by at least one instance for any valid spread.
func (c SpotlightConfig) SpreadFor(i int) []int {
	stride := c.K / c.Z
	parts := make([]int, c.Spread)
	for j := 0; j < c.Spread; j++ {
		parts[j] = (i*stride + j) % c.K
	}
	return parts
}

// RunSpotlight partitions edges with Z parallel instances built by
// build(i, allowed) and merges their assignments in instance order. The
// edge slice is split into Z near-equal contiguous chunks, mirroring the
// paper's parallel loading model where each worker machine streams its own
// chunk of the graph file. Builders typically return a registry-constructed
// Strategy; any Runner works.
func RunSpotlight(edges []graph.Edge, cfg SpotlightConfig, build func(i int, allowed []int) (Runner, error)) (*metrics.Assignment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("runtime: spotlight needs a non-empty edge list")
	}
	chunks := stream.Chunks(edges, cfg.Z)
	runners := make([]Runner, len(chunks))
	for i := range chunks {
		r, err := build(i, cfg.SpreadFor(i))
		if err != nil {
			return nil, fmt.Errorf("runtime: building spotlight instance %d: %w", i, err)
		}
		runners[i] = r
	}

	results := make([]*metrics.Assignment, len(chunks))
	errs := make([]error, len(chunks))
	if cfg.Sequential {
		for i, r := range runners {
			results[i], errs[i] = r.Run(stream.FromEdges(chunks[i]))
		}
	} else {
		var wg sync.WaitGroup
		for i, r := range runners {
			wg.Add(1)
			go func(i int, r Runner) {
				defer wg.Done()
				results[i], errs[i] = r.Run(stream.FromEdges(chunks[i]))
			}(i, r)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runtime: spotlight instance %d: %w", i, err)
		}
	}

	merged := metrics.NewAssignment(cfg.K, len(edges))
	for _, res := range results {
		if err := merged.Merge(res); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// RunStrategySpotlight is the registry-driven convenience: it partitions
// edges with Z instances of the named strategy, each restricted to its
// spread, with the per-instance seed offset and chunk-size hint the paper's
// setup uses.
func RunStrategySpotlight(name string, edges []graph.Edge, cfg SpotlightConfig, spec Spec) (*metrics.Assignment, error) {
	if spec.K == 0 {
		spec.K = cfg.K
	}
	chunkEdges := int64(len(edges)/max(cfg.Z, 1) + 1)
	return RunSpotlight(edges, cfg, func(i int, allowed []int) (Runner, error) {
		s := spec
		s.Allowed = allowed
		s.Seed = spec.Seed + uint64(i)
		if s.TotalEdgesHint == 0 {
			s.TotalEdgesHint = chunkEdges
		}
		return New(name, s)
	})
}
