package runtime

import (
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

func TestRegistryHasAllStrategies(t *testing.T) {
	want := []string{"1d", "2d", "adwise", "dbh", "greedy", "grid", "hash", "hdrf", "ne"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestBaselinesOrder(t *testing.T) {
	want := []string{"hash", "1d", "2d", "grid", "greedy", "dbh", "hdrf"}
	got := Baselines()
	if len(got) != len(want) {
		t.Fatalf("Baselines() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Baselines() = %v, want %v", got, want)
		}
	}
}

func TestMetaDrivenFilters(t *testing.T) {
	sweep := NamesWhere(func(m Meta) bool { return m.Sweep })
	if len(sweep) != 2 || sweep[0] != "dbh" || sweep[1] != "hdrf" {
		t.Errorf("sweep baselines = %v, want [dbh hdrf]", sweep)
	}
	windows := NamesWhere(func(m Meta) bool { return m.Class == ClassWindow })
	if len(windows) != 1 || windows[0] != "adwise" {
		t.Errorf("window strategies = %v, want [adwise]", windows)
	}
	allEdge := NamesWhere(func(m Meta) bool { return m.Class == ClassAllEdge })
	if len(allEdge) != 1 || allEdge[0] != "ne" {
		t.Errorf("all-edge strategies = %v, want [ne]", allEdge)
	}
	// Every registered name carries a meta with a class, and every
	// single-edge baseline is classed as such.
	for _, name := range Names() {
		m, ok := MetaOf(name)
		if !ok || m.Name != name {
			t.Fatalf("MetaOf(%q) = (%+v, %v)", name, m, ok)
		}
		if m.Class == "" {
			t.Errorf("strategy %q registered without a class", name)
		}
	}
	for _, name := range Baselines() {
		if m, _ := MetaOf(name); m.Class != ClassSingleEdge {
			t.Errorf("baseline %q classed %q, want %q", name, m.Class, ClassSingleEdge)
		}
	}
	if _, ok := MetaOf("bogus"); ok {
		t.Error("MetaOf returned metadata for an unregistered name")
	}
}

func TestNewUnknownStrategy(t *testing.T) {
	if _, err := New("bogus", Spec{K: 4}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewPartitioner("bogus", partition.Config{K: 4}); err == nil {
		t.Error("unknown baseline accepted")
	}
	// adwise and ne are not single-edge baselines.
	if _, err := NewPartitioner("adwise", partition.Config{K: 4}); err == nil {
		t.Error("adwise constructible as a raw partitioner")
	}
}

func TestEveryStrategyRunsAndReportsStats(t *testing.T) {
	g := clusteredGraph(t)
	for _, name := range Names() {
		s, err := New(name, Spec{K: 8, Seed: 3, Window: 16})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("strategy %q reports name %q", name, s.Name())
		}
		a, err := s.Run(stream.FromEdges(g.Edges))
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if a.Len() != g.E() {
			t.Errorf("%s assigned %d of %d edges", name, a.Len(), g.E())
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		st := s.Stats()
		if st.Assignments != int64(g.E()) {
			t.Errorf("%s: Stats.Assignments = %d, want %d", name, st.Assignments, g.E())
		}
		if st.Vertices != g.V() {
			t.Errorf("%s: Stats.Vertices = %d, want %d", name, st.Vertices, g.V())
		}
	}
}

func TestSpecAllowedRestrictsAssignments(t *testing.T) {
	g := clusteredGraph(t)
	allowed := []int{1, 3}
	for _, name := range Baselines() {
		s, err := New(name, Spec{K: 8, Allowed: allowed, Seed: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		a, err := s.Run(stream.FromEdges(g.Edges))
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range a.Parts {
			if p != 1 && p != 3 {
				t.Fatalf("%s: edge %d assigned to %d outside allowed %v", name, i, p, allowed)
			}
		}
	}
}

func TestSpecLambdaReachesHDRF(t *testing.T) {
	s, err := New("hdrf", Spec{K: 8, Lambda: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	type lambdaer interface{ Partitioner() partition.Partitioner }
	h, ok := s.(lambdaer).Partitioner().(*partition.HDRF)
	if !ok {
		t.Fatal("hdrf strategy does not wrap *partition.HDRF")
	}
	if h.Lambda() != 2.5 {
		t.Errorf("Lambda = %v, want 2.5", h.Lambda())
	}
}

func TestAdwiseSpecKnobs(t *testing.T) {
	g := clusteredGraph(t)
	s, err := New("adwise", Spec{K: 8, Latency: time.Second, Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(stream.FromEdges(g.Edges))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("assigned %d of %d edges", a.Len(), g.E())
	}
	st := s.Stats()
	if st.FinalWindow != 32 || st.PeakWindow != 32 {
		t.Errorf("fixed window drifted: final=%d peak=%d, want 32", st.FinalWindow, st.PeakWindow)
	}
	if st.ScoreComputations == 0 {
		t.Error("adwise reported zero score computations")
	}
}

func TestNERestrictedSpreadRemaps(t *testing.T) {
	g := clusteredGraph(t)
	allowed := []int{2, 5}
	s, err := New("ne", Spec{K: 8, Allowed: allowed, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(stream.FromEdges(g.Edges))
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 8 {
		t.Fatalf("remapped assignment K = %d, want 8", a.K)
	}
	used := make(map[int32]bool)
	for i, p := range a.Parts {
		if p != 2 && p != 5 {
			t.Fatalf("edge %d assigned to %d outside allowed %v", i, p, allowed)
		}
		used[p] = true
	}
	if len(used) != len(allowed) {
		t.Errorf("ne used %d of %d allowed partitions", len(used), len(allowed))
	}
	if _, err := New("ne", Spec{K: 4, Allowed: []int{7}}); err == nil {
		t.Error("ne accepted an out-of-range allowed partition")
	}
}

func TestNEWorksUnderSpotlight(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2}
	a, err := RunStrategySpotlight("ne", g.Edges, cfg, Spec{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("ne spotlight assigned %d of %d edges", a.Len(), g.E())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyRunIsSingleUseForAdwise(t *testing.T) {
	g := clusteredGraph(t)
	s, err := New("adwise", Spec{K: 4, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(stream.FromEdges(g.Edges)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(stream.FromEdges(g.Edges)); err == nil {
		t.Error("second Run on the same adwise instance succeeded")
	}
}

func TestRunStrategySpotlightDefaultsSpecK(t *testing.T) {
	g := clusteredGraph(t)
	a, err := RunStrategySpotlight("hash", g.Edges, SpotlightConfig{K: 8, Z: 4, Spread: 2}, Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("assigned %d of %d edges", a.Len(), g.E())
	}
	var _ *metrics.Assignment = a
}
