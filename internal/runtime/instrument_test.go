package runtime

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/stream"
)

func regCounter(t *testing.T, reg *metric.Registry, name string) int64 {
	t.Helper()
	p, ok := reg.Snapshot().Counter(name)
	if !ok {
		t.Fatalf("counter %q not in snapshot", name)
	}
	return p.Value
}

// TestSpotlightFilePublishesStreamMetrics runs the segmented file loader
// with a registry attached and checks the ingest metrics: every edge read,
// every segment completed, and the full planned byte length accounted.
func TestSpotlightFilePublishesStreamMetrics(t *testing.T) {
	const n = 1 << 12
	path := filepath.Join(t.TempDir(), "metered.txt")
	writeBigEdgeFile(t, path, n, 1<<10)

	reg := metric.New()
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2}
	spec := Spec{K: 8, Seed: 3, Metrics: reg}
	asn, err := RunStrategySpotlightFile("hdrf", path, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if asn.Len() != n {
		t.Fatalf("assigned %d edges, want %d", asn.Len(), n)
	}
	if got := regCounter(t, reg, stream.MetricEdgesRead); got != n {
		t.Errorf("%s = %d, want %d", stream.MetricEdgesRead, got, n)
	}
	if got := regCounter(t, reg, stream.MetricSegmentsDone); got != 4 {
		t.Errorf("%s = %d, want 4", stream.MetricSegmentsDone, got)
	}
	// 16 bytes per fixed-width line.
	if got := regCounter(t, reg, stream.MetricBytesPlanned); got != n*16 {
		t.Errorf("%s = %d, want %d", stream.MetricBytesPlanned, got, n*16)
	}
}

// TestAdwiseSpecMetricsPublishesCoreCounters checks the registry path from
// Spec.Metrics through the adwise builder: run totals land on the core.*
// names after the pass.
func TestAdwiseSpecMetricsPublishesCoreCounters(t *testing.T) {
	reg := metric.New()
	st, err := New("adwise", Spec{K: 4, Latency: time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	g := syntheticEdges(2048, 1<<9)
	if _, err := st.Run(stream.FromEdges(g)); err != nil {
		t.Fatal(err)
	}
	if got := regCounter(t, reg, "core.assignments"); got != 2048 {
		t.Errorf("core.assignments = %d, want 2048", got)
	}
	if got := regCounter(t, reg, "core.score_ops"); got <= 0 {
		t.Errorf("core.score_ops = %d, want > 0", got)
	}
	if tp, ok := reg.Snapshot().Timer("core.run.latency"); !ok || tp.Count != 1 {
		t.Errorf("core.run.latency = %+v ok=%v, want one observation", tp, ok)
	}
}

// TestPublishStats checks the generic Stats bridge.
func TestPublishStats(t *testing.T) {
	reg := metric.New(metric.WithCounterStripes(1))
	PublishStats(reg, Stats{
		Assignments:         100,
		ScoreComputations:   500,
		ParallelScorePasses: 7,
		PoolScoreOps:        300,
		StolenScoreShards:   4,
		PartitioningLatency: 25 * time.Millisecond,
	})
	PublishStats(reg, Stats{Assignments: 50})
	PublishStats(nil, Stats{Assignments: 1}) // no-op, must not panic

	if got := regCounter(t, reg, MetricRunAssignments); got != 150 {
		t.Errorf("%s = %d, want cumulative 150", MetricRunAssignments, got)
	}
	if got := regCounter(t, reg, MetricRunStolenShards); got != 4 {
		t.Errorf("%s = %d, want 4", MetricRunStolenShards, got)
	}
	if tp, ok := reg.Snapshot().Timer(MetricRunLatency); !ok || tp.Count != 2 {
		t.Errorf("%s = %+v ok=%v, want two observations", MetricRunLatency, tp, ok)
	}
}

// syntheticEdges materialises n synthetic edges (the writeBigEdgeFile
// generator, in memory).
func syntheticEdges(n int, numV uint64) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = syntheticEdge(i, numV)
	}
	return out
}
