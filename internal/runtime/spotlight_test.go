package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	gort "runtime"
	"strings"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

func edgesN(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return out
}

func clusteredGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Community(60, 10, 0.9, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpotlightConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  SpotlightConfig
	}{
		{"k=0", SpotlightConfig{K: 0, Z: 1, Spread: 1}},
		{"z=0", SpotlightConfig{K: 4, Z: 0, Spread: 4}},
		{"z not dividing k", SpotlightConfig{K: 10, Z: 3, Spread: 4}},
		{"spread below k/z", SpotlightConfig{K: 32, Z: 8, Spread: 2}},
		{"spread above k", SpotlightConfig{K: 32, Z: 8, Spread: 64}},
	}
	g := clusteredGraph(t)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunSpotlight(g.Edges, tc.cfg, func(i int, allowed []int) (Runner, error) {
				return nil, errors.New("unreachable")
			})
			if err == nil {
				t.Error("want config error")
			}
		})
	}
}

func TestSpreadForCoversAllPartitions(t *testing.T) {
	for _, spread := range []int{4, 8, 16, 32} {
		cfg := SpotlightConfig{K: 32, Z: 8, Spread: spread}
		covered := make(map[int]bool)
		for i := 0; i < cfg.Z; i++ {
			parts := cfg.SpreadFor(i)
			if len(parts) != spread {
				t.Fatalf("spread=%d: instance %d got %d partitions", spread, i, len(parts))
			}
			for _, p := range parts {
				if p < 0 || p >= 32 {
					t.Fatalf("spread=%d: partition %d out of range", spread, p)
				}
				covered[p] = true
			}
		}
		if len(covered) != 32 {
			t.Errorf("spread=%d: only %d partitions covered", spread, len(covered))
		}
	}
}

func TestSpreadForDisjointAtMinimum(t *testing.T) {
	cfg := SpotlightConfig{K: 32, Z: 8, Spread: 4}
	seen := make(map[int]int)
	for i := 0; i < cfg.Z; i++ {
		for _, p := range cfg.SpreadFor(i) {
			seen[p]++
		}
	}
	for p, c := range seen {
		if c != 1 {
			t.Errorf("partition %d owned by %d instances at minimal spread", p, c)
		}
	}
}

// TestSpreadForWrapsAroundModuloK pins the wrap-around semantics when
// Spread > K/Z: the last instances' blocks run past partition K-1 and must
// wrap to the low partition ids, staying in range and duplicate-free.
func TestSpreadForWrapsAroundModuloK(t *testing.T) {
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 4}
	// Instance 3 starts at 3·(8/4) = 6 and wraps: {6, 7, 0, 1}.
	got := cfg.SpreadFor(3)
	want := []int{6, 7, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("SpreadFor(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpreadFor(3) = %v, want %v", got, want)
		}
	}
	// Every instance at every legal over-minimum spread yields distinct
	// in-range partitions.
	for _, spread := range []int{2, 4, 6, 8} {
		cfg := SpotlightConfig{K: 8, Z: 4, Spread: spread}
		for i := 0; i < cfg.Z; i++ {
			parts := cfg.SpreadFor(i)
			seen := make(map[int]bool, len(parts))
			for _, p := range parts {
				if p < 0 || p >= cfg.K {
					t.Fatalf("spread=%d instance %d: partition %d out of range", spread, i, p)
				}
				if seen[p] {
					t.Fatalf("spread=%d instance %d: partition %d duplicated in %v", spread, i, p, parts)
				}
				seen[p] = true
			}
		}
	}
}

func TestRunSpotlightAssignsEverything(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 16, Z: 4, Spread: 4}
	a, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		h, err := partition.NewHDRF(partition.Config{K: 16, Allowed: allowed, Seed: uint64(i)}, partition.HDRFDefaultLambda)
		if err != nil {
			return nil, err
		}
		return StreamingRunner(h), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("spotlight assigned %d of %d edges", a.Len(), g.E())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpotlightRespectsSpreads(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2, Sequential: true}
	instanceParts := make(map[int][]int)
	a, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		instanceParts[i] = allowed
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk i's edges may only land on instance i's spread.
	chunks := stream.Chunks(g.Edges, cfg.Z)
	idx := 0
	for i, ch := range chunks {
		ok := make(map[int32]bool)
		for _, p := range instanceParts[i] {
			ok[int32(p)] = true
		}
		for range ch {
			if !ok[a.Parts[idx]] {
				t.Fatalf("edge %d of chunk %d assigned to %d outside spread %v", idx, i, a.Parts[idx], instanceParts[i])
			}
			idx++
		}
	}
}

func TestSpotlightReducesReplicationForAllStrategies(t *testing.T) {
	// The Figure 8 claim: smaller spread → smaller replication degree, for
	// DBH, HDRF and ADWISE alike. The paper measures this on Brain with
	// the natural file order — spotlight's win is preserving the locality
	// already present in the stream, so no shuffle here.
	g, err := gen.BrainLike(0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges

	for _, name := range []string{"dbh", "hdrf", "adwise"} {
		rf := func(spread int) float64 {
			cfg := SpotlightConfig{K: 32, Z: 8, Spread: spread}
			a, err := RunStrategySpotlight(name, edges, cfg, Spec{K: 32, Seed: 9, Window: 32})
			if err != nil {
				t.Fatalf("%s spread=%d: %v", name, spread, err)
			}
			return metrics.Summarize(a).ReplicationDegree
		}
		full, spot := rf(32), rf(4)
		if spot >= full {
			t.Errorf("%s: spotlight spread=4 RF %v not below full-spread RF %v", name, spot, full)
		}
	}
}

func TestSpotlightBuilderErrorPropagates(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	wantErr := errors.New("boom")
	_, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("builder error not propagated: %v", err)
	}
}

func TestSpotlightRunnerErrorPropagates(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	wantErr := errors.New("runner failed")
	_, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		if i == 1 {
			return RunnerFunc(func(s stream.Stream) (*metrics.Assignment, error) {
				return nil, wantErr
			}), nil
		}
		return New("hash", Spec{K: 4, Allowed: allowed})
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("runner error not propagated: %v", err)
	}
}

func TestSpotlightEmptyEdges(t *testing.T) {
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	if _, err := RunSpotlight(nil, cfg, func(i int, allowed []int) (Runner, error) {
		return nil, fmt.Errorf("unreachable")
	}); err == nil {
		t.Error("empty edges accepted")
	}
}

func TestSpotlightFewerEdgesThanZ(t *testing.T) {
	// stream.Chunks clamps z when len(edges) < z; silently building fewer
	// runners than Z would leave some spreads' partitions unreachable with
	// no signal. The executor must reject the degenerate case instead.
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	_, err := RunSpotlight(edges, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err == nil {
		t.Fatal("3 edges accepted for Z=4 instances")
	}
	if !strings.Contains(err.Error(), "Z=4") || !strings.Contains(err.Error(), "3") {
		t.Errorf("degenerate-case error not descriptive: %v", err)
	}
	// Exactly Z edges is the smallest legal input: one edge per instance.
	edges = append(edges, graph.Edge{Src: 3, Dst: 4})
	a, err := RunSpotlight(edges, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Errorf("assigned %d of 4 edges", a.Len())
	}
}

func TestRunSpotlightStreamsCountMismatch(t *testing.T) {
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	streams := []stream.Stream{stream.FromEdges(edgesN(4))}
	if _, err := RunSpotlightStreams(streams, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 4, Allowed: allowed})
	}); err == nil {
		t.Error("1 stream accepted for Z=2 instances")
	}
}

func TestRunSpotlightStreamsEnforcesStreamErrors(t *testing.T) {
	// Even a Runner that ignores the stream error contract must not turn a
	// failing stream into a short success: the executor checks stream.Err.
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\nbroken\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := SpotlightConfig{K: 2, Z: 2, Spread: 1, Sequential: true}
	ranges, err := stream.Plan(path, cfg.Z)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]stream.Stream, len(ranges))
	for i, r := range ranges {
		seg, err := stream.OpenSegment(r)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		streams[i] = seg
	}
	careless := RunnerFunc(func(s stream.Stream) (*metrics.Assignment, error) {
		a := metrics.NewAssignment(2, 4)
		var buf [8]graph.Edge
		for {
			n := stream.NextBatch(s, buf[:])
			if n == 0 {
				return a, nil // no stream.Err check — deliberately buggy
			}
			for _, e := range buf[:n] {
				a.Add(e, 0)
			}
		}
	})
	_, err = RunSpotlightStreams(streams, cfg, func(i int, allowed []int) (Runner, error) {
		return careless, nil
	})
	if err == nil {
		t.Error("executor accepted a failing segment stream drained by a careless runner")
	}
}

func TestSpotlightSequentialMatchesParallel(t *testing.T) {
	g := clusteredGraph(t)
	build := func(i int, allowed []int) (Runner, error) {
		return New("hdrf", Spec{K: 8, Allowed: allowed, Seed: 5})
	}
	seq, err := RunSpotlight(g.Edges, SpotlightConfig{K: 8, Z: 4, Spread: 2, Sequential: true}, build)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpotlight(g.Edges, SpotlightConfig{K: 8, Z: 4, Spread: 2}, build)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("lengths differ: %d vs %d", seq.Len(), par.Len())
	}
	for i := range seq.Parts {
		if seq.Parts[i] != par.Parts[i] {
			t.Fatalf("sequential and parallel spotlight diverge at edge %d", i)
		}
	}
}

// TestSpotlightScoreWorkersInvariant pins the cross-layer determinism
// contract: under spotlight loading, the per-instance score-worker count
// must not change a single assignment — only wall-clock. Auto (0) divides
// the machine's cores among the z instances; explicit values are honoured
// per instance.
func TestSpotlightScoreWorkersInvariant(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 8, Z: 2, Spread: 4, Sequential: true}
	run := func(workers int) *metrics.Assignment {
		t.Helper()
		a, err := RunStrategySpotlight("adwise", g.Edges, cfg, Spec{
			K:            8,
			Window:       128,
			ScoreWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		parallel := run(workers)
		if parallel.Len() != serial.Len() {
			t.Fatalf("workers=%d assigned %d edges, serial %d", workers, parallel.Len(), serial.Len())
		}
		for i := range serial.Edges {
			if serial.Edges[i] != parallel.Edges[i] || serial.Parts[i] != parallel.Parts[i] {
				t.Fatalf("workers=%d diverged from serial at assignment %d", workers, i)
			}
		}
	}
}

// TestSplitScoreWorkers pins the explicit-budget distribution rule: an
// explicit total is spread across instances with the remainder over the
// first total%z instances (no stranded cores — the historical floor
// division lost up to z−1 of a requested budget), never below 1 per
// instance; auto (0) stays auto everywhere (the shared pool arbitrates);
// sequential runs keep the whole budget per instance.
func TestSplitScoreWorkers(t *testing.T) {
	tests := []struct {
		total, z   int
		sequential bool
		want       []int
	}{
		{0, 3, false, []int{0, 0, 0}}, // auto stays auto
		{0, 2, true, []int{0, 0}},     // auto stays auto, sequential too
		{8, 3, false, []int{3, 3, 2}}, // remainder spread, Σ = total
		{8, 8, false, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{3, 8, false, []int{1, 1, 1, 1, 1, 1, 1, 1}}, // min 1 each
		{7, 4, false, []int{2, 2, 2, 1}},
		{6, 3, true, []int{6, 6, 6}}, // sequential: full budget each
		{5, 1, false, []int{5}},
	}
	for _, tc := range tests {
		got := splitScoreWorkers(tc.total, tc.z, tc.sequential)
		if len(got) != len(tc.want) {
			t.Errorf("splitScoreWorkers(%d,%d,%v) = %v, want %v", tc.total, tc.z, tc.sequential, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitScoreWorkers(%d,%d,%v) = %v, want %v", tc.total, tc.z, tc.sequential, got, tc.want)
				break
			}
		}
	}
	// No stranded budget: for totals ≥ z the shares must sum to the total.
	for _, tc := range []struct{ total, z int }{{8, 3}, {9, 4}, {16, 5}, {7, 7}} {
		sum := 0
		for _, s := range splitScoreWorkers(tc.total, tc.z, false) {
			sum += s
		}
		if sum != tc.total {
			t.Errorf("splitScoreWorkers(%d,%d) strands budget: shares sum to %d", tc.total, tc.z, sum)
		}
	}
}

// skewedSegments builds the skew fixture of the shared-pool tests: one
// dense RMAT segment and z−1 sparse path segments, the workload shape
// where a static cores/z split leaves most of the machine idle while the
// dense instance is compute-bound.
func skewedSegments(t testing.TB, z, denseEdges int) []stream.Stream {
	t.Helper()
	scale := 1
	for 1<<scale < denseEdges/8 {
		scale++
	}
	g, err := gen.RMAT(scale, denseEdges, 0.57, 0.19, 0.19, 11)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]stream.Stream, z)
	streams[0] = stream.FromEdges(g.Edges)
	sparse := max(denseEdges/16, 8)
	for i := 1; i < z; i++ {
		streams[i] = stream.FromEdges(edgesN(sparse))
	}
	return streams
}

func runSkewed(t *testing.T, streams []stream.Stream, cfg SpotlightConfig, workers int) (*metrics.Assignment, []Stats) {
	t.Helper()
	a, stats, err := RunSpotlightStreamsStats(streams, cfg, func(i int, allowed []int) (Runner, error) {
		return New("adwise", Spec{
			K:            cfg.K,
			Allowed:      allowed,
			Window:       256,
			Seed:         uint64(i),
			ScoreWorkers: workers,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, stats
}

// TestSpotlightSkewSharedPoolIdentity is the skew determinism contract:
// on deliberately skewed segments (one dense RMAT chunk, z−1 sparse
// ones), assignments under the shared work-stealing pool must be
// edge-for-edge identical to the fully serial run — under -race this is
// also the shared-pool data-race check — and, when the machine has more
// than one core, the dense instance's passes must actually have been
// served by pool workers (steal count > 0): the stolen cores a static
// cores/z split could never lend it.
func TestSpotlightSkewSharedPoolIdentity(t *testing.T) {
	const z = 4
	cfg := SpotlightConfig{K: 8, Z: z, Spread: 2}
	streams := func() []stream.Stream { return skewedSegments(t, z, 30_000) }

	serial, _ := runSkewed(t, streams(), cfg, 1)
	if serial.Len() == 0 {
		t.Fatal("serial skew run assigned nothing")
	}
	for _, workers := range []int{2, gort.GOMAXPROCS(0)} {
		shared, stats := runSkewed(t, streams(), cfg, workers)
		if shared.Len() != serial.Len() {
			t.Fatalf("workers=%d assigned %d edges, serial %d", workers, shared.Len(), serial.Len())
		}
		for i := range serial.Edges {
			if serial.Edges[i] != shared.Edges[i] || serial.Parts[i] != shared.Parts[i] {
				t.Fatalf("workers=%d diverged from serial at assignment %d: %v→%d vs %v→%d",
					workers, i, serial.Edges[i], serial.Parts[i], shared.Edges[i], shared.Parts[i])
			}
		}
		if workers > 1 && gort.GOMAXPROCS(0) > 1 {
			if stats[0].ParallelScorePasses == 0 {
				t.Errorf("workers=%d: dense instance ran no pool passes", workers)
			}
			if stats[0].StolenScoreShards == 0 {
				t.Errorf("workers=%d: dense instance had no shards stolen — the shared pool never flexed cores to it", workers)
			}
		}
	}
}

// TestSpotlightSharedPoolStatsAggregate pins per-instance attribution on
// the shared pool (satellite: no double-counting, no lost ops): each
// instance's pool ops live in its own shard scratches, instance sums stay
// within its ScoreComputations, and AggregateStats reproduces the plain
// sums/maxima of the per-instance stats.
func TestSpotlightSharedPoolStatsAggregate(t *testing.T) {
	const z = 4
	cfg := SpotlightConfig{K: 8, Z: z, Spread: 2}
	_, stats := runSkewed(t, skewedSegments(t, z, 20_000), cfg, 2)
	if len(stats) != z {
		t.Fatalf("got %d per-instance stats, want %d", len(stats), z)
	}
	var wantAssign, wantOps, wantPasses, wantPool, wantStolen int64
	var wantLat time.Duration
	for i, st := range stats {
		if st.Assignments == 0 {
			t.Errorf("instance %d reports 0 assignments", i)
		}
		if st.PoolScoreOps > st.ScoreComputations {
			t.Errorf("instance %d: pool ops %d exceed its total score ops %d — cross-instance leakage",
				i, st.PoolScoreOps, st.ScoreComputations)
		}
		wantAssign += st.Assignments
		wantOps += st.ScoreComputations
		wantPasses += st.ParallelScorePasses
		wantPool += st.PoolScoreOps
		wantStolen += st.StolenScoreShards
		if st.PartitioningLatency > wantLat {
			wantLat = st.PartitioningLatency
		}
	}
	agg := AggregateStats(stats)
	if agg.Assignments != wantAssign {
		t.Errorf("aggregate Assignments = %d, want %d", agg.Assignments, wantAssign)
	}
	if agg.ScoreComputations != wantOps {
		t.Errorf("aggregate ScoreComputations = %d, want %d", agg.ScoreComputations, wantOps)
	}
	if agg.ParallelScorePasses != wantPasses {
		t.Errorf("aggregate ParallelScorePasses = %d, want %d", agg.ParallelScorePasses, wantPasses)
	}
	if agg.PoolScoreOps != wantPool {
		t.Errorf("aggregate PoolScoreOps = %d, want %d", agg.PoolScoreOps, wantPool)
	}
	if agg.StolenScoreShards != wantStolen {
		t.Errorf("aggregate StolenScoreShards = %d, want %d", agg.StolenScoreShards, wantStolen)
	}
	if agg.PartitioningLatency != wantLat {
		t.Errorf("aggregate latency = %v, want max %v", agg.PartitioningLatency, wantLat)
	}
}
