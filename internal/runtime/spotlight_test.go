package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	gort "runtime"
	"strings"
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

func edgesN(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return out
}

func clusteredGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Community(60, 10, 0.9, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpotlightConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  SpotlightConfig
	}{
		{"k=0", SpotlightConfig{K: 0, Z: 1, Spread: 1}},
		{"z=0", SpotlightConfig{K: 4, Z: 0, Spread: 4}},
		{"z not dividing k", SpotlightConfig{K: 10, Z: 3, Spread: 4}},
		{"spread below k/z", SpotlightConfig{K: 32, Z: 8, Spread: 2}},
		{"spread above k", SpotlightConfig{K: 32, Z: 8, Spread: 64}},
	}
	g := clusteredGraph(t)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunSpotlight(g.Edges, tc.cfg, func(i int, allowed []int) (Runner, error) {
				return nil, errors.New("unreachable")
			})
			if err == nil {
				t.Error("want config error")
			}
		})
	}
}

func TestSpreadForCoversAllPartitions(t *testing.T) {
	for _, spread := range []int{4, 8, 16, 32} {
		cfg := SpotlightConfig{K: 32, Z: 8, Spread: spread}
		covered := make(map[int]bool)
		for i := 0; i < cfg.Z; i++ {
			parts := cfg.SpreadFor(i)
			if len(parts) != spread {
				t.Fatalf("spread=%d: instance %d got %d partitions", spread, i, len(parts))
			}
			for _, p := range parts {
				if p < 0 || p >= 32 {
					t.Fatalf("spread=%d: partition %d out of range", spread, p)
				}
				covered[p] = true
			}
		}
		if len(covered) != 32 {
			t.Errorf("spread=%d: only %d partitions covered", spread, len(covered))
		}
	}
}

func TestSpreadForDisjointAtMinimum(t *testing.T) {
	cfg := SpotlightConfig{K: 32, Z: 8, Spread: 4}
	seen := make(map[int]int)
	for i := 0; i < cfg.Z; i++ {
		for _, p := range cfg.SpreadFor(i) {
			seen[p]++
		}
	}
	for p, c := range seen {
		if c != 1 {
			t.Errorf("partition %d owned by %d instances at minimal spread", p, c)
		}
	}
}

// TestSpreadForWrapsAroundModuloK pins the wrap-around semantics when
// Spread > K/Z: the last instances' blocks run past partition K-1 and must
// wrap to the low partition ids, staying in range and duplicate-free.
func TestSpreadForWrapsAroundModuloK(t *testing.T) {
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 4}
	// Instance 3 starts at 3·(8/4) = 6 and wraps: {6, 7, 0, 1}.
	got := cfg.SpreadFor(3)
	want := []int{6, 7, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("SpreadFor(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpreadFor(3) = %v, want %v", got, want)
		}
	}
	// Every instance at every legal over-minimum spread yields distinct
	// in-range partitions.
	for _, spread := range []int{2, 4, 6, 8} {
		cfg := SpotlightConfig{K: 8, Z: 4, Spread: spread}
		for i := 0; i < cfg.Z; i++ {
			parts := cfg.SpreadFor(i)
			seen := make(map[int]bool, len(parts))
			for _, p := range parts {
				if p < 0 || p >= cfg.K {
					t.Fatalf("spread=%d instance %d: partition %d out of range", spread, i, p)
				}
				if seen[p] {
					t.Fatalf("spread=%d instance %d: partition %d duplicated in %v", spread, i, p, parts)
				}
				seen[p] = true
			}
		}
	}
}

func TestRunSpotlightAssignsEverything(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 16, Z: 4, Spread: 4}
	a, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		h, err := partition.NewHDRF(partition.Config{K: 16, Allowed: allowed, Seed: uint64(i)}, partition.HDRFDefaultLambda)
		if err != nil {
			return nil, err
		}
		return StreamingRunner(h), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("spotlight assigned %d of %d edges", a.Len(), g.E())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpotlightRespectsSpreads(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2, Sequential: true}
	instanceParts := make(map[int][]int)
	a, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		instanceParts[i] = allowed
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk i's edges may only land on instance i's spread.
	chunks := stream.Chunks(g.Edges, cfg.Z)
	idx := 0
	for i, ch := range chunks {
		ok := make(map[int32]bool)
		for _, p := range instanceParts[i] {
			ok[int32(p)] = true
		}
		for range ch {
			if !ok[a.Parts[idx]] {
				t.Fatalf("edge %d of chunk %d assigned to %d outside spread %v", idx, i, a.Parts[idx], instanceParts[i])
			}
			idx++
		}
	}
}

func TestSpotlightReducesReplicationForAllStrategies(t *testing.T) {
	// The Figure 8 claim: smaller spread → smaller replication degree, for
	// DBH, HDRF and ADWISE alike. The paper measures this on Brain with
	// the natural file order — spotlight's win is preserving the locality
	// already present in the stream, so no shuffle here.
	g, err := gen.BrainLike(0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges

	for _, name := range []string{"dbh", "hdrf", "adwise"} {
		rf := func(spread int) float64 {
			cfg := SpotlightConfig{K: 32, Z: 8, Spread: spread}
			a, err := RunStrategySpotlight(name, edges, cfg, Spec{K: 32, Seed: 9, Window: 32})
			if err != nil {
				t.Fatalf("%s spread=%d: %v", name, spread, err)
			}
			return metrics.Summarize(a).ReplicationDegree
		}
		full, spot := rf(32), rf(4)
		if spot >= full {
			t.Errorf("%s: spotlight spread=4 RF %v not below full-spread RF %v", name, spot, full)
		}
	}
}

func TestSpotlightBuilderErrorPropagates(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	wantErr := errors.New("boom")
	_, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("builder error not propagated: %v", err)
	}
}

func TestSpotlightRunnerErrorPropagates(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	wantErr := errors.New("runner failed")
	_, err := RunSpotlight(g.Edges, cfg, func(i int, allowed []int) (Runner, error) {
		if i == 1 {
			return RunnerFunc(func(s stream.Stream) (*metrics.Assignment, error) {
				return nil, wantErr
			}), nil
		}
		return New("hash", Spec{K: 4, Allowed: allowed})
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("runner error not propagated: %v", err)
	}
}

func TestSpotlightEmptyEdges(t *testing.T) {
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	if _, err := RunSpotlight(nil, cfg, func(i int, allowed []int) (Runner, error) {
		return nil, fmt.Errorf("unreachable")
	}); err == nil {
		t.Error("empty edges accepted")
	}
}

func TestSpotlightFewerEdgesThanZ(t *testing.T) {
	// stream.Chunks clamps z when len(edges) < z; silently building fewer
	// runners than Z would leave some spreads' partitions unreachable with
	// no signal. The executor must reject the degenerate case instead.
	cfg := SpotlightConfig{K: 8, Z: 4, Spread: 2}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	_, err := RunSpotlight(edges, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err == nil {
		t.Fatal("3 edges accepted for Z=4 instances")
	}
	if !strings.Contains(err.Error(), "Z=4") || !strings.Contains(err.Error(), "3") {
		t.Errorf("degenerate-case error not descriptive: %v", err)
	}
	// Exactly Z edges is the smallest legal input: one edge per instance.
	edges = append(edges, graph.Edge{Src: 3, Dst: 4})
	a, err := RunSpotlight(edges, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 8, Allowed: allowed})
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Errorf("assigned %d of 4 edges", a.Len())
	}
}

func TestRunSpotlightStreamsCountMismatch(t *testing.T) {
	cfg := SpotlightConfig{K: 4, Z: 2, Spread: 2}
	streams := []stream.Stream{stream.FromEdges(edgesN(4))}
	if _, err := RunSpotlightStreams(streams, cfg, func(i int, allowed []int) (Runner, error) {
		return New("hash", Spec{K: 4, Allowed: allowed})
	}); err == nil {
		t.Error("1 stream accepted for Z=2 instances")
	}
}

func TestRunSpotlightStreamsEnforcesStreamErrors(t *testing.T) {
	// Even a Runner that ignores the stream error contract must not turn a
	// failing stream into a short success: the executor checks stream.Err.
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\nbroken\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := SpotlightConfig{K: 2, Z: 2, Spread: 1, Sequential: true}
	ranges, err := stream.Plan(path, cfg.Z)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]stream.Stream, len(ranges))
	for i, r := range ranges {
		seg, err := stream.OpenSegment(r)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		streams[i] = seg
	}
	careless := RunnerFunc(func(s stream.Stream) (*metrics.Assignment, error) {
		a := metrics.NewAssignment(2, 4)
		var buf [8]graph.Edge
		for {
			n := stream.NextBatch(s, buf[:])
			if n == 0 {
				return a, nil // no stream.Err check — deliberately buggy
			}
			for _, e := range buf[:n] {
				a.Add(e, 0)
			}
		}
	})
	_, err = RunSpotlightStreams(streams, cfg, func(i int, allowed []int) (Runner, error) {
		return careless, nil
	})
	if err == nil {
		t.Error("executor accepted a failing segment stream drained by a careless runner")
	}
}

func TestSpotlightSequentialMatchesParallel(t *testing.T) {
	g := clusteredGraph(t)
	build := func(i int, allowed []int) (Runner, error) {
		return New("hdrf", Spec{K: 8, Allowed: allowed, Seed: 5})
	}
	seq, err := RunSpotlight(g.Edges, SpotlightConfig{K: 8, Z: 4, Spread: 2, Sequential: true}, build)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpotlight(g.Edges, SpotlightConfig{K: 8, Z: 4, Spread: 2}, build)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("lengths differ: %d vs %d", seq.Len(), par.Len())
	}
	for i := range seq.Parts {
		if seq.Parts[i] != par.Parts[i] {
			t.Fatalf("sequential and parallel spotlight diverge at edge %d", i)
		}
	}
}

// TestSpotlightScoreWorkersInvariant pins the cross-layer determinism
// contract: under spotlight loading, the per-instance score-worker count
// must not change a single assignment — only wall-clock. Auto (0) divides
// the machine's cores among the z instances; explicit values are honoured
// per instance.
func TestSpotlightScoreWorkersInvariant(t *testing.T) {
	g := clusteredGraph(t)
	cfg := SpotlightConfig{K: 8, Z: 2, Spread: 4, Sequential: true}
	run := func(workers int) *metrics.Assignment {
		t.Helper()
		a, err := RunStrategySpotlight("adwise", g.Edges, cfg, Spec{
			K:            8,
			Window:       128,
			ScoreWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		parallel := run(workers)
		if parallel.Len() != serial.Len() {
			t.Fatalf("workers=%d assigned %d edges, serial %d", workers, parallel.Len(), serial.Len())
		}
		for i := range serial.Edges {
			if serial.Edges[i] != parallel.Edges[i] || serial.Parts[i] != parallel.Parts[i] {
				t.Fatalf("workers=%d diverged from serial at assignment %d", workers, i)
			}
		}
	}
}

// TestDivideScoreWorkers pins the oversubscription rule: auto values
// split cores across concurrently running instances (never below 1),
// sequential runs keep the whole machine per instance, and explicit
// values pass through untouched.
func TestDivideScoreWorkers(t *testing.T) {
	parallel8 := SpotlightConfig{K: 8, Z: 8, Spread: 1}
	if got := divideScoreWorkers(Spec{ScoreWorkers: 3}, parallel8).ScoreWorkers; got != 3 {
		t.Errorf("explicit ScoreWorkers rewritten to %d", got)
	}
	huge := SpotlightConfig{K: 1 << 20, Z: 1 << 20, Spread: 1}
	if got := divideScoreWorkers(Spec{}, huge).ScoreWorkers; got < 1 {
		t.Errorf("auto ScoreWorkers = %d under huge z, want >= 1", got)
	}
	seq := SpotlightConfig{K: 8, Z: 8, Spread: 1, Sequential: true}
	if got := divideScoreWorkers(Spec{}, seq).ScoreWorkers; got != gort.GOMAXPROCS(0) {
		t.Errorf("sequential auto ScoreWorkers = %d, want GOMAXPROCS %d: instances run one at a time", got, gort.GOMAXPROCS(0))
	}
}
