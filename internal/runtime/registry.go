package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/core"
	"github.com/adwise-go/adwise/internal/metric"
	"github.com/adwise-go/adwise/internal/partition"
)

// Spec carries the construction knobs shared by all strategies. Strategies
// ignore the fields that do not apply to them (e.g. the hashing family
// ignores Latency and Window).
type Spec struct {
	// K is the global partition count.
	K int
	// Allowed restricts assignments to a partition subset — the spotlight
	// spread (§III-D). Empty means all of 0..K-1.
	Allowed []int
	// Seed drives the hash functions and any seeded choice.
	Seed uint64

	// Latency is ADWISE's latency preference L (0 = single-edge
	// behaviour).
	Latency time.Duration
	// Window, when > 0, pins ADWISE to a fixed window of this size,
	// overriding latency adaptation.
	Window int
	// TotalEdgesHint supplies the stream length when the stream cannot
	// report it (per-chunk hint under parallel loading).
	TotalEdgesHint int64
	// Lambda overrides the balancing weight of strategies that take one
	// (HDRF); 0 selects the strategy default.
	Lambda float64
	// ScoreWorkers sets the window-scoring logical shard count of
	// window-class strategies (ADWISE). 0 = auto: GOMAXPROCS shards
	// executing on the process-wide work-stealing pool, which arbitrates
	// cores across spotlight instances dynamically. Under the spotlight
	// conveniences an explicit value is a per-run budget distributed
	// across the z instances with remainder spread (splitScoreWorkers).
	// Any value yields identical assignments.
	ScoreWorkers int
	// VertexBudgetBytes caps the byte footprint of the instance's vertex
	// state; 0 keeps the unbounded cache. Under the spotlight conveniences
	// a run-level budget is divided across the z instances
	// (splitVertexBudget), since all z caches coexist for the run.
	VertexBudgetBytes int64
	// Options are extra ADWISE options applied after the Spec-derived
	// ones (clustering toggles, clock substitution, ...).
	Options []core.Option
	// Metrics, when non-nil, attaches a live telemetry registry:
	// window-class instances publish their pool pass/steal counters and
	// run totals onto it (core.WithMetrics), and the file-spotlight
	// executor meters its segment streams. Spotlight instances share the
	// one registry — counters are striped and lock-free, so z concurrent
	// publishers do not contend.
	Metrics *metric.Registry
}

// partitionConfig projects the Spec onto the single-edge framework config.
func (s Spec) partitionConfig() partition.Config {
	return partition.Config{K: s.K, Allowed: s.Allowed, Seed: s.Seed, VertexBudgetBytes: s.VertexBudgetBytes}
}

// Builder constructs a strategy instance from a Spec.
type Builder func(Spec) (Strategy, error)

// Class is the latency/quality family of a strategy, following the
// paper's Figure 1 taxonomy.
type Class string

// The strategy classes.
const (
	// ClassSingleEdge is the one-decision-per-arriving-edge family
	// (hashing and stateful streamers alike).
	ClassSingleEdge Class = "single-edge"
	// ClassWindow is the window-buffering family (ADWISE).
	ClassWindow Class = "window"
	// ClassAllEdge needs the whole chunk in memory (NE).
	ClassAllEdge Class = "all-edge"
)

// Meta describes a registered strategy for registry-driven experiment
// selection: the bench harness derives its figure strategy sets from
// these fields instead of hard-coded name lists, so a newly registered
// strategy appears in the tables automatically.
type Meta struct {
	// Name is the registry name.
	Name string
	// Class is the latency/quality family.
	Class Class
	// Sweep marks the degree-aware baselines the paper sweeps ADWISE
	// against in the Figure 7/8 comparisons (DBH, HDRF, and any future
	// peer registered with Sweep set).
	Sweep bool
}

var (
	regMu        sync.RWMutex
	builders     = make(map[string]Builder)
	metas        = make(map[string]Meta)
	partitioners = make(map[string]func(partition.Config) (partition.Partitioner, error))
	baselineList []string // single-edge names in canonical (Figure 1) order
)

// Register adds a strategy builder under meta.Name. It panics on a
// duplicate name: registration happens at init time and a collision is a
// programming error.
func Register(meta Meta, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if meta.Name == "" {
		panic("runtime: registering a strategy without a name")
	}
	if _, dup := builders[meta.Name]; dup {
		panic(fmt.Sprintf("runtime: strategy %q registered twice", meta.Name))
	}
	builders[meta.Name] = b
	metas[meta.Name] = meta
}

// RegisterPartitioner adds a single-edge baseline under meta.Name: the
// raw constructor is retained for NewPartitioner callers and also wrapped
// as a Strategy builder. The class is forced to ClassSingleEdge.
func RegisterPartitioner(meta Meta, build func(partition.Config) (partition.Partitioner, error)) {
	meta.Class = ClassSingleEdge
	Register(meta, func(s Spec) (Strategy, error) {
		p, err := build(s.partitionConfig())
		if err != nil {
			return nil, err
		}
		return FromPartitioner(p), nil
	})
	recordBaseline(meta.Name, build)
}

// recordBaseline notes a single-edge constructor for NewPartitioner and the
// canonical baseline ordering, without touching the Strategy builders.
func recordBaseline(name string, build func(partition.Config) (partition.Partitioner, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	partitioners[name] = build
	baselineList = append(baselineList, name)
}

// New constructs the named strategy from the registry.
func New(name string, spec Spec) (Strategy, error) {
	regMu.RLock()
	b, ok := builders[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: unknown strategy %q (have %v)", name, Names())
	}
	return b(spec)
}

// NewPartitioner constructs the named single-edge baseline as a raw
// partition.Partitioner (per-edge Assign interface). Window and all-edge
// strategies are not constructible this way.
func NewPartitioner(name string, cfg partition.Config) (partition.Partitioner, error) {
	regMu.RLock()
	build, ok := partitioners[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: unknown single-edge baseline %q (have %v)", name, Baselines())
	}
	return build(cfg)
}

// Names lists every registered strategy, sorted.
func Names() []string {
	return NamesWhere(func(Meta) bool { return true })
}

// NamesWhere lists the registered strategies whose Meta satisfies pred,
// sorted. It is the filter behind the bench harness's registry-driven
// experiment matrices.
func NamesWhere(pred func(Meta) bool) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(metas))
	for name, m := range metas {
		if pred(m) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MetaOf returns the registration metadata of a strategy.
func MetaOf(name string) (Meta, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := metas[name]
	return m, ok
}

// Baselines lists the single-edge strategies in canonical (Figure 1)
// presentation order.
func Baselines() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(baselineList))
	copy(out, baselineList)
	return out
}

// lift adapts a constructor returning a concrete partitioner type to the
// interface-typed signature the registry stores, without a typed-nil leak
// on error.
func lift[P partition.Partitioner](build func(partition.Config) (P, error)) func(partition.Config) (partition.Partitioner, error) {
	return func(cfg partition.Config) (partition.Partitioner, error) {
		p, err := build(cfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
}

func init() {
	RegisterPartitioner(Meta{Name: "hash"}, lift(partition.NewHash))
	RegisterPartitioner(Meta{Name: "1d"}, lift(partition.NewOneDim))
	RegisterPartitioner(Meta{Name: "2d"}, lift(partition.NewTwoDim))
	RegisterPartitioner(Meta{Name: "grid"}, lift(partition.NewGrid))
	RegisterPartitioner(Meta{Name: "greedy"}, lift(partition.NewGreedy))
	RegisterPartitioner(Meta{Name: "dbh", Sweep: true}, lift(partition.NewDBH))

	// HDRF takes a balancing weight: its Strategy builder honours
	// Spec.Lambda (0 = the authors' recommended default), while the raw
	// partitioner constructor pins the default.
	Register(Meta{Name: "hdrf", Class: ClassSingleEdge, Sweep: true}, func(s Spec) (Strategy, error) {
		lambda := s.Lambda
		if lambda == 0 {
			lambda = partition.HDRFDefaultLambda
		}
		p, err := partition.NewHDRF(s.partitionConfig(), lambda)
		if err != nil {
			return nil, err
		}
		return FromPartitioner(p), nil
	})
	recordBaseline("hdrf", func(cfg partition.Config) (partition.Partitioner, error) {
		return partition.NewHDRF(cfg, partition.HDRFDefaultLambda)
	})

	Register(Meta{Name: "adwise", Class: ClassWindow}, func(s Spec) (Strategy, error) {
		opts := []core.Option{core.WithLatencyPreference(s.Latency)}
		if len(s.Allowed) > 0 {
			opts = append(opts, core.WithAllowedPartitions(s.Allowed))
		}
		if s.TotalEdgesHint > 0 {
			opts = append(opts, core.WithTotalEdgesHint(s.TotalEdgesHint))
		}
		if s.Window > 0 {
			opts = append(opts, core.WithInitialWindow(s.Window), core.WithFixedWindow())
		}
		if s.ScoreWorkers > 0 {
			opts = append(opts, core.WithScoreWorkers(s.ScoreWorkers))
		}
		if s.VertexBudgetBytes > 0 {
			opts = append(opts, core.WithVertexBudget(s.VertexBudgetBytes))
		}
		if s.Metrics != nil {
			opts = append(opts, core.WithMetrics(s.Metrics))
		}
		opts = append(opts, s.Options...)
		ad, err := core.New(s.K, opts...)
		if err != nil {
			return nil, err
		}
		return adwiseStrategy{ad}, nil
	})

	Register(Meta{Name: "ne", Class: ClassAllEdge}, func(s Spec) (Strategy, error) {
		if s.K < 1 {
			return nil, fmt.Errorf("runtime: ne needs K >= 1, got %d", s.K)
		}
		for _, p := range s.Allowed {
			if p < 0 || p >= s.K {
				return nil, fmt.Errorf("runtime: ne allowed partition %d outside [0,%d)", p, s.K)
			}
		}
		allowed := s.Allowed
		if len(allowed) == s.K {
			// Full spread: run NE over the global partition set directly.
			allowed = nil
		}
		return &neStrategy{k: s.K, allowed: allowed, seed: s.Seed, clk: clock.Real{}}, nil
	})
}
