package runtime

import (
	"github.com/adwise-go/adwise/internal/metric"
)

// Metric names published by PublishStats for a completed pass. They carry
// the strategy-independent Stats view, so hashing baselines and window
// strategies report through the same names; the window-only fields simply
// stay zero for strategies without a scoring pool.
const (
	// MetricRunAssignments counts edges assigned across published passes.
	MetricRunAssignments = "runtime.assignments"
	// MetricRunScoreOps counts edge score evaluations.
	MetricRunScoreOps = "runtime.score_ops"
	// MetricRunPoolPasses counts scoring passes that ran sharded on the
	// scoring pool.
	MetricRunPoolPasses = "runtime.pool.passes"
	// MetricRunPoolScoreOps is the share of score ops done on pool passes.
	MetricRunPoolScoreOps = "runtime.pool.score_ops"
	// MetricRunStolenShards counts pool-pass shards executed by pool
	// workers rather than the owning instance's goroutine.
	MetricRunStolenShards = "runtime.pool.stolen_shards"
	// MetricRunLatency is the partitioning wall-clock per published pass,
	// as a histogram timer.
	MetricRunLatency = "runtime.partitioning.latency"
	// MetricRunRefillPasses counts batched window refills;
	// MetricRunBatchedAdds counts the edges those passes staged and scored.
	MetricRunRefillPasses = "runtime.refill.passes"
	MetricRunBatchedAdds  = "runtime.refill.batched_adds"
	// MetricRunVcacheEvicted counts vertex-state evictions under a vertex
	// budget; the byte gauges carry the final and peak tracked footprints
	// of the published pass (summed across instances when publishing an
	// AggregateStats fold).
	MetricRunVcacheEvicted   = "runtime.vcache.evicted"
	MetricRunVcacheBytes     = "runtime.vcache.bytes"
	MetricRunVcachePeakBytes = "runtime.vcache.peak_bytes"
)

// PublishStats pushes one pass's Stats onto reg — the bridge from the
// pull-style Stats structs every Strategy reports to the push-style
// registry the flusher samples. Callers publish either per instance or
// once with an AggregateStats fold; counters accumulate either way. A nil
// registry is a no-op.
func PublishStats(reg *metric.Registry, st Stats) {
	if reg == nil {
		return
	}
	reg.Counter(MetricRunAssignments).Inc(st.Assignments)
	reg.Counter(MetricRunScoreOps).Inc(st.ScoreComputations)
	reg.Counter(MetricRunPoolPasses).Inc(st.ParallelScorePasses)
	reg.Counter(MetricRunPoolScoreOps).Inc(st.PoolScoreOps)
	reg.Counter(MetricRunStolenShards).Inc(st.StolenScoreShards)
	reg.Counter(MetricRunRefillPasses).Inc(st.RefillPasses)
	reg.Counter(MetricRunBatchedAdds).Inc(st.BatchedAdds)
	reg.Counter(MetricRunVcacheEvicted).Inc(st.EvictedVertices)
	reg.Gauge(MetricRunVcacheBytes).Set(st.CacheBytes)
	reg.Gauge(MetricRunVcachePeakBytes).Set(st.PeakCacheBytes)
	reg.Timer(MetricRunLatency).Observe(st.PartitioningLatency)
}
