package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/adwise-go/adwise/internal/metrics"
)

// TestEndToEnd walks the whole consumption path: partition a generated
// graph with a registry strategy, build the serving index, and resolve
// every edge and a sample of vertices over real HTTP, checking the
// responses against the assignment ground truth.
func TestEndToEnd(t *testing.T) {
	a := testAssignment(t, "adwise", 8)
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(NewStore(ix)))
	defer srv.Close()

	// Ground truth under last-write-wins, matching the index contract.
	want := make(map[[2]uint32]int32, a.Len())
	for i, e := range a.Edges {
		want[[2]uint32{uint32(e.Src), uint32(e.Dst)}] = a.Parts[i]
	}

	checked := 0
	for key, p := range want {
		if checked >= 200 {
			break
		}
		checked++
		body := getJSON(t, srv, fmt.Sprintf("/v1/edge?src=%d&dst=%d", key[0], key[1]), http.StatusOK)
		if got := int32(body["partition"].(float64)); got != p {
			t.Fatalf("edge (%d,%d): served partition %d, want %d", key[0], key[1], got, p)
		}
	}

	// Replica sets and stats follow the distinct-edge view the index
	// serves (last write wins on duplicate stream edges).
	deduped := dedupe(a)
	sets := deduped.ReplicaSets()
	checked = 0
	for v, set := range sets {
		if checked >= 200 {
			break
		}
		checked++
		body := getJSON(t, srv, fmt.Sprintf("/v1/vertex?v=%d", v), http.StatusOK)
		if got := int(body["count"].(float64)); got != set.Count() {
			t.Fatalf("vertex %d: served %d replicas, want %d", v, got, set.Count())
		}
	}

	stats := getJSON(t, srv, "/v1/stats", http.StatusOK)
	s := metrics.Summarize(deduped)
	if got := int(stats["vertices"].(float64)); got != s.Vertices {
		t.Errorf("served vertices = %d, want %d", got, s.Vertices)
	}
	if got := stats["replication_degree"].(float64); got != s.ReplicationDegree {
		t.Errorf("served replication degree = %v, want %v", got, s.ReplicationDegree)
	}
}
