package serve

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
)

func TestStoreEmptyThenSwap(t *testing.T) {
	s := NewStore(nil)
	if s.View() != nil {
		t.Fatal("empty store returned a view")
	}
	if s.Generation() != 0 {
		t.Fatalf("Generation = %d, want 0", s.Generation())
	}
	a := metrics.NewAssignment(2, 1)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 1)
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if old := s.Swap(ix); old != nil {
		t.Fatal("first Swap returned a previous index")
	}
	if s.View() != ix || s.Generation() != 1 {
		t.Fatalf("View/Generation after swap = %p/%d, want %p/1", s.View(), s.Generation(), ix)
	}
	defer func() {
		if recover() == nil {
			t.Error("Swap(nil) did not panic")
		}
	}()
	s.Swap(nil)
}

// TestSwapUnderConcurrentReaders hammers the store with lookups while the
// index is repeatedly hot-swapped between two assignments of different k.
// Every reader must observe a view that is internally consistent with
// exactly one of the two indices — run under -race, this is the
// concurrency contract of the serving layer.
func TestSwapUnderConcurrentReaders(t *testing.T) {
	a1 := testAssignment(t, "dbh", 4)
	a2 := testAssignment(t, "hdrf", 8)
	ix1, err := Build(a1)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Build(a2)
	if err != nil {
		t.Fatal(err)
	}

	s := NewStore(ix1)
	var stop atomic.Bool
	var lookups atomic.Int64
	probe := a1.Edges[:512]

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]int32, 0, len(probe))
			for !stop.Load() {
				ix := s.View()
				k := ix.K()
				if k != 4 && k != 8 {
					t.Errorf("view has k=%d, want 4 or 8", k)
					return
				}
				for _, e := range probe {
					if p, ok := ix.Partition(e.Src, e.Dst); ok && int(p) >= k {
						t.Errorf("partition %d out of range for k=%d view", p, k)
						return
					}
					ix.ReplicaCount(e.Src)
				}
				dst = ix.PartitionBatch(probe, dst)
				lookups.Add(int64(len(dst)))
			}
		}()
	}

	// Keep swapping until the readers have demonstrably made progress
	// through several views, so lookups and swaps genuinely overlap. The
	// swapper yields between swaps: on GOMAXPROCS=1 it would otherwise
	// starve the readers indefinitely.
	swaps := 0
	deadline := time.Now().Add(30 * time.Second)
	for lookups.Load() < 20_000 {
		if time.Now().After(deadline) {
			t.Fatalf("readers made no progress: %d lookups after %d swaps", lookups.Load(), swaps)
		}
		if swaps%2 == 0 {
			s.Swap(ix2)
		} else {
			s.Swap(ix1)
		}
		swaps++
		goruntime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if got := s.Generation(); got != uint64(swaps)+1 {
		t.Errorf("Generation = %d, want %d", got, swaps+1)
	}
	if lookups.Load() == 0 {
		t.Error("readers completed no lookups during the swap storm")
	}
}
