// Package serve is the consumption side of the partitioner: a compact,
// immutable lookup index over a completed partitioning, answering the two
// questions distributed graph-processing workers ask at runtime (§II,
// Figure 3 of the paper): which partition holds an edge, and on which
// partitions is a vertex replicated.
//
// The index is built once from a *metrics.Assignment and never mutated.
// Edge→partition lookups go through open-addressing tables sharded by
// hash(src,dst) — sharding parallelises construction; immutability makes
// every lookup safe for unbounded concurrent readers with no locks.
// Vertex→replica-set lookups probe a single open-addressing table whose
// replica bitmaps share one word arena in the style of internal/vcache:
// flat key/count arrays plus ceil(k/64) arena words per slot, no per-vertex
// heap allocation, and zero allocations on every read path.
//
// Store layers atomic hot-swap on top: a freshly computed assignment
// replaces the live index with one pointer store while in-flight lookups
// keep reading the old one.
package serve

import (
	"fmt"
	"math/bits"
	goruntime "runtime"
	"sync"

	"github.com/adwise-go/adwise/internal/bitset"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
	"github.com/adwise-go/adwise/internal/metrics"
)

// edgeShard is one open-addressing edge→partition table. A slot is
// occupied iff parts[slot] >= 0; partition ids are always non-negative, so
// -1 is a safe empty marker even for the packed key 0 (edge 0→0).
type edgeShard struct {
	mask  uint64
	keys  []uint64 // packed src<<32 | dst
	parts []int32  // -1 = empty
}

// Index is the immutable lookup structure. All methods are safe for
// unbounded concurrent readers; none of them allocates.
type Index struct {
	k         int
	wpe       int // replica words per vertex slot: ceil(k/64)
	shardBits uint
	shardMask uint64
	shards    []edgeShard

	// Vertex table: open-addressing with the replica bitmaps in one shared
	// arena (wpe words per slot). A slot is occupied iff counts[slot] != 0.
	vMask   uint64
	vKeys   []graph.VertexID
	vCounts []int32  // replica count per vertex, >= 1 when occupied
	vWords  []uint64 // bitmap arena

	rows     int   // assignment rows indexed (duplicates included)
	distinct int   // distinct (src,dst) keys
	vertices int   // distinct vertices
	replicas int64 // Σ|Rv|
	sizes    []int64
}

// edgeKey packs an oriented edge into one 64-bit table key.
func edgeKey(src, dst graph.VertexID) uint64 {
	return uint64(src)<<32 | uint64(dst)
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// DefaultShards picks the edge-table shard count for a build: enough
// shards to keep every core busy during construction, capped so tiny
// assignments do not fragment into near-empty tables.
func DefaultShards(rows int) int {
	if rows < 1<<13 {
		return 1
	}
	s := nextPow2(goruntime.GOMAXPROCS(0))
	if s > 64 {
		s = 64
	}
	return s
}

// Build constructs the index from a completed assignment with an
// automatically chosen shard count.
func Build(a *metrics.Assignment) (*Index, error) {
	return BuildSharded(a, DefaultShards(a.Len()))
}

// BuildSharded constructs the index with an explicit shard count (rounded
// up to a power of two). If the same oriented edge appears more than once
// in the stream, the last assignment wins — the serving view reflects the
// most recent placement.
func BuildSharded(a *metrics.Assignment, shards int) (*Index, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if shards < 1 {
		return nil, fmt.Errorf("serve: shard count must be >= 1, got %d", shards)
	}
	shards = nextPow2(shards)

	ix := &Index{
		k:         a.K,
		wpe:       (a.K + 63) / 64,
		shardBits: uint(bits.TrailingZeros(uint(shards))),
		shardMask: uint64(shards - 1),
		shards:    make([]edgeShard, shards),
		rows:      a.Len(),
		sizes:     make([]int64, a.K),
	}

	// Bucket row indices by shard with a stable counting sort, so each
	// shard goroutine walks only its own rows in stream order (stream
	// order is what makes last-write-wins deterministic).
	counts := make([]int, shards)
	hashes := make([]uint64, a.Len())
	for i, e := range a.Edges {
		h := hashx.SplitMix64(edgeKey(e.Src, e.Dst))
		hashes[i] = h
		counts[h&ix.shardMask]++
	}
	offsets := make([]int, shards+1)
	for s := 0; s < shards; s++ {
		offsets[s+1] = offsets[s] + counts[s]
	}
	rowIdx := make([]int32, a.Len())
	fill := append([]int(nil), offsets[:shards]...)
	for i, h := range hashes {
		s := h & ix.shardMask
		rowIdx[fill[s]] = int32(i)
		fill[s]++
	}

	// One goroutine per shard inserts its rows.
	var wg sync.WaitGroup
	sizesPer := make([][]int64, shards)
	distinctPer := make([]int, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rows := rowIdx[offsets[s]:offsets[s+1]]
			sizes := make([]int64, a.K)
			sh := &ix.shards[s]
			sh.init(len(rows))
			n := 0
			for _, r := range rows {
				e := a.Edges[r]
				p := a.Parts[r]
				old := sh.insert(hashes[r]>>ix.shardBits, edgeKey(e.Src, e.Dst), p)
				if old < 0 {
					n++
				} else {
					sizes[old]--
				}
				sizes[p]++
			}
			sizesPer[s] = sizes
			distinctPer[s] = n
		}(s)
	}
	wg.Wait()

	for s := 0; s < shards; s++ {
		ix.distinct += distinctPer[s]
		for p, n := range sizesPer[s] {
			ix.sizes[p] += n
		}
	}

	// The vertex table is derived from the finished edge tables, not the
	// raw stream, so replica sets agree with what Partition serves when a
	// duplicate stream edge was re-assigned (last write wins everywhere).
	ix.buildVertexTable()
	return ix, nil
}

// init sizes the shard for up to rows distinct keys at load factor <= 1/2.
func (sh *edgeShard) init(rows int) {
	slots := nextPow2(rows * 2)
	if slots < 16 {
		slots = 16
	}
	sh.mask = uint64(slots - 1)
	sh.keys = make([]uint64, slots)
	sh.parts = make([]int32, slots)
	for i := range sh.parts {
		sh.parts[i] = -1
	}
}

// insert places key at its probe position, overwriting a duplicate. It
// returns the previous partition, or -1 if the key is new. h is the mixed
// hash already shifted past the shard-selection bits.
func (sh *edgeShard) insert(h uint64, key uint64, p int32) (old int32) {
	i := h & sh.mask
	for {
		if sh.parts[i] < 0 {
			sh.keys[i] = key
			sh.parts[i] = p
			return -1
		}
		if sh.keys[i] == key {
			old = sh.parts[i]
			sh.parts[i] = p
			return old
		}
		i = (i + 1) & sh.mask
	}
}

// buildVertexTable fills the vertex replica table from the distinct-edge
// view held by the finished shards. Unlike the edge shards it grows on
// demand (the distinct-vertex count is unknown up front); growth only
// happens during Build, never after.
func (ix *Index) buildVertexTable() {
	const initial = 1024
	ix.vMask = initial - 1
	ix.vKeys = make([]graph.VertexID, initial)
	ix.vCounts = make([]int32, initial)
	ix.vWords = make([]uint64, initial*ix.wpe)
	for s := range ix.shards {
		sh := &ix.shards[s]
		for i, p := range sh.parts {
			if p < 0 {
				continue
			}
			src := graph.VertexID(sh.keys[i] >> 32)
			dst := graph.VertexID(sh.keys[i] & 0xffffffff)
			ix.vAdd(src, int(p))
			if dst != src {
				ix.vAdd(dst, int(p))
			}
		}
	}
}

// vAdd records a replica of v on partition p, growing the table when an
// insertion would push the load factor past 3/4.
func (ix *Index) vAdd(v graph.VertexID, p int) {
	i := hashx.SplitMix64(uint64(v)) & ix.vMask
	for {
		c := ix.vCounts[i]
		if c == 0 {
			if uint64(ix.vertices+1)*4 > (ix.vMask+1)*3 {
				ix.vGrow()
				i = hashx.SplitMix64(uint64(v)) & ix.vMask
				continue
			}
			ix.vKeys[i] = v
			ix.vCounts[i] = 1
			ix.vWords[int(i)*ix.wpe+p>>6] |= 1 << (uint(p) & 63)
			ix.vertices++
			ix.replicas++
			return
		}
		if ix.vKeys[i] == v {
			w, m := int(i)*ix.wpe+p>>6, uint64(1)<<(uint(p)&63)
			if ix.vWords[w]&m == 0 {
				ix.vWords[w] |= m
				ix.vCounts[i] = c + 1
				ix.replicas++
			}
			return
		}
		i = (i + 1) & ix.vMask
	}
}

// vGrow doubles the vertex table and reinserts every occupied slot.
func (ix *Index) vGrow() {
	oldKeys, oldCounts, oldWords := ix.vKeys, ix.vCounts, ix.vWords
	slots := (ix.vMask + 1) * 2
	ix.vMask = slots - 1
	ix.vKeys = make([]graph.VertexID, slots)
	ix.vCounts = make([]int32, slots)
	ix.vWords = make([]uint64, int(slots)*ix.wpe)
	for s, c := range oldCounts {
		if c == 0 {
			continue
		}
		i := hashx.SplitMix64(uint64(oldKeys[s])) & ix.vMask
		for ix.vCounts[i] != 0 {
			i = (i + 1) & ix.vMask
		}
		ix.vKeys[i] = oldKeys[s]
		ix.vCounts[i] = c
		copy(ix.vWords[int(i)*ix.wpe:(int(i)+1)*ix.wpe], oldWords[s*ix.wpe:(s+1)*ix.wpe])
	}
}

// K returns the partition count the index was built for.
func (ix *Index) K() int { return ix.k }

// Shards returns the edge-table shard count.
func (ix *Index) Shards() int { return len(ix.shards) }

// lookup probes the sharded edge tables for an exact packed key.
//
//adwise:zeroalloc
func (ix *Index) lookup(key uint64) (int32, bool) {
	h := hashx.SplitMix64(key)
	sh := &ix.shards[h&ix.shardMask]
	i := (h >> ix.shardBits) & sh.mask
	for {
		p := sh.parts[i]
		if p < 0 {
			return -1, false
		}
		if sh.keys[i] == key {
			return p, true
		}
		i = (i + 1) & sh.mask
	}
}

// Partition returns the partition holding edge (src,dst). A vertex-cut
// does not distinguish edge direction, so if the oriented key is unknown
// the reversed orientation is tried before reporting a miss. The second
// return is false for edges that were never assigned.
//
//adwise:zeroalloc
func (ix *Index) Partition(src, dst graph.VertexID) (int32, bool) {
	if p, ok := ix.lookup(edgeKey(src, dst)); ok {
		return p, true
	}
	if src == dst {
		return -1, false
	}
	return ix.lookup(edgeKey(dst, src))
}

// PartitionBatch resolves many edges in one call, writing partition ids
// (or -1 for unknown edges) into dst, which is grown only if its capacity
// is insufficient. It returns the filled slice.
//
//adwise:zeroalloc
func (ix *Index) PartitionBatch(edges []graph.Edge, dst []int32) []int32 {
	if cap(dst) < len(edges) {
		dst = make([]int32, len(edges))
	} else {
		dst = dst[:len(edges)]
	}
	for i, e := range edges {
		p, ok := ix.Partition(e.Src, e.Dst)
		if !ok {
			p = -1
		}
		dst[i] = p
	}
	return dst
}

// vFind returns v's vertex-table slot, or -1 if v was never seen.
//
//adwise:zeroalloc
func (ix *Index) vFind(v graph.VertexID) int {
	i := hashx.SplitMix64(uint64(v)) & ix.vMask
	for {
		if ix.vCounts[i] == 0 {
			return -1
		}
		if ix.vKeys[i] == v {
			return int(i)
		}
		i = (i + 1) & ix.vMask
	}
}

// Replicas returns the replica set of v as a read-only view into the
// bitmap arena — a slice header, no allocation. The view is valid for the
// lifetime of the index (the index is immutable). Unknown vertices get an
// empty set of capacity 0.
//
//adwise:zeroalloc
func (ix *Index) Replicas(v graph.VertexID) bitset.Set {
	if slot := ix.vFind(v); slot >= 0 {
		return bitset.View(ix.vWords[slot*ix.wpe:(slot+1)*ix.wpe], ix.k)
	}
	return bitset.Set{}
}

// ReplicaCount returns |Rv|, zero for unknown vertices.
//
//adwise:zeroalloc
func (ix *Index) ReplicaCount(v graph.VertexID) int {
	if slot := ix.vFind(v); slot >= 0 {
		return int(ix.vCounts[slot])
	}
	return 0
}

// Stats reports what the index holds. Everything except Rows describes
// the distinct-edge view under last-write-wins — Sizes, Replicas, and
// ReplicationDegree all match what Partition and Replicas serve, which
// can differ from metrics.Summarize on multigraph streams where a
// duplicate edge was re-assigned.
type Stats struct {
	K                 int     `json:"k"`
	Rows              int     `json:"rows"`
	DistinctEdges     int     `json:"distinct_edges"`
	Vertices          int     `json:"vertices"`
	Replicas          int64   `json:"replicas"`
	ReplicationDegree float64 `json:"replication_degree"`
	Shards            int     `json:"shards"`
	Sizes             []int64 `json:"sizes"`
}

// Stats returns a snapshot of the index statistics. The Sizes slice is a
// copy; this method allocates and is not meant for the per-lookup path.
func (ix *Index) Stats() Stats {
	s := Stats{
		K:             ix.k,
		Rows:          ix.rows,
		DistinctEdges: ix.distinct,
		Vertices:      ix.vertices,
		Replicas:      ix.replicas,
		Shards:        len(ix.shards),
		Sizes:         append([]int64(nil), ix.sizes...),
	}
	if ix.vertices > 0 {
		s.ReplicationDegree = float64(ix.replicas) / float64(ix.vertices)
	}
	return s
}
