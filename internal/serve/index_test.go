package serve

import (
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/runtime"
	"github.com/adwise-go/adwise/internal/stream"
)

// testAssignment partitions a generated graph through the registry so the
// fixture exercises the real producer path.
func testAssignment(t testing.TB, strategy string, k int) *metrics.Assignment {
	t.Helper()
	g, err := gen.BrainLike(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := runtime.New(strategy, runtime.Spec{K: k, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(stream.FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildMatchesAssignment(t *testing.T) {
	a := testAssignment(t, "hdrf", 8)
	for _, shards := range []int{1, 4, 16} {
		ix, err := BuildSharded(a, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// Last write wins: walk the stream backwards and check the first
		// (i.e. final) assignment of every oriented edge.
		want := make(map[graph.Edge]int32, a.Len())
		for i := a.Len() - 1; i >= 0; i-- {
			if _, seen := want[a.Edges[i]]; !seen {
				want[a.Edges[i]] = a.Parts[i]
			}
		}
		for e, p := range want {
			got, ok := ix.Partition(e.Src, e.Dst)
			if !ok || got != p {
				t.Fatalf("shards=%d: Partition(%v) = (%d,%v), want (%d,true)", shards, e, got, ok, p)
			}
		}
		if ix.Stats().DistinctEdges != len(want) {
			t.Errorf("shards=%d: distinct = %d, want %d", shards, ix.Stats().DistinctEdges, len(want))
		}
	}
}

// dedupe reduces an assignment to the distinct-edge view the index
// serves: one row per oriented edge, last assignment winning.
func dedupe(a *metrics.Assignment) *metrics.Assignment {
	last := make(map[graph.Edge]int32, a.Len())
	for i, e := range a.Edges {
		last[e] = a.Parts[i]
	}
	out := metrics.NewAssignment(a.K, len(last))
	for e, p := range last {
		out.Add(e, int(p))
	}
	return out
}

func TestReplicasMatchMetrics(t *testing.T) {
	a := testAssignment(t, "hdrf", 8)
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	sets := dedupe(a).ReplicaSets()
	if ix.Stats().Vertices != len(sets) {
		t.Fatalf("vertices = %d, want %d", ix.Stats().Vertices, len(sets))
	}
	for v, want := range sets {
		got := ix.Replicas(v)
		if !got.Equal(want) {
			t.Fatalf("Replicas(%d) = %v, want %v", v, got, want)
		}
		if ix.ReplicaCount(v) != want.Count() {
			t.Fatalf("ReplicaCount(%d) = %d, want %d", v, ix.ReplicaCount(v), want.Count())
		}
	}
	s := metrics.Summarize(dedupe(a))
	if ix.Stats().Replicas != s.Replicas {
		t.Errorf("replicas = %d, want %d", ix.Stats().Replicas, s.Replicas)
	}
	if got, want := ix.Stats().ReplicationDegree, s.ReplicationDegree; got != want {
		t.Errorf("replication degree = %v, want %v", got, want)
	}
}

func TestPartitionReversedOrientation(t *testing.T) {
	a := metrics.NewAssignment(4, 2)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 3)
	a.Add(graph.Edge{Src: 5, Dst: 5}, 0) // self-loop
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := ix.Partition(2, 1); !ok || p != 3 {
		t.Errorf("Partition(2,1) = (%d,%v), want (3,true) via reversed orientation", p, ok)
	}
	if p, ok := ix.Partition(5, 5); !ok || p != 0 {
		t.Errorf("Partition(5,5) = (%d,%v), want (0,true)", p, ok)
	}
	if _, ok := ix.Partition(7, 7); ok {
		t.Error("Partition(7,7) found an edge that was never assigned")
	}
	if _, ok := ix.Partition(1, 5); ok {
		t.Error("Partition(1,5) found an edge that was never assigned")
	}
}

func TestDuplicateEdgeLastWriteWins(t *testing.T) {
	a := metrics.NewAssignment(4, 3)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 0)
	a.Add(graph.Edge{Src: 2, Dst: 3}, 1)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 2) // re-assignment of the first edge
	ix, err := BuildSharded(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := ix.Partition(0, 1); p != 2 {
		t.Errorf("Partition(0,1) = %d, want 2 (last write wins)", p)
	}
	st := ix.Stats()
	if st.DistinctEdges != 2 || st.Rows != 3 {
		t.Errorf("distinct=%d rows=%d, want 2 and 3", st.DistinctEdges, st.Rows)
	}
	if st.Sizes[0] != 0 || st.Sizes[1] != 1 || st.Sizes[2] != 1 {
		t.Errorf("sizes = %v, want [0 1 1 0]", st.Sizes)
	}
	// The replica view follows the final placement: the superseded
	// assignment of (0,1) to partition 0 leaves no trace.
	for _, v := range []graph.VertexID{0, 1} {
		if got := ix.Replicas(v); got.Count() != 1 || !got.Contains(2) {
			t.Errorf("Replicas(%d) = %v, want {2}", v, got)
		}
	}
	if st.Replicas != 4 || st.ReplicationDegree != 1 {
		t.Errorf("replicas=%d RF=%v, want 4 and 1 (distinct-edge view)", st.Replicas, st.ReplicationDegree)
	}
}

func TestPartitionBatch(t *testing.T) {
	a := metrics.NewAssignment(4, 2)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 2)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 3)
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 9, Dst: 9}, {Src: 2, Dst: 1}}
	got := ix.PartitionBatch(edges, nil)
	want := []int32{2, -1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PartitionBatch = %v, want %v", got, want)
		}
	}
	// A caller-provided buffer of sufficient capacity is reused.
	buf := make([]int32, 0, 8)
	got = ix.PartitionBatch(edges, buf)
	if &got[0] != &buf[:1][0] {
		t.Error("PartitionBatch reallocated despite sufficient capacity")
	}
}

func TestBuildRejectsInvalidAssignment(t *testing.T) {
	bad := &metrics.Assignment{K: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}, Parts: []int32{5}}
	if _, err := Build(bad); err == nil {
		t.Error("Build accepted an out-of-range partition id")
	}
	a := metrics.NewAssignment(2, 1)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 1)
	if _, err := BuildSharded(a, 0); err == nil {
		t.Error("BuildSharded accepted shard count 0")
	}
}

func TestZeroAllocLookups(t *testing.T) {
	a := testAssignment(t, "dbh", 8)
	ix, err := BuildSharded(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges[len(a.Edges)/2]
	if allocs := testing.AllocsPerRun(100, func() {
		ix.Partition(e.Src, e.Dst)
		ix.Replicas(e.Src)
		ix.ReplicaCount(e.Dst)
	}); allocs != 0 {
		t.Errorf("single lookups allocate %v times per run, want 0", allocs)
	}
	edges := a.Edges[:256]
	dst := make([]int32, 0, len(edges))
	if allocs := testing.AllocsPerRun(100, func() {
		dst = ix.PartitionBatch(edges, dst)
	}); allocs != 0 {
		t.Errorf("PartitionBatch allocates %v times per run, want 0", allocs)
	}
}
