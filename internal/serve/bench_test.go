package serve

import (
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
)

// benchIndex builds a registry-partitioned index once per benchmark run.
func benchIndex(b *testing.B) (*Index, []graph.Edge) {
	b.Helper()
	a := testAssignment(b, "hdrf", 32)
	ix, err := Build(a)
	if err != nil {
		b.Fatal(err)
	}
	return ix, a.Edges
}

// BenchmarkLookupPartition measures the single-edge read path. The
// acceptance bar is zero allocations per lookup at steady state.
func BenchmarkLookupPartition(b *testing.B) {
	ix, edges := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		p, _ := ix.Partition(e.Src, e.Dst)
		sink += p
	}
	_ = sink
}

// BenchmarkLookupReplicas measures the vertex replica-set read path.
func BenchmarkLookupReplicas(b *testing.B) {
	ix, edges := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += ix.Replicas(edges[i%len(edges)].Src).Count()
	}
	_ = sink
}

// BenchmarkLookupPartitionBatch measures the amortised batch path.
func BenchmarkLookupPartitionBatch(b *testing.B) {
	ix, edges := benchIndex(b)
	if len(edges) > 1024 {
		edges = edges[:1024]
	}
	dst := make([]int32, 0, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.PartitionBatch(edges, dst)
	}
	b.SetBytes(int64(len(edges)))
}

// BenchmarkLookupParallel drives the single-edge path from all cores
// against one immutable index — the serving concurrency model.
func BenchmarkLookupParallel(b *testing.B) {
	ix, edges := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		var sink int32
		for pb.Next() {
			e := edges[i%len(edges)]
			p, _ := ix.Partition(e.Src, e.Dst)
			sink += p
			i++
		}
		_ = sink
	})
}

// BenchmarkBuild measures index construction (not a lookup; excluded from
// the CI Lookup smoke).
func BenchmarkBuild(b *testing.B) {
	a := testAssignment(b, "hdrf", 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(a); err != nil {
			b.Fatal(err)
		}
	}
}
