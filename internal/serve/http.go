package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metric"
)

// NewServer wraps a handler in an http.Server with the slow-client
// timeouts a public-facing lookup service needs: without them, clients
// that trickle header or body bytes pin goroutines and file descriptors
// indefinitely. Lookups are sub-microsecond, so generous bounds lose
// nothing.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// MaxBatch bounds the edge count of one /v1/edges request.
const MaxBatch = 1 << 16

// maxBatchBodyBytes bounds the /v1/edges request body before decoding, so
// the MaxBatch cap bounds memory and not just the post-decode length. A
// maximal legal batch is ~24 bytes of minified JSON per edge; 64 bytes
// per edge leaves room for indented encodings of any legal batch.
const maxBatchBodyBytes = MaxBatch * 64

// NewHandler returns the lookup service's HTTP API over a store:
//
//	GET  /healthz                     liveness + readiness (503 until an index lands)
//	GET  /v1/edge?src=S&dst=D         partition of one edge
//	GET  /v1/vertex?v=V               replica set of one vertex
//	POST /v1/edges {"edges":[[s,d],…]} batch edge lookup
//	GET  /v1/stats                    index statistics + uptime (+ metrics when instrumented)
//
// Every handler resolves the store view once and answers entirely from
// that immutable snapshot, so responses stay self-consistent across a
// concurrent Swap.
func NewHandler(s *Store) http.Handler { return NewInstrumentedHandler(s, nil) }

// statsResponse is the /v1/stats body: the index statistics inline (the
// historical shape), plus serving-tier fields and, when the handler is
// instrumented, the full metrics snapshot of the same registry that
// serves /v1/metrics.
type statsResponse struct {
	Stats
	Generation    uint64           `json:"generation"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Metrics       *metric.Snapshot `json:"metrics,omitempty"`
}

// NewInstrumentedHandler is NewHandler with telemetry: per-endpoint
// request counters and latency histograms recorded on ins (nil disables
// instrumentation entirely — the uninstrumented handler has no
// per-request overhead), plus GET /v1/metrics serving the registry
// snapshot. The lookup hot paths underneath (Index.Partition,
// PartitionBatch) stay zero-alloc either way; instrumentation happens in
// the HTTP layer around them.
func NewInstrumentedHandler(s *Store, ins *Instruments) http.Handler {
	var clk clock.Clock = clock.Real{}
	if ins != nil {
		clk = ins.Registry.Clock()
	}
	started := clk.Now()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.View() == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "empty"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "generation": s.Generation()})
	})
	mux.HandleFunc("GET /v1/edge", ins.instrument(s, insCounter(ins, func(i *Instruments) *metric.Counter { return i.reqEdge }),
		insTimer(ins, func(i *Instruments) *metric.Timer { return i.latEdge }), withIndex(s, handleEdge)))
	mux.HandleFunc("GET /v1/vertex", ins.instrument(s, insCounter(ins, func(i *Instruments) *metric.Counter { return i.reqVertex }),
		insTimer(ins, func(i *Instruments) *metric.Timer { return i.latVertex }), withIndex(s, handleVertex)))
	mux.HandleFunc("POST /v1/edges", ins.instrument(s, insCounter(ins, func(i *Instruments) *metric.Counter { return i.reqBatch }),
		insTimer(ins, func(i *Instruments) *metric.Timer { return i.latBatch }), withIndex(s, makeBatchHandler(ins))))
	mux.HandleFunc("GET /v1/stats", ins.instrument(s, insCounter(ins, func(i *Instruments) *metric.Counter { return i.reqStats }), nil,
		withIndex(s, func(w http.ResponseWriter, r *http.Request, ix *Index) {
			writeJSON(w, http.StatusOK, statsResponse{
				Stats:         ix.Stats(),
				Generation:    s.Generation(),
				UptimeSeconds: clk.Now().Sub(started).Seconds(),
				Metrics:       ins.snapshot(),
			})
		})))
	if ins != nil {
		mux.HandleFunc("GET /v1/metrics", ins.instrument(s, ins.reqMetrics, nil,
			func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, http.StatusOK, ins.Registry.Snapshot())
			}))
	}
	return mux
}

// insCounter and insTimer pluck a handle off possibly-nil Instruments, so
// route wiring stays declarative.
func insCounter(ins *Instruments, get func(*Instruments) *metric.Counter) *metric.Counter {
	if ins == nil {
		return nil
	}
	return get(ins)
}

func insTimer(ins *Instruments, get func(*Instruments) *metric.Timer) *metric.Timer {
	if ins == nil {
		return nil
	}
	return get(ins)
}

// makeBatchHandler returns the /v1/edges handler, counting looked-up
// edges on the instruments when present.
func makeBatchHandler(ins *Instruments) func(http.ResponseWriter, *http.Request, *Index) {
	return func(w http.ResponseWriter, r *http.Request, ix *Index) {
		n := handleEdgeBatch(w, r, ix)
		if ins != nil && n > 0 {
			ins.batchEdges.Inc(int64(n))
		}
	}
}

// withIndex resolves the store view once per request and rejects requests
// arriving before the first index is installed.
func withIndex(s *Store, h func(http.ResponseWriter, *http.Request, *Index)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ix := s.View()
		if ix == nil {
			writeError(w, http.StatusServiceUnavailable, "no index loaded")
			return
		}
		h(w, r, ix)
	}
}

func handleEdge(w http.ResponseWriter, r *http.Request, ix *Index) {
	src, err := vertexParam(r, "src")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	dst, err := vertexParam(r, "dst")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, ok := ix.Partition(src, dst)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("edge (%d,%d) not in the partitioning", src, dst))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"src": src, "dst": dst, "partition": p})
}

func handleVertex(w http.ResponseWriter, r *http.Request, ix *Index) {
	v, err := vertexParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	replicas := ix.Replicas(v)
	if replicas.Empty() {
		writeError(w, http.StatusNotFound, fmt.Sprintf("vertex %d not in the partitioning", v))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":   v,
		"count":    replicas.Count(),
		"replicas": replicas.Members(),
	})
}

// batchRequest is the /v1/edges body: edges as [src,dst] pairs.
type batchRequest struct {
	Edges [][2]uint32 `json:"edges"`
}

// handleEdgeBatch answers a batch lookup and reports how many edges it
// resolved (0 on any rejection), so instrumented handlers can meter
// lookup throughput rather than just request counts.
func handleEdgeBatch(w http.ResponseWriter, r *http.Request, ix *Index) int {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: "+err.Error())
		return 0
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "empty edge batch")
		return 0
	}
	if len(req.Edges) > MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d edges exceeds the %d cap", len(req.Edges), MaxBatch))
		return 0
	}
	edges := make([]graph.Edge, len(req.Edges))
	for i, pair := range req.Edges {
		edges[i] = graph.Edge{Src: graph.VertexID(pair[0]), Dst: graph.VertexID(pair[1])}
	}
	parts := ix.PartitionBatch(edges, make([]int32, 0, len(edges)))
	writeJSON(w, http.StatusOK, map[string]any{"partitions": parts})
	return len(edges)
}

func vertexParam(r *http.Request, name string) (graph.VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return graph.VertexID(v), nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
