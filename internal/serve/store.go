package serve

import "sync/atomic"

// Store holds the live index behind an atomic pointer so a freshly
// computed assignment can replace it without blocking in-flight lookups:
// readers grab a view once per request and keep using it even while a
// swap lands; the old index stays valid until its last reader drops it.
type Store struct {
	idx atomic.Pointer[Index]
	gen atomic.Uint64 // completed swaps; 0 until the first index lands
}

// NewStore returns a store serving idx. A nil idx creates an empty store
// (View returns nil until the first Swap).
func NewStore(idx *Index) *Store {
	s := &Store{}
	if idx != nil {
		s.Swap(idx)
	}
	return s
}

// View returns the current index, or nil if none has been installed.
// Callers must resolve all lookups of one logical operation against the
// same view; re-calling View mid-operation may observe a newer index.
func (s *Store) View() *Index { return s.idx.Load() }

// Swap atomically installs idx as the live index and returns the previous
// one (nil on the first install). It panics on a nil idx: clearing a
// serving store is not a supported transition — swap in a replacement.
func (s *Store) Swap(idx *Index) *Index {
	if idx == nil {
		panic("serve: Swap(nil)")
	}
	old := s.idx.Swap(idx)
	s.gen.Add(1)
	return old
}

// Generation returns the number of completed swaps — an observability
// counter for telling reloads apart; zero means the store is empty.
func (s *Store) Generation() uint64 { return s.gen.Load() }
