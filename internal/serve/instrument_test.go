package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/metric"
)

func instrumentedServer(t *testing.T, fake *clock.Fake) (*httptest.Server, *Instruments, *Store) {
	t.Helper()
	reg := metric.New(metric.WithClock(fake), metric.WithCounterStripes(1))
	ins := NewInstruments(reg)
	store := NewStore(fixedIndex(t))
	srv := httptest.NewServer(NewInstrumentedHandler(store, ins))
	t.Cleanup(srv.Close)
	return srv, ins, store
}

func counterValue(t *testing.T, reg *metric.Registry, name string) int64 {
	t.Helper()
	p, ok := reg.Snapshot().Counter(name)
	if !ok {
		t.Fatalf("counter %q missing from snapshot", name)
	}
	return p.Value
}

func TestInstrumentedHandlerCounts(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	srv, ins, _ := instrumentedServer(t, fake)

	getJSON(t, srv, "/v1/edge?src=0&dst=1", http.StatusOK)
	getJSON(t, srv, "/v1/edge?src=7&dst=9", http.StatusNotFound)
	getJSON(t, srv, "/v1/edge?src=abc&dst=1", http.StatusBadRequest)
	getJSON(t, srv, "/v1/vertex?v=2", http.StatusOK)

	resp, err := srv.Client().Post(srv.URL+"/v1/edges", "application/json",
		bytes.NewBufferString(`{"edges":[[0,1],[5,6],[2,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}

	reg := ins.Registry
	if got := counterValue(t, reg, MetricEdgeRequests); got != 3 {
		t.Errorf("%s = %d, want 3 (errors count as requests too)", MetricEdgeRequests, got)
	}
	if got := counterValue(t, reg, MetricVertexRequests); got != 1 {
		t.Errorf("%s = %d, want 1", MetricVertexRequests, got)
	}
	if got := counterValue(t, reg, MetricBatchRequests); got != 1 {
		t.Errorf("%s = %d, want 1", MetricBatchRequests, got)
	}
	if got := counterValue(t, reg, MetricBatchEdges); got != 3 {
		t.Errorf("%s = %d, want 3 looked-up edges", MetricBatchEdges, got)
	}
	if got := counterValue(t, reg, MetricErrors); got != 2 {
		t.Errorf("%s = %d, want 2 (one 404 + one 400)", MetricErrors, got)
	}
	tp, ok := reg.Snapshot().Timer(MetricEdgeLatency)
	if !ok || tp.Count != 3 {
		t.Errorf("%s count = %+v ok=%v, want 3 observations", MetricEdgeLatency, tp, ok)
	}
	if g, ok := reg.Snapshot().Gauge(MetricGeneration); !ok || g.Value != 1 {
		t.Errorf("%s = %+v ok=%v, want generation 1", MetricGeneration, g, ok)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	srv, _, _ := instrumentedServer(t, fake)

	getJSON(t, srv, "/v1/edge?src=0&dst=1", http.StatusOK)
	body := getJSON(t, srv, "/v1/metrics", http.StatusOK)
	counters, ok := body["counters"].([]any)
	if !ok || len(counters) == 0 {
		t.Fatalf("/v1/metrics body missing counters: %v", body)
	}
	found := false
	for _, c := range counters {
		m := c.(map[string]any)
		if m["name"] == MetricEdgeRequests && m["value"].(float64) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("/v1/metrics counters missing %s=1: %v", MetricEdgeRequests, counters)
	}

	// The uninstrumented handler does not expose the endpoint.
	bare := httptest.NewServer(NewHandler(NewStore(fixedIndex(t))))
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("uninstrumented /v1/metrics status = %d, want 404", resp.StatusCode)
	}
}

func TestStatsUptimeAndMetrics(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	srv, _, store := instrumentedServer(t, fake)

	store.Swap(fixedIndex(t)) // generation 2
	fake.Advance(90 * time.Second)

	stats := getJSON(t, srv, "/v1/stats", http.StatusOK)
	// The historical inline shape survives.
	if stats["k"].(float64) != 4 || stats["distinct_edges"].(float64) != 3 || stats["vertices"].(float64) != 4 {
		t.Errorf("stats = %v, want inline k=4 distinct_edges=3 vertices=4", stats)
	}
	if stats["generation"].(float64) != 2 {
		t.Errorf("generation = %v, want 2 after a second swap", stats["generation"])
	}
	// Uptime follows the injected clock: 90s elapsed plus the fake clock's
	// auto-step per Now() call, so it sits in [90, 91).
	up := stats["uptime_seconds"].(float64)
	if up < 90 || up >= 91 {
		t.Errorf("uptime_seconds = %v, want ≈ 90 (fake-clock driven)", up)
	}
	if _, ok := stats["metrics"].(map[string]any); !ok {
		t.Errorf("instrumented /v1/stats missing embedded metrics snapshot: %v", stats)
	}

	// Uninstrumented stats keeps uptime but omits metrics.
	bare := httptest.NewServer(NewHandler(NewStore(fixedIndex(t))))
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	bareStats := getJSON(t, bare, "/v1/stats", http.StatusOK)
	if _, present := bareStats["metrics"]; present {
		t.Errorf("uninstrumented /v1/stats should omit metrics: %v", bareStats)
	}
	if _, present := bareStats["uptime_seconds"]; !present {
		t.Errorf("uninstrumented /v1/stats missing uptime_seconds: %v", bareStats)
	}
}
