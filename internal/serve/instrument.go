package serve

import (
	"net/http"

	"github.com/adwise-go/adwise/internal/metric"
)

// Instruments bundles the serving tier's telemetry: per-endpoint request
// counters and latency histograms, an error counter, and the
// store-generation gauge, all living on one metric.Registry so the
// /v1/metrics endpoint, the /v1/stats snapshot, and any attached flusher
// report the same numbers.
//
// The handles are resolved once at construction; per-request work is a
// handful of atomic operations plus one histogram bucket bump — nothing
// that perturbs the zero-alloc index lookups underneath.
type Instruments struct {
	// Registry is the backing registry (also serves /v1/metrics).
	Registry *metric.Registry

	reqEdge, reqVertex, reqBatch, reqStats, reqMetrics *metric.Counter
	errors                                             *metric.Counter
	latEdge, latVertex, latBatch                       *metric.Timer
	batchEdges                                         *metric.Counter
	generation                                         *metric.Gauge
}

// Metric names exported by the serving tier.
const (
	MetricEdgeRequests    = "serve.edge.requests"
	MetricVertexRequests  = "serve.vertex.requests"
	MetricBatchRequests   = "serve.edges.requests"
	MetricStatsRequests   = "serve.stats.requests"
	MetricMetricsRequests = "serve.metrics.requests"
	MetricErrors          = "serve.errors"
	MetricEdgeLatency     = "serve.edge.latency"
	MetricVertexLatency   = "serve.vertex.latency"
	MetricBatchLatency    = "serve.edges.latency"
	MetricBatchEdges      = "serve.edges.looked_up"
	MetricGeneration      = "serve.store.generation"
)

// NewInstruments registers the serving metrics on reg and returns the
// resolved handles.
func NewInstruments(reg *metric.Registry) *Instruments {
	return &Instruments{
		Registry:   reg,
		reqEdge:    reg.Counter(MetricEdgeRequests),
		reqVertex:  reg.Counter(MetricVertexRequests),
		reqBatch:   reg.Counter(MetricBatchRequests),
		reqStats:   reg.Counter(MetricStatsRequests),
		reqMetrics: reg.Counter(MetricMetricsRequests),
		errors:     reg.Counter(MetricErrors),
		latEdge:    reg.Timer(MetricEdgeLatency),
		latVertex:  reg.Timer(MetricVertexLatency),
		latBatch:   reg.Timer(MetricBatchLatency),
		batchEdges: reg.Counter(MetricBatchEdges),
		generation: reg.Gauge(MetricGeneration),
	}
}

// statusWriter captures the response status so the error counter can tell
// 2xx from the rest without inspecting handler internals.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

// instrument wraps h so each request bumps reqs, observes its wall time
// on lat (when non-nil), refreshes the store-generation gauge, and counts
// non-2xx responses. With nil Instruments it returns h unchanged, so the
// uninstrumented handler pays nothing.
func (ins *Instruments) instrument(s *Store, reqs *metric.Counter, lat *metric.Timer, h http.HandlerFunc) http.HandlerFunc {
	if ins == nil {
		return h
	}
	clk := ins.Registry.Clock()
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc(1)
		ins.generation.Set(int64(s.Generation()))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := clk.Now()
		h(sw, r)
		if lat != nil {
			lat.Observe(clk.Now().Sub(start))
		}
		if sw.status >= 400 {
			ins.errors.Inc(1)
		}
	}
}

// snapshot returns the registry snapshot, or nil without instruments —
// the shape /v1/stats embeds.
func (ins *Instruments) snapshot() *metric.Snapshot {
	if ins == nil {
		return nil
	}
	return ins.Registry.Snapshot()
}
