package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
)

func fixedIndex(t *testing.T) *Index {
	t.Helper()
	a := metrics.NewAssignment(4, 3)
	a.Add(graph.Edge{Src: 0, Dst: 1}, 2)
	a.Add(graph.Edge{Src: 1, Dst: 2}, 3)
	a.Add(graph.Edge{Src: 2, Dst: 3}, 2)
	ix, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func getJSON(t *testing.T, srv *httptest.Server, path string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decoding body: %v", path, err)
	}
	return body
}

func TestHTTPEdgeAndVertex(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewStore(fixedIndex(t))))
	defer srv.Close()

	body := getJSON(t, srv, "/v1/edge?src=0&dst=1", http.StatusOK)
	if body["partition"].(float64) != 2 {
		t.Errorf("edge (0,1) partition = %v, want 2", body["partition"])
	}
	// Reversed orientation resolves to the same edge.
	body = getJSON(t, srv, "/v1/edge?src=1&dst=0", http.StatusOK)
	if body["partition"].(float64) != 2 {
		t.Errorf("edge (1,0) partition = %v, want 2", body["partition"])
	}
	getJSON(t, srv, "/v1/edge?src=7&dst=9", http.StatusNotFound)
	getJSON(t, srv, "/v1/edge?src=abc&dst=1", http.StatusBadRequest)
	getJSON(t, srv, "/v1/edge?dst=1", http.StatusBadRequest)

	body = getJSON(t, srv, "/v1/vertex?v=2", http.StatusOK)
	if body["count"].(float64) != 2 {
		t.Errorf("vertex 2 count = %v, want 2 (partitions 2 and 3)", body["count"])
	}
	getJSON(t, srv, "/v1/vertex?v=99", http.StatusNotFound)
	getJSON(t, srv, "/v1/vertex?v=-1", http.StatusBadRequest)
}

func TestHTTPBatch(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewStore(fixedIndex(t))))
	defer srv.Close()

	post := func(body string) (*http.Response, error) {
		return srv.Client().Post(srv.URL+"/v1/edges", "application/json", bytes.NewBufferString(body))
	}
	resp, err := post(`{"edges":[[0,1],[5,6],[2,1]]}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Partitions []int32 `json:"partitions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := []int32{2, -1, 3}
	for i := range want {
		if out.Partitions[i] != want[i] {
			t.Fatalf("batch partitions = %v, want %v", out.Partitions, want)
		}
	}

	for _, bad := range []string{`{"edges":[]}`, `{bogus`, `{"other":1}`} {
		resp, err := post(bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	store := NewStore(nil)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	// Before any index: unhealthy, lookups unavailable.
	getJSON(t, srv, "/healthz", http.StatusServiceUnavailable)
	getJSON(t, srv, "/v1/stats", http.StatusServiceUnavailable)
	getJSON(t, srv, "/v1/edge?src=0&dst=1", http.StatusServiceUnavailable)

	store.Swap(fixedIndex(t))
	body := getJSON(t, srv, "/healthz", http.StatusOK)
	if body["generation"].(float64) != 1 {
		t.Errorf("generation = %v, want 1", body["generation"])
	}
	stats := getJSON(t, srv, "/v1/stats", http.StatusOK)
	if stats["k"].(float64) != 4 || stats["distinct_edges"].(float64) != 3 || stats["vertices"].(float64) != 4 {
		t.Errorf("stats = %v, want k=4 distinct_edges=3 vertices=4", stats)
	}
}

func TestHTTPBatchCap(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewStore(fixedIndex(t))))
	defer srv.Close()

	var buf bytes.Buffer
	buf.WriteString(`{"edges":[`)
	for i := 0; i <= MaxBatch; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "[%d,%d]", i, i+1)
	}
	buf.WriteString(`]}`)
	resp, err := srv.Client().Post(srv.URL+"/v1/edges", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}
}
