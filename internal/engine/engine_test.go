package engine

import (
	"math"
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
)

// hashAssign partitions g with the hash baseline — a quick way to get a
// valid vertex-cut for engine tests.
func hashAssign(t *testing.T, g *graph.Graph, k int) *metrics.Assignment {
	t.Helper()
	h, err := partition.NewHash(partition.Config{K: k, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.Run(stream.FromGraph(g), h)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newEngine(t *testing.T, g *graph.Graph, k int) *Engine {
	t.Helper()
	a := hashAssign(t, g, k)
	e, err := New(a, g.NumV, DefaultCostModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	g, err := gen.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	a := hashAssign(t, g, 4)

	if _, err := New(&metrics.Assignment{K: 0}, 10, DefaultCostModel(), 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(a, 3, DefaultCostModel(), 0); err == nil {
		t.Error("vertex universe smaller than edge endpoints accepted")
	}
	empty := metrics.NewAssignment(4, 0)
	if _, err := New(empty, 10, DefaultCostModel(), 0); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestEngineStructure(t *testing.T) {
	g, err := gen.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	if e.K() != 4 || e.NumV() != 16 {
		t.Errorf("K=%d NumV=%d", e.K(), e.NumV())
	}
	// Engine replica counts must agree with the metrics package.
	a := hashAssign(t, g, 4)
	for v, set := range a.ReplicaSets() {
		if got := e.ReplicaCount(v); got != set.Count() {
			t.Errorf("ReplicaCount(%d) = %d, want %d", v, got, set.Count())
		}
	}
}

func TestPageRankMatchesSequentialReference(t *testing.T) {
	g, err := gen.HolmeKim(300, 3, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 8)
	got, rep, err := e.PageRank(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	want := PageRankReference(g, 20, 0.85)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, reference %v", v, got[v], want[v])
		}
	}
	if rep.Supersteps != 20 {
		t.Errorf("Supersteps = %d, want 20", rep.Supersteps)
	}
	if rep.SimulatedLatency <= 0 || rep.Messages <= 0 || rep.EdgeOps <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if len(rep.PerStep) != 20 {
		t.Errorf("PerStep has %d entries", len(rep.PerStep))
	}
}

func TestPageRankMassConservation(t *testing.T) {
	// With damping d, total mass converges near 1 when every vertex has
	// out-degree >= 1 (a cycle guarantees it).
	g, err := gen.Cycle(50)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	rank, _, err := e.PageRank(30, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank mass = %v, want 1", sum)
	}
	// Symmetry: every cycle vertex must have identical rank.
	for v := 1; v < 50; v++ {
		if math.Abs(rank[v]-rank[0]) > 1e-12 {
			t.Errorf("rank[%d] = %v != rank[0] = %v on symmetric cycle", v, rank[v], rank[0])
		}
	}
}

func TestPageRankErrors(t *testing.T) {
	g, _ := gen.Cycle(10)
	e := newEngine(t, g, 2)
	if _, _, err := e.PageRank(0, 0.85); err == nil {
		t.Error("iterations=0 accepted")
	}
	if _, _, err := e.PageRank(5, 1.0); err == nil {
		t.Error("damping=1 accepted")
	}
}

func TestPageRankDeterministic(t *testing.T) {
	g, err := gen.HolmeKim(200, 3, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := hashAssign(t, g, 8)
	run := func() ([]float64, Report) {
		e, err := New(a, g.NumV, DefaultCostModel(), 0)
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := e.PageRank(10, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		return r, rep
	}
	r1, rep1 := run()
	r2, rep2 := run()
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("rank[%d] differs across runs", v)
		}
	}
	if rep1.SimulatedLatency != rep2.SimulatedLatency || rep1.Messages != rep2.Messages {
		t.Error("simulated accounting not deterministic")
	}
}

func TestBetterPartitioningLowersSimulatedLatency(t *testing.T) {
	// The causal chain the whole paper rests on: lower replication degree
	// → fewer sync messages → lower processing latency.
	g, err := gen.Community(40, 12, 0.85, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	hashA := hashAssign(t, g, 8)
	gr, err := partition.NewGreedy(partition.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	greedyA, err := partition.Run(stream.FromGraph(g), gr)
	if err != nil {
		t.Fatal(err)
	}

	rfHash := metrics.Summarize(hashA).ReplicationDegree
	rfGreedy := metrics.Summarize(greedyA).ReplicationDegree
	if rfGreedy >= rfHash {
		t.Fatalf("precondition failed: greedy RF %v >= hash RF %v", rfGreedy, rfHash)
	}

	run := func(a *metrics.Assignment) Report {
		e, err := New(a, g.NumV, DefaultCostModel(), 0)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := e.PageRank(5, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	repHash, repGreedy := run(hashA), run(greedyA)
	if repGreedy.Messages >= repHash.Messages {
		t.Errorf("greedy messages %d >= hash messages %d despite lower RF", repGreedy.Messages, repHash.Messages)
	}
	if repGreedy.SimulatedLatency >= repHash.SimulatedLatency {
		t.Errorf("greedy latency %v >= hash latency %v despite lower RF", repGreedy.SimulatedLatency, repHash.SimulatedLatency)
	}
}

func TestCumulativeLatency(t *testing.T) {
	g, _ := gen.Cycle(20)
	e := newEngine(t, g, 2)
	_, rep, err := e.PageRank(10, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.CumulativeLatency(5); got <= 0 || got >= rep.SimulatedLatency {
		t.Errorf("CumulativeLatency(5) = %v, total %v", got, rep.SimulatedLatency)
	}
	if got := rep.CumulativeLatency(100); got != rep.SimulatedLatency {
		t.Errorf("CumulativeLatency beyond run = %v, want total %v", got, rep.SimulatedLatency)
	}
}

func TestColoringProducesProperColoring(t *testing.T) {
	g, err := gen.Community(20, 8, 0.9, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 8)
	colors, rep, err := e.Coloring(200)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidColoring(g, colors) {
		t.Error("engine produced an improper coloring")
	}
	if rep.Supersteps < 2 {
		t.Errorf("suspiciously few supersteps: %d", rep.Supersteps)
	}
	// Messages must shrink as the coloring converges (fewer changed
	// vertices over time) — compare first and last superstep latency.
	if rep.PerStep[len(rep.PerStep)-1] > rep.PerStep[0] {
		t.Errorf("latency grew while converging: first %v, last %v",
			rep.PerStep[0], rep.PerStep[len(rep.PerStep)-1])
	}
}

func TestColoringPath(t *testing.T) {
	// A path is 2-colorable; the greedy priority order may use a third
	// color but never more than Δ+1 = 3.
	g, _ := gen.Path(50)
	e := newEngine(t, g, 4)
	colors, _, err := e.Coloring(100)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidColoring(g, colors) {
		t.Error("improper coloring on path")
	}
	max := int32(0)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	if max > 2 {
		t.Errorf("path used %d colors, want <= 3", max+1)
	}
}

func TestColoringClique(t *testing.T) {
	// K5 needs exactly 5 colors.
	g, _ := gen.Clique(5)
	e := newEngine(t, g, 2)
	colors, _, err := e.Coloring(100)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidColoring(g, colors) {
		t.Fatal("improper coloring on K5")
	}
	seen := make(map[int32]bool)
	for _, c := range colors[:5] {
		seen[c] = true
	}
	if len(seen) != 5 {
		t.Errorf("K5 colored with %d distinct colors, want 5", len(seen))
	}
}

func TestColoringErrors(t *testing.T) {
	g, _ := gen.Cycle(10)
	e := newEngine(t, g, 2)
	if _, _, err := e.Coloring(0); err == nil {
		t.Error("maxIterations=0 accepted")
	}
}
