package engine

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
)

// CycleSearchConfig configures one subgraph-isomorphism search for circles
// (simple cycles) of a fixed length — the Figure 7d workload. The paper
// searches the Brain graph for circles of lengths 19/15/21; the
// reproduction uses shorter lengths at its reduced scale (DESIGN.md §3).
type CycleSearchConfig struct {
	// Length is the circle length to search for (number of edges).
	Length int
	// Seeds are the vertices walkers start from. Bounding the seed set
	// bounds the exponential path expansion on commodity hardware; pass
	// every vertex for an exhaustive search on small graphs.
	Seeds []graph.VertexID
	// MaxMessagesPerPartition caps the paths a partition may produce per
	// superstep; excess paths are dropped and counted (0 = unlimited).
	MaxMessagesPerPartition int
}

// CycleSearchResult reports what a cycle search found.
type CycleSearchResult struct {
	// Found counts closed simple paths of the requested length discovered
	// by the walkers. Each cycle is found once per seed vertex on it and
	// direction, so the raw count over-counts distinct cycles by up to
	// 2·|seeds on cycle|; tests normalise accordingly.
	Found int64
	// Dropped counts path messages discarded by the per-partition cap.
	Dropped int64
}

type pathMsg struct {
	path []graph.VertexID // path[0] is the origin
}

// CycleSearch runs the message-passing circle search: path messages extend
// hop by hop along local edges, partitions exchange messages for vertices
// mastered elsewhere, and a path closing back at its origin at exactly the
// requested length counts as a found circle. This is the communication-
// and computation-heavy regime the paper uses to show the partitioning
// sweet spot most clearly.
func (e *Engine) CycleSearch(cfg CycleSearchConfig) (CycleSearchResult, Report, error) {
	if cfg.Length < 3 {
		return CycleSearchResult{}, Report{}, fmt.Errorf("engine: cycle length must be >= 3, got %d", cfg.Length)
	}
	if len(cfg.Seeds) == 0 {
		return CycleSearchResult{}, Report{}, fmt.Errorf("engine: cycle search needs at least one seed")
	}
	start := e.clk.Now()

	// inbox[v] holds the path messages whose frontier is v.
	inbox := make([][]pathMsg, e.numV)
	for _, s := range cfg.Seeds {
		if int(s) >= e.numV {
			return CycleSearchResult{}, Report{}, fmt.Errorf("engine: seed %d outside vertex universe", s)
		}
		inbox[s] = append(inbox[s], pathMsg{path: []graph.VertexID{s}})
	}

	var res CycleSearchResult
	rep := Report{}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)
	outPer := make([]map[graph.VertexID][]pathMsg, e.k)
	foundPer := make([]int64, e.k)
	droppedPer := make([]int64, e.k)

	for step := 0; step < cfg.Length; step++ {
		for p := 0; p < e.k; p++ {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
			outPer[p] = make(map[graph.VertexID][]pathMsg)
			foundPer[p], droppedPer[p] = 0, 0
		}

		// Broadcast cost (sequential, race-free): every vertex with a
		// non-empty inbox is shipped from its master to all mirrors before
		// the parallel phase; the sending master's partition is charged.
		for v := range inbox {
			if len(inbox[v]) == 0 {
				continue
			}
			reps := e.replicas[v]
			if len(reps) > 1 {
				msgs[int(e.master[v])] += int64(len(reps) - 1)
			}
		}

		e.parallel(func(p int) {
			lp := &e.parts[p]
			out := outPer[p]
			var produced int64
			for _, ed := range lp.edges {
				e.extendAlong(cfg, p, ed.Src, ed.Dst, inbox, out, &produced, edgeOps, foundPer, droppedPer)
				if ed.Dst != ed.Src {
					e.extendAlong(cfg, p, ed.Dst, ed.Src, inbox, out, &produced, edgeOps, foundPer, droppedPer)
				}
			}
			var vops int64
			for _, v := range lp.vertices {
				if len(inbox[v]) > 0 {
					vops++
				}
			}
			vertexOps[p] = vops
		})

		// Merge per-partition outboxes into the next inboxes, charging a
		// message for every path whose destination is mastered elsewhere.
		next := make([][]pathMsg, e.numV)
		var delivered int64
		for p := 0; p < e.k; p++ {
			for dst, list := range outPer[p] {
				if e.master[dst] != int32(p) {
					msgs[p] += int64(len(list))
				}
				next[dst] = append(next[dst], list...)
				delivered += int64(len(list))
			}
			res.Found += foundPer[p]
			res.Dropped += droppedPer[p]
		}
		inbox = next

		var stepMsgs int64
		for p := range msgs {
			rep.EdgeOps += edgeOps[p]
			stepMsgs += msgs[p]
		}
		rep.Messages += stepMsgs
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
		if delivered == 0 {
			break
		}
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return res, rep, nil
}

// extendAlong extends every path message waiting at from across the local
// edge (from → to), recording completed circles and queueing the extended
// paths at to.
func (e *Engine) extendAlong(cfg CycleSearchConfig, p int, from, to graph.VertexID,
	inbox [][]pathMsg, out map[graph.VertexID][]pathMsg, produced *int64,
	edgeOps []int64, foundPer, droppedPer []int64) {

	waiting := inbox[from]
	if len(waiting) == 0 {
		return
	}
	edgeOps[p] += int64(len(waiting))
	for _, m := range waiting {
		hops := len(m.path) - 1 // edges traversed so far
		// The extension (from → to) is hop number hops+1.
		if hops+1 == cfg.Length {
			if to == m.path[0] {
				foundPer[p]++ // closed back at the origin: circle found
			}
			continue
		}
		if contains(m.path, to) {
			continue // simple paths only
		}
		if cfg.MaxMessagesPerPartition > 0 && *produced >= int64(cfg.MaxMessagesPerPartition) {
			droppedPer[p]++
			continue
		}
		np := make([]graph.VertexID, len(m.path)+1)
		copy(np, m.path)
		np[len(m.path)] = to
		out[to] = append(out[to], pathMsg{path: np})
		*produced++
	}
}

func contains(path []graph.VertexID, v graph.VertexID) bool {
	for _, u := range path {
		if u == v {
			return true
		}
	}
	return false
}
