// Package engine is the distributed graph-processing substrate of the
// reproduction: a vertex-cut, master/mirror engine in the mould of
// PowerGraph and the paper's GrapH system, executing workloads over a
// partitioned graph with one worker per partition.
//
// The engine really computes each workload (results are validated against
// sequential references in tests) and, alongside, accounts a deterministic
// simulated processing latency through a network cost model. Replica
// synchronisation — the engine's only cross-partition traffic — costs
// 2·(|Rv|−1) messages per synchronised vertex, which is precisely how the
// replication degree produced by a partitioner turns into graph processing
// latency. See DESIGN.md §2.4 and §3 for the substitution argument versus
// the paper's 8-node cluster.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/adwise-go/adwise/internal/clock"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
	"github.com/adwise-go/adwise/internal/metrics"
)

// CostModel maps abstract work to simulated time. The defaults are
// calibrated to a 1GbE-cluster-like regime where a replica-sync message is
// roughly 25x the cost of streaming one edge through a local compute
// kernel, so communication dominates for poorly partitioned graphs —
// matching the paper's observation that replication degree drives
// processing latency.
type CostModel struct {
	// PerEdge is the compute cost of touching one local edge in a
	// superstep.
	PerEdge time.Duration
	// PerVertex is the compute cost of applying one local vertex update.
	PerVertex time.Duration
	// PerMessage is the network cost of one replica-sync or workload
	// message crossing partitions.
	PerMessage time.Duration
	// StepOverhead is the fixed barrier/coordination cost per superstep.
	StepOverhead time.Duration
	// Machines is the number of worker machines partitions are spread
	// over (partition p lives on machine p mod Machines). A BSP superstep
	// is bounded by the slowest machine, so per-partition work is
	// aggregated per machine first — the paper's testbed runs 32
	// partitions on 8 machines. Zero or negative means one machine per
	// partition.
	Machines int
}

// DefaultCostModel returns the calibration used by the benchmark harness.
func DefaultCostModel() CostModel {
	return CostModel{
		PerEdge:      20 * time.Nanosecond,
		PerVertex:    10 * time.Nanosecond,
		PerMessage:   500 * time.Nanosecond,
		StepOverhead: 2 * time.Millisecond,
		Machines:     8,
	}
}

// localPart is one partition's share of the graph: its edges and the local
// vertex universe (every vertex incident to a local edge, i.e. a replica).
type localPart struct {
	id       int
	edges    []graph.Edge
	vertices []graph.VertexID
	localIdx map[graph.VertexID]int32
}

// Engine executes workloads over a partitioned graph.
type Engine struct {
	k    int
	numV int
	cost CostModel

	parts    []localPart
	master   []int32   // per vertex: master partition, -1 if absent
	replicas [][]int32 // per vertex: sorted replica partitions (nil if |Rv|<=1)
	outDeg   []int32
	deg      []int32
	csr      *graph.CSR

	workers int
	clk     clock.Clock // wall-time source for Report.WallTime
}

// SetClock substitutes the time source behind Report.WallTime — tests
// drive workload timing deterministically with a clock.Fake. It must be
// called before running workloads.
func (e *Engine) SetClock(clk clock.Clock) { e.clk = clk }

// Report summarises one workload execution.
type Report struct {
	// Supersteps is the number of executed supersteps.
	Supersteps int
	// SimulatedLatency is the total simulated processing latency.
	SimulatedLatency time.Duration
	// PerStep holds the simulated latency of each superstep, so callers
	// can report cumulative blocks (e.g. "100 iterations of PageRank")
	// without re-running.
	PerStep []time.Duration
	// Messages is the total cross-partition message count (replica sync
	// plus workload messages).
	Messages int64
	// EdgeOps is the total number of local edge traversals.
	EdgeOps int64
	// WallTime is the real execution time of the engine run.
	WallTime time.Duration
}

// CumulativeLatency returns the simulated latency of the first n
// supersteps (all of them if n exceeds the run length).
func (r Report) CumulativeLatency(n int) time.Duration {
	if n > len(r.PerStep) {
		n = len(r.PerStep)
	}
	var total time.Duration
	for _, d := range r.PerStep[:n] {
		total += d
	}
	return total
}

// New builds an engine from a partitioning. numV fixes the vertex universe
// (use the source graph's NumV); workers bounds the goroutine pool (0
// means GOMAXPROCS).
func New(a *metrics.Assignment, numV int, cost CostModel, workers int) (*Engine, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid assignment: %w", err)
	}
	if a.Len() == 0 {
		return nil, fmt.Errorf("engine: empty assignment")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, e := range a.Edges {
		if int(e.Src) >= numV || int(e.Dst) >= numV {
			return nil, fmt.Errorf("engine: edge %v outside vertex universe of size %d", e, numV)
		}
	}

	e := &Engine{
		k:       a.K,
		numV:    numV,
		cost:    cost,
		parts:   make([]localPart, a.K),
		master:  make([]int32, numV),
		outDeg:  make([]int32, numV),
		deg:     make([]int32, numV),
		workers: workers,
		clk:     clock.Real{},
	}
	for i := range e.master {
		e.master[i] = -1
	}
	for p := range e.parts {
		e.parts[p] = localPart{id: p, localIdx: make(map[graph.VertexID]int32)}
	}

	replicaSets := make(map[graph.VertexID]map[int32]struct{}, 1024)
	addReplica := func(v graph.VertexID, p int32) {
		set, ok := replicaSets[v]
		if !ok {
			set = make(map[int32]struct{}, 2)
			replicaSets[v] = set
		}
		set[p] = struct{}{}
	}
	for i, ed := range a.Edges {
		p := a.Parts[i]
		lp := &e.parts[p]
		lp.edges = append(lp.edges, ed)
		addReplica(ed.Src, p)
		e.outDeg[ed.Src]++
		e.deg[ed.Src]++
		if ed.Dst != ed.Src {
			addReplica(ed.Dst, p)
			e.deg[ed.Dst]++
		}
	}

	e.replicas = make([][]int32, numV)
	for v, set := range replicaSets {
		list := make([]int32, 0, len(set))
		for p := range set {
			list = append(list, p)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		// Master is a deterministic hash-selected replica, mirroring
		// PowerGraph's randomized master placement: a fixed convention
		// such as "lowest partition id" concentrates masters (and with
		// them the gather/scatter fan-in) on few partitions and makes the
		// max-partition communication term brittle.
		e.master[v] = list[masterIndex(v, len(list))]
		e.replicas[v] = list
		for _, p := range list {
			lp := &e.parts[p]
			lp.localIdx[v] = int32(len(lp.vertices))
			lp.vertices = append(lp.vertices, v)
		}
	}

	g := &graph.Graph{NumV: numV, Edges: a.Edges}
	e.csr = graph.BuildCSR(g)
	return e, nil
}

// K returns the partition count.
func (e *Engine) K() int { return e.k }

// NumV returns the vertex universe size.
func (e *Engine) NumV() int { return e.numV }

// ReplicaCount returns |Rv| for vertex v (0 if v has no edges).
func (e *Engine) ReplicaCount(v graph.VertexID) int { return len(e.replicas[v]) }

// masterIndex picks which replica hosts the master of v: a SplitMix64 hash
// of the vertex id modulo the replica count, deterministic across runs.
func masterIndex(v graph.VertexID, replicas int) int {
	return int(hashx.SplitMix64(uint64(v)) % uint64(replicas))
}

// parallel runs fn(p) for every partition on the worker pool and blocks
// until all complete.
func (e *Engine) parallel(fn func(p int)) {
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for p := 0; p < e.k; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(p)
		}(p)
	}
	wg.Wait()
}

// stepCost turns per-partition work counters into the simulated superstep
// latency: per-partition work is aggregated onto machines (partition p on
// machine p mod Machines), and the superstep is bounded by the slowest
// machine's compute plus the slowest machine's communication, plus the
// fixed barrier overhead (BSP-style).
func (e *Engine) stepCost(edgeOps, vertexOps, msgs []int64) time.Duration {
	machines := e.cost.Machines
	if machines <= 0 || machines > e.k {
		machines = e.k
	}
	computeBy := make([]int64, machines)
	vertexBy := make([]int64, machines)
	msgsBy := make([]int64, machines)
	for p := 0; p < e.k; p++ {
		m := p % machines
		computeBy[m] += edgeOps[p]
		vertexBy[m] += vertexOps[p]
		msgsBy[m] += msgs[p]
	}
	var maxCompute, maxComm time.Duration
	for m := 0; m < machines; m++ {
		compute := time.Duration(computeBy[m])*e.cost.PerEdge + time.Duration(vertexBy[m])*e.cost.PerVertex
		if compute > maxCompute {
			maxCompute = compute
		}
		comm := time.Duration(msgsBy[m]) * e.cost.PerMessage
		if comm > maxComm {
			maxComm = comm
		}
	}
	return maxCompute + maxComm + e.cost.StepOverhead
}

// addSyncCost accounts the replica synchronisation of vertex v into the
// per-partition message counters: one gather message from every mirror to
// the master and one scatter message back (2·(|Rv|−1) in total), charged
// to the sending partition.
func (e *Engine) addSyncCost(v graph.VertexID, msgs []int64) int64 {
	reps := e.replicas[v]
	if len(reps) <= 1 {
		return 0
	}
	m := e.master[v]
	var total int64
	for _, p := range reps {
		if p == m {
			continue
		}
		msgs[p]++ // mirror → master (gather)
		msgs[m]++ // master → mirror (scatter)
		total += 2
	}
	return total
}

// fullSyncCost accounts one full replica synchronisation (every replicated
// vertex) and returns the message total.
func (e *Engine) fullSyncCost(msgs []int64) int64 {
	var total int64
	for v := range e.replicas {
		total += e.addSyncCost(graph.VertexID(v), msgs)
	}
	return total
}
