package engine

import (
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
)

func allVertices(n int) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(i)
	}
	return out
}

func TestCycleSearchFindsTheCycle(t *testing.T) {
	// On C_n with all seeds, every vertex starts a walker in both
	// directions: 2n closed simple paths of length n.
	const n = 8
	g, err := gen.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, rep, err := e.CycleSearch(CycleSearchConfig{Length: n, Seeds: allVertices(n)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 2*n {
		t.Errorf("Found = %d, want %d (2 directions × %d seeds)", res.Found, 2*n, n)
	}
	if res.Dropped != 0 {
		t.Errorf("Dropped = %d on uncapped search", res.Dropped)
	}
	if rep.Supersteps != n {
		t.Errorf("Supersteps = %d, want %d", rep.Supersteps, n)
	}
}

func TestCycleSearchWrongLengthFindsNothing(t *testing.T) {
	g, err := gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, _, err := e.CycleSearch(CycleSearchConfig{Length: 5, Seeds: allVertices(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 0 {
		t.Errorf("Found = %d cycles of length 5 in C8, want 0", res.Found)
	}
}

func TestCycleSearchTriangles(t *testing.T) {
	// K4 contains 4 triangles; each triangle is found once per seed on it
	// and per direction: 4 triangles × 3 seeds × 2 directions = 24.
	g, err := gen.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 2)
	res, _, err := e.CycleSearch(CycleSearchConfig{Length: 3, Seeds: allVertices(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 24 {
		t.Errorf("Found = %d, want 24", res.Found)
	}
}

func TestCycleSearchSingleSeed(t *testing.T) {
	g, err := gen.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 3)
	res, _, err := e.CycleSearch(CycleSearchConfig{Length: 6, Seeds: []graph.VertexID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 2 { // both directions
		t.Errorf("Found = %d, want 2", res.Found)
	}
}

func TestCycleSearchNoCycleOnPath(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 2)
	res, _, err := e.CycleSearch(CycleSearchConfig{Length: 4, Seeds: allVertices(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 0 {
		t.Errorf("Found = %d cycles on a path", res.Found)
	}
}

func TestCycleSearchCapDropsMessages(t *testing.T) {
	g, err := gen.Clique(10)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 2)
	res, _, err := e.CycleSearch(CycleSearchConfig{
		Length:                  6,
		Seeds:                   allVertices(10),
		MaxMessagesPerPartition: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("no drops despite tiny cap on K10 length-6 search")
	}
}

func TestCycleSearchErrors(t *testing.T) {
	g, _ := gen.Cycle(6)
	e := newEngine(t, g, 2)
	if _, _, err := e.CycleSearch(CycleSearchConfig{Length: 2, Seeds: allVertices(6)}); err == nil {
		t.Error("length 2 accepted")
	}
	if _, _, err := e.CycleSearch(CycleSearchConfig{Length: 4}); err == nil {
		t.Error("no seeds accepted")
	}
	if _, _, err := e.CycleSearch(CycleSearchConfig{Length: 4, Seeds: []graph.VertexID{99}}); err == nil {
		t.Error("out-of-universe seed accepted")
	}
}

func TestCliqueSearchFindsPlantedClique(t *testing.T) {
	// K5 with deterministic forwarding: walkers from every vertex must
	// assemble 5-cliques.
	g, err := gen.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 2)
	res, rep, err := e.CliqueSearch(CliqueSearchConfig{
		Size:               5,
		Seeds:              allVertices(5),
		ForwardProbability: 1.0,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found == 0 {
		t.Error("no 5-cliques found in K5 with P=1")
	}
	if rep.Supersteps != 4 {
		t.Errorf("Supersteps = %d, want 4", rep.Supersteps)
	}
}

func TestCliqueSearchNoCliqueOnCycle(t *testing.T) {
	// C8 is triangle-free.
	g, err := gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	res, _, err := e.CliqueSearch(CliqueSearchConfig{
		Size:               3,
		Seeds:              allVertices(8),
		ForwardProbability: 1.0,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 0 {
		t.Errorf("Found = %d triangles in C8", res.Found)
	}
}

func TestCliqueSearchTriangleCount(t *testing.T) {
	// A single triangle with P=1 and all seeds: each seed's walker reaches
	// size 3 along 2 orders through each neighbour pair. Expect a positive
	// deterministic count, identical across runs.
	g, err := gen.Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 2)
	run := func() int64 {
		res, _, err := e.CliqueSearch(CliqueSearchConfig{
			Size:               3,
			Seeds:              allVertices(3),
			ForwardProbability: 1.0,
			Seed:               42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Found
	}
	a, b := run(), run()
	if a == 0 {
		t.Error("triangle not found")
	}
	if a != b {
		t.Errorf("clique search not deterministic: %d vs %d", a, b)
	}
}

func TestCliqueSearchProbabilisticForwardingPrunes(t *testing.T) {
	g, err := gen.Clique(12)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	run := func(p float64) int64 {
		res, _, err := e.CliqueSearch(CliqueSearchConfig{
			Size:               4,
			Seeds:              allVertices(12),
			ForwardProbability: p,
			Seed:               7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Found
	}
	full, half := run(1.0), run(0.5)
	if half >= full {
		t.Errorf("P=0.5 found %d >= P=1.0 found %d — flooding not pruned", half, full)
	}
	if half == 0 {
		t.Error("P=0.5 found nothing in K12 — pruning too aggressive")
	}
}

func TestCliqueSearchErrors(t *testing.T) {
	g, _ := gen.Cycle(6)
	e := newEngine(t, g, 2)
	if _, _, err := e.CliqueSearch(CliqueSearchConfig{Size: 1, Seeds: allVertices(6), ForwardProbability: 0.5}); err == nil {
		t.Error("size 1 accepted")
	}
	if _, _, err := e.CliqueSearch(CliqueSearchConfig{Size: 3, ForwardProbability: 0.5}); err == nil {
		t.Error("no seeds accepted")
	}
	if _, _, err := e.CliqueSearch(CliqueSearchConfig{Size: 3, Seeds: allVertices(6), ForwardProbability: 1.5}); err == nil {
		t.Error("P > 1 accepted")
	}
	if _, _, err := e.CliqueSearch(CliqueSearchConfig{Size: 3, Seeds: []graph.VertexID{99}, ForwardProbability: 0.5}); err == nil {
		t.Error("out-of-universe seed accepted")
	}
}
