package engine

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
)

// Coloring executes the iterative greedy graph-coloring algorithm of the
// PowerGraph evaluation (the paper's Figure 7e workload): in every
// superstep each vertex inspects its neighbours' current colors and moves
// to the smallest color not taken by a higher-priority neighbour
// (priority: higher degree first, then lower id — a deterministic
// Jones–Plassmann-style order that guarantees convergence).
//
// Gather cost is charged per local edge on every partition, as in a
// distributed GAS engine where partitions build partial forbidden-color
// sets; the master's decision itself is evaluated against the full
// neighbourhood. Only vertices that changed color are synchronised, so
// message traffic — and with it simulated latency — shrinks as the
// coloring converges. The run stops early once a superstep changes
// nothing.
//
// Returns the final colors (a proper coloring once converged; tests verify
// this) and the execution report.
func (e *Engine) Coloring(maxIterations int) ([]int32, Report, error) {
	if maxIterations < 1 {
		return nil, Report{}, fmt.Errorf("engine: Coloring needs >= 1 iterations, got %d", maxIterations)
	}
	start := e.clk.Now()

	colors := make([]int32, e.numV)
	next := make([]int32, e.numV)

	rep := Report{}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)
	changedPer := make([][]graph.VertexID, e.k)

	for it := 0; it < maxIterations; it++ {
		for p := range msgs {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
			changedPer[p] = changedPer[p][:0]
		}

		e.parallel(func(p int) {
			lp := &e.parts[p]
			// Distributed gather cost: every partition scans its local
			// edges to contribute partial forbidden sets.
			edgeOps[p] = int64(len(lp.edges))

			// Apply at masters: smallest color not used by any
			// higher-priority neighbour. colors is read-only during this
			// phase; changes are staged in next.
			var ops int64
			var forbidden []bool
			for _, v := range lp.vertices {
				if e.master[v] != int32(p) {
					continue
				}
				ops++
				nbs := e.csr.Neighbors(v)
				if cap(forbidden) < len(nbs)+1 {
					forbidden = make([]bool, len(nbs)+1)
				}
				forbidden = forbidden[:len(nbs)+1]
				for i := range forbidden {
					forbidden[i] = false
				}
				for _, nb := range nbs {
					if nb == v || !e.higherPriority(nb, v) {
						continue
					}
					// At most deg(v) neighbours: any color >= deg(v)+1 is
					// always free, so clamping keeps the mask small.
					if c := colors[nb]; int(c) < len(forbidden) {
						forbidden[c] = true
					}
				}
				c := int32(0)
				for int(c) < len(forbidden) && forbidden[c] {
					c++
				}
				if c != colors[v] {
					next[v] = c
					changedPer[p] = append(changedPer[p], v)
				}
			}
			vertexOps[p] = ops
		})

		// The gather phase costs one full replica sync (mirrors push their
		// partial neighbour-color sets to masters); the scatter phase
		// syncs only the vertices that actually changed.
		rep.Messages += e.fullSyncCost(msgs)
		changed := 0
		for p := 0; p < e.k; p++ {
			for _, v := range changedPer[p] {
				colors[v] = next[v]
				changed++
				rep.Messages += e.addSyncCost(v, msgs)
			}
		}
		for p := range edgeOps {
			rep.EdgeOps += edgeOps[p]
		}
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
		if changed == 0 {
			break
		}
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return colors, rep, nil
}

// higherPriority reports whether u outranks v in the coloring order.
func (e *Engine) higherPriority(u, v graph.VertexID) bool {
	du, dv := e.deg[u], e.deg[v]
	if du != dv {
		return du > dv
	}
	return u < v
}

// ValidColoring reports whether colors is a proper coloring of g (no edge
// with equal endpoint colors, self-loops ignored).
func ValidColoring(g *graph.Graph, colors []int32) bool {
	for _, ed := range g.Edges {
		if ed.Src != ed.Dst && colors[ed.Src] == colors[ed.Dst] {
			return false
		}
	}
	return true
}
