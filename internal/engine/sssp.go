package engine

import (
	"fmt"
	"math"

	"github.com/adwise-go/adwise/internal/graph"
)

// SSSP runs single-source shortest paths (unit edge weights, undirected
// view) by parallel Bellman–Ford relaxation over the partitioned graph:
// each superstep relaxes every local edge and masters adopt the minimum
// proposed distance. Converges in at most diameter supersteps; only
// improved vertices are synchronised, so the traffic profile is
// frontier-shaped (small, grows, shrinks) — a third communication pattern
// alongside PageRank's constant sync and coloring's decaying sync.
func (e *Engine) SSSP(source graph.VertexID, maxIterations int) ([]float64, Report, error) {
	if int(source) >= e.numV {
		return nil, Report{}, fmt.Errorf("engine: SSSP source %d outside vertex universe of %d", source, e.numV)
	}
	if maxIterations < 1 {
		return nil, Report{}, fmt.Errorf("engine: SSSP needs >= 1 iterations, got %d", maxIterations)
	}
	start := e.clk.Now()

	dist := make([]float64, e.numV)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0

	proposals := make([][]float64, e.k)
	for p := range proposals {
		proposals[p] = make([]float64, len(e.parts[p].vertices))
	}

	rep := Report{}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)

	for it := 0; it < maxIterations; it++ {
		for p := 0; p < e.k; p++ {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
		}

		e.parallel(func(p int) {
			lp := &e.parts[p]
			prop := proposals[p]
			for i, v := range lp.vertices {
				prop[i] = dist[v]
			}
			for _, ed := range lp.edges {
				si, di := lp.localIdx[ed.Src], lp.localIdx[ed.Dst]
				if d := dist[ed.Src] + 1; d < prop[di] {
					prop[di] = d
				}
				if d := dist[ed.Dst] + 1; d < prop[si] {
					prop[si] = d
				}
			}
			edgeOps[p] = int64(len(lp.edges))
			vertexOps[p] = int64(len(lp.vertices))
		})

		// Combine proposals at masters; only improvements sync.
		improved := 0
		best := make(map[graph.VertexID]float64, 256)
		for p := 0; p < e.k; p++ {
			lp := &e.parts[p]
			for i, v := range lp.vertices {
				if d := proposals[p][i]; d < dist[v] {
					if cur, ok := best[v]; !ok || d < cur {
						best[v] = d
					}
				}
			}
		}
		rep.Messages += e.fullSyncCost(msgs)
		for v, d := range best {
			dist[v] = d
			improved++
			rep.Messages += e.addSyncCost(v, msgs)
		}
		for p := range edgeOps {
			rep.EdgeOps += edgeOps[p]
		}
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
		if improved == 0 {
			break
		}
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return dist, rep, nil
}

// SSSPReference computes unit-weight shortest paths sequentially (BFS) —
// the validation oracle for the engine's Bellman–Ford execution.
func SSSPReference(g *graph.Graph, source graph.VertexID) []float64 {
	dist := make([]float64, g.NumV)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(source) >= g.NumV {
		return dist
	}
	csr := BuildUndirected(g)
	dist[source] = 0
	queue := []graph.VertexID{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range csr.Neighbors(v) {
			if math.IsInf(dist[nb], 1) {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// BuildUndirected exposes the graph package's CSR builder under a
// workload-friendly name.
func BuildUndirected(g *graph.Graph) *graph.CSR { return graph.BuildCSR(g) }
