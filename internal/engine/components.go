package engine

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
)

// ConnectedComponents runs label propagation over the undirected view of
// the partitioned graph: every vertex starts with its own id as label and
// repeatedly adopts the minimum label among itself and its neighbours,
// converging to one label per connected component.
//
// Like coloring, only vertices whose label changed are synchronised, so
// traffic decays as components stabilise — a workload whose communication
// profile differs from PageRank's constant full-sync, broadening the
// engine's coverage of the paper's "standard graph processing algorithms".
func (e *Engine) ConnectedComponents(maxIterations int) ([]graph.VertexID, Report, error) {
	if maxIterations < 1 {
		return nil, Report{}, fmt.Errorf("engine: ConnectedComponents needs >= 1 iterations, got %d", maxIterations)
	}
	start := e.clk.Now()

	labels := make([]graph.VertexID, e.numV)
	for v := range labels {
		labels[v] = graph.VertexID(v)
	}
	// Per-partition minimum proposals, indexed by local vertex index.
	proposals := make([][]graph.VertexID, e.k)
	for p := range proposals {
		proposals[p] = make([]graph.VertexID, len(e.parts[p].vertices))
	}

	rep := Report{}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)
	changedPer := make([][]graph.VertexID, e.k)

	for it := 0; it < maxIterations; it++ {
		for p := 0; p < e.k; p++ {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
			changedPer[p] = changedPer[p][:0]
		}

		// Gather: per-partition minimum over local edges.
		e.parallel(func(p int) {
			lp := &e.parts[p]
			prop := proposals[p]
			for i, v := range lp.vertices {
				prop[i] = labels[v]
			}
			for _, ed := range lp.edges {
				si, di := lp.localIdx[ed.Src], lp.localIdx[ed.Dst]
				if l := labels[ed.Dst]; l < prop[si] {
					prop[si] = l
				}
				if l := labels[ed.Src]; l < prop[di] {
					prop[di] = l
				}
			}
			edgeOps[p] = int64(len(lp.edges))
			vertexOps[p] = int64(len(lp.vertices))
		})

		// Combine at masters (sequential, deterministic) and detect
		// changes.
		newLabel := make(map[graph.VertexID]graph.VertexID, 256)
		for p := 0; p < e.k; p++ {
			lp := &e.parts[p]
			for i, v := range lp.vertices {
				if prop := proposals[p][i]; prop < labels[v] {
					if cur, ok := newLabel[v]; !ok || prop < cur {
						newLabel[v] = prop
					}
				}
			}
		}
		// Gather sync: every replicated vertex ships its partial minimum.
		rep.Messages += e.fullSyncCost(msgs)
		changed := 0
		for p := 0; p < e.k; p++ {
			for _, v := range e.parts[p].vertices {
				if e.master[v] != int32(p) {
					continue
				}
				if l, ok := newLabel[v]; ok && l < labels[v] {
					labels[v] = l
					changed++
					rep.Messages += e.addSyncCost(v, msgs)
				}
			}
		}
		for p := range edgeOps {
			rep.EdgeOps += edgeOps[p]
		}
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
		if changed == 0 {
			break
		}
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return labels, rep, nil
}

// ComponentsReference computes connected-component labels sequentially
// with a union-find — the validation oracle for the engine's label
// propagation. Labels are the minimum vertex id of each component.
func ComponentsReference(g *graph.Graph) []graph.VertexID {
	parent := make([]int32, g.NumV)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(int32(e.Src)), find(int32(e.Dst))
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	labels := make([]graph.VertexID, g.NumV)
	// Path-compress to the minimum root: union by min above keeps the
	// minimum id as root.
	for v := range labels {
		labels[v] = graph.VertexID(find(int32(v)))
	}
	return labels
}
