package engine

import (
	"fmt"
	"time"

	"github.com/adwise-go/adwise/internal/graph"
)

// PageRank executes the canonical damped PageRank over the directed edges
// of the partitioned graph:
//
//	rank[v] = (1−d)/N + d · Σ_{(u→v)∈E} rank[u]/outdeg[u]
//
// Each iteration is one gather-apply-scatter superstep: partitions
// accumulate partial rank mass along their local edges (gather), partials
// are combined at each vertex's master (the mirror→master sync), masters
// apply the update, and the new ranks flow back to the mirrors
// (master→mirror sync). Every vertex changes every iteration, so the sync
// traffic per superstep is exactly 2·Σ_v(|Rv|−1) messages.
//
// The returned ranks are the real computed values — tests compare them to
// a sequential reference.
func (e *Engine) PageRank(iterations int, damping float64) ([]float64, Report, error) {
	if iterations < 1 {
		return nil, Report{}, fmt.Errorf("engine: PageRank needs >= 1 iterations, got %d", iterations)
	}
	if damping < 0 || damping >= 1 {
		return nil, Report{}, fmt.Errorf("engine: PageRank damping %v outside [0,1)", damping)
	}
	start := e.clk.Now()

	n := float64(e.numV)
	rank := make([]float64, e.numV)
	for i := range rank {
		rank[i] = 1 / n
	}
	// Per-partition partial accumulators, indexed by local vertex index.
	partials := make([][]float64, e.k)
	for p := range partials {
		partials[p] = make([]float64, len(e.parts[p].vertices))
	}
	acc := make([]float64, e.numV)

	rep := Report{PerStep: make([]time.Duration, 0, iterations)}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)

	for it := 0; it < iterations; it++ {
		for p := range msgs {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
		}

		// Gather: stream local edges, accumulating rank mass into the
		// partition-local partials (real parallel work).
		e.parallel(func(p int) {
			lp := &e.parts[p]
			part := partials[p]
			for i := range part {
				part[i] = 0
			}
			for _, ed := range lp.edges {
				part[lp.localIdx[ed.Dst]] += rank[ed.Src] / float64(e.outDeg[ed.Src])
			}
			edgeOps[p] = int64(len(lp.edges))
		})

		// Mirror→master combine. Sequential over partitions: the real work
		// is O(Σ replicas), negligible next to the gather phase, and a
		// deterministic merge order keeps runs reproducible.
		for v := range acc {
			acc[v] = 0
		}
		for p := 0; p < e.k; p++ {
			lp := &e.parts[p]
			for i, v := range lp.vertices {
				acc[v] += partials[p][i]
			}
		}

		// Apply at masters + scatter back to mirrors (values live in the
		// shared rank array; the cost model charges the messages).
		e.parallel(func(p int) {
			lp := &e.parts[p]
			var ops int64
			for _, v := range lp.vertices {
				if e.master[v] != int32(p) {
					continue
				}
				rank[v] = (1-damping)/n + damping*acc[v]
				ops++
			}
			vertexOps[p] = ops
		})

		// Isolated vertices (no edges) still hold the teleport mass.
		for v := 0; v < e.numV; v++ {
			if e.master[v] < 0 {
				rank[v] = (1 - damping) / n
			}
		}

		rep.Messages += e.fullSyncCost(msgs)
		for p := range edgeOps {
			rep.EdgeOps += edgeOps[p]
		}
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return rank, rep, nil
}

// PageRankReference computes the same PageRank sequentially; tests use it
// to validate the engine's distributed execution.
func PageRankReference(g *graph.Graph, iterations int, damping float64) []float64 {
	n := float64(g.NumV)
	rank := make([]float64, g.NumV)
	for i := range rank {
		rank[i] = 1 / n
	}
	outDeg := g.OutDegrees()
	acc := make([]float64, g.NumV)
	for it := 0; it < iterations; it++ {
		for i := range acc {
			acc[i] = 0
		}
		for _, ed := range g.Edges {
			acc[ed.Dst] += rank[ed.Src] / float64(outDeg[ed.Src])
		}
		for v := range rank {
			rank[v] = (1-damping)/n + damping*acc[v]
		}
	}
	return rank
}
