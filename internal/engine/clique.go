package engine

import (
	"fmt"
	"math/rand/v2"

	"github.com/adwise-go/adwise/internal/graph"
)

// CliqueSearchConfig configures the random-walker clique search of the
// paper's Figure 7f workload: "vertices exchange messages of partially
// found cliques and probabilistically (P = 0.5) forward these messages if
// they are connected to all vertices in the partial clique message
// (probabilistic flooding)".
type CliqueSearchConfig struct {
	// Size is the clique size to search for (paper: 3, 4, 5).
	Size int
	// Seeds are the start vertices (paper: ten random vertices per run).
	Seeds []graph.VertexID
	// ForwardProbability is the flooding probability P (paper: 0.5).
	ForwardProbability float64
	// Seed drives the per-partition forwarding RNGs; fixed seeds make runs
	// reproducible regardless of goroutine scheduling.
	Seed uint64
	// MaxMessagesPerPartition caps per-superstep message production per
	// partition (0 = unlimited).
	MaxMessagesPerPartition int
}

// CliqueSearchResult reports what a clique search found.
type CliqueSearchResult struct {
	// Found counts partial-clique messages that reached the target size.
	// The same clique may be discovered along multiple walker paths; the
	// count is a detection signal, not a distinct-clique census.
	Found int64
	// Dropped counts messages discarded by the per-partition cap.
	Dropped int64
}

type cliqueMsg struct {
	members []graph.VertexID // sorted partial clique
}

// CliqueSearch runs the probabilistic-flooding clique search. Membership
// checks use the engine's global adjacency; a distributed deployment would
// resolve them through the replica layer, whose synchronisation cost is
// what the cost model already charges per message hop.
func (e *Engine) CliqueSearch(cfg CliqueSearchConfig) (CliqueSearchResult, Report, error) {
	if cfg.Size < 2 {
		return CliqueSearchResult{}, Report{}, fmt.Errorf("engine: clique size must be >= 2, got %d", cfg.Size)
	}
	if len(cfg.Seeds) == 0 {
		return CliqueSearchResult{}, Report{}, fmt.Errorf("engine: clique search needs at least one seed")
	}
	if cfg.ForwardProbability < 0 || cfg.ForwardProbability > 1 {
		return CliqueSearchResult{}, Report{}, fmt.Errorf("engine: forward probability %v outside [0,1]", cfg.ForwardProbability)
	}
	start := e.clk.Now()

	inbox := make([][]cliqueMsg, e.numV)
	for _, s := range cfg.Seeds {
		if int(s) >= e.numV {
			return CliqueSearchResult{}, Report{}, fmt.Errorf("engine: seed %d outside vertex universe", s)
		}
		inbox[s] = append(inbox[s], cliqueMsg{members: []graph.VertexID{s}})
	}

	var res CliqueSearchResult
	rep := Report{}
	edgeOps := make([]int64, e.k)
	vertexOps := make([]int64, e.k)
	msgs := make([]int64, e.k)
	outPer := make([]map[graph.VertexID][]cliqueMsg, e.k)
	foundPer := make([]int64, e.k)
	droppedPer := make([]int64, e.k)

	// A clique of Size s is assembled in s-1 extension hops.
	for step := 0; step < cfg.Size-1; step++ {
		for p := 0; p < e.k; p++ {
			edgeOps[p], vertexOps[p], msgs[p] = 0, 0, 0
			outPer[p] = make(map[graph.VertexID][]cliqueMsg)
			foundPer[p], droppedPer[p] = 0, 0
		}

		// Broadcast cost (sequential, race-free): inboxes ship master →
		// mirrors before the parallel phase; the master's partition pays.
		for v := range inbox {
			if len(inbox[v]) == 0 {
				continue
			}
			if reps := e.replicas[v]; len(reps) > 1 {
				msgs[int(e.master[v])] += int64(len(reps) - 1)
			}
		}

		e.parallel(func(p int) {
			lp := &e.parts[p]
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(p)<<16|uint64(step)))
			out := outPer[p]
			var produced int64
			forward := func(from, to graph.VertexID) {
				waiting := inbox[from]
				if len(waiting) == 0 {
					return
				}
				edgeOps[p] += int64(len(waiting))
				for _, m := range waiting {
					if contains(m.members, to) {
						continue
					}
					// The candidate must close a clique with every member.
					ok := true
					for _, mem := range m.members {
						if !e.csr.HasEdge(to, mem) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if len(m.members)+1 == cfg.Size {
						foundPer[p]++
						continue
					}
					if cfg.ForwardProbability < 1 && rng.Float64() >= cfg.ForwardProbability {
						continue
					}
					if cfg.MaxMessagesPerPartition > 0 && produced >= int64(cfg.MaxMessagesPerPartition) {
						droppedPer[p]++
						continue
					}
					nm := make([]graph.VertexID, len(m.members)+1)
					copy(nm, m.members)
					nm[len(m.members)] = to
					out[to] = append(out[to], cliqueMsg{members: nm})
					produced++
				}
			}
			for _, ed := range lp.edges {
				forward(ed.Src, ed.Dst)
				if ed.Dst != ed.Src {
					forward(ed.Dst, ed.Src)
				}
			}
			var vops int64
			for _, v := range lp.vertices {
				if len(inbox[v]) > 0 {
					vops++
				}
			}
			vertexOps[p] = vops
		})

		next := make([][]cliqueMsg, e.numV)
		var delivered int64
		for p := 0; p < e.k; p++ {
			for dst, list := range outPer[p] {
				if e.master[dst] != int32(p) {
					msgs[p] += int64(len(list))
				}
				next[dst] = append(next[dst], list...)
				delivered += int64(len(list))
			}
			res.Found += foundPer[p]
			res.Dropped += droppedPer[p]
		}
		inbox = next

		for p := range msgs {
			rep.EdgeOps += edgeOps[p]
			rep.Messages += msgs[p]
		}
		stepLat := e.stepCost(edgeOps, vertexOps, msgs)
		rep.PerStep = append(rep.PerStep, stepLat)
		rep.SimulatedLatency += stepLat
		rep.Supersteps++
		if delivered == 0 && step < cfg.Size-2 {
			break
		}
	}
	rep.WallTime = e.clk.Now().Sub(start)
	return res, rep, nil
}
