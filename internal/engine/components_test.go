package engine

import (
	"math"
	"testing"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/partition"
	"github.com/adwise-go/adwise/internal/stream"
	"time"
)

func TestConnectedComponentsMatchesReference(t *testing.T) {
	// Three disjoint cliques plus an isolated pair.
	var edges []graph.Edge
	addClique := func(base graph.VertexID, n int) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, graph.Edge{Src: base + graph.VertexID(i), Dst: base + graph.VertexID(j)})
			}
		}
	}
	addClique(0, 5)
	addClique(10, 4)
	addClique(20, 6)
	edges = append(edges, graph.Edge{Src: 30, Dst: 31})
	g := &graph.Graph{NumV: 32, Edges: edges}

	e := newEngine(t, g, 4)
	labels, rep, err := e.ConnectedComponents(100)
	if err != nil {
		t.Fatal(err)
	}
	want := ComponentsReference(g)
	for v := range want {
		// Vertices without edges keep their own label in both.
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, reference %d", v, labels[v], want[v])
		}
	}
	if rep.Supersteps < 2 {
		t.Errorf("converged suspiciously fast: %d supersteps", rep.Supersteps)
	}
}

func TestConnectedComponentsSingleComponent(t *testing.T) {
	g, err := gen.Cycle(40)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	labels, _, err := e.ConnectedComponents(100)
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0 on a cycle", v, l)
		}
	}
}

func TestConnectedComponentsErrors(t *testing.T) {
	g, _ := gen.Cycle(10)
	e := newEngine(t, g, 2)
	if _, _, err := e.ConnectedComponents(0); err == nil {
		t.Error("maxIterations=0 accepted")
	}
}

func TestConnectedComponentsTrafficDecays(t *testing.T) {
	g, err := gen.HolmeKim(400, 3, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 8)
	_, rep, err := e.ConnectedComponents(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerStep) < 2 {
		t.Skip("converged in one step")
	}
	first, last := rep.PerStep[0], rep.PerStep[len(rep.PerStep)-1]
	if last > first {
		t.Errorf("per-step latency grew while converging: %v → %v", first, last)
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g, err := gen.HolmeKim(300, 3, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 8)
	dist, rep, err := e.SSSP(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	want := SSSPReference(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, reference %v", v, dist[v], want[v])
		}
	}
	if rep.Supersteps < 2 {
		t.Errorf("converged suspiciously fast: %d supersteps", rep.Supersteps)
	}
}

func TestSSSPPathDistances(t *testing.T) {
	g, err := gen.Path(20)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, g, 4)
	dist, _, err := e.SSSP(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if dist[v] != float64(v) {
			t.Fatalf("dist[%d] = %v, want %d on a path", v, dist[v], v)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	// Two components: distances in the far component stay infinite.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	g := &graph.Graph{NumV: 4, Edges: edges}
	e := newEngine(t, g, 2)
	dist, _, err := e.SSSP(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Errorf("unreachable distances = %v, want +Inf", dist[2:4])
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %v, want 1", dist[1])
	}
}

func TestSSSPErrors(t *testing.T) {
	g, _ := gen.Cycle(10)
	e := newEngine(t, g, 2)
	if _, _, err := e.SSSP(99, 10); err == nil {
		t.Error("out-of-universe source accepted")
	}
	if _, _, err := e.SSSP(0, 0); err == nil {
		t.Error("maxIterations=0 accepted")
	}
}

func TestStepCostMachineAggregation(t *testing.T) {
	// 4 partitions on 2 machines: machine 0 hosts partitions {0,2},
	// machine 1 hosts {1,3}. Work: edges [100,0,100,0] → machine 0 does
	// 200 edge ops, machine 1 zero. msgs [0,50,0,50] → machine 1 sends
	// 100 messages.
	g, _ := gen.Cycle(16)
	h, err := partition.NewHash(partition.Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.Run(stream.FromGraph(g), h)
	if err != nil {
		t.Fatal(err)
	}
	cost := CostModel{
		PerEdge:      time.Microsecond,
		PerVertex:    0,
		PerMessage:   time.Millisecond,
		StepOverhead: time.Second,
		Machines:     2,
	}
	e, err := New(a, g.NumV, cost, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := e.stepCost([]int64{100, 0, 100, 0}, []int64{0, 0, 0, 0}, []int64{0, 50, 0, 50})
	want := 200*time.Microsecond + 100*time.Millisecond + time.Second
	if got != want {
		t.Errorf("stepCost = %v, want %v", got, want)
	}

	// Machines = 0 falls back to one machine per partition.
	cost.Machines = 0
	e2, err := New(a, g.NumV, cost, 0)
	if err != nil {
		t.Fatal(err)
	}
	got = e2.stepCost([]int64{100, 0, 100, 0}, []int64{0, 0, 0, 0}, []int64{0, 50, 0, 50})
	want = 100*time.Microsecond + 50*time.Millisecond + time.Second
	if got != want {
		t.Errorf("stepCost (per-partition machines) = %v, want %v", got, want)
	}
}

func TestMasterPlacementSpread(t *testing.T) {
	// With hashed master placement, masters of replicated vertices must
	// not all land on the same partition (the min-id pathology).
	g, err := gen.Community(20, 10, 0.9, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.NewHash(partition.Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.Run(stream.FromGraph(g), h)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(a, g.NumV, DefaultCostModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	replicated := 0
	for v := 0; v < g.NumV; v++ {
		if len(e.replicas[v]) > 1 {
			counts[e.master[v]]++
			replicated++
		}
	}
	if replicated == 0 {
		t.Skip("no replicated vertices")
	}
	for p, c := range counts {
		if c > replicated/2 {
			t.Errorf("partition %d hosts %d of %d masters — placement concentrated", p, c, replicated)
		}
	}
	// Summary must agree with metrics on replica counts regardless of
	// master choice.
	s := metrics.Summarize(a)
	var engineReplicas int64
	for v := 0; v < g.NumV; v++ {
		engineReplicas += int64(len(e.replicas[v]))
	}
	if engineReplicas != s.Replicas {
		t.Errorf("engine counts %d replicas, metrics %d", engineReplicas, s.Replicas)
	}
}
