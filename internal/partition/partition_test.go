package partition

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
)

// allPartitioners builds one instance of every streaming strategy for k
// partitions; used by the shared-invariant tests.
func allPartitioners(t *testing.T, cfg Config) []Partitioner {
	t.Helper()
	hash, err := NewHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneD, err := NewOneDim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twoD, err := NewTwoDim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dbh, err := NewDBH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := NewGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdrf, err := NewHDRF(cfg, HDRFDefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []Partitioner{hash, oneD, twoD, dbh, greedy, hdrf, grid}
}

// mustRun drains s through p, failing the test on a stream error.
func mustRun(t *testing.T, s stream.Stream, p Partitioner) *metrics.Assignment {
	t.Helper()
	a, err := Run(s, p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return a
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.HolmeKim(400, 4, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewHash(Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewHDRF(Config{K: 4, Allowed: []int{4}}, 1.1); err == nil {
		t.Error("allowed partition out of range accepted")
	}
	if _, err := NewHDRF(Config{K: 4}, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestEveryStrategyAssignsEveryEdgeInRange(t *testing.T) {
	g := testGraph(t)
	for _, p := range allPartitioners(t, Config{K: 8, Seed: 3}) {
		a := mustRun(t, stream.FromGraph(g), p)
		if a.Len() != g.E() {
			t.Errorf("%s: assigned %d of %d edges", p.Name(), a.Len(), g.E())
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		if got := p.Cache().Assigned(); got != int64(g.E()) {
			t.Errorf("%s: cache counted %d assignments", p.Name(), got)
		}
	}
}

func TestCacheMatchesAssignment(t *testing.T) {
	// The partitioner's incremental vertex cache must agree with a from-
	// scratch recomputation of replica sets — the replica-consistency
	// invariant of the streaming model.
	g := testGraph(t)
	for _, p := range allPartitioners(t, Config{K: 8, Seed: 3}) {
		a := mustRun(t, stream.FromGraph(g), p)
		s := metrics.Summarize(a)
		if got := p.Cache().ReplicationDegree(); !closeTo(got, s.ReplicationDegree, 1e-9) {
			t.Errorf("%s: cache RF %v != recomputed RF %v", p.Name(), got, s.ReplicationDegree)
		}
		for part := 0; part < 8; part++ {
			if p.Cache().Size(part) != s.Sizes[part] {
				t.Errorf("%s: cache size[%d]=%d, recomputed %d", p.Name(), part, p.Cache().Size(part), s.Sizes[part])
			}
		}
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func TestAllowedPartitionsRespected(t *testing.T) {
	g := testGraph(t)
	allowed := []int{2, 5, 7}
	allowedSet := map[int32]bool{2: true, 5: true, 7: true}
	for _, p := range allPartitioners(t, Config{K: 8, Allowed: allowed, Seed: 1}) {
		a := mustRun(t, stream.FromGraph(g), p)
		for i, part := range a.Parts {
			if !allowedSet[part] {
				t.Errorf("%s: edge %d assigned to %d outside spread %v", p.Name(), i, part, allowed)
				break
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t)
	for i := 0; i < 2; i++ {
		first := allPartitioners(t, Config{K: 8, Seed: 42})
		second := allPartitioners(t, Config{K: 8, Seed: 42})
		for j := range first {
			a := mustRun(t, stream.FromGraph(g), first[j])
			b := mustRun(t, stream.FromGraph(g), second[j])
			for idx := range a.Parts {
				if a.Parts[idx] != b.Parts[idx] {
					t.Errorf("%s: run not deterministic at edge %d", first[j].Name(), idx)
					break
				}
			}
		}
	}
}

func TestHashSeedChangesAssignment(t *testing.T) {
	g := testGraph(t)
	h1, _ := NewHash(Config{K: 8, Seed: 1})
	h2, _ := NewHash(Config{K: 8, Seed: 2})
	a := mustRun(t, stream.FromGraph(g), h1)
	b := mustRun(t, stream.FromGraph(g), h2)
	same := true
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical hash partitionings")
	}
}

func TestOneDimKeepsSourcesTogether(t *testing.T) {
	g := testGraph(t)
	o, _ := NewOneDim(Config{K: 8})
	a := mustRun(t, stream.FromGraph(g), o)
	bySrc := make(map[graph.VertexID]int32)
	for i, e := range a.Edges {
		if prev, ok := bySrc[e.Src]; ok && prev != a.Parts[i] {
			t.Fatalf("source %d split across partitions %d and %d", e.Src, prev, a.Parts[i])
		}
		bySrc[e.Src] = a.Parts[i]
	}
}

func TestTwoDimBoundsReplicas(t *testing.T) {
	g := testGraph(t)
	td, _ := NewTwoDim(Config{K: 16})
	a := mustRun(t, stream.FromGraph(g), td)
	r, c := gridShape(16)
	bound := r + c // a vertex appears in one row (c cells) or one column (r cells) at most... row+col is a safe bound
	for v, set := range a.ReplicaSets() {
		if set.Count() > bound {
			t.Errorf("vertex %d has %d replicas, 2D bound is %d", v, set.Count(), bound)
		}
	}
}

func TestGridShape(t *testing.T) {
	tests := []struct{ n, r, c int }{
		{16, 4, 4}, {32, 4, 8}, {12, 3, 4}, {7, 1, 7}, {1, 1, 1},
	}
	for _, tc := range tests {
		r, c := gridShape(tc.n)
		if r != tc.r || c != tc.c {
			t.Errorf("gridShape(%d) = %d,%d want %d,%d", tc.n, r, c, tc.r, tc.c)
		}
		if r*c != tc.n {
			t.Errorf("gridShape(%d) does not cover n", tc.n)
		}
	}
}

func TestGridConstraintBound(t *testing.T) {
	// Grid bounds replicas by row+col-1 cells.
	g := testGraph(t)
	gr, _ := NewGrid(Config{K: 16})
	a := mustRun(t, stream.FromGraph(g), gr)
	for v, set := range a.ReplicaSets() {
		if set.Count() > 7 { // 4+4-1
			t.Errorf("vertex %d has %d replicas, grid bound is 7", v, set.Count())
		}
	}
}

func TestDBHCutsHighDegreeVertex(t *testing.T) {
	// On a star, DBH hashes the spoke endpoint (degree 1 when first seen
	// vs the ever-growing hub), spreading the hub across partitions while
	// each spoke stays on a single partition.
	star, err := gen.Star(1000)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDBH(Config{K: 8, Seed: 5})
	a := mustRun(t, stream.FromGraph(star), d)
	sets := a.ReplicaSets()
	if hub := sets[0].Count(); hub != 8 {
		t.Errorf("hub replicas = %d, want 8 (replicated everywhere)", hub)
	}
	for v := graph.VertexID(1); v < 1000; v++ {
		if sets[v].Count() != 1 {
			t.Errorf("spoke %d has %d replicas, want 1", v, sets[v].Count())
			break
		}
	}
	// Spokes must be spread: no partition may hold everything.
	s := metrics.Summarize(a)
	if s.MaxSize == int64(star.E()) {
		t.Error("DBH put the whole star on one partition")
	}
}

func TestGreedyKeepsPathLocal(t *testing.T) {
	// Streaming a path, Greedy keeps consecutive edges on one partition
	// until balance pushes it away: replication stays near 1.
	path, err := gen.Path(2000)
	if err != nil {
		t.Fatal(err)
	}
	gr, _ := NewGreedy(Config{K: 4})
	a := mustRun(t, stream.FromGraph(path), gr)
	s := metrics.Summarize(a)
	if s.ReplicationDegree > 1.01 {
		t.Errorf("greedy RF on path = %v, want <= 1.01", s.ReplicationDegree)
	}
}

func TestGreedyBeatsHashOnClusteredGraph(t *testing.T) {
	g, err := gen.Community(40, 10, 0.9, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	edges := stream.Shuffled(g.Edges, 1)
	h, _ := NewHash(Config{K: 8})
	gr, _ := NewGreedy(Config{K: 8})
	rfHash := metrics.Summarize(mustRun(t, stream.FromEdges(edges), h)).ReplicationDegree
	rfGreedy := metrics.Summarize(mustRun(t, stream.FromEdges(edges), gr)).ReplicationDegree
	if rfGreedy >= rfHash {
		t.Errorf("greedy RF %v not better than hash RF %v", rfGreedy, rfHash)
	}
}

func TestHDRFBalanceAndQuality(t *testing.T) {
	g := testGraph(t)
	edges := stream.Shuffled(g.Edges, 2)
	h, _ := NewHDRF(Config{K: 8}, HDRFDefaultLambda)
	a := mustRun(t, stream.FromEdges(edges), h)
	s := metrics.Summarize(a)
	if !s.BalanceOK(0.5) {
		t.Errorf("HDRF imbalance too high: %+v", s)
	}
	hash, _ := NewHash(Config{K: 8})
	rfHash := metrics.Summarize(mustRun(t, stream.FromEdges(edges), hash)).ReplicationDegree
	if s.ReplicationDegree >= rfHash {
		t.Errorf("HDRF RF %v not better than hash RF %v", s.ReplicationDegree, rfHash)
	}
	if h.Lambda() != HDRFDefaultLambda {
		t.Errorf("Lambda() = %v", h.Lambda())
	}
}

func TestHDRFHighLambdaBalancesHarder(t *testing.T) {
	g := testGraph(t)
	loose, _ := NewHDRF(Config{K: 8}, 0.01)
	tight, _ := NewHDRF(Config{K: 8}, 50)
	sLoose := metrics.Summarize(mustRun(t, stream.FromGraph(g), loose))
	sTight := metrics.Summarize(mustRun(t, stream.FromGraph(g), tight))
	if sTight.Imbalance > sLoose.Imbalance+1e-9 {
		t.Errorf("λ=50 imbalance %v worse than λ=0.01 imbalance %v", sTight.Imbalance, sLoose.Imbalance)
	}
}

func TestNEPartition(t *testing.T) {
	g := testGraph(t)
	a, err := NE{}.Partition(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Fatalf("NE assigned %d of %d edges", a.Len(), g.E())
	}
	s := metrics.Summarize(a)
	// NE is the high-quality reference: it must beat hashing comfortably.
	h, _ := NewHash(Config{K: 8})
	rfHash := metrics.Summarize(mustRun(t, stream.FromGraph(g), h)).ReplicationDegree
	if s.ReplicationDegree >= rfHash {
		t.Errorf("NE RF %v not better than hash RF %v", s.ReplicationDegree, rfHash)
	}
}

func TestNEErrors(t *testing.T) {
	if _, err := (NE{}).Partition(nil, 4, 1); err == nil {
		t.Error("nil graph accepted")
	}
	g := testGraph(t)
	if _, err := (NE{}).Partition(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

// badFileStream opens a file stream whose third line is malformed, wrapped
// the way production callers wrap it (buffered).
func badFileStream(t *testing.T) stream.Stream {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\nbroken\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := stream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return stream.NewBuffered(fs, 4)
}

func TestRunReturnsStreamError(t *testing.T) {
	// A stream failing mid-pass must fail Run — a silently-short
	// assignment reported as success is the bug this guards against.
	h, err := NewHDRF(Config{K: 4}, HDRFDefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := Run(badFileStream(t), h); err == nil {
		t.Fatalf("Run on failing stream returned %d edges and no error", a.Len())
	}
}

// Property: for any stream prefix and any strategy, partition sizes sum to
// the number of assigned edges.
func TestQuickSizesSumToAssigned(t *testing.T) {
	g := testGraph(t)
	f := func(n uint16, seed uint64) bool {
		limit := int(n)%g.E() + 1
		cfg := Config{K: 5, Seed: seed}
		h, err := NewHDRF(cfg, HDRFDefaultLambda)
		if err != nil {
			return false
		}
		s := &stream.Limit{Inner: stream.FromGraph(g), Max: int64(limit)}
		a, err := Run(s, h)
		if err != nil || a.Len() != limit {
			return false
		}
		var total int64
		for p := 0; p < 5; p++ {
			total += h.Cache().Size(p)
		}
		return total == int64(limit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
