package partition

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/metrics"
)

// NE is a neighbourhood-expansion edge partitioner in the spirit of Zhang
// et al. (KDD 2017): an *all-edge* algorithm that grows the k partitions
// one after another from seed vertices, repeatedly moving the boundary
// vertex with the fewest unallocated edges into the core and allocating
// its edges into the grown region.
//
// The paper places NE in the Figure 1 landscape as the high-quality /
// super-linear-latency corner; it is implemented here as that reference
// point. The boundary is kept in a lazy min-heap keyed by unallocated
// degree: entries go stale as edges are allocated and are re-keyed on pop.
type NE struct{}

// boundaryHeap is a lazy min-heap of (vertex, key) pairs ordered by key =
// unallocated degree at push time. Stale entries (key no longer matching)
// are re-pushed with their current key on pop.
type boundaryHeap struct {
	vertices []graph.VertexID
	keys     []int32
}

func (h *boundaryHeap) Len() int           { return len(h.vertices) }
func (h *boundaryHeap) Less(i, j int) bool { return h.keys[i] < h.keys[j] }
func (h *boundaryHeap) Swap(i, j int) {
	h.vertices[i], h.vertices[j] = h.vertices[j], h.vertices[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}
func (h *boundaryHeap) Push(x any) {
	pair := x.([2]int64)
	h.vertices = append(h.vertices, graph.VertexID(pair[0]))
	h.keys = append(h.keys, int32(pair[1]))
}
func (h *boundaryHeap) Pop() any {
	n := len(h.vertices) - 1
	v, k := h.vertices[n], h.keys[n]
	h.vertices, h.keys = h.vertices[:n], h.keys[:n]
	return [2]int64{int64(v), int64(k)}
}

// Partition splits g into k partitions and returns the assignment in g's
// edge order.
func (n NE) Partition(g *graph.Graph, k int, seed uint64) (*metrics.Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: NE needs k >= 1, got %d", k)
	}
	if g == nil || len(g.Edges) == 0 {
		return nil, fmt.Errorf("partition: NE needs a non-empty graph")
	}
	rng := rand.New(rand.NewPCG(seed, 0x4e45))

	numV := g.NumV
	numE := len(g.Edges)

	// Incidence lists: per vertex, the indices of its incident edges.
	offsets := make([]int64, numV+1)
	for _, e := range g.Edges {
		offsets[e.Src+1]++
		if e.Dst != e.Src {
			offsets[e.Dst+1]++
		}
	}
	for i := 0; i < numV; i++ {
		offsets[i+1] += offsets[i]
	}
	incident := make([]int32, offsets[numV])
	cursor := make([]int64, numV)
	for idx, e := range g.Edges {
		incident[offsets[e.Src]+cursor[e.Src]] = int32(idx)
		cursor[e.Src]++
		if e.Dst != e.Src {
			incident[offsets[e.Dst]+cursor[e.Dst]] = int32(idx)
			cursor[e.Dst]++
		}
	}

	parts := make([]int32, numE)
	for i := range parts {
		parts[i] = -1
	}
	unalloc := make([]int32, numV) // unallocated incident-edge count
	for v := 0; v < numV; v++ {
		unalloc[v] = int32(offsets[v+1] - offsets[v])
	}
	allocated := 0

	// allocate assigns the unallocated edges between x and the grown
	// region (core ∪ boundary) to partition p — NE's expansion rule.
	// Edges to vertices outside the region are not taken; their endpoints
	// merely join the boundary, so the partition grows along community
	// structure instead of grabbing foreign edges.
	var discovered []graph.VertexID
	allocate := func(x graph.VertexID, p int, inPart []bool) int {
		count := 0
		discovered = discovered[:0]
		for _, ei := range incident[offsets[x]:offsets[x+1]] {
			if parts[ei] >= 0 {
				continue
			}
			e := g.Edges[ei]
			other := e.Other(x)
			if !inPart[other] {
				inPart[other] = true
				discovered = append(discovered, other)
				continue
			}
			parts[ei] = int32(p)
			count++
			unalloc[e.Src]--
			if e.Dst != e.Src {
				unalloc[e.Dst]--
			}
		}
		return count
	}

	for p := 0; p < k; p++ {
		remainingParts := k - p
		target := (numE - allocated + remainingParts - 1) / remainingParts
		if target == 0 {
			continue
		}
		size := 0
		inPart := make([]bool, numV) // core ∪ boundary membership
		bh := &boundaryHeap{}

		for size < target && allocated+size < numE {
			if bh.Len() == 0 {
				// (Re-)seed: a random vertex that still has unallocated
				// edges.
				v := graph.VertexID(rng.IntN(numV))
				for tries := 0; unalloc[v] == 0; tries++ {
					v = graph.VertexID((int(v) + 1) % numV)
					if tries > numV {
						break
					}
				}
				if unalloc[v] == 0 {
					break // nothing left anywhere
				}
				inPart[v] = true
				heap.Push(bh, [2]int64{int64(v), int64(unalloc[v])})
			}
			// Pop the boundary vertex with minimal unallocated degree,
			// re-keying stale entries lazily.
			var x graph.VertexID
			found := false
			for bh.Len() > 0 {
				pair := heap.Pop(bh).([2]int64)
				v, key := graph.VertexID(pair[0]), int32(pair[1])
				if unalloc[v] == 0 {
					continue // exhausted while waiting in the heap
				}
				if unalloc[v] != key {
					heap.Push(bh, [2]int64{int64(v), int64(unalloc[v])})
					continue
				}
				x, found = v, true
				break
			}
			if !found {
				continue // boundary drained; reseed on next iteration
			}
			size += allocate(x, p, inPart)
			for _, d := range discovered {
				heap.Push(bh, [2]int64{int64(d), int64(unalloc[d])})
			}
		}
		allocated += size
	}

	// Any stragglers (edges whose endpoints were only ever boundary
	// vertices when their partitions closed) go to the emptiest partition.
	sizes := make([]int64, k)
	for _, p := range parts {
		if p >= 0 {
			sizes[p]++
		}
	}
	for i := range parts {
		if parts[i] >= 0 {
			continue
		}
		best := 0
		for p := 1; p < k; p++ {
			if sizes[p] < sizes[best] {
				best = p
			}
		}
		parts[i] = int32(best)
		sizes[best]++
	}

	a := &metrics.Assignment{K: k, Edges: g.Edges, Parts: parts}
	return a, nil
}
