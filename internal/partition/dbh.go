package partition

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// DBH is Degree-Based Hashing (Xie et al., NIPS 2014): each edge is
// assigned by hashing the endpoint with the smaller (partial) degree, so
// low-degree vertices keep their edges together and high-degree vertices
// absorb the replication — the right cut direction for power-law graphs.
//
// Degrees are partial: counted over the stream prefix seen so far, as in a
// true single-pass deployment. (The original paper assumes known degrees;
// streaming implementations, including the one the ADWISE paper benchmarks,
// use partial degrees.)
type DBH struct {
	cfg   Config
	parts []int
	cache vcache.VertexState
}

// NewDBH returns a DBH partitioner.
func NewDBH(cfg Config) (*DBH, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &DBH{cfg: cfg, parts: cfg.allowed(), cache: cfg.newCache()}, nil
}

// Name implements Partitioner.
func (d *DBH) Name() string { return "dbh" }

// Cache implements Partitioner.
func (d *DBH) Cache() vcache.VertexState { return d.cache }

// Assign implements Partitioner.
func (d *DBH) Assign(e graph.Edge) int {
	du, dv := d.cache.Degree(e.Src), d.cache.Degree(e.Dst)
	pivot := e.Src
	switch {
	case du < dv:
		// hash the low-degree endpoint
	case dv < du:
		pivot = e.Dst
	default:
		// Tie: hash the lexicographically smaller id so the choice is
		// stable regardless of edge orientation.
		if e.Dst < e.Src {
			pivot = e.Dst
		}
	}
	p := d.parts[hashVertex(d.cfg.Seed, pivot)%uint64(len(d.parts))]
	d.cache.Assign(e, p)
	return p
}
