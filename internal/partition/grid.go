package partition

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Grid is the constrained-hashing strategy of GraphBuilder (Jain et al.,
// GRADES 2013): the allowed partitions are arranged in an r×c grid, each
// vertex is hashed to one grid cell, and an edge may only be placed on the
// intersection of its endpoints' constraint sets (the row and column
// through each endpoint's cell). Within the candidate set the least-loaded
// partition wins. The constraint bounds every vertex's replicas by r+c−1.
type Grid struct {
	cfg   Config
	parts []int
	cache vcache.VertexState
	r, c  int
	cand  []int
}

// NewGrid returns a Grid partitioner.
func NewGrid(cfg Config) (*Grid, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts := cfg.allowed()
	r, c := gridShape(len(parts))
	return &Grid{
		cfg:   cfg,
		parts: parts,
		cache: cfg.newCache(),
		r:     r,
		c:     c,
		cand:  make([]int, 0, r+c),
	}, nil
}

// Name implements Partitioner.
func (g *Grid) Name() string { return "grid" }

// Cache implements Partitioner.
func (g *Grid) Cache() vcache.VertexState { return g.cache }

// cell returns the grid cell (row, col) vertex v hashes to.
func (g *Grid) cell(v graph.VertexID) (row, col int) {
	h := hashVertex(g.cfg.Seed, v)
	idx := int(h % uint64(g.r*g.c))
	return idx / g.c, idx % g.c
}

// Assign implements Partitioner.
func (g *Grid) Assign(e graph.Edge) int {
	ur, uc := g.cell(e.Src)
	vr, vc := g.cell(e.Dst)

	// Constraint sets: S(u) = row ur ∪ column uc. The intersection
	// S(u) ∩ S(v) always contains the "corner" cells (ur,vc) and (vr,uc),
	// so the candidate set is never empty.
	g.cand = g.cand[:0]
	g.cand = append(g.cand, ur*g.c+vc, vr*g.c+uc)
	if ur == vr {
		// Same row: the whole row is in both constraint sets.
		for col := 0; col < g.c; col++ {
			g.cand = append(g.cand, ur*g.c+col)
		}
	}
	if uc == vc {
		for row := 0; row < g.r; row++ {
			g.cand = append(g.cand, row*g.c+uc)
		}
	}
	// Map grid cells to global partition ids.
	for i, cell := range g.cand {
		g.cand[i] = g.parts[cell]
	}
	p := leastLoaded(g.cache, g.cand)
	g.cache.Assign(e, p)
	return p
}
