package partition

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// HDRFDefaultLambda is the balancing weight recommended by the HDRF authors
// and used throughout the paper's evaluation.
const HDRFDefaultLambda = 1.1

// hdrfEpsilon avoids division by zero in the balance term, following the
// reference implementation.
const hdrfEpsilon = 1.0

// HDRF is High-Degree (vertices are) Replicated First (Petroni et al.,
// CIKM 2015), the strongest single-edge streaming baseline in the paper's
// evaluation. For edge (u,v) and partition p it maximises
//
//	C(u,v,p) = CRep(u,v,p) + λ·CBal(p)
//	CRep     = g(u,p) + g(v,p)
//	g(u,p)   = 1{p∈Ru} · (1 + (1 − θu)),   θu = δ(u)/(δ(u)+δ(v))
//	CBal(p)  = (maxsize − |p|) / (ε + maxsize − minsize)
//
// with partial degrees δ updated as the stream is consumed, so the
// low-degree endpoint dominates the replication reward and high-degree
// vertices end up replicated.
type HDRF struct {
	cfg    Config
	lambda float64
	parts  []int
	cache  vcache.VertexState
}

// NewHDRF returns an HDRF partitioner with balancing weight lambda
// (use HDRFDefaultLambda for the paper's setting).
func NewHDRF(cfg Config, lambda float64) (*HDRF, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if lambda < 0 {
		return nil, fmt.Errorf("partition: HDRF lambda must be >= 0, got %v", lambda)
	}
	return &HDRF{cfg: cfg, lambda: lambda, parts: cfg.allowed(), cache: cfg.newCache()}, nil
}

// Name implements Partitioner.
func (h *HDRF) Name() string { return "hdrf" }

// Cache implements Partitioner.
func (h *HDRF) Cache() vcache.VertexState { return h.cache }

// Lambda returns the configured balancing weight.
func (h *HDRF) Lambda() float64 { return h.lambda }

// Assign implements Partitioner.
func (h *HDRF) Assign(e graph.Edge) int {
	// Partial degrees including the current edge, as in the reference
	// implementation (degrees are bumped before scoring).
	du := float64(h.cache.Degree(e.Src) + 1)
	dv := float64(h.cache.Degree(e.Dst) + 1)
	thetaU := du / (du + dv)
	thetaV := 1 - thetaU

	ru := h.cache.Replicas(e.Src)
	rv := h.cache.Replicas(e.Dst)
	minSize, maxSize := h.cache.MinMaxSizeOf(h.parts)

	best, bestScore := h.parts[0], -1.0
	for _, p := range h.parts {
		var rep float64
		if ru.Contains(p) {
			rep += 1 + (1 - thetaU)
		}
		if rv.Contains(p) {
			rep += 1 + (1 - thetaV)
		}
		bal := float64(maxSize-h.cache.Size(p)) / (hdrfEpsilon + float64(maxSize-minSize))
		score := rep + h.lambda*bal
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	h.cache.Assign(e, best)
	return best
}
