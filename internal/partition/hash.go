package partition

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Hash assigns each edge by hashing both endpoints — the default loading
// strategy of PowerGraph and GraphX ("random" vertex-cut). Fast and
// balanced, but oblivious to locality, so it marks the high-replication
// end of the Figure 1 landscape.
type Hash struct {
	cfg   Config
	parts []int
	cache vcache.VertexState
}

// NewHash returns a Hash partitioner.
func NewHash(cfg Config) (*Hash, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Hash{cfg: cfg, parts: cfg.allowed(), cache: cfg.newCache()}, nil
}

// Name implements Partitioner.
func (h *Hash) Name() string { return "hash" }

// Cache implements Partitioner.
func (h *Hash) Cache() vcache.VertexState { return h.cache }

// Assign implements Partitioner.
func (h *Hash) Assign(e graph.Edge) int {
	p := h.parts[hashEdge(h.cfg.Seed, e)%uint64(len(h.parts))]
	h.cache.Assign(e, p)
	return p
}

// OneDim assigns each edge by hashing its source vertex — the "1D"
// adjacency-matrix row partitioning of GraphX. All out-edges of a vertex
// land together, so sources are never replicated but destinations spread
// freely.
type OneDim struct {
	cfg   Config
	parts []int
	cache vcache.VertexState
}

// NewOneDim returns a 1D partitioner.
func NewOneDim(cfg Config) (*OneDim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &OneDim{cfg: cfg, parts: cfg.allowed(), cache: cfg.newCache()}, nil
}

// Name implements Partitioner.
func (o *OneDim) Name() string { return "1d" }

// Cache implements Partitioner.
func (o *OneDim) Cache() vcache.VertexState { return o.cache }

// Assign implements Partitioner.
func (o *OneDim) Assign(e graph.Edge) int {
	p := o.parts[hashVertex(o.cfg.Seed, e.Src)%uint64(len(o.parts))]
	o.cache.Assign(e, p)
	return p
}

// TwoDim assigns each edge to a block of the adjacency matrix: the allowed
// partitions are arranged into an r×c grid and edge (u,v) goes to block
// (hash(u) mod r, hash(v) mod c) — the "2D" partitioning of GraphX, which
// bounds each vertex's replica count by r+c.
type TwoDim struct {
	cfg    Config
	parts  []int
	cache  vcache.VertexState
	r, c   int
	seedRe uint64
}

// NewTwoDim returns a 2D partitioner.
func NewTwoDim(cfg Config) (*TwoDim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts := cfg.allowed()
	r, c := gridShape(len(parts))
	return &TwoDim{
		cfg:    cfg,
		parts:  parts,
		cache:  cfg.newCache(),
		r:      r,
		c:      c,
		seedRe: hashx.SplitMix64(cfg.Seed + 1),
	}, nil
}

// gridShape factorises n into the most square r×c with r*c <= n, r,c >= 1.
func gridShape(n int) (r, c int) {
	r = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			r = d
		}
	}
	return r, n / r
}

// Name implements Partitioner.
func (t *TwoDim) Name() string { return "2d" }

// Cache implements Partitioner.
func (t *TwoDim) Cache() vcache.VertexState { return t.cache }

// Assign implements Partitioner.
func (t *TwoDim) Assign(e graph.Edge) int {
	row := int(hashVertex(t.cfg.Seed, e.Src) % uint64(t.r))
	col := int(hashVertex(t.seedRe, e.Dst) % uint64(t.c))
	p := t.parts[row*t.c+col]
	t.cache.Assign(e, p)
	return p
}
