// Package partition implements the streaming vertex-cut partitioning
// framework of §II-B (edge universe, scoring, vertex cache) together with
// the single-edge baselines the paper evaluates against: Hash, 1D/2D,
// Grid (GraphBuilder), Greedy (PowerGraph), DBH, and HDRF, plus the
// all-edge NE heuristic used as a landscape reference point in Figure 1.
//
// The window-based ADWISE algorithm builds on this framework in
// internal/core.
package partition

import (
	"fmt"

	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/hashx"
	"github.com/adwise-go/adwise/internal/metrics"
	"github.com/adwise-go/adwise/internal/stream"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Partitioner is a single-edge streaming partitioner: it decides a
// partition for each edge as it arrives, using only its vertex cache (state
// from previous assignments).
type Partitioner interface {
	// Name identifies the strategy (e.g. "hdrf").
	Name() string
	// Assign chooses a partition for e and records the assignment in the
	// vertex cache. The returned partition is in [0, K).
	Assign(e graph.Edge) int
	// Cache exposes the partitioner's vertex state.
	Cache() vcache.VertexState
}

// Config carries the settings shared by all streaming partitioners.
type Config struct {
	// K is the number of partitions in the global partitioning.
	K int
	// Allowed restricts assignments to a subset of partitions — the
	// "spread" of the spotlight optimization (§III-D). Empty means all of
	// 0..K-1.
	Allowed []int
	// Seed drives the hash functions of the hashing strategies.
	Seed uint64
	// VertexBudgetBytes caps the byte footprint of the vertex state. 0
	// (the default) keeps the unbounded cache; a positive budget swaps in
	// the bounded, evicting cache (see vcache.Bounded).
	VertexBudgetBytes int64
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("partition: K must be >= 1, got %d", c.K)
	}
	for _, p := range c.Allowed {
		if p < 0 || p >= c.K {
			return fmt.Errorf("partition: allowed partition %d outside [0,%d)", p, c.K)
		}
	}
	return nil
}

// newCache builds the vertex state the config describes — the single
// construction path every strategy shares, so the budget knob applies
// uniformly.
func (c Config) newCache() vcache.VertexState {
	return vcache.Build(vcache.Options{K: c.K, BudgetBytes: c.VertexBudgetBytes})
}

// allowed returns the effective allowed-partition list.
func (c Config) allowed() []int {
	if len(c.Allowed) > 0 {
		out := make([]int, len(c.Allowed))
		copy(out, c.Allowed)
		return out
	}
	out := make([]int, c.K)
	for i := range out {
		out[i] = i
	}
	return out
}

// Run drains s through p and returns the resulting assignment. Edges are
// drawn in batches (stream.NextBatch) so the per-edge cost is one Assign
// call, not an extra interface dispatch into the stream. A stream that
// fails mid-pass (stream.Err) returns the error, never a silently-short
// assignment.
func Run(s stream.Stream, p Partitioner) (*metrics.Assignment, error) {
	hint := s.Remaining()
	if hint >= 0 {
		// Known-length stream: pre-size the vertex table too, so the pass
		// skips the doubling rehashes (a bounded state clamps this to its
		// budget).
		p.Cache().Reserve(vcache.VerticesHintForEdges(hint))
	} else {
		hint = 1024
	}
	a := metrics.NewAssignment(p.Cache().K(), int(hint))
	var buf [stream.DefaultBatchSize]graph.Edge
	for {
		n := stream.NextBatch(s, buf[:])
		if n == 0 {
			if err := stream.Err(s); err != nil {
				return nil, fmt.Errorf("partition: edge stream failed after %d assignments: %w", a.Len(), err)
			}
			return a, nil
		}
		for _, e := range buf[:n] {
			a.Add(e, p.Assign(e))
		}
	}
}

func hashVertex(seed uint64, v graph.VertexID) uint64 {
	return hashx.SplitMix64(seed ^ uint64(v))
}

func hashEdge(seed uint64, e graph.Edge) uint64 {
	return hashx.SplitMix64(seed ^ (uint64(e.Src)<<32 | uint64(e.Dst)))
}

// leastLoaded returns the partition with the smallest size among parts,
// breaking ties by lower partition id. parts must be non-empty.
func leastLoaded(c vcache.VertexState, parts []int) int {
	best := parts[0]
	bestSize := c.Size(best)
	for _, p := range parts[1:] {
		if s := c.Size(p); s < bestSize {
			best, bestSize = p, s
		}
	}
	return best
}
