package partition

import (
	"github.com/adwise-go/adwise/internal/graph"
	"github.com/adwise-go/adwise/internal/vcache"
)

// Greedy is the PowerGraph greedy heuristic (Gonzalez et al., OSDI 2012):
// a case analysis over the replica sets A(u), A(v) of the incoming edge's
// endpoints.
//
//  1. A(u) ∩ A(v) ≠ ∅ → least-loaded partition in the intersection.
//  2. A(u), A(v) both non-empty but disjoint → least-loaded partition in
//     the union (replicating whichever endpoint loses).
//  3. Exactly one non-empty → least-loaded partition of that set.
//  4. Both empty → least-loaded allowed partition overall.
type Greedy struct {
	cfg   Config
	parts []int
	cache vcache.VertexState
	// scratch buffer reused across assignments to avoid per-edge allocs
	cand []int
}

// NewGreedy returns a Greedy partitioner.
func NewGreedy(cfg Config) (*Greedy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Greedy{
		cfg:   cfg,
		parts: cfg.allowed(),
		cache: cfg.newCache(),
		cand:  make([]int, 0, cfg.K),
	}, nil
}

// Name implements Partitioner.
func (g *Greedy) Name() string { return "greedy" }

// Cache implements Partitioner.
func (g *Greedy) Cache() vcache.VertexState { return g.cache }

// Assign implements Partitioner.
func (g *Greedy) Assign(e graph.Edge) int {
	ru := g.cache.Replicas(e.Src)
	rv := g.cache.Replicas(e.Dst)

	g.cand = g.cand[:0]
	switch {
	case ru.Intersects(rv):
		for _, p := range g.parts {
			if ru.Contains(p) && rv.Contains(p) {
				g.cand = append(g.cand, p)
			}
		}
	case !ru.Empty() && !rv.Empty():
		for _, p := range g.parts {
			if ru.Contains(p) || rv.Contains(p) {
				g.cand = append(g.cand, p)
			}
		}
	case !ru.Empty():
		for _, p := range g.parts {
			if ru.Contains(p) {
				g.cand = append(g.cand, p)
			}
		}
	case !rv.Empty():
		for _, p := range g.parts {
			if rv.Contains(p) {
				g.cand = append(g.cand, p)
			}
		}
	}
	// Under spotlight restrictions the replica sets may lie entirely
	// outside the allowed spread; fall back to balancing over the spread.
	if len(g.cand) == 0 {
		g.cand = append(g.cand, g.parts...)
	}
	p := leastLoaded(g.cache, g.cand)
	g.cache.Assign(e, p)
	return p
}
