package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-exp", "list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblation(t *testing.T) {
	if err := run([]string{"-exp", "ablation-window", "-scale", "0.02", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
