package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-exp", "list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table2", "-scale", "0.02"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblation(t *testing.T) {
	if err := run([]string{"-exp", "ablation-window", "-scale", "0.02", "-v"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "ingest", "-scale", "0.02", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var tab struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tab); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if tab.ID != "Ingest" {
		t.Errorf("id = %q, want Ingest", tab.ID)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d, want 4 ({text,binary} x {materialised,segmented})", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Errorf("row %v has %d cells for %d columns", row, len(row), len(tab.Columns))
		}
	}
}
