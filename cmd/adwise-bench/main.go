// Command adwise-bench regenerates the paper's evaluation: every table and
// figure (Table II, Figure 1, Figures 7a–7i, Figure 8) plus the design
// ablations, as aligned text tables.
//
// Usage:
//
//	adwise-bench -exp list
//	adwise-bench -exp fig7a -scale 0.2 -v
//	adwise-bench -exp all -scale 0.1 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adwise-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adwise-bench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "list", `experiment id, "all", or "list"`)
		scale   = fs.Float64("scale", 0.1, "graph scale factor (1.0 = default evaluation size)")
		seed    = fs.Uint64("seed", 42, "experiment seed")
		k       = fs.Int("k", 32, "partitions")
		z       = fs.Int("z", 8, "parallel partitioner instances")
		spread  = fs.Int("spread", 4, "spotlight spread (partitions per instance)")
		verbose = fs.Bool("v", false, "print progress lines to stderr")
		profile = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return fmt.Errorf("creating cpu profile %s: %w", *profile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := adwise.DefaultExperimentConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Z = *z
	cfg.Spread = *spread
	if *verbose {
		cfg.Progress = os.Stderr
	}

	switch *exp {
	case "list":
		fmt.Println("available experiments:")
		for _, e := range adwise.Experiments() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Paper)
		}
		return nil
	case "all":
		return adwise.RunAllExperiments(cfg, os.Stdout)
	default:
		e, err := adwise.LookupExperiment(*exp)
		if err != nil {
			return err
		}
		t, err := e.Run(cfg)
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	}
}
