// Command adwise-bench regenerates the paper's evaluation: every table and
// figure (Table II, Figure 1, Figures 7a–7i, Figure 8) plus the design
// ablations, as aligned text tables.
//
// Usage:
//
//	adwise-bench -exp list
//	adwise-bench -exp fig7a -scale 0.2 -v
//	adwise-bench -exp all -scale 0.1 > results.txt
//	adwise-bench -exp ingest -json > BENCH_ingest.json
//	adwise-bench -exp scoring -score-workers 8 -cpuprofile scoring.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adwise-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("adwise-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "list", `experiment id, "all", or "list"`)
		scale    = fs.Float64("scale", 0.1, "graph scale factor (1.0 = default evaluation size)")
		seed     = fs.Uint64("seed", 42, "experiment seed")
		k        = fs.Int("k", 32, "partitions")
		z        = fs.Int("z", 8, "parallel partitioner instances")
		spread   = fs.Int("spread", 4, "spotlight spread (partitions per instance)")
		verbose  = fs.Bool("v", false, "print progress lines to stderr")
		jsonOut  = fs.Bool("json", false, "emit results as JSON instead of aligned text tables")
		profile  = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		workers  = fs.Int("score-workers", 0, "window-scoring shards per ADWISE instance on the shared work-stealing pool (0 = auto: GOMAXPROCS; pins the scoring-experiment sweep)")
		budget   = fs.String("vcache-budget", "", "pin the memory experiment to one vertex-state byte budget, e.g. 64MiB (empty = sweep {inf, 1/2, 1/4, 1/8} of the unbounded peak)")
		regress  = fs.String("regress-baseline", "", "benchmark trajectory file (e.g. BENCH_scoring.json): after a scoring run, fail if per-cell speedups regressed vs the last ci-baseline record")
		regressT = fs.Float64("regress-tol", 0.20, "allowed fractional speedup loss before -regress-baseline fails the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return fmt.Errorf("creating cpu profile %s: %w", *profile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := adwise.DefaultExperimentConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Z = *z
	cfg.Spread = *spread
	cfg.ScoreWorkers = *workers
	if b, err := adwise.ParseByteSize(*budget); err != nil {
		return fmt.Errorf("invalid -vcache-budget: %w", err)
	} else {
		cfg.VertexBudgetBytes = b
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	switch *exp {
	case "list":
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range adwise.Experiments() {
			fmt.Fprintf(stdout, "  %-20s %s\n", e.ID, e.Paper)
		}
		return nil
	case "all":
		if *jsonOut {
			return adwise.RunAllExperimentsJSON(cfg, stdout)
		}
		return adwise.RunAllExperiments(cfg, stdout)
	default:
		e, err := adwise.LookupExperiment(*exp)
		if err != nil {
			return err
		}
		t, err := e.Run(cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := t.WriteJSON(stdout); err != nil {
				return err
			}
		} else if err := t.Fprint(stdout); err != nil {
			return err
		}
		if *regress != "" {
			if err := adwise.CheckScoringRegression(t, *regress, *regressT); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "adwise-bench: no regression vs %s (tol %.0f%%)\n", *regress, *regressT*100)
		}
		return nil
	}
}
