package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

func writeFixtures(t *testing.T) (graphPath, assignmentPath string, a *adwise.Assignment) {
	t.Helper()
	g, err := adwise.Community(8, 8, 0.9, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "g.txt")
	if err := adwise.SaveGraph(graphPath, g); err != nil {
		t.Fatal(err)
	}
	s, err := adwise.NewStrategy("hdrf", adwise.StrategySpec{K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, err = s.Run(adwise.StreamGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	assignmentPath = filepath.Join(dir, "parts.tsv")
	if err := adwise.SaveAssignment(assignmentPath, a); err != nil {
		t.Fatal(err)
	}
	return graphPath, assignmentPath, a
}

func TestServeFromAssignment(t *testing.T) {
	_, parts, a := writeFixtures(t)
	o, err := parseArgs([]string{"-assignment", parts})
	if err != nil {
		t.Fatal(err)
	}
	store, err := buildStore(o)
	if err != nil {
		t.Fatal(err)
	}
	ins := adwise.NewServeInstruments(adwise.NewMetricRegistry())
	srv := httptest.NewServer(newHandler(store, ins, o))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// Served partitions match the round-tripped assignment (last write
	// wins for duplicate stream edges).
	want := make(map[adwise.Edge]int32, a.Len())
	for i, e := range a.Edges {
		want[e] = a.Parts[i]
	}
	for i := 0; i < len(a.Edges); i += 37 {
		e := a.Edges[i]
		p, ok := store.View().Partition(e.Src, e.Dst)
		if !ok || p != want[e] {
			t.Fatalf("edge %v: served (%d,%v), want (%d,true)", e, p, ok, want[e])
		}
	}

	// Hot reload: POST /v1/reload rebuilds from the file and bumps the
	// generation without interrupting service.
	resp, err = srv.Client().Post(srv.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 {
		t.Errorf("generation after reload = %d, want 2", out.Generation)
	}
}

func TestServeFromGraph(t *testing.T) {
	graphPath, _, _ := writeFixtures(t)
	o, err := parseArgs([]string{"-in", graphPath, "-algo", "adwise", "-k", "4", "-window", "64", "-z", "2"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := buildStore(o)
	if err != nil {
		t.Fatal(err)
	}
	st := store.View().Stats()
	if st.K != 4 || st.DistinctEdges == 0 {
		t.Fatalf("stats = %+v, want k=4 and edges indexed", st)
	}
	// No -assignment: the reload endpoint is absent.
	ins := adwise.NewServeInstruments(adwise.NewMetricRegistry())
	srv := httptest.NewServer(newHandler(store, ins, o))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("reload endpoint exposed without -assignment")
	}
}

func TestRunErrors(t *testing.T) {
	graphPath, parts, _ := writeFixtures(t)
	tests := [][]string{
		{},                                         // neither input
		{"-assignment", parts, "-in", graphPath},   // both inputs
		{"-assignment", "/nonexistent.tsv"},        // unreadable assignment
		{"-in", "/nonexistent.txt"},                // unreadable graph
		{"-in", graphPath, "-algo", "bogus"},       // unknown strategy
		{"-in", graphPath, "-k", "0"},              // invalid k
		{"-assignment", parts, "-addr", "bogus:x"}, // unlistenable address
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
