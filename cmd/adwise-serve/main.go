// Command adwise-serve exposes a completed partitioning as a sharded
// partition-lookup HTTP service: edge→partition and vertex→replica-set
// queries over the immutable index, with atomic hot-reload.
//
// Usage:
//
//	adwise-serve -assignment parts.tsv -addr :8372
//	adwise-serve -in graph.txt -algo adwise -k 32 -latency 2s -addr :8372
//
// With -assignment the service loads a precomputed assignment TSV (from
// adwise -out) and POST /v1/reload re-reads it, swapping the rebuilt index
// in without dropping in-flight lookups. With -in the named registry
// strategy partitions the graph first (optionally under spotlight with
// -z/-spread) and the service serves the result.
//
// API: GET /v1/edge?src=S&dst=D, GET /v1/vertex?v=V, POST /v1/edges
// (batch), GET /v1/stats, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adwise-serve:", err)
		os.Exit(1)
	}
}

// options are the parsed serving options.
type options struct {
	assignment string
	in         string
	algo       string
	k          int
	latency    time.Duration
	window     int
	z, spread  int
	seed       uint64
	addr       string
	metricsOut string
}

func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("adwise-serve", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.assignment, "assignment", "", "precomputed assignment TSV (from adwise -out)")
	fs.StringVar(&o.in, "in", "", "graph file to partition before serving (alternative to -assignment)")
	fs.StringVar(&o.algo, "algo", "adwise", "partitioning strategy for -in: "+strings.Join(adwise.StrategyNames(), ", "))
	fs.IntVar(&o.k, "k", 32, "partitions (with -in)")
	fs.DurationVar(&o.latency, "latency", 0, "ADWISE latency preference L (with -in)")
	fs.IntVar(&o.window, "window", 0, "ADWISE fixed window size (with -in)")
	fs.IntVar(&o.z, "z", 1, "parallel partitioner instances (with -in)")
	fs.IntVar(&o.spread, "spread", 0, "partitions per instance (default k/z, with -in)")
	fs.Uint64Var(&o.seed, "seed", 42, "hash/graph seed")
	fs.StringVar(&o.addr, "addr", ":8372", "listen address")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write telemetry snapshots to this file as JSON lines (sampled every second)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	switch {
	case o.assignment == "" && o.in == "":
		return o, fmt.Errorf("need -assignment or -in")
	case o.assignment != "" && o.in != "":
		return o, fmt.Errorf("-assignment and -in are mutually exclusive")
	case o.in != "" && o.k < 1:
		return o, fmt.Errorf("-k must be >= 1")
	}
	return o, nil
}

// buildStore produces the serving store for the parsed options: load the
// assignment TSV, or partition the input graph via the registry first.
func buildStore(o options) (*adwise.LookupStore, error) {
	a, err := loadAssignment(o)
	if err != nil {
		return nil, err
	}
	idx, err := adwise.BuildIndex(a)
	if err != nil {
		return nil, err
	}
	return adwise.NewLookupStore(idx), nil
}

func loadAssignment(o options) (*adwise.Assignment, error) {
	if o.assignment != "" {
		return adwise.LoadAssignment(o.assignment)
	}
	g, err := adwise.LoadGraph(o.in)
	if err != nil {
		return nil, err
	}
	spec := adwise.StrategySpec{K: o.k, Seed: o.seed, Latency: o.latency, Window: o.window}
	if o.z > 1 {
		spread := o.spread
		if spread == 0 {
			spread = o.k / o.z
		}
		cfg := adwise.SpotlightConfig{K: o.k, Z: o.z, Spread: spread}
		return adwise.RunStrategySpotlight(o.algo, g.Edges, cfg, spec)
	}
	s, err := adwise.NewStrategy(o.algo, spec)
	if err != nil {
		return nil, err
	}
	return s.Run(adwise.StreamGraph(g))
}

// newHandler wraps the instrumented lookup API (request counters, latency
// histograms, GET /v1/metrics) and, when the service was started from an
// assignment file, adds POST /v1/reload: re-read the file, rebuild the
// index, and swap it in atomically.
func newHandler(store *adwise.LookupStore, ins *adwise.ServeInstruments, o options) http.Handler {
	api := adwise.ServeHandlerInstrumented(store, ins)
	if o.assignment == "" {
		return api
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		a, err := adwise.LoadAssignment(o.assignment)
		if err == nil {
			var idx *adwise.LookupIndex
			if idx, err = adwise.BuildIndex(a); err == nil {
				store.Swap(idx)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		fmt.Fprintf(w, "{\"status\":\"reloaded\",\"generation\":%d}\n", store.Generation())
	})
	return mux
}

func run(args []string) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	store, err := buildStore(o)
	if err != nil {
		return err
	}
	st := store.View().Stats()
	fmt.Printf("index ready: k=%d edges=%d vertices=%d RF=%.3f shards=%d\n",
		st.K, st.DistinctEdges, st.Vertices, st.ReplicationDegree, st.Shards)

	// The service is always instrumented (GET /v1/metrics, metrics in
	// /v1/stats); -metrics-out additionally samples the registry to a
	// JSON-lines file once per second.
	reg := adwise.NewMetricRegistry()
	ins := adwise.NewServeInstruments(reg)
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return fmt.Errorf("creating -metrics-out file: %w", err)
		}
		defer f.Close()
		flusher := adwise.NewMetricsFlusher(reg, adwise.NewJSONLinesSink(f), time.Second)
		flusher.Start()
		defer flusher.Stop()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serving partition lookups on http://%s\n", ln.Addr())
	return adwise.NewLookupServer(newHandler(store, ins, o)).Serve(ln)
}
