// Command adwise-lint runs the contracts-as-code analyzer suite
// (internal/lint) over the module: the determinism, clock, stream-error,
// and hot-path invariants documented in ARCHITECTURE.md, enforced as
// build-failing lint rules.
//
// Usage:
//
//	adwise-lint [-rules] [-v] [patterns ...]
//
// Patterns default to ./... — the whole module, testdata excluded. The
// exit status is non-zero when any unsuppressed finding exists; findings
// print one per line as file:line:col: [rule] message. Suppress a
// finding in place with //adwise:allow <rule> <reason> on the flagged
// line or the line above it; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/adwise-go/adwise/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adwise-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listRules := fs.Bool("rules", false, "list the registered rules and exit")
	verbose := fs.Bool("v", false, "report type-checking degradation (analysis still runs)")
	dir := fs.String("C", ".", "directory whose module is analyzed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var findings []lint.Finding
	for _, pkg := range pkgs {
		if *verbose {
			for _, terr := range pkg.TypeErrs {
				fmt.Fprintf(stderr, "# %s: type checking degraded: %v\n", pkg.Path, terr)
			}
		}
		findings = append(findings, lint.CheckPackage(pkg)...)
	}
	if len(findings) == 0 {
		return 0
	}
	lint.SortFindings(findings)
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(loader.ModuleRoot, name); err == nil {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	fmt.Fprintf(stderr, "adwise-lint: %d finding(s)\n", len(findings))
	return 1
}
