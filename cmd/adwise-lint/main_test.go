package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRulesListing pins the CLI surface: -rules names every contract
// rule with a doc line.
func TestRulesListing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules"}, &out, &errb); code != 0 {
		t.Fatalf("adwise-lint -rules exited %d, stderr: %s", code, errb.String())
	}
	for _, rule := range []string{"clockguard", "randguard", "maprange", "streamerr", "hotpath"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules output missing %q:\n%s", rule, out.String())
		}
	}
}

// TestExitCodes exercises both sides of the contract: a fixture package
// with known violations exits 1 with file:line diagnostics, and the
// clock package itself (trivially clean: it is clockguard-exempt) exits
// 0.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./internal/lint/testdata/src/clockguard"}, &out, &errb)
	if code != 1 {
		t.Fatalf("lint over violating fixture exited %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "pos.go:") || !strings.Contains(out.String(), "[clockguard]") {
		t.Errorf("diagnostics missing file:line or rule tag:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"./internal/clock"}, &out, &errb); code != 0 {
		t.Errorf("lint over internal/clock exited %d, want 0; out: %s stderr: %s", code, out.String(), errb.String())
	}
}
