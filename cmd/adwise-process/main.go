// Command adwise-process runs a graph workload (PageRank, coloring, cycle
// search, clique search) on a partitioned graph using the vertex-cut
// engine, reporting real results plus the simulated cluster latency.
//
// Usage:
//
//	adwise-process -in graph.txt -k 32 -algo adwise -latency 2s -workload pagerank -iters 100
//	adwise-process -in graph.txt -k 32 -algo hdrf -workload cycles -length 8
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adwise-process:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adwise-process", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input graph file")
		parts    = fs.String("parts", "", "precomputed assignment TSV (from adwise -out); skips partitioning")
		k        = fs.Int("k", 32, "partitions")
		algo     = fs.String("algo", "hdrf", "partitioning strategy: "+strings.Join(adwise.StrategyNames(), ", "))
		latency  = fs.Duration("latency", 0, "ADWISE latency preference")
		workload = fs.String("workload", "pagerank", "pagerank, coloring, cc, sssp, cycles, cliques")
		iters    = fs.Int("iters", 100, "iterations (pagerank/coloring/cc/sssp)")
		length   = fs.Int("length", 6, "circle length (cycles)")
		size     = fs.Int("size", 4, "clique size (cliques)")
		seeds    = fs.Int("seeds", 10, "walker seeds (cycles/cliques)")
		source   = fs.Uint64("source", 0, "source vertex (sssp)")
		seed     = fs.Uint64("seed", 42, "seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in graph file")
	}

	g, err := adwise.LoadGraph(*in)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *in, g.V(), g.E())

	var (
		a       *adwise.Assignment
		partLat time.Duration
	)
	if *parts != "" {
		a, err = adwise.LoadAssignment(*parts)
		if err != nil {
			return err
		}
		if a.Len() != g.E() {
			return fmt.Errorf("assignment %s covers %d edges but graph has %d", *parts, a.Len(), g.E())
		}
		fmt.Printf("loaded assignment %s: k=%d\n", *parts, a.K)
	} else {
		// Registry-built strategy (any registered name, no hand-rolled
		// switch) over the graph the format-agnostic loader already
		// materialised — the engine below needs g in memory anyway, so
		// partitioning streams the in-memory edge list rather than
		// re-reading the file.
		s, err := adwise.NewStrategy(*algo, adwise.StrategySpec{K: *k, Seed: *seed, Latency: *latency})
		if err != nil {
			return err
		}
		start := time.Now()
		if a, err = s.Run(adwise.StreamGraph(g)); err != nil {
			return err
		}
		partLat = time.Since(start)
	}
	s := adwise.Summarize(a)
	fmt.Printf("partitioning (%s, %v): RF=%.3f imbalance=%.3f\n",
		*algo, partLat.Round(time.Millisecond), s.ReplicationDegree, s.Imbalance)

	eng, err := adwise.NewEngine(a, g.NumV, adwise.DefaultCostModel(), 0)
	if err != nil {
		return err
	}

	var rep adwise.Report
	switch *workload {
	case "pagerank":
		ranks, r, err := eng.PageRank(*iters, 0.85)
		if err != nil {
			return err
		}
		rep = r
		top, topRank := 0, 0.0
		for v, rk := range ranks {
			if rk > topRank {
				top, topRank = v, rk
			}
		}
		fmt.Printf("pagerank: top vertex %d rank %.6f\n", top, topRank)
	case "coloring":
		colors, r, err := eng.Coloring(*iters)
		if err != nil {
			return err
		}
		rep = r
		maxColor := int32(0)
		for _, c := range colors {
			if c > maxColor {
				maxColor = c
			}
		}
		fmt.Printf("coloring: %d colors, proper=%v\n", maxColor+1, adwise.ValidColoring(g, colors))
	case "cc":
		labels, r, err := eng.ConnectedComponents(*iters)
		if err != nil {
			return err
		}
		rep = r
		components := make(map[adwise.VertexID]struct{})
		for _, l := range labels {
			components[l] = struct{}{}
		}
		fmt.Printf("connected components: %d\n", len(components))
	case "sssp":
		dist, r, err := eng.SSSP(adwise.VertexID(*source), *iters)
		if err != nil {
			return err
		}
		rep = r
		reached, maxDist := 0, 0.0
		for _, d := range dist {
			if !math.IsInf(d, 1) {
				reached++
				if d > maxDist {
					maxDist = d
				}
			}
		}
		fmt.Printf("sssp from %d: reached %d/%d vertices, eccentricity %.0f\n",
			*source, reached, g.V(), maxDist)
	case "cycles":
		res, r, err := eng.CycleSearch(adwise.CycleSearchConfig{
			Length:                  *length,
			Seeds:                   pickSeeds(g.NumV, *seeds, *seed),
			MaxMessagesPerPartition: 500_000,
		})
		if err != nil {
			return err
		}
		rep = r
		fmt.Printf("cycles: found %d closed length-%d walks (dropped %d)\n", res.Found, *length, res.Dropped)
	case "cliques":
		res, r, err := eng.CliqueSearch(adwise.CliqueSearchConfig{
			Size:               *size,
			Seeds:              pickSeeds(g.NumV, *seeds, *seed),
			ForwardProbability: 0.5,
			Seed:               *seed,
		})
		if err != nil {
			return err
		}
		rep = r
		fmt.Printf("cliques: found %d size-%d cliques (dropped %d)\n", res.Found, *size, res.Dropped)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	fmt.Printf("processing: %d supersteps, %d messages, simulated latency %v (wall %v)\n",
		rep.Supersteps, rep.Messages, rep.SimulatedLatency.Round(time.Millisecond), rep.WallTime.Round(time.Millisecond))
	fmt.Printf("total graph latency (partitioning + simulated processing): %v\n",
		(partLat + rep.SimulatedLatency).Round(time.Millisecond))
	return nil
}

func pickSeeds(numV, n int, seed uint64) []adwise.VertexID {
	rng := rand.New(rand.NewPCG(seed, 0xcafe))
	if n > numV {
		n = numV
	}
	seen := make(map[adwise.VertexID]struct{}, n)
	out := make([]adwise.VertexID, 0, n)
	for len(out) < n {
		v := adwise.VertexID(rng.IntN(numV))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
