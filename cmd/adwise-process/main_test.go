package main

import (
	"path/filepath"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := adwise.Community(8, 8, 0.9, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWorkloads(t *testing.T) {
	path := writeTestGraph(t)
	for _, workload := range []string{"pagerank", "coloring", "cc", "sssp", "cycles", "cliques"} {
		args := []string{"-in", path, "-k", "4", "-algo", "hdrf", "-workload", workload,
			"-iters", "20", "-length", "4", "-size", "3", "-seeds", "4"}
		if err := run(args); err != nil {
			t.Errorf("workload %s: %v", workload, err)
		}
	}
}

func TestRunWithADWISEPartitioning(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-k", "4", "-algo", "adwise", "-latency", "200ms",
		"-workload", "pagerank", "-iters", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPrecomputedAssignment(t *testing.T) {
	path := writeTestGraph(t)
	g, err := adwise.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := adwise.NewBaseline(adwise.BaselineGreedy, adwise.BaselineConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := adwise.RunBaseline(adwise.StreamGraph(g), p)
	if err != nil {
		t.Fatal(err)
	}
	parts := filepath.Join(t.TempDir(), "parts.tsv")
	if err := adwise.SaveAssignment(parts, a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-parts", parts, "-workload", "cc", "-iters", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	other := writeTestGraph(t) // different temp graph for mismatch test
	g, _ := adwise.LoadGraph(other)
	p, _ := adwise.NewBaseline(adwise.BaselineHash, adwise.BaselineConfig{K: 2})
	a, err := adwise.RunBaseline(adwise.StreamEdges(g.Edges[:10]), p)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := filepath.Join(t.TempDir(), "mismatch.tsv")
	if err := adwise.SaveAssignment(mismatch, a); err != nil {
		t.Fatal(err)
	}

	tests := [][]string{
		{},                                  // missing -in
		{"-in", "/nonexistent.txt"},         // unreadable
		{"-in", path, "-workload", "bogus"}, // unknown workload
		{"-in", path, "-algo", "bogus"},     // unknown algo
		{"-in", path, "-parts", "/nonexistent.tsv"}, // unreadable parts
		{"-in", path, "-parts", mismatch},           // edge-count mismatch
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
