// Command adwise partitions a graph edge stream with ADWISE or one of the
// single-edge baselines, printing the partitioning quality and optionally
// writing the per-edge assignment.
//
// Usage:
//
//	adwise -in graph.txt -k 32 -algo adwise -latency 5s
//	adwise -in graph.txt -k 32 -algo hdrf -out assignment.tsv
//	adwise -in graph.txt -k 32 -z 8 -spread 4 -algo adwise -latency 5s
//	adwise -in graph.txt -k 32 -algo adwise -window 4096 -score-workers 8
//
// With -z > 1 the input is partitioned by z parallel instances under the
// spotlight optimization with the given spread, each streaming a disjoint
// byte range of the file (segmented loading) — for text edge lists and
// binary (.bin) inputs alike; binary ranges are planned from the header
// with no pass over the data. Streaming strategies never materialise the
// edge list, so the input may be larger than memory (the all-edge "ne"
// strategy still collects each instance's segment).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adwise:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adwise", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input graph file (text edge list or .bin)")
		k          = fs.Int("k", 32, "number of partitions")
		algo       = fs.String("algo", "adwise", "strategy: "+strings.Join(adwise.StrategyNames(), ", "))
		latency    = fs.Duration("latency", 0, "ADWISE latency preference L (0 = single-edge behaviour)")
		window     = fs.Int("window", 0, "ADWISE fixed window size (overrides -latency adaptation)")
		workers    = fs.Int("score-workers", 0, "ADWISE window-scoring shard budget (0 = auto: GOMAXPROCS shards per instance on the shared work-stealing pool; explicit values are distributed across the -z instances)")
		refillCap  = fs.Int("refill-batch", 0, "ADWISE refill staging cap: edges scored per batched refill pass (0 = default 2048; batch size never changes assignments)")
		perEdge    = fs.Bool("per-edge-refill", false, "ADWISE serial one-edge-at-a-time window refill (ablation; identical assignments to batched refill)")
		budgetStr  = fs.String("vcache-budget", "", "vertex-state byte budget, e.g. 64MiB or 1.5g (empty = unbounded); when exceeded, low-degree vertices are evicted HEP-style; divided across the -z instances")
		z          = fs.Int("z", 1, "parallel partitioner instances")
		spread     = fs.Int("spread", 0, "partitions per instance (default k/z)")
		seed       = fs.Uint64("seed", 42, "hash/graph seed")
		out        = fs.String("out", "", "write per-edge assignment TSV (src dst partition)")
		metricsOut = fs.String("metrics-out", "", "write telemetry snapshots to this file as JSON lines (sampled every second, final flush at exit)")
		verbose    = fs.Bool("v", false, "print stats details")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in graph file")
	}
	if *k < 1 {
		return fmt.Errorf("-k must be >= 1")
	}

	// With -metrics-out the run is instrumented: pool pass/steal counters
	// and ingest progress tick live while the pass runs, sampled to the
	// file once per second; Stop guarantees a final cumulative snapshot.
	var reg *adwise.MetricRegistry
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return fmt.Errorf("creating -metrics-out file: %w", err)
		}
		defer f.Close()
		reg = adwise.NewMetricRegistry()
		flusher := adwise.NewMetricsFlusher(reg, adwise.NewJSONLinesSink(f), time.Second)
		flusher.Start()
		defer flusher.Stop()
	}

	var refillOpts []adwise.Option
	if *refillCap > 0 {
		refillOpts = append(refillOpts, adwise.WithRefillBatch(*refillCap))
	}
	if *perEdge {
		refillOpts = append(refillOpts, adwise.WithPerEdgeRefill())
	}
	budget, err := adwise.ParseByteSize(*budgetStr)
	if err != nil {
		return fmt.Errorf("invalid -vcache-budget: %w", err)
	}

	start := time.Now()
	a, err := partitionInput(*in, *algo, *k, *z, *spread, *seed, *latency, *window, *workers, budget, refillOpts, reg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	s := adwise.Summarize(a)
	fmt.Printf("strategy=%s k=%d latency=%v\n", *algo, *k, elapsed.Round(time.Millisecond))
	fmt.Printf("replication degree: %.4f\n", s.ReplicationDegree)
	fmt.Printf("imbalance (max-min)/max: %.4f\n", s.Imbalance)
	if *verbose {
		fmt.Printf("cut vertices: %d / %d\n", s.CutVertices, s.Vertices)
		fmt.Printf("partition sizes: min=%d max=%d normalized max load=%.3f\n",
			s.MinSize, s.MaxSize, s.NormalizedMaxLoad())
		hist := adwise.ReplicaHistogram(a)
		for h, c := range hist {
			if c > 0 {
				fmt.Printf("  %d replicas: %d vertices\n", h, c)
			}
		}
	}
	if *out != "" {
		if err := adwise.SaveAssignment(*out, a); err != nil {
			return err
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	return nil
}

func partitionInput(in, algo string, k, z, spread int, seed uint64, latency time.Duration, window, workers int, budget int64, opts []adwise.Option, reg *adwise.MetricRegistry) (*adwise.Assignment, error) {
	spec := adwise.StrategySpec{K: k, Seed: seed, Latency: latency, Window: window, ScoreWorkers: workers, VertexBudgetBytes: budget, Options: opts, Metrics: reg}
	if z > 1 {
		if spread == 0 {
			spread = k / z
		}
		// Feed the z instances from disjoint byte ranges of the file
		// without materialising the edge list, whatever the format.
		cfg := adwise.SpotlightConfig{K: k, Z: z, Spread: spread}
		fmt.Printf("streaming %s: z=%d segmented byte-range loaders, spread=%d\n", in, z, spread)
		return adwise.PartitionFileSpotlight(algo, in, cfg, spec)
	}
	s, err := adwise.NewStrategy(algo, spec)
	if err != nil {
		return nil, err
	}
	fs, err := adwise.StreamFile(in)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	fmt.Printf("streaming %s: %d edges\n", in, fs.Remaining())
	a, err := s.Run(fs)
	if err != nil {
		return nil, err
	}
	adwise.PublishStrategyStats(reg, s.Stats())
	return a, nil
}
