package main

import (
	"os"
	"path/filepath"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := adwise.Community(10, 8, 0.9, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPartitionsWithEveryAlgo(t *testing.T) {
	path := writeTestGraph(t)
	for _, algo := range []string{"adwise", "hash", "1d", "2d", "grid", "greedy", "dbh", "hdrf", "ne"} {
		if err := run([]string{"-in", path, "-k", "4", "-algo", algo}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunSpotlightMode(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-algo", "hdrf"}); err != nil {
		t.Errorf("spotlight run: %v", err)
	}
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-spread", "4", "-algo", "adwise", "-window", "16"}); err != nil {
		t.Errorf("spotlight adwise run: %v", err)
	}
}

func TestRunSpotlightSegmentedAssignsEveryEdge(t *testing.T) {
	// -z on a text file goes through the segmented byte-range loaders; the
	// written assignment must still cover the whole graph.
	path := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "parts.tsv")
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-algo", "hdrf", "-out", out}); err != nil {
		t.Fatal(err)
	}
	a, err := adwise.LoadAssignment(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := adwise.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("segmented spotlight assigned %d of %d edges", a.Len(), g.E())
	}
}

func TestRunSpotlightBinarySegmentedAssignsEveryEdge(t *testing.T) {
	// -z on a binary input streams disjoint record ranges planned from the
	// header — no materialised fallback — and the written assignment must
	// still cover the whole graph.
	g, err := adwise.Community(10, 8, 0.9, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "parts.tsv")
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-algo", "hdrf", "-out", out}); err != nil {
		t.Fatalf("binary spotlight run: %v", err)
	}
	a, err := adwise.LoadAssignment(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("binary segmented spotlight assigned %d of %d edges", a.Len(), g.E())
	}
}

func TestRunBinarySingleInstanceStreams(t *testing.T) {
	// z=1 on a binary input goes through the same format-agnostic stream
	// layer (no edge-list materialisation for streaming strategies).
	g, err := adwise.Community(10, 8, 0.9, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"hdrf", "adwise", "ne"} {
		if err := run([]string{"-in", path, "-k", "4", "-algo", algo}); err != nil {
			t.Errorf("algo %s on binary input: %v", algo, err)
		}
	}
}

func TestRunSegmentedRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	content := "0 1\n1 2\nbroken line x y\n2 3\n3 4\n4 5\n5 6\n6 7\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-algo", "hdrf"}); err == nil {
		t.Error("malformed mid-file line did not fail the segmented run")
	}
}

func TestRunWritesAssignment(t *testing.T) {
	path := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "parts.tsv")
	if err := run([]string{"-in", path, "-k", "4", "-algo", "hdrf", "-out", out, "-v"}); err != nil {
		t.Fatal(err)
	}
	a, err := adwise.LoadAssignment(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 4 {
		t.Errorf("written assignment k=%d, want 4", a.K)
	}
	g, err := adwise.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("assignment covers %d of %d edges", a.Len(), g.E())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	tests := [][]string{
		{},                          // missing -in
		{"-in", "/nonexistent.txt"}, // unreadable graph
		{"-in", path, "-k", "0"},    // bad k
		{"-in", path, "-algo", "bogus"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestMainSmoke(t *testing.T) {
	// Ensure the test binary's main path stays compilable; nothing to
	// execute here beyond flag parsing failure handling via run().
	if os.Getenv("GO_TEST_EXEC_MAIN") != "" {
		main()
	}
}
