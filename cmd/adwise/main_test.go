package main

import (
	"os"
	"path/filepath"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := adwise.Community(10, 8, 0.9, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := adwise.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPartitionsWithEveryAlgo(t *testing.T) {
	path := writeTestGraph(t)
	for _, algo := range []string{"adwise", "hash", "1d", "2d", "grid", "greedy", "dbh", "hdrf", "ne"} {
		if err := run([]string{"-in", path, "-k", "4", "-algo", algo}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunSpotlightMode(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-algo", "hdrf"}); err != nil {
		t.Errorf("spotlight run: %v", err)
	}
	if err := run([]string{"-in", path, "-k", "8", "-z", "4", "-spread", "4", "-algo", "adwise", "-window", "16"}); err != nil {
		t.Errorf("spotlight adwise run: %v", err)
	}
}

func TestRunWritesAssignment(t *testing.T) {
	path := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "parts.tsv")
	if err := run([]string{"-in", path, "-k", "4", "-algo", "hdrf", "-out", out, "-v"}); err != nil {
		t.Fatal(err)
	}
	a, err := adwise.LoadAssignment(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 4 {
		t.Errorf("written assignment k=%d, want 4", a.K)
	}
	g, err := adwise.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != g.E() {
		t.Errorf("assignment covers %d of %d edges", a.Len(), g.E())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	tests := [][]string{
		{},                          // missing -in
		{"-in", "/nonexistent.txt"}, // unreadable graph
		{"-in", path, "-k", "0"},    // bad k
		{"-in", path, "-algo", "bogus"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestMainSmoke(t *testing.T) {
	// Ensure the test binary's main path stays compilable; nothing to
	// execute here beyond flag parsing failure handling via run().
	if os.Getenv("GO_TEST_EXEC_MAIN") != "" {
		main()
	}
}
