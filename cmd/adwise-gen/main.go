// Command adwise-gen generates synthetic evaluation graphs: the three
// Table II stand-ins (orkut, brain, web) or any of the generic generators.
//
// Usage:
//
//	adwise-gen -preset brain -scale 0.5 -out brain.txt
//	adwise-gen -model ba -n 100000 -m 8 -out ba.bin
//	adwise-gen -model community -n 2000 -csize 20 -pin 0.9 -inter 5000 -out web.txt
//	adwise-gen -model zipf -n 500000 -m 2000000 -zipf 1.3 -out skew.bin
package main

import (
	"flag"
	"fmt"
	"os"

	adwise "github.com/adwise-go/adwise"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adwise-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adwise-gen", flag.ContinueOnError)
	var (
		preset = fs.String("preset", "", "Table II stand-in: orkut, brain, web")
		scale  = fs.Float64("scale", 1.0, "preset scale factor")
		model  = fs.String("model", "", "generic model: er, ba, hk, ws, community, rmat, zipf")
		n      = fs.Int("n", 10000, "vertices (er/ba/hk/ws/zipf) or communities (community) or scale exponent (rmat)")
		m      = fs.Int("m", 4, "edges per vertex (ba/hk), neighbours per side (ws), total edges (er/rmat/zipf)")
		pt     = fs.Float64("pt", 0.5, "triad probability (hk) / rewiring beta (ws)")
		csize  = fs.Int("csize", 20, "community size (community)")
		pin    = fs.Float64("pin", 0.9, "intra-community edge probability (community)")
		inter  = fs.Int("inter", 1000, "inter-community edges (community)")
		zipf   = fs.Float64("zipf", 1.3, "degree-skew exponent s > 1 (zipf); larger = heavier hubs")
		seed   = fs.Uint64("seed", 42, "generator seed")
		out    = fs.String("out", "", "output path (.bin for binary, else text)")
		stats  = fs.Bool("stats", true, "print Table II-style stats")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -out path")
	}

	var (
		g   *adwise.Graph
		err error
	)
	switch {
	case *preset != "":
		g, err = adwise.Generate(adwise.GraphPreset(*preset), *scale, *seed)
	case *model != "":
		g, err = generate(*model, *n, *m, *pt, *zipf, *csize, *pin, *inter, *seed)
	default:
		return fmt.Errorf("need -preset or -model")
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Println(adwise.Stats(g, *seed))
	}
	if err := adwise.SaveGraph(*out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d vertices, %d edges)\n", *out, g.V(), g.E())
	return nil
}

func generate(model string, n, m int, pt, zipf float64, csize int, pin float64, inter int, seed uint64) (*adwise.Graph, error) {
	switch model {
	case "er":
		return adwise.ErdosRenyi(n, m, seed)
	case "ba":
		return adwise.BarabasiAlbert(n, m, seed)
	case "hk":
		return adwise.HolmeKim(n, m, pt, seed)
	case "ws":
		return adwise.WattsStrogatz(n, m, pt, seed)
	case "community":
		return adwise.Community(n, csize, pin, inter, seed)
	case "rmat":
		return adwise.RMAT(n, m, 0.57, 0.19, 0.19, seed)
	case "zipf":
		return adwise.Zipf(n, m, zipf, seed)
	default:
		return nil, fmt.Errorf("unknown model %q (have er, ba, hk, ws, community, rmat, zipf)", model)
	}
}
