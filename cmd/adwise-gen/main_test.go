package main

import (
	"path/filepath"
	"testing"

	adwise "github.com/adwise-go/adwise"
)

func TestRunPresets(t *testing.T) {
	dir := t.TempDir()
	for _, preset := range []string{"orkut", "brain", "web"} {
		out := filepath.Join(dir, preset+".txt")
		if err := run([]string{"-preset", preset, "-scale", "0.02", "-out", out}); err != nil {
			t.Errorf("preset %s: %v", preset, err)
			continue
		}
		g, err := adwise.LoadGraph(out)
		if err != nil {
			t.Errorf("loading %s: %v", out, err)
			continue
		}
		if g.E() == 0 {
			t.Errorf("preset %s produced empty graph", preset)
		}
	}
}

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	tests := [][]string{
		{"-model", "er", "-n", "100", "-m", "200"},
		{"-model", "ba", "-n", "100", "-m", "3"},
		{"-model", "hk", "-n", "100", "-m", "3", "-pt", "0.6"},
		{"-model", "ws", "-n", "100", "-m", "4", "-pt", "0.1"},
		{"-model", "community", "-n", "10", "-csize", "8", "-pin", "0.8", "-inter", "30"},
		{"-model", "rmat", "-n", "8", "-m", "500"},
	}
	for i, args := range tests {
		out := filepath.Join(dir, args[1]+".bin")
		args = append(args, "-out", out)
		if err := run(args); err != nil {
			t.Errorf("model case %d (%v): %v", i, args, err)
			continue
		}
		if _, err := adwise.LoadGraph(out); err != nil {
			t.Errorf("loading %s: %v", out, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	tests := [][]string{
		{},                   // missing everything
		{"-preset", "brain"}, // missing -out
		{"-model", "bogus", "-out", filepath.Join(dir, "x.txt")},
		{"-preset", "nope", "-out", filepath.Join(dir, "y.txt")},
		{"-model", "ba", "-n", "2", "-m", "5", "-out", filepath.Join(dir, "z.txt")}, // generator error
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
