package adwise

import (
	"github.com/adwise-go/adwise/internal/gen"
	"github.com/adwise-go/adwise/internal/graph"
)

// GraphPreset identifies one of the paper's evaluation graphs (Table II),
// reproduced as a synthetic stand-in (see DESIGN.md §3).
type GraphPreset = gen.Preset

// The three evaluation graphs.
const (
	// GraphOrkut mimics the Orkut social network: power-law degrees,
	// near-zero clustering (ĉ≈0.04).
	GraphOrkut = gen.PresetOrkut
	// GraphBrain mimics the Brain biological network: dense, moderate
	// clustering (ĉ≈0.51).
	GraphBrain = gen.PresetBrain
	// GraphWeb mimics the Web graph: extreme clustering (ĉ≈0.82).
	GraphWeb = gen.PresetWeb
)

// Generate produces the stand-in graph for a preset at the given scale
// (1.0 = default evaluation size). Deterministic per seed.
func Generate(preset GraphPreset, scale float64, seed uint64) (*Graph, error) {
	return preset.Generate(scale, seed)
}

// GraphStats summarises a graph Table II-style (|V|, |E|, clustering
// coefficient ĉ estimated on a sample).
type GraphStats = graph.Stats

// Stats computes GraphStats with the default 2000-vertex clustering
// sample.
func Stats(g *Graph, seed uint64) GraphStats {
	return graph.Summarize(g, graph.StatsOptions{Seed: seed})
}

// Synthetic generators beyond the paper presets; all deterministic per
// seed and stdlib-only.
var (
	// ErdosRenyi generates G(n, m) with m uniform random edges.
	ErdosRenyi = gen.ErdosRenyi
	// BarabasiAlbert generates a preferential-attachment power-law graph.
	BarabasiAlbert = gen.BarabasiAlbert
	// HolmeKim generates a power-law graph with tunable clustering.
	HolmeKim = gen.HolmeKim
	// WattsStrogatz generates a small-world ring lattice.
	WattsStrogatz = gen.WattsStrogatz
	// Community generates dense communities with sparse inter-links.
	Community = gen.Community
	// RMAT generates a recursive-matrix (Graph500-style) graph.
	RMAT = gen.RMAT
	// Zipf generates edges with Zipf-distributed endpoints — a direct
	// degree-skew knob for memory-pressure workloads.
	Zipf = gen.Zipf
	// Star, Path, Cycle, Clique, Grid2D generate structured test graphs.
	Star   = gen.Star
	Path   = gen.Path
	Cycle  = gen.Cycle
	Clique = gen.Clique
	Grid2D = gen.Grid2D
)

// LoadGraph reads a graph file (text edge list or the package's binary
// format, sniffed automatically).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph to path: binary when the extension is ".bin",
// text edge list otherwise.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }
